//! Domain scenario: an oblivious key-value store (Signal-style contact
//! discovery / Redis caching).
//!
//! Key-value services leak which keys are hot from the memory-access
//! pattern alone. This example drives the Zipfian `redis` workload through
//! three designs — the PrORAM prefetching baseline, Palermo, and Palermo
//! with matched prefetch — and contrasts throughput, dummy-request overhead
//! and stash pressure, reproducing the paper's argument that prefetch-based
//! designs pay for locality with stash pressure while Palermo does not.
//!
//! ```text
//! cargo run --release --example oblivious_kv_store
//! ```

use palermo::analysis::report::Table;
use palermo::sim::experiment::{Experiment, ThreadPoolExecutor};
use palermo::sim::schemes::Scheme;
use palermo::sim::system::SystemConfig;
use palermo::workloads::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = SystemConfig::paper_default();
    cfg.measured_requests = 300;
    cfg.warmup_requests = 75;

    let schemes = [
        Scheme::PathOram,
        Scheme::PrOram,
        Scheme::Palermo,
        Scheme::PalermoPrefetch,
    ];

    println!("running {} designs on `redis` traffic ...", schemes.len());
    let results = Experiment::new(cfg)
        .schemes(schemes)
        .workloads([Workload::Redis])
        .run(&ThreadPoolExecutor::with_available_parallelism())?;
    let baseline_perf = results
        .get(Scheme::PathOram, Workload::Redis)
        .expect("baseline run present")
        .metrics
        .accesses_per_cycle();

    let mut table = Table::new(
        "Oblivious KV store: Zipfian `redis` traffic",
        &[
            "scheme",
            "speedup vs PathORAM",
            "KV ops/s",
            "dummy requests",
            "stash max",
            "LLC hit rate",
        ],
    );

    for record in &results {
        let m = &record.metrics;
        table.row(&[
            record.scheme.to_string(),
            format!("{:.2}x", m.accesses_per_cycle() / baseline_perf),
            format!("{:.2e}", m.requests_per_second()),
            format!("{:.1}%", m.dummy_fraction() * 100.0),
            format!("{}", m.stash_high_water),
            format!("{:.1}%", m.llc_hit_rate * 100.0),
        ]);
    }

    println!("\n{}", table.to_text());
    println!("Note: PrORAM buys locality with same-leaf grouping and pays in stash");
    println!("pressure / dummy evictions; Palermo+Prefetch widens tree blocks instead");
    println!("and keeps the stash bounded (compare the last two rows).");
    Ok(())
}
