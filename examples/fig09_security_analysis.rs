//! Regenerates Fig. 9 / Table I: ORAM response-latency clustering, DRAM
//! row-hit and bank-conflict statistics, and the mutual-information
//! estimate of the timing side channel under Palermo.
//!
//! ```text
//! cargo run --release --example fig09_security_analysis
//! ```

use palermo::sim::experiment::ThreadPoolExecutor;
use palermo::sim::figures::fig09;
use palermo::sim::system::SystemConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = SystemConfig::paper_default();
    cfg.measured_requests = 500;
    cfg.warmup_requests = 125;
    if let Ok(Ok(n)) = std::env::var("PALERMO_REQUESTS").map(|v| v.parse::<u64>()) {
        cfg.measured_requests = n;
        cfg.warmup_requests = n / 4;
    }
    eprintln!("collecting Palermo response latencies on mcf / pr / llm / redis ...");
    let rows = fig09::run_with(&cfg, &ThreadPoolExecutor::with_available_parallelism())?;
    println!("{}", fig09::table(&rows).to_text());
    println!("Expected shape (paper): row-hit and bank-conflict rates are nearly identical");
    println!("across workloads and mutual information is within noise of zero — the");
    println!("attacker learns nothing from response timings.");
    Ok(())
}
