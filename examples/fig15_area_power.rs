//! Regenerates Fig. 15: the area/power breakdown of the Palermo ORAM
//! controller (analytical model calibrated to the paper's 28 nm synthesis).
//!
//! ```text
//! cargo run --example fig15_area_power
//! ```

use palermo::controller::area_power::ControllerProvisioning;
use palermo::controller::estimate;
use palermo::sim::figures::fig15;
use palermo::sim::system::SystemConfig;

fn main() {
    let cfg = SystemConfig::paper_default();
    let est = fig15::run(&cfg);
    println!("{}", fig15::table(&est).to_text());
    println!(
        "total: {:.2} mm^2, {:.2} W at 1.6 GHz   (paper: 5.78 mm^2, 2.14 W)",
        est.total_area_mm2(),
        est.total_power_w()
    );

    // Scaling study: how the budget grows with the PE mesh width.
    println!("\nPE-column scaling of the area/power budget:");
    for columns in [1u32, 4, 8, 16, 32] {
        let est = estimate(&ControllerProvisioning {
            pe_columns: columns,
            ..ControllerProvisioning::default()
        });
        println!(
            "  3x{columns:<2} mesh: {:>6.2} mm^2  {:>5.2} W",
            est.total_area_mm2(),
            est.total_power_w()
        );
    }
}
