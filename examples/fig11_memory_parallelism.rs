//! Regenerates Fig. 11: DRAM bandwidth utilisation and outstanding-request
//! counts, RingORAM vs Palermo (no prefetch).
//!
//! ```text
//! cargo run --release --example fig11_memory_parallelism
//! ```

use palermo::sim::experiment::ThreadPoolExecutor;
use palermo::sim::figures::fig11;
use palermo::sim::system::SystemConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = SystemConfig::paper_default();
    cfg.measured_requests = 300;
    cfg.warmup_requests = 75;
    if let Ok(Ok(n)) = std::env::var("PALERMO_REQUESTS").map(|v| v.parse::<u64>()) {
        cfg.measured_requests = n;
        cfg.warmup_requests = n / 4;
    }
    eprintln!("comparing RingORAM and Palermo memory-level parallelism ...");
    let rows = fig11::run_with(&cfg, &ThreadPoolExecutor::with_available_parallelism())?;
    println!("{}", fig11::table(&rows).to_text());
    let avg_util: f64 = rows.iter().map(|r| r.utilization_gain()).sum::<f64>() / rows.len() as f64;
    let avg_out: f64 = rows.iter().map(|r| r.outstanding_gain()).sum::<f64>() / rows.len() as f64;
    println!("average utilisation gain : {avg_util:.2}x  (paper: ~2.2x)");
    println!("average outstanding gain : {avg_out:.2}x  (paper: ~2.8x)");
    Ok(())
}
