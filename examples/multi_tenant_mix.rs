//! The open workload surface, end to end: an 8-tenant redis+llm+stream
//! cloud-serving mix and a recorded-trace replay, swept through the
//! `Experiment` grid under Palermo vs. RingORAM.
//!
//! The example demonstrates every piece the `WorkloadSpec` surface adds:
//!
//! 1. a multi-tenant `Mix` (weighted round-robin, per-tenant address
//!    partitioning, deterministic per-tenant seeding);
//! 2. a `TraceReplay` of a trace file written in the text format (the
//!    recording here is captured from a generator, but any `R/W <addr>`
//!    file replays the same way);
//! 3. spec-name round-trips through the CSV and JSON exports.
//!
//! ```text
//! cargo run --release --example multi_tenant_mix
//! PALERMO_REQUESTS=40 PALERMO_SERIAL_CHECK=1 cargo run --release --example multi_tenant_mix
//! ```

use palermo::sim::experiment::{Experiment, ResultSet, SerialExecutor, ThreadPoolExecutor};
use palermo::sim::figures::tenant_mix;
use palermo::sim::schemes::Scheme;
use palermo::sim::system::SystemConfig;
use palermo::workloads::{format, Workload, WorkloadSpec};
use std::time::Instant;

const SCHEMES: [Scheme; 2] = [Scheme::RingOram, Scheme::Palermo];

/// Records a short trace from the `mcf` generator and saves it in the text
/// format, returning the replay spec. Stands in for a real capture file.
fn record_trace(cfg: &SystemConfig) -> Result<WorkloadSpec, String> {
    let mut stream = Workload::Mcf.build(cfg.workload_footprint, 0xC0FFEE);
    let entries: Vec<_> = (0..30_000).map(|_| stream.next_access()).collect();
    let path = std::env::temp_dir().join("palermo_multi_tenant_mix.trace");
    format::save_text(&path, &entries)?;
    Ok(WorkloadSpec::replay(path.display().to_string()))
}

fn grid(cfg: SystemConfig, specs: &[WorkloadSpec]) -> Experiment {
    Experiment::new(cfg)
        .schemes(SCHEMES)
        .workload_specs(specs.iter().cloned())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = SystemConfig::paper_default();
    cfg.measured_requests = 200;
    cfg.warmup_requests = 50;
    if let Ok(Ok(n)) = std::env::var("PALERMO_REQUESTS").map(|v| v.parse::<u64>()) {
        cfg.measured_requests = n;
        cfg.warmup_requests = (n / 4).max(1);
    }

    let mix = tenant_mix::service_mix(8);
    let replay = record_trace(&cfg)?;
    eprintln!("workload specs under test:");
    eprintln!("  {mix}");
    eprintln!("  {replay}");
    let specs = [mix.clone(), replay];

    let pool = ThreadPoolExecutor::with_available_parallelism();
    eprintln!(
        "running a {}x{} (scheme x spec) grid ({} measured requests per run) on {} worker thread(s) ...",
        SCHEMES.len(),
        specs.len(),
        cfg.measured_requests,
        pool.threads()
    );
    let started = Instant::now();
    let results = grid(cfg.clone(), &specs).run(&pool)?;
    eprintln!("parallel run finished in {:.2?}", started.elapsed());

    // The executors are byte-identical by construction; verify on demand.
    if std::env::var("PALERMO_SERIAL_CHECK").is_ok() {
        let serial = grid(cfg.clone(), &specs).run(&SerialExecutor)?;
        assert_eq!(serial.to_csv(), results.to_csv(), "executors diverged");
        eprintln!("serial re-run verified: executors byte-identical");
    }

    // The 8-tenant mix, rendered through the tenant_mix figure runner.
    let rows = tenant_mix::run_with(&cfg, &mix, &SCHEMES, &pool)?;
    println!("{}", tenant_mix::table(&mix, &rows).to_text());

    // Per-spec serving summary straight from the grid records.
    for record in &results {
        let m = &record.metrics;
        println!(
            "{:>9} on {}\n          {:.5} acc/cycle, mean latency {:.0} cycles, \
dummy fraction {:.1}%",
            record.scheme.to_string(),
            record.workload,
            m.accesses_per_cycle(),
            m.mean_latency(),
            100.0 * m.dummy_fraction(),
        );
    }

    // Spec names survive both exports: parse back and compare.
    let csv = results.to_csv();
    let json = results.to_json();
    assert_eq!(
        ResultSet::parse_csv(&csv).as_deref(),
        Some(results.summaries().as_slice())
    );
    assert_eq!(
        ResultSet::parse_json(&json).as_deref(),
        Some(results.summaries().as_slice())
    );
    println!(
        "\nCSV/JSON round-trip verified for {} records (incl. mix and replay spec names).",
        results.len()
    );
    println!("--- CSV export (first 3 lines) ---");
    for line in csv.lines().take(3) {
        println!("{line}");
    }
    Ok(())
}
