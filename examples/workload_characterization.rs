//! Profiles the Table II workload generators: write mix, spatial locality
//! and footprint, plus the LLC miss rate each produces — the properties the
//! prefetch experiments are sensitive to.
//!
//! ```text
//! cargo run --release --example workload_characterization
//! ```

use palermo::analysis::report::Table;
use palermo::oram::types::PhysAddr;
use palermo::workloads::trace::profile;
use palermo::workloads::{Llc, LlcConfig, Workload};

fn main() {
    let accesses = 200_000u64;
    let mut table = Table::new(
        "Table II workload characterisation",
        &[
            "workload",
            "footprint",
            "write %",
            "sequential %",
            "distinct lines",
            "LLC miss %",
        ],
    );
    for workload in Workload::ALL {
        let mut stream = workload.build(256 << 20, 42);
        let p = profile(stream.as_mut(), accesses);
        // Re-run the same prefix through an LLC to measure the miss rate the
        // ORAM controller would actually see.
        let mut stream = workload.build(256 << 20, 42);
        let mut llc = Llc::new(LlcConfig::default());
        for _ in 0..accesses {
            let e = stream.next_access();
            llc.access(PhysAddr::new(e.addr.0));
        }
        table.row(&[
            workload.to_string(),
            format!("{} MiB", stream.footprint_bytes() >> 20),
            format!("{:.1}", p.write_fraction * 100.0),
            format!("{:.1}", p.sequential_fraction * 100.0),
            format!("{}", p.distinct_lines),
            format!("{:.1}", (1.0 - llc.hit_rate()) * 100.0),
        ]);
    }
    println!("{}", table.to_text());
    println!("High-sequential workloads (lbm, stream, llm) are where prefetch-based");
    println!("schemes shine; pr, motif and random are where they fall back to baseline.");
}
