//! Regenerates Fig. 13: Palermo speedup over PathORAM at several prefetch
//! lengths (nopf, 2, 4, 8).
//!
//! ```text
//! cargo run --release --example fig13_prefetch_sensitivity
//! ```

use palermo::sim::experiment::ThreadPoolExecutor;
use palermo::sim::figures::fig13;
use palermo::sim::system::SystemConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = SystemConfig::paper_default();
    cfg.measured_requests = 300;
    cfg.warmup_requests = 75;
    if let Ok(Ok(n)) = std::env::var("PALERMO_REQUESTS").map(|v| v.parse::<u64>()) {
        cfg.measured_requests = n;
        cfg.warmup_requests = n / 4;
    }
    eprintln!("sweeping Palermo prefetch lengths on mcf / pr / llm / redis ...");
    let rows = fig13::run_with(
        &cfg,
        &[1, 2, 4, 8],
        &ThreadPoolExecutor::with_available_parallelism(),
    )?;
    println!("{}", fig13::table(&rows).to_text());
    println!("Expected shape (paper): performance changes only moderately with the");
    println!("prefetch length and stays above PathORAM throughout — Palermo is not");
    println!("critically dependent on picking the best length.");
    Ok(())
}
