//! Sharded multi-controller scale-out: throughput vs shard count.
//!
//! 1. the protected space partitioned across K ∈ {1, 2, 4} independent
//!    ORAM instances (`shard:<K>:hash:mcf`) — per-shard position map,
//!    stash and DRAM channels, the access stream split by the Feistel
//!    hash router;
//! 2. every point driven through the pooled shard stepper
//!    (`std::thread::scope` intra-run parallelism), with per-shard and
//!    per-tenant conservation checked on each merged result;
//! 3. under `PALERMO_SERIAL_CHECK=1`, the whole grid re-run with serial
//!    shard stepping and asserted byte-identical — shard scheduling is
//!    provably a pure wall-clock choice;
//! 4. the per-shard CSV/JSON attribution exports round-tripping through
//!    their parsers.
//!
//! ```text
//! cargo run --release --example shard_scaling
//! PALERMO_REQUESTS=40 PALERMO_SERIAL_CHECK=1 cargo run --release --example shard_scaling
//! ```

use palermo::sim::experiment::ResultSet;
use palermo::sim::experiment::RunRecord;
use palermo::sim::figures::shard_scaling;
use palermo::sim::runner::EventStepper;
use palermo::sim::schemes::Scheme;
use palermo::sim::shard::{PooledShardStepper, SerialShardStepper, ShardStepper, ShardedSystem};
use palermo::sim::system::SystemConfig;
use palermo::workloads::{ShardRouterKind, ShardSpec, Workload, WorkloadSpec};
use std::time::Instant;

const SCHEMES: [Scheme; 2] = [Scheme::RingOram, Scheme::Palermo];
const SHARD_COUNTS: [u32; 3] = [1, 2, 4];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = SystemConfig::paper_default();
    cfg.measured_requests = 240;
    cfg.warmup_requests = 60;
    if let Ok(Ok(n)) = std::env::var("PALERMO_REQUESTS").map(|v| v.parse::<u64>()) {
        cfg.measured_requests = n;
        cfg.warmup_requests = (n / 4).max(1);
    }

    let inner = WorkloadSpec::Table2(Workload::Mcf);
    let pool = PooledShardStepper::with_available_parallelism();
    eprintln!(
        "shard scaling: {inner} x K={SHARD_COUNTS:?} x {SCHEMES:?}, \
         pooled over {} worker thread(s)",
        pool.threads()
    );

    let started = Instant::now();
    let rows = shard_scaling::run_with(&cfg, &inner, &SHARD_COUNTS, &SCHEMES, &pool)?;
    eprintln!(
        "{}x{} (scheme x K) grid finished in {:.2?}",
        SCHEMES.len(),
        SHARD_COUNTS.len(),
        started.elapsed()
    );
    println!("{}", shard_scaling::table(&inner, &rows).to_text());

    // Conservation on every merged point: per-shard sums reproduce the
    // aggregates, and the spec label survives the merge. Re-run one K=4
    // point explicitly to get at the full metrics.
    let spec = WorkloadSpec::Sharded(ShardSpec::new(4, ShardRouterKind::Hash, inner.clone()));
    let system = ShardedSystem::new(Scheme::Palermo, &spec, &cfg)?;
    let metrics = ShardStepper::run(&pool, &system, &EventStepper)?;
    assert!(
        metrics.shard_conservation_ok(),
        "shard conservation violated"
    );
    assert!(
        metrics.tenant_conservation_ok(),
        "tenant conservation violated"
    );
    assert_eq!(metrics.per_shard.len(), 4);
    assert_eq!(metrics.workload, spec);
    println!(
        "K=4 Palermo: {} requests over {} makespan cycles across {} shards \
         (conservation verified)",
        metrics.oram_requests,
        metrics.cycles,
        metrics.per_shard.len()
    );

    // Shard scheduling is a pure wall-clock choice; verify on demand.
    if std::env::var("PALERMO_SERIAL_CHECK").is_ok() {
        let serial = ShardStepper::run(&SerialShardStepper, &system, &EventStepper)?;
        assert_eq!(serial, metrics, "shard steppers diverged");
        let serial_rows = shard_scaling::run(&cfg, &inner, &SHARD_COUNTS, &SCHEMES)?;
        for (s, p) in serial_rows.iter().zip(&rows) {
            assert_eq!(s.cycles, p.cycles, "serial/pooled cycles diverged");
            assert_eq!(s.oram_requests, p.oram_requests);
            assert_eq!(s.accesses_per_cycle, p.accesses_per_cycle);
        }
        eprintln!("serial re-run verified: pooled shard stepping byte-identical");
    }

    // The per-shard attribution exports survive both round trips.
    let results = ResultSet::new(vec![RunRecord {
        label: format!("Palermo/{spec}"),
        scheme: Scheme::Palermo,
        workload: spec.clone(),
        metrics,
    }]);
    let shard_csv = results.to_shard_csv();
    assert_eq!(
        ResultSet::parse_shard_csv(&shard_csv).as_deref(),
        Some(results.shard_summaries().as_slice())
    );
    assert_eq!(
        ResultSet::parse_shard_json(&results.to_shard_json()).as_deref(),
        Some(results.shard_summaries().as_slice())
    );
    println!(
        "per-shard CSV/JSON round-trip verified for {} rows",
        results.shard_summaries().len()
    );
    println!("--- per-shard CSV export ---");
    for line in shard_csv.lines() {
        println!("{line}");
    }
    Ok(())
}
