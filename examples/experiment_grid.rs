//! The typed experiment surface, end to end: build a (scheme × workload)
//! grid with the `Experiment` builder, fan it across cores with the
//! `ThreadPoolExecutor`, normalise against PathORAM and export the records
//! as CSV and JSON.
//!
//! Because every run's randomness derives only from its own spec, the
//! threaded results are byte-identical to a serial run of the same grid —
//! this example verifies that before printing anything.
//!
//! ```text
//! cargo run --release --example experiment_grid
//! PALERMO_REQUESTS=40 PALERMO_SERIAL_CHECK=1 cargo run --release --example experiment_grid
//! ```

use palermo::analysis::report::{speedup, Table};
use palermo::sim::experiment::{Experiment, ResultSet, SerialExecutor, ThreadPoolExecutor};
use palermo::sim::schemes::Scheme;
use palermo::sim::system::SystemConfig;
use palermo::workloads::Workload;
use std::time::Instant;

fn grid(cfg: SystemConfig) -> Experiment {
    Experiment::new(cfg)
        .schemes([
            Scheme::PathOram,
            Scheme::RingOram,
            Scheme::Palermo,
            Scheme::PalermoPrefetch,
        ])
        .workloads([
            Workload::Mcf,
            Workload::Llm,
            Workload::Redis,
            Workload::Random,
        ])
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = SystemConfig::paper_default();
    cfg.measured_requests = 200;
    cfg.warmup_requests = 50;
    if let Ok(Ok(n)) = std::env::var("PALERMO_REQUESTS").map(|v| v.parse::<u64>()) {
        cfg.measured_requests = n;
        cfg.warmup_requests = (n / 4).max(1);
    }

    let pool = ThreadPoolExecutor::with_available_parallelism();
    eprintln!(
        "running a 4x4 grid ({} measured requests per run) on {} worker thread(s) ...",
        cfg.measured_requests,
        pool.threads()
    );
    let started = Instant::now();
    let results = grid(cfg.clone()).run(&pool)?;
    let parallel_wall = started.elapsed();
    eprintln!("parallel run finished in {parallel_wall:.2?}");

    // Optionally re-run serially and verify the executors agree bit-for-bit
    // (always true by construction; cheap insurance when timing the pool).
    if std::env::var("PALERMO_SERIAL_CHECK").is_ok() {
        let started = Instant::now();
        let serial = grid(cfg).run(&SerialExecutor)?;
        let serial_wall = started.elapsed();
        assert_eq!(serial.to_csv(), results.to_csv(), "executors diverged");
        eprintln!(
            "serial run finished in {serial_wall:.2?}; metrics identical; speedup {:.2}x",
            serial_wall.as_secs_f64() / parallel_wall.as_secs_f64().max(1e-9)
        );
    }

    let workloads = [
        Workload::Mcf,
        Workload::Llm,
        Workload::Redis,
        Workload::Random,
    ];
    let schemes = [Scheme::RingOram, Scheme::Palermo, Scheme::PalermoPrefetch];
    let mut t = Table::new(
        "Experiment grid — speedup over PathORAM",
        &["workload", "RingORAM", "Palermo", "Palermo+Prefetch"],
    );
    for (w, row) in
        workloads
            .iter()
            .zip(results.speedup_matrix(Scheme::PathOram, &workloads, &schemes))
    {
        let mut cells = vec![w.to_string()];
        cells.extend(row.iter().map(|&v| speedup(v)));
        t.row(&cells);
    }
    let mut gm = vec!["geo-mean".to_string()];
    gm.extend(
        schemes
            .iter()
            .map(|&s| speedup(results.geo_mean_speedup(Scheme::PathOram, s, &workloads))),
    );
    t.row(&gm);
    println!("{}", t.to_text());

    println!("--- CSV export (first 3 lines) ---");
    for line in results.to_csv().lines().take(3) {
        println!("{line}");
    }
    println!("--- JSON export (first record) ---");
    let json = results.to_json();
    println!(
        "{}",
        json.lines().nth(1).unwrap_or("").trim_end_matches(',')
    );

    // Round-trip sanity: both exports parse back to the same summaries.
    assert_eq!(
        ResultSet::parse_csv(&results.to_csv()).as_deref(),
        Some(results.summaries().as_slice())
    );
    assert_eq!(
        ResultSet::parse_json(&json).as_deref(),
        Some(results.summaries().as_slice())
    );
    println!(
        "\nCSV/JSON round-trip verified for {} records.",
        results.len()
    );
    Ok(())
}
