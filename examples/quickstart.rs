//! Quickstart: protect a memory space with Palermo, read and write through
//! the ORAM, and compare its throughput against the RingORAM baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use palermo::oram::crypto::Payload;
use palermo::oram::hierarchy::{HierarchicalOram, HierarchyConfig, ProtocolFlavor};
use palermo::oram::params::{HierarchyParams, OramParams};
use palermo::oram::types::{OramOp, PhysAddr};
use palermo::sim::experiment::{Experiment, ThreadPoolExecutor};
use palermo::sim::schemes::Scheme;
use palermo::sim::system::SystemConfig;
use palermo::workloads::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---------------------------------------------------------------------
    // 1. Functional view: the ORAM is a key-value memory. Writes and reads
    //    go through the full hierarchical protocol (PosMap2 -> PosMap1 ->
    //    Data), and every request is lowered to an explicit DRAM access plan.
    // ---------------------------------------------------------------------
    let data = OramParams::builder()
        .capacity_bytes(64 << 20)
        .z(16)
        .s(27)
        .a(20)
        .build()?;
    let params = HierarchyParams::derive(data, 4, 4)?;
    let mut cfg = HierarchyConfig::paper_default(ProtocolFlavor::Palermo)?;
    cfg.params = params;
    let mut oram = HierarchicalOram::new(cfg)?;

    let secret_addr = PhysAddr::new(0x4_2040);
    oram.access(
        secret_addr,
        OramOp::Write,
        Some(Payload::from_u64(0xC0FFEE)),
    )?;
    let read = oram.access(secret_addr, OramOp::Read, None)?;
    println!(
        "functional check: wrote 0xC0FFEE, read back {:#x} (found = {})",
        read.value.expect("value present").as_u64(),
        read.found
    );
    println!(
        "one ORAM request expanded into {} DRAM block operations across {} protocol phases",
        read.plan.total_traffic(),
        read.plan.nodes.len()
    );

    // ---------------------------------------------------------------------
    // 2. Performance view: run a small end-to-end simulation (workload ->
    //    LLC -> ORAM protocol -> controller -> DDR4) for the RingORAM
    //    baseline and for Palermo, and report the headline comparison.
    // ---------------------------------------------------------------------
    let mut sys = SystemConfig::paper_default();
    sys.measured_requests = 300;
    sys.warmup_requests = 75;

    println!("\nrunning the RingORAM baseline and Palermo on the `random` workload ...");
    let results = Experiment::new(sys)
        .schemes([Scheme::RingOram, Scheme::Palermo])
        .workloads([Workload::Random])
        .run(&ThreadPoolExecutor::with_available_parallelism())?;
    let metrics = |scheme| {
        results
            .get(scheme, Workload::Random)
            .expect("run present")
            .metrics
            .clone()
    };
    let ring = metrics(Scheme::RingOram);
    let palermo = metrics(Scheme::Palermo);

    println!("\n                         RingORAM      Palermo");
    println!(
        "requests / second      {:>10.2e}  {:>10.2e}",
        ring.requests_per_second(),
        palermo.requests_per_second()
    );
    println!(
        "bandwidth utilisation  {:>9.1}%  {:>9.1}%",
        ring.dram.bandwidth_utilization() * 100.0,
        palermo.dram.bandwidth_utilization() * 100.0
    );
    println!(
        "mean response latency  {:>8.0}cy  {:>8.0}cy",
        ring.mean_latency(),
        palermo.mean_latency()
    );
    println!(
        "\nPalermo speedup over RingORAM: {:.2}x",
        palermo.requests_per_cycle() / ring.requests_per_cycle()
    );
    Ok(())
}
