//! Regenerates Fig. 10: end-to-end speedup of all schemes on all Table II
//! workloads, normalised to PathORAM — the paper's headline comparison.
//!
//! The full 10-workload × 8-scheme sweep takes a few minutes in release
//! mode; set `PALERMO_REQUESTS` to trade accuracy for time.
//!
//! ```text
//! cargo run --release --example fig10_end_to_end
//! ```

use palermo::sim::experiment::ThreadPoolExecutor;
use palermo::sim::figures::fig10;
use palermo::sim::schemes::Scheme;
use palermo::sim::system::SystemConfig;
use palermo::workloads::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = SystemConfig::paper_default();
    cfg.measured_requests = 300;
    cfg.warmup_requests = 75;
    if let Ok(Ok(n)) = std::env::var("PALERMO_REQUESTS").map(|v| v.parse::<u64>()) {
        cfg.measured_requests = n;
        cfg.warmup_requests = n / 4;
    }
    let pool = ThreadPoolExecutor::with_available_parallelism();
    eprintln!(
        "running {} workloads x {} schemes, {} measured requests each, on {} thread(s) ...",
        Workload::ALL.len(),
        Scheme::ALL.len(),
        cfg.measured_requests,
        pool.threads()
    );
    let fig = fig10::run_with(&cfg, &Workload::ALL, &Scheme::ALL, &pool)?;
    println!("{}", fig10::table(&fig).to_text());
    println!(
        "geo-mean speedups:  RingORAM {:.2}x | PrORAM {:.2}x | Palermo-SW {:.2}x | Palermo {:.2}x | Palermo+Prefetch {:.2}x",
        fig.geo_mean(Scheme::RingOram),
        fig.geo_mean(Scheme::PrOram),
        fig.geo_mean(Scheme::PalermoSw),
        fig.geo_mean(Scheme::Palermo),
        fig.geo_mean(Scheme::PalermoPrefetch),
    );
    println!("(paper: 1.1x / 1.7x / 1.2x / 2.4x / 3.1x)");
    Ok(())
}
