//! Regenerates Fig. 14: sensitivity of Palermo to the protocol parameter Z
//! (with the matching S and A) and to the number of PE columns.
//!
//! ```text
//! cargo run --release --example fig14_sensitivity_sweeps
//! ```

use palermo::sim::experiment::ThreadPoolExecutor;
use palermo::sim::figures::fig14;
use palermo::sim::system::SystemConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = SystemConfig::paper_default();
    cfg.measured_requests = 250;
    cfg.warmup_requests = 60;
    if let Ok(Ok(n)) = std::env::var("PALERMO_REQUESTS").map(|v| v.parse::<u64>()) {
        cfg.measured_requests = n;
        cfg.warmup_requests = n / 4;
    }
    let pool = ThreadPoolExecutor::with_available_parallelism();
    eprintln!("sweeping Z on the `rand` workload ...");
    let z_points = fig14::run_z_sweep_with(&cfg, &[4, 8, 16, 32], &pool)?;
    eprintln!("sweeping PE columns on the `rand` workload ...");
    let pe_points = fig14::run_pe_sweep_with(&cfg, &[1, 2, 4, 8, 16, 32], &pool)?;
    let (zt, pt) = fig14::tables(&z_points, &pe_points);
    println!("{}", zt.to_text());
    println!("{}", pt.to_text());
    println!("Expected shape (paper): larger (Z, S, A) reach up to ~1.8x over (4, 5, 3);");
    println!("throughput scales with PE columns until memory bandwidth saturates around 3x8.");
    Ok(())
}
