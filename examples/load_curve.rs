//! Latency-vs-offered-load knee curves under open-loop serving:
//!
//! 1. a Poisson offered-load sweep over the `random` workload, RingORAM
//!    vs. Palermo, through `Experiment::sweep_offered_load` — each grid
//!    point wraps the workload in an `open:poisson:<rate>` spec with the
//!    drop-tail admission queue in front of the ORAM pipeline;
//! 2. arrival accounting checked on every record (arrivals = admitted +
//!    dropped, one queue wait per completed request);
//! 3. the knee: p99 end-to-end latency flat at low load, blowing up at
//!    overload while achieved throughput plateaus at the scheme's
//!    saturation rate below the offered rate;
//! 4. the CSV/JSON exports (now carrying arrivals/drops/queue-wait
//!    columns) round-tripping through their parsers.
//!
//! ```text
//! cargo run --release --example load_curve
//! PALERMO_REQUESTS=40 PALERMO_SERIAL_CHECK=1 cargo run --release --example load_curve
//! ```

use palermo::sim::experiment::{Experiment, ResultSet, SerialExecutor, ThreadPoolExecutor};
use palermo::sim::figures::load_curve;
use palermo::sim::schemes::Scheme;
use palermo::sim::system::SystemConfig;
use palermo::workloads::{Workload, WorkloadSpec};
use std::time::Instant;

const SCHEMES: [Scheme; 2] = [Scheme::RingOram, Scheme::Palermo];

/// The swept offered loads in requests per kilocycle: the low end is far
/// below either scheme's service rate, the high end far above it, so the
/// curve crosses the knee for both schemes.
const RATES: [f64; 4] = [0.005, 0.05, 0.5, 10.0];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = SystemConfig::paper_default();
    cfg.measured_requests = 200;
    cfg.warmup_requests = 50;
    if let Ok(Ok(n)) = std::env::var("PALERMO_REQUESTS").map(|v| v.parse::<u64>()) {
        cfg.measured_requests = n;
        cfg.warmup_requests = (n / 4).max(1);
    }

    let inner = WorkloadSpec::Table2(Workload::Random);
    eprintln!(
        "open-loop sweep: {inner} x {:?} req/kcycle, queue={} policy={}",
        RATES,
        cfg.serving_queue_capacity,
        cfg.admission_policy.name()
    );

    let pool = ThreadPoolExecutor::with_available_parallelism();
    let started = Instant::now();
    let results = Experiment::new(cfg.clone())
        .schemes(SCHEMES)
        .workload_specs([inner.clone()])
        .sweep_offered_load(RATES)
        .run(&pool)?;
    eprintln!(
        "{}x{} (scheme x rate) grid finished in {:.2?} on {} worker thread(s)",
        SCHEMES.len(),
        RATES.len(),
        started.elapsed(),
        pool.threads()
    );

    // Arrival accounting holds on every record: drops bounded by arrivals,
    // exactly one queue wait per completed request.
    for record in &results {
        assert!(
            record.metrics.arrival_conservation_ok(),
            "arrival accounting violated for {}",
            record.label
        );
    }
    eprintln!("arrival accounting verified on every record");

    // Open-loop runs are deterministic like everything else; verify the
    // executors agree on demand.
    if std::env::var("PALERMO_SERIAL_CHECK").is_ok() {
        let serial = Experiment::new(cfg.clone())
            .schemes(SCHEMES)
            .workload_specs([inner.clone()])
            .sweep_offered_load(RATES)
            .run(&SerialExecutor)?;
        assert_eq!(serial.to_csv(), results.to_csv(), "executors diverged");
        eprintln!("serial re-run verified: open-loop metrics byte-identical");
    }

    // The knee table, derived from the grid records already computed.
    let rows = load_curve::rows(&results, &inner, &RATES, &SCHEMES);
    println!("{}", load_curve::table(&inner, &rows).to_text());

    for &scheme in &SCHEMES {
        let per: Vec<&load_curve::LoadCurveRow> =
            rows.iter().filter(|r| r.scheme == scheme).collect();
        let (low, high) = (per[0], per[per.len() - 1]);
        assert!(
            low.p99_e2e < high.p99_e2e,
            "{scheme}: no knee (p99 {} !< {})",
            low.p99_e2e,
            high.p99_e2e
        );
        assert!(
            high.achieved_rate < high.offered_rate,
            "{scheme}: achieved did not plateau below offered at overload"
        );
        let sat = load_curve::saturation_rate(&rows, scheme).expect("scheme has rows");
        println!(
            "{scheme}: saturation throughput {:.4} req/kcycle \
             (p99 e2e {} -> {} cycles across the sweep)",
            sat, low.p99_e2e, high.p99_e2e
        );
    }

    // The aggregate exports — including the new arrivals/dropped/queue-wait
    // columns — survive both round trips.
    let csv = results.to_csv();
    assert_eq!(
        ResultSet::parse_csv(&csv).as_deref(),
        Some(results.summaries().as_slice())
    );
    assert_eq!(
        ResultSet::parse_json(&results.to_json()).as_deref(),
        Some(results.summaries().as_slice())
    );
    println!("CSV/JSON round-trip verified for {} rows", results.len());
    println!("--- CSV export (first 3 lines) ---");
    for line in csv.lines().take(3) {
        println!("{line}");
    }
    Ok(())
}
