//! Per-tenant QoS inside a phased multi-tenant mix, end to end:
//!
//! 1. a `PhasedMix` with tenant arrival and departure (redis always on, llm
//!    arriving a quarter in, streaming departing three quarters in) swept
//!    under RingORAM vs. Palermo through the `Experiment` grid;
//! 2. per-tenant attribution: completion counts, mean/p50/p95/p99 response
//!    latency and DRAM demand share per tenant, with the conservation
//!    invariant (per-tenant sums == aggregates) checked on every record;
//! 3. the capture pipeline: the exact access stream the phased run
//!    consumed, dumped to a binary `PTRC` file and replayed — the replay
//!    reproduces the aggregate metrics bit for bit;
//! 4. the per-tenant CSV/JSON exports round-tripping through their parsers.
//!
//! ```text
//! cargo run --release --example tenant_qos
//! PALERMO_REQUESTS=40 PALERMO_SERIAL_CHECK=1 cargo run --release --example tenant_qos
//! ```

use palermo::sim::experiment::{Experiment, ResultSet, SerialExecutor, ThreadPoolExecutor};
use palermo::sim::figures::tenant_qos;
use palermo::sim::runner::run_workload_spec;
use palermo::sim::schemes::Scheme;
use palermo::sim::system::SystemConfig;
use palermo::workloads::{capture, CaptureEncoding};
use std::time::Instant;

const SCHEMES: [Scheme; 2] = [Scheme::RingOram, Scheme::Palermo];

/// Accesses to capture for the replay demo — scaled with the request
/// budget (each request consumes one miss plus a small number of LLC
/// hits, so 16x is generous headroom) and floored high enough for the
/// default budget; the looping replay must never wrap inside the run.
fn capture_accesses(cfg: &SystemConfig) -> usize {
    (cfg.total_requests() as usize)
        .saturating_mul(16)
        .max(400_000)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = SystemConfig::paper_default();
    cfg.measured_requests = 200;
    cfg.warmup_requests = 50;
    if let Ok(Ok(n)) = std::env::var("PALERMO_REQUESTS").map(|v| v.parse::<u64>()) {
        cfg.measured_requests = n;
        cfg.warmup_requests = (n / 4).max(1);
    }

    // Size the arrival/departure windows against a rough access budget:
    // every request consumes at least one access, and LLC hits stretch that
    // by a small factor, so 4x the request budget puts the transitions
    // mid-run.
    let spec = tenant_qos::phased_service_mix(cfg.total_requests() * 4);
    eprintln!("phased mix under test: {spec}");

    let pool = ThreadPoolExecutor::with_available_parallelism();
    let started = Instant::now();
    let results = Experiment::new(cfg.clone())
        .schemes(SCHEMES)
        .workload_specs([spec.clone()])
        .run(&pool)?;
    eprintln!(
        "{}x1 (scheme x spec) grid finished in {:.2?} on {} worker thread(s)",
        SCHEMES.len(),
        started.elapsed(),
        pool.threads()
    );

    // Per-tenant conservation: for every record the per-tenant vectors sum
    // exactly to the aggregates.
    for record in &results {
        assert!(
            record.metrics.tenant_conservation_ok(),
            "conservation violated for {}",
            record.label
        );
    }
    eprintln!("per-tenant conservation verified on every record");

    // The executors are byte-identical by construction; verify on demand.
    if std::env::var("PALERMO_SERIAL_CHECK").is_ok() {
        let serial = Experiment::new(cfg.clone())
            .schemes(SCHEMES)
            .workload_specs([spec.clone()])
            .run(&SerialExecutor)?;
        assert_eq!(serial.to_csv(), results.to_csv(), "executors diverged");
        assert_eq!(
            serial.to_tenant_csv(),
            results.to_tenant_csv(),
            "per-tenant attribution diverged between executors"
        );
        eprintln!("serial re-run verified: per-tenant metrics byte-identical");
    }

    // The per-tenant QoS table (who stalls whom), derived from the grid
    // records already computed — no simulation is repeated.
    let rows = tenant_qos::rows(&results, &spec, &SCHEMES);
    println!("{}", tenant_qos::table(&spec, &rows).to_text());

    // Capture pipeline: dump the exact stream the run consumed to a binary
    // PTRC trace, replay it, and reproduce the aggregate metrics bit for
    // bit (the replay is a flat single-tenant stream, so only the
    // per-tenant view collapses).
    let path = std::env::temp_dir().join("palermo_tenant_qos.ptrc");
    let n_capture = capture_accesses(&cfg);
    let replay = capture::capture_to_file(
        &spec,
        n_capture,
        cfg.stream_footprint_hint(),
        cfg.stream_seed(),
        &path,
        CaptureEncoding::Binary,
    )?;
    // The generator-driven Palermo run already exists in the grid records
    // (runs are deterministic, so re-simulating would reproduce it anyway).
    let direct = results
        .get_spec(Scheme::Palermo, &spec)
        .expect("Palermo is in the scheme list")
        .metrics
        .clone();
    let mut replayed = run_workload_spec(Scheme::Palermo, &replay, &cfg)?;
    replayed.workload = direct.workload.clone();
    replayed.per_tenant = direct.per_tenant.clone();
    assert_eq!(
        replayed, direct,
        "replaying the capture diverged from the generator run"
    );
    println!(
        "capture -> replay closed loop verified: {} accesses via {}",
        n_capture,
        path.display()
    );

    // Per-tenant exports survive both round trips.
    let tenant_csv = results.to_tenant_csv();
    assert_eq!(
        ResultSet::parse_tenant_csv(&tenant_csv).as_deref(),
        Some(results.tenant_summaries().as_slice())
    );
    assert_eq!(
        ResultSet::parse_tenant_json(&results.to_tenant_json()).as_deref(),
        Some(results.tenant_summaries().as_slice())
    );
    println!(
        "per-tenant CSV/JSON round-trip verified for {} tenant rows",
        results.tenant_summaries().len()
    );
    println!("--- per-tenant CSV export (first 4 lines) ---");
    for line in tenant_csv.lines().take(4) {
        println!("{line}");
    }
    Ok(())
}
