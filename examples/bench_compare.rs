//! Compares a fresh tick-loop bench snapshot against a committed baseline
//! and fails loudly on regressions, missing files, or group-name drift.
//!
//! This is the checker CI runs after regenerating `BENCH_tick_loop.json`
//! (see `bench/README.md` for the snapshot convention):
//!
//! ```text
//! cargo run --release --example bench_compare -- \
//!     --baseline bench/BENCH_tick_loop.json \
//!     --fresh BENCH_tick_loop.json \
//!     --max-regression 0.15
//! ```
//!
//! Both files are JSON lines of `{"group":...,"id":...,"mean_ns":...}`
//! records as written by the `palermo-bench` harness under
//! `PALERMO_BENCH_JSON`. The parser is hand-rolled against that fixed,
//! machine-written schema (the workspace takes no JSON dependency).
//! Duplicate `(group, id)` lines merge by taking the **minimum** mean: the
//! harness appends, so running a bench N times against the same file
//! implements the min-of-N protocol from `bench/README.md` — the minimum is
//! far more stable than any single run on a busy or thermally-throttled
//! machine, and CI regenerates its fresh snapshot that way.
//!
//! Exit is non-zero when:
//! - either file is missing or unreadable (a silently absent baseline
//!   previously downgraded the whole gate to a no-op);
//! - a `(group, id)` present in the baseline is absent from the fresh run
//!   (bench group renames must update the committed snapshot in the same
//!   PR, otherwise the gate compares nothing);
//! - any fresh mean exceeds its baseline by more than `--max-regression`
//!   (relative, e.g. `0.15` = +15%).
//!
//! Entries only in the fresh run are reported but do not fail: a new bench
//! lands before its first committed snapshot.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::process::ExitCode;

/// One `{"group":...,"id":...,"mean_ns":...}` record per line.
type Snapshot = BTreeMap<(String, String), f64>;

/// Extracts the JSON string value for `key`, e.g. `"group":"fig03"`.
fn string_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Extracts the JSON numeric value for `key`, e.g. `"mean_ns":3868221.5`.
fn number_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn load(path: &str) -> Result<Snapshot, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read bench snapshot {path}: {e}"))?;
    let mut snapshot = Snapshot::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let parsed = string_field(line, "group").and_then(|group| {
            let id = string_field(line, "id")?;
            let mean = number_field(line, "mean_ns")?;
            Some(((group, id), mean))
        });
        match parsed {
            Some((key, mean)) => {
                let slot = snapshot.entry(key).or_insert(f64::INFINITY);
                *slot = slot.min(mean);
            }
            None => {
                return Err(format!(
                    "{path}:{}: malformed bench record: {line}",
                    lineno + 1
                ))
            }
        }
    }
    if snapshot.is_empty() {
        return Err(format!("{path}: no bench records found"));
    }
    Ok(snapshot)
}

fn parse_args() -> Result<(String, String, f64), String> {
    let mut baseline = None;
    let mut fresh = None;
    let mut max_regression = 0.15f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--baseline" => baseline = Some(value("--baseline")?),
            "--fresh" => fresh = Some(value("--fresh")?),
            "--max-regression" => {
                max_regression = value("--max-regression")?
                    .parse()
                    .map_err(|e| format!("--max-regression: {e}"))?
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok((
        baseline.ok_or("--baseline <path> is required")?,
        fresh.ok_or("--fresh <path> is required")?,
        max_regression,
    ))
}

fn main() -> ExitCode {
    let (baseline_path, fresh_path, max_regression) = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("bench_compare: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (baseline, fresh) = match (load(&baseline_path), load(&fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (b, f) => {
            for err in [b.err(), f.err()].into_iter().flatten() {
                eprintln!("bench_compare: {err}");
            }
            return ExitCode::FAILURE;
        }
    };

    let mut failures = String::new();
    for (key, base) in &baseline {
        let (group, id) = key;
        match fresh.get(key) {
            None => {
                let _ = writeln!(
                    failures,
                    "{group}/{id}: present in {baseline_path} but missing from \
                     {fresh_path} — bench renamed or dropped without updating \
                     the committed snapshot"
                );
            }
            Some(now) => {
                let ratio = now / base;
                let line = format!(
                    "{group}/{id}: {:.3} ms vs committed {:.3} ms ({:+.1}%)",
                    now / 1e6,
                    base / 1e6,
                    (ratio - 1.0) * 100.0
                );
                if ratio > 1.0 + max_regression {
                    let _ = writeln!(
                        failures,
                        "{line} — exceeds the {:.0}% regression budget",
                        max_regression * 100.0
                    );
                } else {
                    println!("{line}");
                }
            }
        }
    }
    for (group, id) in fresh.keys().filter(|k| !baseline.contains_key(*k)) {
        println!("{group}/{id}: new bench (no committed baseline yet)");
    }

    if failures.is_empty() {
        println!(
            "bench_compare: OK ({} benches within budget)",
            baseline.len()
        );
        ExitCode::SUCCESS
    } else {
        eprint!("{failures}");
        ExitCode::FAILURE
    }
}
