//! Memory-technology sweep with per-tenant energy accounting, end to end:
//!
//! 1. the three checked-in hardware profiles (DDR4-3200 / DDR5-6400 /
//!    HBM2e-class) loaded from `profiles/` and verified byte-identical to
//!    the built-in definitions;
//! 2. one `Experiment::sweep_hardware` grid — RingORAM vs. Palermo on the
//!    same two-tenant mix across all three memory technologies;
//! 3. the aggregate comparison (latency, achieved GB/s, bus utilisation,
//!    energy per access) and the per-tenant split (p99 next to each
//!    tenant's share of the energy bill), both derived from the grid
//!    records via the export mapping;
//! 4. the extended CSV/JSON schema (hardware + energy columns) round-
//!    tripping through its parsers.
//!
//! ```text
//! cargo run --release --example memory_tech
//! PALERMO_REQUESTS=40 PALERMO_SERIAL_CHECK=1 cargo run --release --example memory_tech
//! ```

use palermo::dram::HardwareProfile;
use palermo::sim::experiment::{ResultSet, ThreadPoolExecutor};
use palermo::sim::figures::memory_tech;
use palermo::sim::schemes::Scheme;
use palermo::sim::system::SystemConfig;
use palermo::workloads::{MixSpec, Workload, WorkloadSpec};
use std::path::Path;
use std::time::Instant;

const SCHEMES: [Scheme; 2] = [Scheme::RingOram, Scheme::Palermo];

/// Loads the checked-in profile files and checks they agree byte for byte
/// with the built-in definitions (falls back to the builtins when the
/// example runs away from a repo checkout).
fn load_profiles() -> Vec<HardwareProfile> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("profiles");
    if !dir.is_dir() {
        eprintln!("profiles/ not found; using built-in definitions");
        return HardwareProfile::builtins();
    }
    HardwareProfile::builtins()
        .into_iter()
        .map(|builtin| {
            let path = dir.join(format!("{}.profile", builtin.name));
            let loaded = HardwareProfile::load(&path)
                .unwrap_or_else(|e| panic!("loading {}: {e}", path.display()));
            assert_eq!(
                loaded,
                builtin,
                "{} drifted from the built-in definition — regenerate with \
                 `cargo run -p palermo-dram --example gen_profiles`",
                path.display()
            );
            loaded
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = SystemConfig::paper_default();
    cfg.measured_requests = 200;
    cfg.warmup_requests = 50;
    if let Ok(Ok(n)) = std::env::var("PALERMO_REQUESTS").map(|v| v.parse::<u64>()) {
        cfg.measured_requests = n;
        cfg.warmup_requests = (n / 4).max(1);
    }

    let profiles = load_profiles();
    eprintln!(
        "hardware profiles under test: {}",
        profiles
            .iter()
            .map(|p| p.name.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );

    // A two-tenant service mix: a hot redis tier next to an llm tenant.
    let spec = WorkloadSpec::Mix(
        MixSpec::round_robin()
            .tenant(Workload::Redis.into(), 2)
            .tenant(Workload::Llm.into(), 1),
    );

    let pool = ThreadPoolExecutor::with_available_parallelism();
    let started = Instant::now();
    let results = memory_tech::run_with(&cfg, &spec, &SCHEMES, &profiles, &pool)?;
    eprintln!(
        "{}x{} (scheme x profile) grid finished in {:.2?} on {} worker thread(s)",
        SCHEMES.len(),
        profiles.len(),
        started.elapsed(),
        pool.threads()
    );

    // The executors are byte-identical by construction; verify on demand.
    if std::env::var("PALERMO_SERIAL_CHECK").is_ok() {
        let serial = memory_tech::run(&cfg, &spec, &SCHEMES, &profiles)?;
        assert_eq!(serial.to_csv(), results.to_csv(), "executors diverged");
        assert_eq!(
            serial.to_tenant_csv(),
            results.to_tenant_csv(),
            "per-tenant energy attribution diverged between executors"
        );
        eprintln!("serial re-run verified: energy accounting byte-identical");
    }

    // Aggregate comparison and the per-tenant energy split, derived from
    // the grid records already computed — no simulation is repeated.
    let rows = memory_tech::rows(&results, &SCHEMES, &profiles);
    println!("{}", memory_tech::table(&spec, &rows).to_text());
    let trows = memory_tech::tenant_rows(&results, &SCHEMES, &profiles);
    println!("{}", memory_tech::tenant_table(&spec, &trows).to_text());

    // Per-tenant energies partition each cell's total exactly.
    for r in &rows {
        let cell: f64 = trows
            .iter()
            .filter(|t| t.hardware == r.hardware && t.scheme == r.scheme)
            .map(|t| t.energy_j)
            .sum();
        assert!(
            (cell - r.energy_j).abs() <= r.energy_j * 1e-9,
            "tenant energy split does not partition the {}/{} total",
            r.hardware,
            r.scheme
        );
    }
    println!("tenant energy split partitions every cell's total exactly");

    // The extended schema (hardware + energy columns) survives both round
    // trips, per run and per tenant.
    let csv = results.to_csv();
    assert_eq!(
        ResultSet::parse_csv(&csv).as_deref(),
        Some(results.summaries().as_slice())
    );
    assert_eq!(
        ResultSet::parse_json(&results.to_json()).as_deref(),
        Some(results.summaries().as_slice())
    );
    assert_eq!(
        ResultSet::parse_tenant_csv(&results.to_tenant_csv()).as_deref(),
        Some(results.tenant_summaries().as_slice())
    );
    println!("hardware/energy CSV+JSON round-trip verified");
    println!("--- CSV export (first 4 lines) ---");
    for line in csv.lines().take(4) {
        println!("{line}");
    }
    Ok(())
}
