//! Regenerates Fig. 4: PrORAM / LAORAM prefetch-length sweep on the
//! synthetic streaming workload, with dummy-request ratios.
//!
//! ```text
//! cargo run --release --example fig04_prefetch_baselines
//! ```

use palermo::sim::experiment::ThreadPoolExecutor;
use palermo::sim::figures::fig04;
use palermo::sim::system::SystemConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = SystemConfig::paper_default();
    cfg.measured_requests = 400;
    cfg.warmup_requests = 100;
    if let Ok(Ok(n)) = std::env::var("PALERMO_REQUESTS").map(|v| v.parse::<u64>()) {
        cfg.measured_requests = n;
        cfg.warmup_requests = n / 4;
    }
    eprintln!("sweeping prefetch lengths on `stm` for PrORAM and PrORAM w/ Fat Tree ...");
    let rows = fig04::run_with(
        &cfg,
        &[1, 2, 4, 8, 16],
        &ThreadPoolExecutor::with_available_parallelism(),
    )?;
    println!("{}", fig04::table(&rows).to_text());
    println!("Expected shape (paper): the dummy-request ratio climbs with the prefetch");
    println!("length and caps the speedup despite perfect locality; the fat tree");
    println!("(LAORAM) relieves but does not remove the pressure.");
    Ok(())
}
