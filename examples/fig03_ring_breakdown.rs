//! Regenerates Fig. 3: RingORAM bandwidth utilisation and memory-cycle
//! breakdown (the motivation study).
//!
//! ```text
//! cargo run --release --example fig03_ring_breakdown
//! PALERMO_REQUESTS=2000 cargo run --release --example fig03_ring_breakdown
//! ```

use palermo::sim::experiment::ThreadPoolExecutor;
use palermo::sim::figures::fig03;
use palermo::sim::system::SystemConfig;

fn scaled_config() -> SystemConfig {
    let mut cfg = SystemConfig::paper_default();
    if let Ok(n) = std::env::var("PALERMO_REQUESTS") {
        if let Ok(n) = n.parse::<u64>() {
            cfg.measured_requests = n;
            cfg.warmup_requests = n / 4;
        }
    }
    cfg
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = scaled_config();
    eprintln!(
        "simulating RingORAM on 5 workloads, {} measured requests each ...",
        cfg.measured_requests
    );
    let rows = fig03::run_with(&cfg, &ThreadPoolExecutor::with_available_parallelism())?;
    println!("{}", fig03::table(&rows).to_text());
    let avg_sync: f64 = rows.iter().map(|r| r.sync_fraction).sum::<f64>() / rows.len() as f64;
    let avg_util: f64 =
        rows.iter().map(|r| r.bandwidth_utilization).sum::<f64>() / rows.len() as f64;
    println!(
        "average bandwidth utilisation: {:.1}%  (paper: < 30%)",
        avg_util * 100.0
    );
    println!(
        "average ORAM-sync stall share: {:.1}%  (paper: ~72%)",
        avg_sync * 100.0
    );
    Ok(())
}
