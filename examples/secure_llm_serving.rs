//! Domain scenario: oblivious LLM token-table serving.
//!
//! The paper's motivating example (§II-A): an LLM inference service keeps
//! its token feature table in untrusted cloud memory. Without ORAM, the
//! address trace reveals which tokens the user's prompt contains. This
//! example serves the `llm` workload through Palermo and then asks the
//! attacker's question: *can response timings be used to tell whether the
//! victim touched previously-written (hot) state?* — reporting the
//! mutual-information estimate of Fig. 9 alongside throughput.
//!
//! ```text
//! cargo run --release --example secure_llm_serving
//! ```

use palermo::analysis::mutual_info::estimate_from_samples;
use palermo::analysis::Summary;
use palermo::sim::experiment::{Experiment, ThreadPoolExecutor};
use palermo::sim::schemes::Scheme;
use palermo::sim::system::SystemConfig;
use palermo::workloads::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = SystemConfig::paper_default();
    cfg.measured_requests = 400;
    cfg.warmup_requests = 100;

    println!("serving GPT-2-style token-table traffic through Palermo and RingORAM ...");
    let results = Experiment::new(cfg.clone())
        .schemes([Scheme::Palermo, Scheme::RingOram])
        .workloads([Workload::Llm])
        .run(&ThreadPoolExecutor::with_available_parallelism())?;
    let metrics = |scheme| {
        results
            .get(scheme, Workload::Llm)
            .expect("run present")
            .metrics
            .clone()
    };
    let palermo = metrics(Scheme::Palermo);
    let ring = metrics(Scheme::RingOram);

    let mut latency = Summary::new();
    latency.extend(palermo.latencies.iter().map(|&l| l as f64));
    println!("\n--- service quality ---");
    println!(
        "Palermo token-lookup throughput : {:.2e} lookups/s ({:.2}x over RingORAM)",
        palermo.requests_per_second(),
        palermo.requests_per_cycle() / ring.requests_per_cycle()
    );
    println!(
        "ORAM response latency           : mean {:.0} cycles, std {:.0}, max {:.0}",
        latency.mean(),
        latency.std_dev(),
        latency.max()
    );
    println!(
        "DRAM bandwidth utilisation      : {:.1}% (RingORAM: {:.1}%)",
        palermo.dram.bandwidth_utilization() * 100.0,
        ring.dram.bandwidth_utilization() * 100.0
    );
    println!(
        "stash occupancy                 : max {} of {} entries",
        palermo.stash_high_water, cfg.stash_capacity
    );

    println!("\n--- attacker's view ---");
    println!(
        "row-buffer hits  : {:.1}%   bank conflicts : {:.1}%",
        palermo.dram.row_hit_rate() * 100.0,
        palermo.dram.bank_conflict_rate() * 100.0
    );
    let samples: Vec<(bool, f64)> = palermo
        .behaviour_latency
        .iter()
        .map(|&(b, l)| (b, l as f64))
        .collect();
    match estimate_from_samples(&samples) {
        Some((probs, mi)) => {
            println!(
                "timing side channel: p1 = {:.3}, p2 = {:.3}, mutual information = {:.5} bits",
                probs.p1, probs.p2, mi
            );
            println!(
                "=> the attacker's best timing-based guess is within noise of a coin flip{}",
                if mi < 0.01 {
                    ""
                } else {
                    " (small sample size inflates the estimate)"
                }
            );
        }
        None => println!("not enough samples of both behaviours to estimate leakage"),
    }
    Ok(())
}
