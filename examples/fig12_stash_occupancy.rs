//! Regenerates Fig. 12: Palermo stash occupancy over the course of each
//! workload, demonstrating that concurrency does not break the stash bound.
//!
//! ```text
//! cargo run --release --example fig12_stash_occupancy
//! ```

use palermo::sim::experiment::ThreadPoolExecutor;
use palermo::sim::figures::fig12;
use palermo::sim::system::SystemConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = SystemConfig::paper_default();
    cfg.measured_requests = 500;
    cfg.warmup_requests = 125;
    if let Ok(Ok(n)) = std::env::var("PALERMO_REQUESTS").map(|v| v.parse::<u64>()) {
        cfg.measured_requests = n;
        cfg.warmup_requests = n / 4;
    }
    eprintln!("sampling Palermo stash occupancy on mcf / pr / llm / redis ...");
    let rows = fig12::run_with(&cfg, &ThreadPoolExecutor::with_available_parallelism())?;
    println!("{}", fig12::table(&rows).to_text());
    for row in &rows {
        let series: Vec<String> = row
            .samples
            .iter()
            .step_by((row.samples.len() / 10).max(1))
            .map(|(p, occ)| format!("{:3.0}%:{occ:>3}", p * 100.0))
            .collect();
        println!("{:>7}  {}", row.workload, series.join("  "));
    }
    println!("\n(paper: maxima of 228-237 against the 256-entry capacity)");
    Ok(())
}
