# Palermo hardware profile: ddr4-3200
# One `key = value` per line; '#' starts a comment line; timings are
# 1600 MHz memory-clock cycles. No key is optional unless
# marked so; unknown or duplicate keys are errors.
name = ddr4-3200

# DRAM organisation
channels = 4
ranks = 1
bank_groups = 4
banks_per_group = 4
rows = 65536
row_bytes = 8192
burst_bytes = 64
queue_capacity = 32

# DRAM timing (cycles)
t_cl = 22
t_cwl = 16
t_rcd = 22
t_rp = 22
t_ras = 52
t_rc = 74
t_ccd_s = 4
t_ccd_l = 8
t_rrd_s = 4
t_rrd_l = 8
t_faw = 26
t_wr = 24
t_wtr = 8
t_rtp = 12
t_bl = 4

# Energy coefficients
pj_per_act = 1700
pj_per_rd_burst = 4600
pj_per_wr_burst = 4800
background_mw_per_bank = 9
