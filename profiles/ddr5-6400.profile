# Palermo hardware profile: ddr5-6400
# One `key = value` per line; '#' starts a comment line; timings are
# 1600 MHz memory-clock cycles. No key is optional unless
# marked so; unknown or duplicate keys are errors.
name = ddr5-6400

# DRAM organisation
channels = 8
ranks = 1
bank_groups = 8
banks_per_group = 4
rows = 65536
row_bytes = 4096
burst_bytes = 64
queue_capacity = 48

# DRAM timing (cycles)
t_cl = 23
t_cwl = 21
t_rcd = 23
t_rp = 23
t_ras = 51
t_rc = 74
t_ccd_s = 4
t_ccd_l = 8
t_rrd_s = 4
t_rrd_l = 8
t_faw = 21
t_wr = 48
t_wtr = 8
t_rtp = 12
t_bl = 4

# Energy coefficients
pj_per_act = 1300
pj_per_rd_burst = 3600
pj_per_wr_burst = 3900
background_mw_per_bank = 4.5
