# Palermo hardware profile: hbm2e
# One `key = value` per line; '#' starts a comment line; timings are
# 1600 MHz memory-clock cycles. No key is optional unless
# marked so; unknown or duplicate keys are errors.
name = hbm2e

# DRAM organisation
channels = 16
ranks = 1
bank_groups = 4
banks_per_group = 4
rows = 16384
row_bytes = 1024
burst_bytes = 64
queue_capacity = 64

# DRAM timing (cycles)
t_cl = 23
t_cwl = 12
t_rcd = 23
t_rp = 23
t_ras = 45
t_rc = 68
t_ccd_s = 4
t_ccd_l = 6
t_rrd_s = 3
t_rrd_l = 5
t_faw = 13
t_wr = 26
t_wtr = 6
t_rtp = 6
t_bl = 4

# Energy coefficients
pj_per_act = 650
pj_per_rd_burst = 1900
pj_per_wr_burst = 2000
background_mw_per_bank = 1.8

# Controller provisioning overrides (optional)
treetop_bytes = 1572864
