//! # Palermo — protocol-hardware co-design for oblivious memory
//!
//! This is the facade crate of the Palermo reproduction. It re-exports the
//! public API of the workspace crates so downstream users (and the bundled
//! examples and integration tests) can reach everything through a single
//! `use palermo::…` path:
//!
//! * [`oram`] — the ORAM protocols (PathORAM, RingORAM, Palermo) and their
//!   access-plan lowering;
//! * [`dram`] — the cycle-level DDR4 + memory-controller substrate;
//! * [`controller`] — the serial baseline controller and the Palermo PE-mesh
//!   controller, plus the area/power model;
//! * [`workloads`] — the Table II workload generators and the LLC model;
//! * [`analysis`] — statistics, histograms and the mutual-information
//!   security analysis;
//! * [`sim`] — the end-to-end system simulator and the per-figure experiment
//!   runners.
//!
//! ## Quickstart
//!
//! A single run goes through [`sim::runner::run_workload`]:
//!
//! ```
//! use palermo::sim::schemes::Scheme;
//! use palermo::sim::system::SystemConfig;
//! use palermo::sim::runner::run_workload;
//! use palermo::workloads::workload::Workload;
//!
//! // A deliberately tiny run: the defaults used by the figures are larger.
//! let cfg = SystemConfig::small_for_tests();
//! let metrics = run_workload(Scheme::Palermo, Workload::Random, &cfg).unwrap();
//! assert!(metrics.oram_requests > 0);
//! ```
//!
//! Grids and sweeps — everything the paper's figures are made of — go
//! through the typed [`sim::experiment`] surface, which can fan the
//! independent runs across cores deterministically:
//!
//! ```
//! use palermo::sim::experiment::{Experiment, ThreadPoolExecutor};
//! use palermo::sim::schemes::Scheme;
//! use palermo::sim::system::SystemConfig;
//! use palermo::workloads::workload::Workload;
//!
//! let mut cfg = SystemConfig::small_for_tests();
//! cfg.measured_requests = 20;
//! cfg.warmup_requests = 5;
//! let results = Experiment::new(cfg)
//!     .schemes([Scheme::PathOram, Scheme::Palermo])
//!     .workloads([Workload::Random])
//!     .run(&ThreadPoolExecutor::with_available_parallelism())
//!     .unwrap();
//! assert!(results
//!     .speedup_over(Scheme::PathOram, Scheme::Palermo, Workload::Random)
//!     .unwrap() > 1.0);
//! ```

#![warn(missing_docs)]

pub use palermo_analysis as analysis;
pub use palermo_controller as controller;
pub use palermo_dram as dram;
pub use palermo_oram as oram;
pub use palermo_sim as sim;
pub use palermo_workloads as workloads;

/// The version of the Palermo reproduction workspace.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_set() {
        assert!(!super::VERSION.is_empty());
    }
}
