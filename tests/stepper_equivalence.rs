//! Proof that the event-driven simulation core is cycle-exact.
//!
//! The seed simulator advanced the clock one 1.6 GHz cycle at a time
//! ([`palermo::sim::runner::ReferenceStepper`]); the event-driven core
//! ([`palermo::sim::runner::EventStepper`], the default) jumps over
//! provably-idle stretches. These tests assert the two produce **identical**
//! [`RunMetrics`] — including `DramStats`, sync-stall attribution and every
//! per-request latency — for every (scheme, workload) pair of the paper's
//! grid under the `small_for_tests` configuration.

use palermo::sim::runner::{run_workload_stepped, EventStepper, ReferenceStepper};
use palermo::sim::schemes::Scheme;
use palermo::sim::system::SystemConfig;
use palermo::workloads::Workload;

/// Asserts byte-identical metrics, with a field-by-field message on failure
/// so a regression names the counter that diverged.
fn assert_equivalent(scheme: Scheme, workload: Workload, cfg: &SystemConfig) {
    let reference = run_workload_stepped(scheme, workload, cfg, &ReferenceStepper)
        .unwrap_or_else(|e| panic!("reference run failed for {scheme}/{workload}: {e}"));
    let event = run_workload_stepped(scheme, workload, cfg, &EventStepper)
        .unwrap_or_else(|e| panic!("event run failed for {scheme}/{workload}: {e}"));

    assert_eq!(
        reference.cycles, event.cycles,
        "{scheme}/{workload}: measured cycles diverged"
    );
    assert_eq!(
        reference.dram, event.dram,
        "{scheme}/{workload}: DramStats diverged"
    );
    assert_eq!(
        reference.sync_stall_cycles, event.sync_stall_cycles,
        "{scheme}/{workload}: sync stall cycles diverged"
    );
    assert_eq!(
        reference.sync_stall_by_level, event.sync_stall_by_level,
        "{scheme}/{workload}: per-level sync stalls diverged"
    );
    assert_eq!(
        reference.latencies, event.latencies,
        "{scheme}/{workload}: per-request latencies diverged"
    );
    // And the full struct, in case a new field is added later.
    assert_eq!(reference, event, "{scheme}/{workload}: RunMetrics diverged");
}

/// Every scheme × workload pair of the paper grid is byte-identical between
/// the per-cycle reference stepper and the event-driven core.
#[test]
fn event_core_is_cycle_exact_across_the_full_grid() {
    let cfg = SystemConfig::small_for_tests();
    for scheme in Scheme::ALL {
        for workload in Workload::ALL {
            assert_equivalent(scheme, workload, &cfg);
        }
    }
}

/// The equivalence also holds with a zero warm-up window, where the measured
/// window opens at cycle 0 (regression coverage for the warm-up bugfix
/// interacting with time skipping).
#[test]
fn event_core_is_cycle_exact_with_zero_warmup() {
    let mut cfg = SystemConfig::small_for_tests();
    cfg.warmup_requests = 0;
    cfg.measured_requests = 30;
    for scheme in [Scheme::RingOram, Scheme::Palermo, Scheme::PrOram] {
        assert_equivalent(scheme, Workload::Random, &cfg);
    }
}

/// With `warmup_requests = 0` the measured window must open before the first
/// completion: every measured counter fills in (the seed runner silently
/// returned all-zero metrics here).
#[test]
fn zero_warmup_measures_every_request() {
    let mut cfg = SystemConfig::small_for_tests();
    cfg.warmup_requests = 0;
    cfg.measured_requests = 25;
    let m = palermo::sim::runner::run_workload(Scheme::RingOram, Workload::Mcf, &cfg).unwrap();
    assert_eq!(m.oram_requests, cfg.measured_requests);
    assert_eq!(m.latencies.len(), cfg.measured_requests as usize);
    assert!(m.workload_accesses >= m.oram_requests);
    assert!(m.cycles > 0);
    assert!(m.dram.total_accesses() > 0);
}
