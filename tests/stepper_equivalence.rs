//! Proof that the event-driven simulation core is cycle-exact.
//!
//! The seed simulator advanced the clock one 1.6 GHz cycle at a time
//! ([`palermo::sim::runner::ReferenceStepper`]); the event-driven core
//! ([`palermo::sim::runner::EventStepper`], the default) jumps over
//! provably-idle stretches. These tests assert the two produce **identical**
//! [`RunMetrics`] — including `DramStats`, sync-stall attribution and every
//! per-request latency — for every (scheme, workload) pair of the paper's
//! grid under the `small_for_tests` configuration.

use palermo::sim::runner::{
    run_workload_spec_stepped, run_workload_stepped, CalendarStepper, EventStepper,
    ReferenceStepper,
};
use palermo::sim::schemes::Scheme;
use palermo::sim::system::SystemConfig;
use palermo::sim::{
    PooledShardStepper, SerialShardStepper, ShardStepper, ShardedSystem, WorkloadSpec,
};
use palermo::workloads::Workload;

/// Asserts byte-identical metrics, with a field-by-field message on failure
/// so a regression names the counter that diverged.
fn assert_equivalent(scheme: Scheme, workload: Workload, cfg: &SystemConfig) {
    let reference = run_workload_stepped(scheme, workload, cfg, &ReferenceStepper)
        .unwrap_or_else(|e| panic!("reference run failed for {scheme}/{workload}: {e}"));
    let event = run_workload_stepped(scheme, workload, cfg, &EventStepper)
        .unwrap_or_else(|e| panic!("event run failed for {scheme}/{workload}: {e}"));

    assert_eq!(
        reference.cycles, event.cycles,
        "{scheme}/{workload}: measured cycles diverged"
    );
    assert_eq!(
        reference.dram, event.dram,
        "{scheme}/{workload}: DramStats diverged"
    );
    assert_eq!(
        reference.sync_stall_cycles, event.sync_stall_cycles,
        "{scheme}/{workload}: sync stall cycles diverged"
    );
    assert_eq!(
        reference.sync_stall_by_level, event.sync_stall_by_level,
        "{scheme}/{workload}: per-level sync stalls diverged"
    );
    assert_eq!(
        reference.latencies, event.latencies,
        "{scheme}/{workload}: per-request latencies diverged"
    );
    // And the full struct, in case a new field is added later.
    assert_eq!(reference, event, "{scheme}/{workload}: RunMetrics diverged");
}

/// Every scheme × workload pair of the paper grid is byte-identical between
/// the per-cycle reference stepper and the event-driven core.
#[test]
fn event_core_is_cycle_exact_across_the_full_grid() {
    let cfg = SystemConfig::small_for_tests();
    for scheme in Scheme::ALL {
        for workload in Workload::ALL {
            assert_equivalent(scheme, workload, &cfg);
        }
    }
}

/// The equivalence also holds with a zero warm-up window, where the measured
/// window opens at cycle 0 (regression coverage for the warm-up bugfix
/// interacting with time skipping).
#[test]
fn event_core_is_cycle_exact_with_zero_warmup() {
    let mut cfg = SystemConfig::small_for_tests();
    cfg.warmup_requests = 0;
    cfg.measured_requests = 30;
    for scheme in [Scheme::RingOram, Scheme::Palermo, Scheme::PrOram] {
        assert_equivalent(scheme, Workload::Random, &cfg);
    }
}

/// A starved DRAM queue keeps the equivalence contract: with per-channel
/// queue capacity cut to 2, the controller's issue pass is rejected
/// constantly, exercising the enqueue-blocked retry path where the stepper
/// must not jump past the cycle a freed slot un-blocks the retry
/// (regression coverage for the next-event staleness bugfix, at the runner
/// level rather than the channel level).
#[test]
fn tiny_dram_queues_stay_cycle_exact_under_time_skipping() {
    let mut cfg = SystemConfig::small_for_tests();
    cfg.dram.queue_capacity = 2;
    for scheme in [Scheme::RingOram, Scheme::Palermo] {
        let reference =
            run_workload_stepped(scheme, Workload::Mcf, &cfg, &ReferenceStepper).unwrap();
        let calendar = run_workload_stepped(scheme, Workload::Mcf, &cfg, &CalendarStepper).unwrap();
        assert_eq!(
            reference, calendar,
            "{scheme}: RunMetrics diverged under queue_capacity=2"
        );
    }
}

/// Composed workload specs keep the equivalence contract: an `open:` spec
/// (arrival process + admission queue wrapped around the closed-loop core)
/// produces byte-identical [`palermo::sim::runner::RunMetrics`] under the
/// per-cycle reference and the settled-window calendar core.
#[test]
fn calendar_core_is_cycle_exact_for_open_loop_specs() {
    let cfg = SystemConfig::small_for_tests();
    for name in ["open:poisson:0.05:random", "open:bursty:0.2:2000:6000:mcf"] {
        let spec = WorkloadSpec::from_name(name).unwrap();
        let reference = run_workload_spec_stepped(Scheme::RingOram, &spec, &cfg, &ReferenceStepper)
            .unwrap_or_else(|e| panic!("reference run failed for {name}: {e}"));
        let calendar = run_workload_spec_stepped(Scheme::RingOram, &spec, &cfg, &CalendarStepper)
            .unwrap_or_else(|e| panic!("calendar run failed for {name}: {e}"));
        assert_eq!(reference, calendar, "{name}: RunMetrics diverged");
    }
}

/// A `shard:<K>` composed spec under the calendar core is byte-identical to
/// the per-cycle reference, and byte-identical across both shard executors
/// (serial and thread-pooled) — sharding, stepping and scheduling must all
/// be determinism-preserving at once.
#[test]
fn sharded_specs_are_cycle_exact_under_the_calendar_core_on_both_executors() {
    let cfg = SystemConfig::small_for_tests();
    let spec = WorkloadSpec::from_name("shard:2:hash:random").unwrap();
    let system = ShardedSystem::new(Scheme::RingOram, &spec, &cfg).unwrap();

    let reference = ShardStepper::run(&SerialShardStepper, &system, &ReferenceStepper).unwrap();
    let serial = ShardStepper::run(&SerialShardStepper, &system, &CalendarStepper).unwrap();
    let pooled = ShardStepper::run(&PooledShardStepper::new(2), &system, &CalendarStepper).unwrap();

    assert_eq!(
        reference, serial,
        "shard:2: calendar core diverged from the per-cycle reference"
    );
    assert_eq!(
        serial, pooled,
        "shard:2: pooled executor diverged from the serial executor"
    );
}

/// With `warmup_requests = 0` the measured window must open before the first
/// completion: every measured counter fills in (the seed runner silently
/// returned all-zero metrics here).
#[test]
fn zero_warmup_measures_every_request() {
    let mut cfg = SystemConfig::small_for_tests();
    cfg.warmup_requests = 0;
    cfg.measured_requests = 25;
    let m = palermo::sim::runner::run_workload(Scheme::RingOram, Workload::Mcf, &cfg).unwrap();
    assert_eq!(m.oram_requests, cfg.measured_requests);
    assert_eq!(m.latencies.len(), cfg.measured_requests as usize);
    assert!(m.workload_accesses >= m.oram_requests);
    assert!(m.cycles > 0);
    assert!(m.dram.total_accesses() > 0);
}
