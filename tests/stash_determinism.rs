//! Determinism contract for stash-order-sensitive simulation state.
//!
//! The stash used to key its occupancy on `HashMap<BlockId, StashEntry>`,
//! whose per-instance `RandomState` seed made iteration order — and thus
//! eviction candidate order — vary from process to process even with fixed
//! seeds. It now uses a `BTreeMap`, so traversal is ascending-`BlockId` and
//! a pure function of stash *contents*, never of insertion history or hasher
//! seeds. These tests pin that contract at the system level: repeated runs of
//! the full paper grid produce **byte-identical** [`RunMetrics`].

use palermo::sim::runner::{run_workload, run_workload_stepped, EventStepper, ReferenceStepper};
use palermo::sim::schemes::Scheme;
use palermo::sim::system::SystemConfig;
use palermo::workloads::Workload;

/// Two independent runs of every (scheme, workload) pair of the paper grid
/// produce byte-identical metrics. With a hash-seeded stash this held only
/// within a process; the `BTreeMap` stash makes it structural.
#[test]
fn repeated_runs_are_byte_identical_across_the_full_grid() {
    let cfg = SystemConfig::small_for_tests();
    for scheme in Scheme::ALL {
        for workload in Workload::ALL {
            let first = run_workload(scheme, workload, &cfg)
                .unwrap_or_else(|e| panic!("first run failed for {scheme}/{workload}: {e}"));
            let second = run_workload(scheme, workload, &cfg)
                .unwrap_or_else(|e| panic!("second run failed for {scheme}/{workload}: {e}"));
            assert_eq!(
                first, second,
                "{scheme}/{workload}: RunMetrics diverged between identical runs"
            );
        }
    }
}

/// The determinism holds across *stepper implementations* too: the reference
/// per-cycle stepper and the event-driven core must agree run-over-run, so
/// stash ordering cannot leak through either scheduling path.
#[test]
fn stash_order_is_stable_across_steppers_and_repeats() {
    let cfg = SystemConfig::small_for_tests();
    for scheme in [Scheme::PathOram, Scheme::RingOram, Scheme::Palermo] {
        let workload = Workload::Random;
        let ref_a = run_workload_stepped(scheme, workload, &cfg, &ReferenceStepper)
            .unwrap_or_else(|e| panic!("reference run failed for {scheme}: {e}"));
        let ref_b = run_workload_stepped(scheme, workload, &cfg, &ReferenceStepper)
            .unwrap_or_else(|e| panic!("reference rerun failed for {scheme}: {e}"));
        let evt_a = run_workload_stepped(scheme, workload, &cfg, &EventStepper)
            .unwrap_or_else(|e| panic!("event run failed for {scheme}: {e}"));
        let evt_b = run_workload_stepped(scheme, workload, &cfg, &EventStepper)
            .unwrap_or_else(|e| panic!("event rerun failed for {scheme}: {e}"));
        assert_eq!(ref_a, ref_b, "{scheme}: reference stepper not reproducible");
        assert_eq!(evt_a, evt_b, "{scheme}: event stepper not reproducible");
        assert_eq!(ref_a, evt_a, "{scheme}: steppers diverged");
    }
}
