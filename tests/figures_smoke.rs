//! Fast regression coverage for every `sim::figures::*` runner.
//!
//! Each figure runner is executed on a heavily shrunken configuration so
//! that a regression anywhere in the figure pipelines (workload generation,
//! scheme wiring, table rendering) is caught by the tier-1 test suite in
//! seconds rather than only by a full `cargo bench` reproduction run.

use palermo::sim::figures::{fig03, fig04, fig09, fig10, fig11, fig12, fig13, fig14, fig15};
use palermo::sim::schemes::Scheme;
use palermo::sim::system::SystemConfig;
use palermo::workloads::workload::Workload;

fn tiny() -> SystemConfig {
    let mut cfg = SystemConfig::small_for_tests();
    cfg.measured_requests = 30;
    cfg.warmup_requests = 8;
    cfg
}

#[test]
fn fig03_runner_produces_rows() {
    let rows = fig03::run(&tiny()).expect("fig03 run");
    assert!(!rows.is_empty());
    assert!(!fig03::table(&rows).to_text().is_empty());
}

#[test]
fn fig04_runner_produces_rows() {
    let rows = fig04::run(&tiny(), &[1, 4]).expect("fig04 run");
    assert!(!rows.is_empty());
    assert!(!fig04::table(&rows).to_text().is_empty());
}

#[test]
fn fig09_runner_produces_rows() {
    let rows = fig09::run(&tiny()).expect("fig09 run");
    assert!(!rows.is_empty());
    assert!(!fig09::table(&rows).to_text().is_empty());
}

#[test]
fn fig10_runner_produces_report() {
    let report = fig10::run(
        &tiny(),
        &[Workload::Random],
        &[Scheme::PathOram, Scheme::Palermo],
    )
    .expect("fig10 run");
    assert!(!fig10::table(&report).to_text().is_empty());
}

#[test]
fn fig11_runner_produces_rows() {
    let rows = fig11::run(&tiny()).expect("fig11 run");
    assert!(!rows.is_empty());
    assert!(!fig11::table(&rows).to_text().is_empty());
}

#[test]
fn fig12_runner_produces_rows() {
    let rows = fig12::run(&tiny()).expect("fig12 run");
    assert!(!rows.is_empty());
    assert!(!fig12::table(&rows).to_text().is_empty());
}

#[test]
fn fig13_runner_produces_rows() {
    let rows = fig13::run(&tiny(), &[1, 4]).expect("fig13 run");
    assert!(!rows.is_empty());
    assert!(!fig13::table(&rows).to_text().is_empty());
}

#[test]
fn fig14_runners_produce_points() {
    let cfg = tiny();
    let z_points = fig14::run_z_sweep(&cfg, &[8]).expect("fig14 z sweep");
    let pe_points = fig14::run_pe_sweep(&cfg, &[4]).expect("fig14 pe sweep");
    assert!(!z_points.is_empty());
    assert!(!pe_points.is_empty());
    let (zt, pt) = fig14::tables(&z_points, &pe_points);
    assert!(!zt.to_text().is_empty());
    assert!(!pt.to_text().is_empty());
}

#[test]
fn fig15_runner_produces_estimate() {
    let est = fig15::run(&tiny());
    assert!(!fig15::table(&est).to_text().is_empty());
}
