//! Integration tests for the typed experiment API: executor determinism,
//! CSV/JSON round-trips, and the parallel wall-clock win on multi-core
//! hosts.

use palermo::sim::experiment::{
    Experiment, ResultSet, RunSpec, SerialExecutor, ThreadPoolExecutor,
};
use palermo::sim::figures::fig10;
use palermo::sim::schemes::Scheme;
use palermo::sim::system::SystemConfig;
use palermo::workloads::Workload;
use std::sync::Mutex;
use std::time::Instant;

/// Serialises the tests that saturate the machine (full grids, wall-clock
/// timing) so they don't contend with each other inside the parallel test
/// harness and skew the timing comparison.
static HEAVY: Mutex<()> = Mutex::new(());

fn heavy_guard() -> std::sync::MutexGuard<'static, ()> {
    HEAVY
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn tiny() -> SystemConfig {
    let mut cfg = SystemConfig::small_for_tests();
    cfg.measured_requests = 30;
    cfg.warmup_requests = 8;
    cfg
}

fn fig10_style_grid() -> Experiment {
    Experiment::new(tiny()).schemes(Scheme::ALL).workloads([
        Workload::Mcf,
        Workload::Llm,
        Workload::Redis,
        Workload::Random,
    ])
}

#[test]
fn executors_produce_byte_identical_metrics_on_a_fixed_seed_grid() {
    let _guard = heavy_guard();
    let serial = fig10_style_grid().run(&SerialExecutor).unwrap();
    let pooled = fig10_style_grid().run(&ThreadPoolExecutor::new(4)).unwrap();
    assert_eq!(serial.len(), pooled.len());
    for (s, p) in serial.iter().zip(pooled.iter()) {
        assert_eq!(s.label, p.label);
        assert_eq!(s.scheme, p.scheme);
        assert_eq!(s.workload, p.workload);
        // Full metric equality, not just the scalar summaries.
        assert_eq!(
            s.metrics.oram_requests, p.metrics.oram_requests,
            "{}",
            s.label
        );
        assert_eq!(s.metrics.workload_accesses, p.metrics.workload_accesses);
        assert_eq!(s.metrics.dummy_requests, p.metrics.dummy_requests);
        assert_eq!(s.metrics.cycles, p.metrics.cycles, "{}", s.label);
        assert_eq!(s.metrics.latencies, p.metrics.latencies, "{}", s.label);
        assert_eq!(s.metrics.behaviour_latency, p.metrics.behaviour_latency);
        assert_eq!(s.metrics.stash_high_water, p.metrics.stash_high_water);
        assert_eq!(s.metrics.sync_stall_cycles, p.metrics.sync_stall_cycles);
        assert_eq!(s.metrics.dram.reads, p.metrics.dram.reads);
        assert_eq!(s.metrics.dram.writes, p.metrics.dram.writes);
    }
    // The rendered exports are byte-identical too.
    assert_eq!(serial.to_csv(), pooled.to_csv());
    assert_eq!(serial.to_json(), pooled.to_json());
}

#[test]
fn figure_runners_are_executor_agnostic() {
    let _guard = heavy_guard();
    let cfg = tiny();
    let workloads = [Workload::Random];
    let schemes = [Scheme::PathOram, Scheme::RingOram, Scheme::Palermo];
    let serial = fig10::run(&cfg, &workloads, &schemes).unwrap();
    let pooled = fig10::run_with(&cfg, &workloads, &schemes, &ThreadPoolExecutor::new(3)).unwrap();
    assert_eq!(serial.speedup, pooled.speedup);
    assert_eq!(
        fig10::table(&serial).to_csv(),
        fig10::table(&pooled).to_csv()
    );
}

#[test]
fn csv_export_round_trips() {
    let set = Experiment::new(tiny())
        .schemes([Scheme::PathOram, Scheme::Palermo])
        .workloads([Workload::Random, Workload::Llm])
        .run(&SerialExecutor)
        .unwrap();
    let csv = set.to_csv();
    let parsed = ResultSet::parse_csv(&csv).expect("well-formed CSV");
    assert_eq!(parsed, set.summaries());
    // A second render from nothing but the parsed values is identical.
    let rerendered: Vec<String> = parsed.iter().map(|s| s.to_csv_row()).collect();
    let original: Vec<&str> = csv.lines().skip(1).collect();
    assert_eq!(rerendered, original);
}

#[test]
fn json_export_round_trips() {
    let set = Experiment::new(tiny())
        .schemes([Scheme::RingOram])
        .workloads([Workload::Redis])
        .sweep_prefetch([1, 4])
        .run(&SerialExecutor)
        .unwrap();
    let parsed = ResultSet::parse_json(&set.to_json()).expect("well-formed JSON");
    assert_eq!(parsed, set.summaries());
    assert_eq!(parsed.len(), 2);
    assert!(parsed[0].label.ends_with("pf=1"));
}

#[test]
fn custom_labelled_specs_survive_export() {
    let spec =
        RunSpec::new(Scheme::Palermo, Workload::Random, tiny()).with_label("tuned, with commas");
    let set = Experiment::new(tiny())
        .spec(spec)
        .run(&SerialExecutor)
        .unwrap();
    let parsed = ResultSet::parse_csv(&set.to_csv()).unwrap();
    // CSV sanitises the comma; JSON preserves the label exactly.
    assert_eq!(parsed[0].label, "tuned; with commas");
    let parsed = ResultSet::parse_json(&set.to_json()).unwrap();
    assert_eq!(parsed[0].label, "tuned, with commas");
}

/// The wall-clock acceptance check: on a multi-core host the thread pool
/// must finish the Fig. 10-style grid at least 2x faster than the serial
/// executor, with identical metrics. Skipped (trivially passing) on hosts
/// with fewer than four cores, where the comparison is meaningless.
#[test]
fn thread_pool_halves_wall_clock_on_multicore_hosts() {
    let _guard = heavy_guard();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores < 4 {
        eprintln!("skipping wall-clock comparison: only {cores} core(s) available");
        return;
    }
    let started = Instant::now();
    let serial = fig10_style_grid().run(&SerialExecutor).unwrap();
    let serial_wall = started.elapsed();

    let started = Instant::now();
    let pooled = fig10_style_grid()
        .run(&ThreadPoolExecutor::with_available_parallelism())
        .unwrap();
    let pooled_wall = started.elapsed();

    assert_eq!(serial.to_csv(), pooled.to_csv(), "executors diverged");
    let speedup = serial_wall.as_secs_f64() / pooled_wall.as_secs_f64().max(1e-9);
    assert!(
        speedup >= 2.0,
        "thread pool speedup {speedup:.2}x < 2x on {cores} cores \
(serial {serial_wall:.2?}, pooled {pooled_wall:.2?})"
    );
}
