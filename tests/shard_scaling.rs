//! Integration tests for the sharded scale-out: byte-identical metrics
//! between serial and pooled shard stepping over a K x scheme grid,
//! executor-independence of sharded runs through the experiment layer,
//! conservation of the per-shard/per-tenant attribution, and the pooled
//! wall-clock win on multi-core hosts.

use palermo::sim::experiment::{Experiment, SerialExecutor, ThreadPoolExecutor};
use palermo::sim::runner::{EventStepper, RunMetrics};
use palermo::sim::schemes::Scheme;
use palermo::sim::shard::{PooledShardStepper, SerialShardStepper, ShardStepper, ShardedSystem};
use palermo::sim::system::SystemConfig;
use palermo::workloads::WorkloadSpec;
use std::sync::Mutex;
use std::time::Instant;

/// Serialises the tests that saturate the machine (pool runs, wall-clock
/// timing) so they don't contend inside the parallel test harness.
static HEAVY: Mutex<()> = Mutex::new(());

fn heavy_guard() -> std::sync::MutexGuard<'static, ()> {
    HEAVY
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn tiny() -> SystemConfig {
    let mut cfg = SystemConfig::small_for_tests();
    cfg.measured_requests = 24;
    cfg.warmup_requests = 8;
    cfg
}

fn sharded_metrics(scheme: Scheme, name: &str, stepper: &dyn ShardStepper) -> RunMetrics {
    let spec = WorkloadSpec::from_name(name).unwrap();
    let system = ShardedSystem::new(scheme, &spec, &tiny()).unwrap();
    stepper.run(&system, &EventStepper).unwrap()
}

#[test]
fn pooled_stepping_is_byte_identical_to_serial_over_the_grid() {
    let _guard = heavy_guard();
    let pool = PooledShardStepper::new(4);
    for scheme in [Scheme::RingOram, Scheme::Palermo] {
        for k in [1u32, 2, 4] {
            let name = format!("shard:{k}:hash:random");
            let serial = sharded_metrics(scheme, &name, &SerialShardStepper);
            let pooled = sharded_metrics(scheme, &name, &pool);
            assert_eq!(
                serial, pooled,
                "serial and pooled shard stepping diverged at {scheme:?} {name}"
            );
            assert_eq!(serial.per_shard.len(), k as usize);
            assert!(serial.shard_conservation_ok(), "{scheme:?} {name}");
            assert!(serial.tenant_conservation_ok(), "{scheme:?} {name}");
        }
    }
}

#[test]
fn per_shard_attribution_sums_to_the_aggregates() {
    let metrics = sharded_metrics(
        Scheme::Palermo,
        "shard:4:hash:mix:rr:mcf+random+redis",
        &SerialShardStepper,
    );
    assert!(metrics.shard_conservation_ok());
    assert!(metrics.tenant_conservation_ok());
    let per = &metrics.per_shard;
    assert_eq!(per.len(), 4);
    assert_eq!(
        per.iter().map(|s| s.oram_requests).sum::<u64>(),
        metrics.oram_requests
    );
    assert_eq!(
        per.iter().map(|s| s.workload_accesses).sum::<u64>(),
        metrics.workload_accesses
    );
    assert_eq!(
        per.iter().map(|s| s.cycles).max().unwrap_or(0),
        metrics.cycles,
        "makespan must be the slowest shard"
    );
    // Hash routing scatters every tenant across all shards, so tenant
    // attribution must survive the cross-shard merge and still add up.
    assert_eq!(metrics.per_tenant.len(), 3);
    assert_eq!(
        metrics.per_tenant.iter().map(|t| t.completed).sum::<u64>(),
        metrics.oram_requests
    );
}

#[test]
fn open_loop_sharded_runs_conserve_arrivals() {
    let metrics = sharded_metrics(
        Scheme::Palermo,
        "open:poisson:0.01:shard:2:range:random",
        &SerialShardStepper,
    );
    assert!(metrics.shard_conservation_ok());
    assert!(metrics.arrival_conservation_ok());
    assert!(metrics.arrivals > 0, "open-loop run must observe arrivals");
    assert_eq!(
        metrics.per_shard.iter().map(|s| s.arrivals).sum::<u64>(),
        metrics.arrivals
    );
    assert_eq!(
        metrics
            .per_shard
            .iter()
            .map(|s| s.dropped_arrivals)
            .sum::<u64>(),
        metrics.dropped_arrivals
    );
}

#[test]
fn sharded_specs_run_identically_under_both_executors() {
    let _guard = heavy_guard();
    let grid = || {
        Experiment::new(tiny())
            .schemes([Scheme::RingOram, Scheme::Palermo])
            .workload_specs([
                WorkloadSpec::from_name("shard:4:hash:random").unwrap(),
                WorkloadSpec::from_name("shard:2:tenant:mix:rr:mcf+redis").unwrap(),
            ])
    };
    let serial = grid().run(&SerialExecutor).unwrap();
    let pooled = grid().run(&ThreadPoolExecutor::new(4)).unwrap();
    assert_eq!(serial.to_csv(), pooled.to_csv());
    assert_eq!(serial.to_shard_csv(), pooled.to_shard_csv());
    for (s, p) in serial.records().iter().zip(pooled.records()) {
        assert_eq!(
            s.metrics, p.metrics,
            "{} diverged across executors",
            s.label
        );
        assert!(s.metrics.shard_conservation_ok(), "{}", s.label);
    }
}

#[test]
fn pooled_shards_beat_serial_wall_clock_on_multicore_hosts() {
    let _guard = heavy_guard();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores < 4 {
        eprintln!("skipping shard wall-clock check: only {cores} core(s)");
        return;
    }
    let mut cfg = SystemConfig::small_for_tests();
    cfg.measured_requests = 1200;
    cfg.warmup_requests = 100;
    let spec = WorkloadSpec::from_name("shard:4:hash:mcf").unwrap();
    let system = ShardedSystem::new(Scheme::Palermo, &spec, &cfg).unwrap();

    let started = Instant::now();
    let serial = ShardStepper::run(&SerialShardStepper, &system, &EventStepper).unwrap();
    let serial_wall = started.elapsed();

    let started = Instant::now();
    let pooled = ShardStepper::run(&PooledShardStepper::new(4), &system, &EventStepper).unwrap();
    let pooled_wall = started.elapsed();

    assert_eq!(
        serial, pooled,
        "wall-clock comparison must not change results"
    );
    let speedup = serial_wall.as_secs_f64() / pooled_wall.as_secs_f64().max(1e-9);
    assert!(
        speedup >= 1.5,
        "pooled shard stepping speedup {speedup:.2}x < 1.5x on {cores} cores \
         (serial {serial_wall:?}, pooled {pooled_wall:?})"
    );
}
