//! Integration tests for the security-relevant properties of the protocol
//! layer: leaf-selection uniformity, address remapping on every access, and
//! the isolation of response latencies (mutual information ≈ 0).

use palermo::analysis::mutual_info::estimate_from_samples;
use palermo::oram::crypto::Payload;
use palermo::oram::hierarchy::{HierarchicalOram, HierarchyConfig, ProtocolFlavor};
use palermo::oram::params::{HierarchyParams, OramParams};
use palermo::oram::types::{OramOp, PhysAddr, SubOram};
use palermo::oram::validate::{leaf_uniformity, plan_addresses_within, request_ids_monotonic};
use palermo::oram::PhaseKind;
use palermo::sim::runner::run_workload;
use palermo::sim::schemes::Scheme;
use palermo::sim::system::SystemConfig;
use palermo::workloads::Workload;

fn small_oram(flavor: ProtocolFlavor) -> HierarchicalOram {
    let data = OramParams::builder()
        .z(8)
        .s(12)
        .a(8)
        .num_blocks(1 << 14)
        .build()
        .unwrap();
    let params = HierarchyParams::derive(data, 4, 2).unwrap();
    let mut cfg = HierarchyConfig::paper_default(flavor).unwrap();
    cfg.params = params;
    HierarchicalOram::new(cfg).unwrap()
}

#[test]
fn repeated_accesses_to_one_address_touch_uniform_leaves() {
    // The DRAM-visible addresses of the data-level ReadPath depend only on
    // the (re)mapped leaf; hammering a single PA must therefore produce a
    // leaf-level bucket sequence indistinguishable from uniform. The
    // leaf-level bucket is recovered from the deepest address of each
    // ReadPath using the known bucket layout (metadata block + Z+S slots).
    let mut oram = small_oram(ProtocolFlavor::Palermo);
    let params = oram.config().params.data;
    let num_leaves = params.num_leaves;
    let bucket_stride = params.bucket_bytes();
    let first_leaf_node = num_leaves - 1; // level-order id of the first leaf-level node
    let mut observed = Vec::new();
    for _ in 0..6000 {
        let res = oram
            .access(PhysAddr::new(0x40), OramOp::Read, None)
            .unwrap();
        let rp = res.plan.node(SubOram::Data, PhaseKind::ReadPath).unwrap();
        let deepest = *rp.reads.iter().max().unwrap();
        let node = deepest / bucket_stride; // data tree starts at DRAM base 0
        let leaf = node.saturating_sub(first_leaf_node) % num_leaves;
        // Bin into 256 groups so every chi-square bin has a healthy expected
        // count; a uniform leaf distribution stays uniform under `% 256`.
        observed.push(palermo::oram::LeafId(leaf % 256));
    }
    let report = leaf_uniformity(&observed, 256);
    assert!(
        report.looks_uniform(),
        "leaf selection is biased: chi2 = {:.1} over 256 bins",
        report.chi_square
    );
}

#[test]
fn address_is_remapped_on_every_access() {
    // Accessing the same PA twice must not read the same data-level path
    // (except with probability 1/num_leaves).
    let mut oram = small_oram(ProtocolFlavor::RingOram);
    let mut identical = 0;
    let mut previous: Option<Vec<u64>> = None;
    for _ in 0..200 {
        let res = oram
            .access(PhysAddr::new(0x1000), OramOp::Read, None)
            .unwrap();
        let reads = res
            .plan
            .node(SubOram::Data, PhaseKind::ReadPath)
            .unwrap()
            .reads
            .clone();
        if previous.as_ref() == Some(&reads) {
            identical += 1;
        }
        previous = Some(reads);
    }
    assert!(
        identical < 10,
        "path repeated {identical}/200 times; remapping is broken"
    );
}

#[test]
fn plans_stay_within_the_tree_regions_and_are_ordered() {
    let mut oram = small_oram(ProtocolFlavor::Palermo);
    let total_footprint = oram.config().params.total_tree_bytes() * 4;
    let mut plans = Vec::new();
    for i in 0..100u64 {
        let res = oram
            .access(PhysAddr::new((i * 64) % (1 << 20)), OramOp::Read, None)
            .unwrap();
        assert!(
            plan_addresses_within(&res.plan, 0, total_footprint),
            "plan {i} escapes the DRAM region"
        );
        assert!(res.plan.is_well_formed());
        plans.push(res.plan);
    }
    assert!(request_ids_monotonic(&plans));
}

#[test]
fn write_data_is_unreadable_without_the_protocol() {
    // The payload stored for a block is only returned through the protocol;
    // a different address must never alias it.
    let mut oram = small_oram(ProtocolFlavor::Palermo);
    oram.access(
        PhysAddr::new(0x2000),
        OramOp::Write,
        Some(Payload::from_u64(777)),
    )
    .unwrap();
    let other = oram
        .access(PhysAddr::new(0x4000), OramOp::Read, None)
        .unwrap();
    assert!(other.value.is_none());
    let same = oram
        .access(PhysAddr::new(0x2000), OramOp::Read, None)
        .unwrap();
    assert_eq!(same.value.unwrap().as_u64(), 777);
}

#[test]
fn timing_channel_mutual_information_is_small_end_to_end() {
    let mut cfg = SystemConfig::small_for_tests();
    cfg.measured_requests = 120;
    cfg.warmup_requests = 30;
    let m = run_workload(Scheme::Palermo, Workload::Redis, &cfg).unwrap();
    let samples: Vec<(bool, f64)> = m
        .behaviour_latency
        .iter()
        .map(|&(b, l)| (b, l as f64))
        .collect();
    if let Some((_, mi)) = estimate_from_samples(&samples) {
        assert!(mi < 0.25, "timing channel leaks {mi} bits at small scale");
    }
}
