//! Determinism and conservation sweep for per-tenant metric attribution.
//!
//! The per-tenant vectors in `RunMetrics` must be (a) conservation-checked
//! — per-tenant submitted/completed/accesses/latency sums equal the
//! aggregates on every run — and (b) *deterministic to the byte*: the
//! serial and thread-pool executors, and the event-driven and per-cycle
//! reference steppers, must produce identical `per_tenant` vectors
//! (including the fixed-bucket latency histograms) across a mix × scheme
//! grid.

use palermo::sim::experiment::{Experiment, SerialExecutor, ThreadPoolExecutor};
use palermo::sim::runner::{run_workload_spec_stepped, EventStepper, ReferenceStepper};
use palermo::sim::schemes::Scheme;
use palermo::sim::system::SystemConfig;
use palermo::workloads::{MixSpec, PhaseWindow, PhasedMixSpec, Workload, WorkloadSpec};

fn tiny() -> SystemConfig {
    let mut cfg = SystemConfig::small_for_tests();
    cfg.measured_requests = 25;
    cfg.warmup_requests = 5;
    cfg.llc.capacity_bytes = 64 << 10;
    cfg
}

/// The mix kinds under test: flat WRR, Zipf-selected, and phased with
/// arrival + departure.
fn mix_specs() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec::Mix(
            MixSpec::round_robin()
                .tenant(Workload::Redis.into(), 2)
                .tenant(Workload::Llm.into(), 1)
                .tenant(Workload::Streaming.into(), 1),
        ),
        WorkloadSpec::Mix(
            MixSpec::zipf(0.9)
                .tenant(Workload::Redis.into(), 1)
                .tenant(Workload::Random.into(), 1)
                .tenant(Workload::Mcf.into(), 1),
        ),
        WorkloadSpec::PhasedMix(
            PhasedMixSpec::new()
                .tenant(Workload::Redis.into(), 2, PhaseWindow::ALWAYS)
                .tenant(Workload::Llm.into(), 1, PhaseWindow::from_start(40))
                .tenant(Workload::Streaming.into(), 1, PhaseWindow::until(120)),
        ),
    ]
}

const SCHEMES: [Scheme; 3] = [Scheme::RingOram, Scheme::Palermo, Scheme::PathOram];

#[test]
fn per_tenant_counts_sum_exactly_to_the_aggregates() {
    let cfg = tiny();
    let results = Experiment::new(cfg)
        .schemes(SCHEMES)
        .workload_specs(mix_specs())
        .run(&SerialExecutor)
        .unwrap();
    assert_eq!(results.len(), SCHEMES.len() * mix_specs().len());
    for record in &results {
        let m = &record.metrics;
        assert_eq!(
            m.per_tenant.len(),
            record.workload.tenant_count(),
            "{}: one entry per tenant",
            record.label
        );
        assert!(m.tenant_conservation_ok(), "{}", record.label);
        // Spell the key sums out so a failure names the broken quantity.
        let completed: u64 = m.per_tenant.iter().map(|t| t.completed).sum();
        assert_eq!(completed, m.oram_requests, "{} completed", record.label);
        let submitted: u64 = m.per_tenant.iter().map(|t| t.submitted).sum();
        assert_eq!(
            submitted, m.submitted_requests,
            "{} submitted",
            record.label
        );
        let accesses: u64 = m.per_tenant.iter().map(|t| t.workload_accesses).sum();
        assert_eq!(accesses, m.workload_accesses, "{} accesses", record.label);
        let latency: u64 = m.per_tenant.iter().map(|t| t.latency.sum()).sum();
        assert_eq!(
            latency,
            m.latencies.iter().sum::<u64>(),
            "{} latency sum",
            record.label
        );
        // DRAM demand shares partition the attributed traffic.
        let share: f64 = (0..m.per_tenant.len())
            .map(|i| m.tenant_dram_share(i))
            .sum();
        assert!(
            (share - 1.0).abs() < 1e-12,
            "{} shares: {share}",
            record.label
        );
    }
}

#[test]
fn per_tenant_metrics_are_byte_identical_across_executors() {
    let cfg = tiny();
    let grid = |executor: &dyn palermo::sim::experiment::Executor| {
        Experiment::new(cfg.clone())
            .schemes(SCHEMES)
            .workload_specs(mix_specs())
            .run(executor)
            .unwrap()
    };
    let serial = grid(&SerialExecutor);
    let pooled = grid(&ThreadPoolExecutor::new(4));
    assert_eq!(serial.len(), pooled.len());
    for (a, b) in serial.iter().zip(pooled.iter()) {
        assert_eq!(a.label, b.label);
        // Full-metrics equality covers the per-tenant vectors including the
        // histogram buckets; assert the vectors separately first so a
        // failure points at the attribution layer.
        assert_eq!(
            a.metrics.per_tenant, b.metrics.per_tenant,
            "{} per-tenant attribution diverged across executors",
            a.label
        );
        assert_eq!(a.metrics, b.metrics, "{}", a.label);
    }
    // The flattened per-tenant export is identical too.
    assert_eq!(serial.to_tenant_csv(), pooled.to_tenant_csv());
    assert_eq!(serial.to_tenant_json(), pooled.to_tenant_json());
}

#[test]
fn per_tenant_metrics_are_byte_identical_across_steppers() {
    let cfg = tiny();
    for spec in mix_specs() {
        for scheme in SCHEMES {
            let reference =
                run_workload_spec_stepped(scheme, &spec, &cfg, &ReferenceStepper).unwrap();
            let event = run_workload_spec_stepped(scheme, &spec, &cfg, &EventStepper).unwrap();
            assert_eq!(
                reference.per_tenant, event.per_tenant,
                "{scheme}/{spec}: per-tenant attribution diverged across steppers"
            );
            assert_eq!(reference, event, "{scheme}/{spec}");
        }
    }
}

#[test]
fn phased_tenants_outside_their_window_stay_empty() {
    let cfg = tiny();
    // Tenant 1's window opens far beyond anything a 30-request run can
    // consume: it must end the run with zero attribution everywhere.
    let spec = WorkloadSpec::PhasedMix(
        PhasedMixSpec::new()
            .tenant(Workload::Redis.into(), 1, PhaseWindow::ALWAYS)
            .tenant(
                Workload::Llm.into(),
                1,
                PhaseWindow::from_start(1_000_000_000),
            ),
    );
    for scheme in [Scheme::RingOram, Scheme::Palermo] {
        let m = run_workload_spec_stepped(scheme, &spec, &cfg, &EventStepper).unwrap();
        assert!(m.tenant_conservation_ok());
        let late = &m.per_tenant[1];
        assert_eq!(
            (
                late.submitted,
                late.completed,
                late.workload_accesses,
                late.dram_ops
            ),
            (0, 0, 0, 0),
            "{scheme}: dormant tenant was served"
        );
        assert_eq!(late.latency.count(), 0);
        assert_eq!(m.per_tenant[0].completed, m.oram_requests);
    }
}
