//! Integration test pinning the default system configuration to Table III
//! of the paper, so accidental changes to the modelled system are caught.

use palermo::controller::area_power::ControllerProvisioning;
use palermo::dram::DramConfig;
use palermo::sim::system::SystemConfig;

#[test]
fn system_defaults_match_table_iii() {
    let cfg = SystemConfig::paper_default();

    // Protected memory space: 16 GB of user data.
    assert_eq!(cfg.protected_bytes, 16 << 30);

    // ORAM parameters adopted by Palermo: (Z, S, A) = (16, 27, 20).
    assert_eq!((cfg.z, cfg.s, cfg.a), (16, 27, 20));

    // PE layout: 3 rows x 8 columns.
    assert_eq!(cfg.pe_columns, 8);
    let prov = ControllerProvisioning::default();
    assert_eq!(prov.pe_rows, 3);
    assert_eq!(prov.pe_columns, 8);

    // On-chip provisioning: 3 x 256 KB tree-top cache, 16 MB PosMap3,
    // 3 x 16 KB stash.
    assert_eq!(prov.treetop_bytes, 3 * 256 * 1024);
    assert_eq!(prov.posmap3_bytes, 16 << 20);
    assert_eq!(prov.stash_bytes, 3 * 16 * 1024);
    assert_eq!(cfg.stash_capacity, 256);

    // Outsourced DRAM: 4-channel DDR4-3200 at 102.4 GB/s peak.
    assert_eq!(cfg.dram, DramConfig::ddr4_3200_quad_channel());
    assert!((cfg.dram.peak_gbps() - 102.4).abs() < 0.1);

    // LLC: 8 MB, 16-way.
    assert_eq!(cfg.llc.capacity_bytes, 8 << 20);
    assert_eq!(cfg.llc.ways, 16);
}

#[test]
fn hierarchy_sizes_follow_the_recursion_of_fig_2() {
    let cfg = SystemConfig::paper_default();
    let params = cfg.hierarchy_params().unwrap();
    // 16 GiB / 64 B = 2^28 blocks; a 4-byte entry per block gives a 1 GiB
    // PosMap1 and a 64 MiB PosMap2; PosMap3 then fits on chip.
    assert_eq!(params.data.num_blocks, 1 << 28);
    assert_eq!(params.pos1.num_blocks, 1 << 24);
    assert_eq!(params.pos2.num_blocks, 1 << 20);
    let posmap3_bytes = params.pos2.num_blocks * u64::from(params.posmap_entry_bytes);
    assert!(posmap3_bytes <= 16 << 20);
    // Three levels of sub-ORAM trees, 25/21/17 levels deep respectively.
    assert_eq!(params.data.levels, 25);
    assert_eq!(params.pos1.levels, 21);
    assert_eq!(params.pos2.levels, 17);
}

#[test]
fn area_power_estimate_is_in_the_published_ballpark() {
    let est = palermo::controller::estimate(&ControllerProvisioning::default());
    assert!(
        (est.total_area_mm2() - 5.78).abs() < 1.5,
        "{}",
        est.total_area_mm2()
    );
    assert!(
        (est.total_power_w() - 2.14).abs() < 0.8,
        "{}",
        est.total_power_w()
    );
}
