//! Capture → replay equivalence: freezing a generator into a `PTRC` trace
//! and replaying it must be indistinguishable from running the generator.
//!
//! Two levels are pinned:
//!
//! * **Stream level** — the captured entries are exactly the generator's
//!   prefix, and the looping replay reproduces them in order;
//! * **Simulation level** — a run driven by the replay produces
//!   `RunMetrics` identical to the generator-driven run (only the workload
//!   label differs), provided the capture is at least as long as the run's
//!   access consumption.

use palermo::sim::runner::run_workload_spec;
use palermo::sim::schemes::Scheme;
use palermo::sim::system::SystemConfig;
use palermo::workloads::{capture, CaptureEncoding, Workload, WorkloadSpec};
use std::path::PathBuf;

fn tiny() -> SystemConfig {
    let mut cfg = SystemConfig::small_for_tests();
    cfg.measured_requests = 25;
    cfg.warmup_requests = 5;
    cfg.llc.capacity_bytes = 64 << 10;
    cfg
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("palermo_capture_replay_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Comfortably more accesses than a 30-request run consumes, so the
/// looping replay never wraps around inside the measured run.
const CAPTURE_ACCESSES: usize = 200_000;

#[test]
fn captured_stream_replays_the_generator_prefix() {
    let cfg = tiny();
    let spec = WorkloadSpec::from(Workload::Mcf);
    let path = temp_path("mcf_prefix.ptrc");
    let replay = capture::capture_to_file(
        &spec,
        5000,
        cfg.stream_footprint_hint(),
        cfg.stream_seed(),
        &path,
        CaptureEncoding::Binary,
    )
    .unwrap();
    let mut direct = spec
        .build(cfg.stream_footprint_hint(), cfg.stream_seed())
        .unwrap();
    let mut replayed = replay.build(0, 0).unwrap();
    for i in 0..5000 {
        assert_eq!(
            replayed.next_access(),
            direct.next_access(),
            "diverged at access {i}"
        );
    }
    // ... and the replay loops back to the first captured access.
    let mut fresh = spec
        .build(cfg.stream_footprint_hint(), cfg.stream_seed())
        .unwrap();
    assert_eq!(replayed.next_access(), fresh.next_access());
}

#[test]
fn replaying_a_capture_reproduces_the_run_metrics() {
    let cfg = tiny();
    for (workload, scheme, encoding, file) in [
        (
            Workload::Mcf,
            Scheme::Palermo,
            CaptureEncoding::Binary,
            "mcf.ptrc",
        ),
        (
            Workload::Redis,
            Scheme::RingOram,
            CaptureEncoding::Text,
            "redis.trace",
        ),
        (
            Workload::Random,
            Scheme::PathOram,
            CaptureEncoding::Binary,
            "random.ptrc",
        ),
    ] {
        let spec = WorkloadSpec::from(workload);
        let replay = capture::capture_to_file(
            &spec,
            CAPTURE_ACCESSES,
            cfg.stream_footprint_hint(),
            cfg.stream_seed(),
            temp_path(file),
            encoding,
        )
        .unwrap();
        let direct = run_workload_spec(scheme, &spec, &cfg).unwrap();
        let mut replayed = run_workload_spec(scheme, &replay, &cfg).unwrap();
        // Only the workload label may differ: align it and require
        // everything else — cycles, every latency, DRAM stats, the
        // per-tenant vector (both are single-tenant) — to be identical.
        assert_ne!(replayed.workload, direct.workload);
        replayed.workload = direct.workload.clone();
        assert_eq!(replayed, direct, "{scheme}/{workload} diverged via {file}");
    }
}

#[test]
fn capture_respects_prefetch_defaults_mismatch() {
    // Replays default to prefetch length 1 while Table II workloads carry
    // their paper-calibrated defaults, so a prefetch-capable scheme run
    // must pin the length explicitly for the equivalence to hold.
    let mut cfg = tiny();
    cfg.prefetch_override = Some(4);
    let spec = WorkloadSpec::from(Workload::Streaming);
    let replay = capture::capture_to_file(
        &spec,
        CAPTURE_ACCESSES,
        cfg.stream_footprint_hint(),
        cfg.stream_seed(),
        temp_path("stream.ptrc"),
        CaptureEncoding::Binary,
    )
    .unwrap();
    let direct = run_workload_spec(Scheme::PalermoPrefetch, &spec, &cfg).unwrap();
    let mut replayed = run_workload_spec(Scheme::PalermoPrefetch, &replay, &cfg).unwrap();
    assert_eq!(replayed.prefetch_length, direct.prefetch_length);
    replayed.workload = direct.workload.clone();
    assert_eq!(replayed, direct);
}
