//! Integration tests for the open workload surface: trace replay and
//! multi-tenant mixes driven end to end through `run_workload_spec` and the
//! `Experiment` grid — determinism across executors and steppers, spec-name
//! round-trips through CSV/JSON, and export robustness for hostile labels.

use palermo::sim::experiment::{
    Experiment, ResultSet, RunSpec, SerialExecutor, ThreadPoolExecutor,
};
use palermo::sim::runner::{run_workload_spec, run_workload_spec_stepped};
use palermo::sim::runner::{EventStepper, ReferenceStepper};
use palermo::sim::schemes::Scheme;
use palermo::sim::system::SystemConfig;
use palermo::workloads::{format, MixSpec, TraceEntry, Workload, WorkloadSpec};
use std::path::PathBuf;

/// A shrunken configuration whose LLC (64 KiB) is much smaller than the
/// trace/mix footprints, so looping replays keep missing and every run
/// forms its full request budget.
fn tiny() -> SystemConfig {
    let mut cfg = SystemConfig::small_for_tests();
    cfg.measured_requests = 25;
    cfg.warmup_requests = 5;
    cfg.llc.capacity_bytes = 64 << 10;
    cfg
}

/// Writes a deterministic 6000-access trace (~4096 distinct lines, 12.5 %
/// writes) in the given encoding and returns its replay spec.
fn recorded_trace(name: &str, binary: bool) -> WorkloadSpec {
    let entries: Vec<TraceEntry> = (0..6000u64)
        .map(|i| {
            // A strided sweep over 4096 lines: always misses a 1024-line LLC.
            let addr = (i % 4096) * 64 + (i % 7) * 8;
            if i % 8 == 0 {
                TraceEntry::write(addr)
            } else {
                TraceEntry::read(addr)
            }
        })
        .collect();
    let path: PathBuf = std::env::temp_dir().join(name);
    if binary {
        format::save_binary(&path, &entries).unwrap();
    } else {
        format::save_text(&path, &entries).unwrap();
    }
    WorkloadSpec::replay(path.display().to_string())
}

fn four_tenant_mix() -> WorkloadSpec {
    WorkloadSpec::Mix(
        MixSpec::round_robin()
            .tenant(Workload::Redis.into(), 2)
            .tenant(Workload::Llm.into(), 1)
            .tenant(Workload::Streaming.into(), 1)
            .tenant(Workload::Random.into(), 1),
    )
}

#[test]
fn trace_replay_runs_end_to_end() {
    let cfg = tiny();
    let spec = recorded_trace("palermo_ws_e2e.trace", false);
    let m = run_workload_spec(Scheme::Palermo, &spec, &cfg).unwrap();
    assert_eq!(m.oram_requests, cfg.measured_requests);
    assert_eq!(m.latencies.len(), cfg.measured_requests as usize);
    assert!(m.cycles > 0);
    assert_eq!(m.workload, spec);
    assert!(m.workload.name().starts_with("replay:"));
}

#[test]
fn binary_and_text_encodings_replay_identically() {
    let cfg = tiny();
    let text = recorded_trace("palermo_ws_enc.trace", false);
    let binary = recorded_trace("palermo_ws_enc.ptrc", true);
    let mt = run_workload_spec(Scheme::Palermo, &text, &cfg).unwrap();
    let mb = run_workload_spec(Scheme::Palermo, &binary, &cfg).unwrap();
    // Same recorded accesses => byte-identical simulation, whatever the
    // on-disk encoding.
    assert_eq!(mt.cycles, mb.cycles);
    assert_eq!(mt.latencies, mb.latencies);
    assert_eq!(mt.dram, mb.dram);
}

#[test]
fn mix_runs_end_to_end_and_is_seed_deterministic() {
    let cfg = tiny();
    let spec = four_tenant_mix();
    let a = run_workload_spec(Scheme::Palermo, &spec, &cfg).unwrap();
    let b = run_workload_spec(Scheme::Palermo, &spec, &cfg).unwrap();
    assert_eq!(a.oram_requests, cfg.measured_requests);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.latencies, b.latencies);
    assert_eq!(a.behaviour_latency, b.behaviour_latency);
    let mut other_seed = cfg;
    other_seed.seed ^= 0xDEAD;
    let c = run_workload_spec(Scheme::Palermo, &spec, &other_seed).unwrap();
    assert_ne!(
        (a.cycles, a.latencies.clone()),
        (c.cycles, c.latencies.clone()),
        "a different seed should produce a different run"
    );
}

#[test]
fn built_streams_are_prefix_deterministic() {
    let specs = [
        four_tenant_mix(),
        WorkloadSpec::Mix(
            MixSpec::zipf(0.9)
                .tenant(Workload::Redis.into(), 1)
                .tenant(Workload::Random.into(), 1),
        ),
        recorded_trace("palermo_ws_prefix.trace", true),
    ];
    for spec in specs {
        let mut a = spec.build(16 << 20, 42).unwrap();
        let mut b = spec.build(16 << 20, 42).unwrap();
        for i in 0..10_000 {
            assert_eq!(a.next_access(), b.next_access(), "{spec} diverged at {i}");
        }
        assert_eq!(a.footprint_bytes(), b.footprint_bytes());
    }
}

#[test]
fn spec_grid_is_byte_identical_across_executors() {
    let grid = || {
        Experiment::new(tiny())
            .schemes([Scheme::RingOram, Scheme::Palermo])
            .workload_specs([
                four_tenant_mix(),
                recorded_trace("palermo_ws_grid.trace", false),
            ])
    };
    let serial = grid().run(&SerialExecutor).unwrap();
    let pooled = grid().run(&ThreadPoolExecutor::new(4)).unwrap();
    assert_eq!(serial.len(), 4);
    assert_eq!(serial.len(), pooled.len());
    for (s, p) in serial.iter().zip(pooled.iter()) {
        assert_eq!(s.label, p.label);
        assert_eq!(s.workload, p.workload);
        assert_eq!(s.metrics.cycles, p.metrics.cycles, "{}", s.label);
        assert_eq!(s.metrics.latencies, p.metrics.latencies, "{}", s.label);
        assert_eq!(s.metrics.dram, p.metrics.dram, "{}", s.label);
    }
    assert_eq!(serial.to_csv(), pooled.to_csv());
    assert_eq!(serial.to_json(), pooled.to_json());
}

#[test]
fn event_stepper_matches_reference_on_new_streams() {
    let cfg = tiny();
    for spec in [
        four_tenant_mix(),
        recorded_trace("palermo_ws_stepper.trace", true),
    ] {
        for scheme in [Scheme::RingOram, Scheme::Palermo] {
            let reference =
                run_workload_spec_stepped(scheme, &spec, &cfg, &ReferenceStepper).unwrap();
            let event = run_workload_spec_stepped(scheme, &spec, &cfg, &EventStepper).unwrap();
            assert_eq!(reference, event, "{scheme:?} on {spec}");
        }
    }
}

#[test]
fn spec_names_round_trip_through_csv_and_json() {
    let set = Experiment::new(tiny())
        .schemes([Scheme::Palermo])
        .workload_specs([
            WorkloadSpec::Table2(Workload::Mcf),
            four_tenant_mix(),
            recorded_trace("palermo_ws_export.trace", false),
        ])
        .run(&SerialExecutor)
        .unwrap();
    let summaries = set.summaries();
    // The workload column is the canonical spec name in both exports.
    assert!(set
        .to_csv()
        .lines()
        .nth(2)
        .unwrap()
        .contains("mix:rr:redis*2+llm+stream+random"));
    assert_eq!(ResultSet::parse_csv(&set.to_csv()).unwrap(), summaries);
    assert_eq!(ResultSet::parse_json(&set.to_json()).unwrap(), summaries);
    // Each parsed workload is semantically the spec that produced it.
    let parsed = ResultSet::parse_json(&set.to_json()).unwrap();
    assert_eq!(parsed[1].workload, four_tenant_mix());
}

#[test]
fn hostile_labels_survive_both_exports_in_both_directions() {
    let cfg = tiny();
    let hostile = "tenant \"A\", 50%+ load, {prod}";
    let spec = RunSpec::with_workload_spec(Scheme::Palermo, four_tenant_mix(), cfg.clone())
        .with_label(hostile);
    let set = Experiment::new(cfg)
        .spec(spec)
        .run(&SerialExecutor)
        .unwrap();

    // JSON escapes quotes/commas and restores them exactly.
    let parsed = ResultSet::parse_json(&set.to_json()).unwrap();
    assert_eq!(parsed[0].label, hostile);
    assert_eq!(parsed, set.summaries());

    // CSV flattens the comma (separator) but keeps one well-formed row that
    // re-renders byte-identically from the parsed values.
    let csv = set.to_csv();
    assert_eq!(csv.lines().count(), 2);
    let parsed = ResultSet::parse_csv(&csv).unwrap();
    assert_eq!(parsed[0].label, "tenant \"A\"; 50%+ load; {prod}");
    let rerendered: Vec<String> = parsed.iter().map(|s| s.to_csv_row()).collect();
    assert_eq!(rerendered, csv.lines().skip(1).collect::<Vec<_>>());
}

#[test]
fn oversized_spec_footprints_are_rejected_instead_of_aliasing() {
    use palermo::oram::error::OramError;
    // `tiny()` protects 32 MiB.
    let cfg = tiny();
    // A trace recorded far beyond the protected region: wrapping it would
    // destroy the recorded locality, so the runner must refuse.
    let path = std::env::temp_dir().join("palermo_ws_oversized.trace");
    let entries = vec![TraceEntry::read(0), TraceEntry::read(1 << 36)];
    format::save_text(&path, &entries).unwrap();
    let replay = WorkloadSpec::replay(path.display().to_string());
    let err = run_workload_spec(Scheme::Palermo, &replay, &cfg).unwrap_err();
    assert!(
        matches!(err, OramError::InvalidParams { ref reason } if reason.contains("alias")),
        "unexpected error: {err}"
    );
    // A mix with enough tenants to outgrow the protected space: per-tenant
    // generators clamp their hint to >= 1 MiB, so 64 tenants cannot fit in
    // 32 MiB and wrapping would alias their partitions.
    let mut big = MixSpec::round_robin();
    for _ in 0..64 {
        big = big.tenant(Workload::Llm.into(), 1);
    }
    let err = run_workload_spec(Scheme::Palermo, &WorkloadSpec::Mix(big), &cfg).unwrap_err();
    assert!(
        matches!(err, OramError::InvalidParams { ref reason } if reason.contains("alias")),
        "unexpected error: {err}"
    );
}

#[test]
fn sweeps_compose_with_workload_specs() {
    // A config sweep over a mix: the open surface composes with the
    // existing Experiment dimensions (variants, prefetch, extra specs).
    let specs = Experiment::new(tiny())
        .schemes([Scheme::Palermo])
        .workload_specs([four_tenant_mix()])
        .sweep_config("pe=2", |c| c.pe_columns = 2)
        .sweep_config("pe=8", |c| c.pe_columns = 8)
        .build();
    assert_eq!(specs.len(), 2);
    assert_eq!(specs[0].config.pe_columns, 2);
    assert!(specs[0].label.ends_with("/pe=2"));
    assert!(specs[0].label.contains("mix:rr:"));
}
