//! Workspace smoke test: every `examples/` target must keep compiling.
//!
//! The 17 examples are the user-facing entry points that reproduce the
//! paper's figures; this test makes `cargo test` fail fast if any of them
//! rots, without having to execute their (much longer) full runs.

use std::process::Command;

#[test]
fn all_example_targets_compile() {
    let status = Command::new(env!("CARGO"))
        .args(["build", "--examples", "--quiet"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .status()
        .expect("failed to spawn cargo");
    assert!(status.success(), "cargo build --examples failed");
}
