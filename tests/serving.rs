//! Open-loop serving: time-skipping correctness and admission accounting.
//!
//! The sharpest regression here is the sparse-arrival case: with mean
//! inter-arrival gaps of ~a million cycles the pipeline is completely idle
//! between requests, so the event-driven stepper sees no internal wakeup —
//! if it skipped to "infinity" (or clamped to the run horizon) instead of
//! treating the next pending arrival as a wakeup source, it would jump
//! past arrivals and diverge from (or fall behind) the per-cycle reference.

use palermo::sim::runner::{run_workload_spec_stepped, EventStepper, ReferenceStepper};
use palermo::sim::schemes::Scheme;
use palermo::sim::system::SystemConfig;
use palermo::workloads::WorkloadSpec;

fn tiny() -> SystemConfig {
    let mut cfg = SystemConfig::small_for_tests();
    cfg.measured_requests = 20;
    cfg.warmup_requests = 5;
    cfg
}

/// The skip-past-arrival regression: a Poisson stream sparse enough that
/// every inter-arrival gap dwarfs the service time must still produce
/// byte-identical metrics under time skipping, for both schemes.
#[test]
fn sparse_poisson_stream_is_cycle_exact_under_time_skipping() {
    let cfg = tiny();
    // 0.001 requests per kilocycle = one arrival per ~1M cycles.
    let spec = WorkloadSpec::from_name("open:poisson:0.001:random").unwrap();
    for scheme in [Scheme::RingOram, Scheme::Palermo] {
        let reference = run_workload_spec_stepped(scheme, &spec, &cfg, &ReferenceStepper).unwrap();
        let event = run_workload_spec_stepped(scheme, &spec, &cfg, &EventStepper).unwrap();
        assert_eq!(reference, event, "{scheme}: sparse open-loop run diverged");
        // The run really did wait out the sparse gaps (rather than the
        // stepper inventing arrivals early): 20 measured requests at ~1M
        // cycles apart dwarf the closed-loop runtime of the same budget.
        assert!(
            event.cycles > 1_000_000,
            "{scheme}: {} cycles is too fast for 20 sparse arrivals",
            event.cycles
        );
        assert_eq!(event.latencies.len() as u64, cfg.measured_requests);
        assert!(event.arrival_conservation_ok());
        // Nothing queues behind a sparse stream.
        assert_eq!(event.dropped_arrivals, 0);
        assert_eq!(event.queue_waits.iter().max(), Some(&0));
    }
}

/// Bursty and diurnal arrival processes run cycle-exactly too — their
/// phase machinery (absolute phase boundaries, thinning) must not depend
/// on how often the engine is polled.
#[test]
fn modulated_arrival_processes_are_cycle_exact() {
    let cfg = tiny();
    for name in [
        "open:bursty:0.2:20000:80000:random",
        "open:diurnal:0.01:0.5:100000:random",
    ] {
        let spec = WorkloadSpec::from_name(name).unwrap();
        let reference =
            run_workload_spec_stepped(Scheme::Palermo, &spec, &cfg, &ReferenceStepper).unwrap();
        let event = run_workload_spec_stepped(Scheme::Palermo, &spec, &cfg, &EventStepper).unwrap();
        assert_eq!(reference, event, "{name} diverged across steppers");
        assert!(event.arrival_conservation_ok(), "{name}");
    }
}

/// Overload accounting: at an offered rate far above the service rate the
/// admission queue drops most arrivals, yet every completion still carries
/// exactly one queue wait and the conservation invariants hold.
#[test]
fn overload_drops_are_accounted_exactly() {
    let cfg = tiny();
    let spec = WorkloadSpec::from_name("open:poisson:10:random").unwrap();
    let metrics = run_workload_spec_stepped(Scheme::Palermo, &spec, &cfg, &EventStepper).unwrap();
    assert!(metrics.arrival_conservation_ok());
    assert!(metrics.dropped_arrivals > 0, "overload never dropped");
    assert!(metrics.drop_fraction() > 0.0 && metrics.drop_fraction() < 1.0);
    assert_eq!(metrics.queue_waits.len(), metrics.latencies.len());
    let e2e = metrics.end_to_end_latencies();
    for (i, ((&wait, &service), &total)) in metrics
        .queue_waits
        .iter()
        .zip(&metrics.latencies)
        .zip(&e2e)
        .enumerate()
    {
        assert_eq!(wait + service, total, "request {i} broke the identity");
    }
    assert!(
        metrics.achieved_rate_per_kcycle() < metrics.offered_rate_per_kcycle().unwrap(),
        "achieved throughput must plateau below a 10 req/kcycle offered rate"
    );
}
