//! Cross-crate integration tests: the full workload → LLC → protocol →
//! controller → DRAM pipeline, exercised through the facade crate.

use palermo::sim::runner::{run_all_workloads, run_workload};
use palermo::sim::schemes::Scheme;
use palermo::sim::system::SystemConfig;
use palermo::workloads::Workload;

fn tiny() -> SystemConfig {
    let mut cfg = SystemConfig::small_for_tests();
    cfg.measured_requests = 50;
    cfg.warmup_requests = 12;
    cfg
}

#[test]
fn every_scheme_completes_on_a_representative_workload() {
    let cfg = tiny();
    for scheme in Scheme::ALL {
        let m = run_workload(scheme, Workload::Mcf, &cfg).unwrap();
        assert_eq!(m.oram_requests, cfg.measured_requests, "{scheme}");
        assert_eq!(m.latencies.len() as u64, cfg.measured_requests, "{scheme}");
        assert!(m.cycles > 0, "{scheme}");
        assert!(m.dram.total_accesses() > 0, "{scheme}");
        assert!(
            m.latencies.iter().all(|&l| l > 0),
            "{scheme}: zero-latency request"
        );
    }
}

#[test]
fn co_design_speedup_ordering_holds_end_to_end() {
    // The paper's core result at small scale: Palermo > Palermo-SW >= the
    // serial RingORAM baseline, and Palermo improves bandwidth utilisation.
    let cfg = tiny();
    let ring = run_workload(Scheme::RingOram, Workload::Random, &cfg).unwrap();
    let sw = run_workload(Scheme::PalermoSw, Workload::Random, &cfg).unwrap();
    let palermo = run_workload(Scheme::Palermo, Workload::Random, &cfg).unwrap();

    let perf = |m: &palermo::sim::runner::RunMetrics| m.requests_per_cycle();
    assert!(
        perf(&palermo) > perf(&ring) * 1.2,
        "palermo {} vs ring {}",
        perf(&palermo),
        perf(&ring)
    );
    assert!(
        perf(&palermo) >= perf(&sw),
        "palermo {} vs palermo-sw {}",
        perf(&palermo),
        perf(&sw)
    );
    assert!(
        palermo.dram.bandwidth_utilization() > ring.dram.bandwidth_utilization(),
        "utilisation did not improve"
    );
}

#[test]
fn stash_bound_holds_for_palermo_across_workloads() {
    let mut cfg = tiny();
    cfg.measured_requests = 30;
    cfg.warmup_requests = 8;
    for workload in [Workload::Streaming, Workload::Llm, Workload::Random] {
        let m = run_workload(Scheme::Palermo, workload, &cfg).unwrap();
        assert!(
            m.stash_high_water <= cfg.stash_capacity,
            "{workload}: stash {} exceeded capacity {}",
            m.stash_high_water,
            cfg.stash_capacity
        );
        assert_eq!(m.dummy_requests, 0, "{workload}: Palermo needs no dummies");
    }
}

#[test]
fn all_workloads_run_under_palermo() {
    let mut cfg = tiny();
    cfg.measured_requests = 20;
    cfg.warmup_requests = 5;
    let all = run_all_workloads(Scheme::Palermo, &cfg).unwrap();
    assert_eq!(all.len(), Workload::ALL.len());
    for m in &all {
        assert_eq!(m.oram_requests, cfg.measured_requests, "{}", m.workload);
    }
}

#[test]
fn oram_traffic_is_homogenised_across_workloads() {
    // §VIII-A: applying the ORAM protocol makes bandwidth utilisation (the
    // attacker-visible traffic shape) nearly identical across workloads.
    let mut cfg = tiny();
    cfg.measured_requests = 40;
    let utils: Vec<f64> = [Workload::Streaming, Workload::Random, Workload::Llm]
        .iter()
        .map(|&w| {
            run_workload(Scheme::Palermo, w, &cfg)
                .unwrap()
                .dram
                .bandwidth_utilization()
        })
        .collect();
    let max = utils.iter().cloned().fold(f64::MIN, f64::max);
    let min = utils.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        max / min < 1.6,
        "utilisation spread too wide for oblivious traffic: {utils:?}"
    );
}

#[test]
fn prefetch_improves_high_locality_workloads_more_than_random() {
    let mut cfg = tiny();
    cfg.prefetch_override = Some(8);
    let gain = |w: Workload| {
        let plain = run_workload(Scheme::Palermo, w, &cfg).unwrap();
        let pf = run_workload(Scheme::PalermoPrefetch, w, &cfg).unwrap();
        pf.requests_per_cycle() / plain.requests_per_cycle()
    };
    let stream_gain = gain(Workload::Streaming);
    let random_gain = gain(Workload::Random);
    assert!(
        stream_gain > random_gain,
        "prefetch should help streaming ({stream_gain:.2}x) more than random ({random_gain:.2}x)"
    );
}
