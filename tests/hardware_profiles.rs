//! The hardware-profile determinism contract, end to end.
//!
//! The profile layer swaps the DRAM organisation, timing set and energy
//! coefficients underneath the whole simulator; these tests prove the swap
//! never perturbs the determinism contract: for every checked-in profile
//! and both schemes under test, [`RunMetrics`] are byte-identical across
//! both executors (serial vs. thread pool) and both steppers (event-driven
//! vs. per-cycle reference), and the DDR4-3200 profile reproduces the
//! hardcoded default configuration exactly.

use palermo::dram::{DramConfig, HardwareProfile};
use palermo::sim::experiment::{Experiment, SerialExecutor, ThreadPoolExecutor};
use palermo::sim::runner::{
    run_workload_spec_stepped, run_workload_stepped, EventStepper, ReferenceStepper,
};
use palermo::sim::schemes::Scheme;
use palermo::sim::system::SystemConfig;
use palermo::workloads::{MixSpec, Workload, WorkloadSpec};
use std::path::{Path, PathBuf};

const SCHEMES: [Scheme; 2] = [Scheme::RingOram, Scheme::Palermo];

fn profile_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("profiles")
}

/// The three checked-in profiles, loaded from `profiles/` through the real
/// file parser (not the builtins — the point is that the *files* drive the
/// simulator).
fn checked_in_profiles() -> Vec<HardwareProfile> {
    HardwareProfile::BUILTIN_NAMES
        .iter()
        .map(|name| {
            let path = profile_dir().join(format!("{name}.profile"));
            HardwareProfile::load(&path)
                .unwrap_or_else(|e| panic!("loading {}: {e}", path.display()))
        })
        .collect()
}

fn two_tenant_mix() -> WorkloadSpec {
    WorkloadSpec::Mix(
        MixSpec::round_robin()
            .tenant(Workload::Redis.into(), 2)
            .tenant(Workload::Llm.into(), 1),
    )
}

/// Per profile and scheme, the event-driven core and the per-cycle
/// reference stepper produce byte-identical metrics — the time-skip proof
/// holds for every memory technology, not just the Table III default.
#[test]
fn every_profile_is_cycle_exact_across_steppers() {
    for profile in checked_in_profiles() {
        let cfg = SystemConfig::small_for_tests().with_hardware(&profile);
        for scheme in SCHEMES {
            let reference = run_workload_stepped(scheme, Workload::Random, &cfg, &ReferenceStepper)
                .unwrap_or_else(|e| panic!("{}/{scheme} reference: {e}", profile.name));
            let event = run_workload_stepped(scheme, Workload::Random, &cfg, &EventStepper)
                .unwrap_or_else(|e| panic!("{}/{scheme} event: {e}", profile.name));
            assert_eq!(
                reference, event,
                "{}/{scheme}: RunMetrics diverged between steppers",
                profile.name
            );
            assert_eq!(reference.hardware, profile.name);
        }
    }
}

/// The stepper equivalence also holds for a multi-tenant spec, where the
/// per-tenant attribution (and therefore the per-tenant energy split)
/// rides on the same counters.
#[test]
fn every_profile_is_cycle_exact_for_tenant_attribution() {
    let spec = two_tenant_mix();
    for profile in checked_in_profiles() {
        let cfg = SystemConfig::small_for_tests().with_hardware(&profile);
        for scheme in SCHEMES {
            let reference = run_workload_spec_stepped(scheme, &spec, &cfg, &ReferenceStepper)
                .unwrap_or_else(|e| panic!("{}/{scheme} reference: {e}", profile.name));
            let event = run_workload_spec_stepped(scheme, &spec, &cfg, &EventStepper)
                .unwrap_or_else(|e| panic!("{}/{scheme} event: {e}", profile.name));
            assert_eq!(
                reference, event,
                "{}/{scheme}: per-tenant metrics diverged between steppers",
                profile.name
            );
        }
    }
}

/// The full scheme x profile grid is byte-identical between the serial
/// executor and the thread pool, including the per-tenant energy columns
/// of the export schema.
#[test]
fn profile_sweep_is_identical_across_executors() {
    let cfg = SystemConfig::small_for_tests();
    let profiles = checked_in_profiles();
    let grid = |executor: &dyn palermo::sim::experiment::Executor| {
        Experiment::new(cfg.clone())
            .schemes(SCHEMES)
            .workload_specs([two_tenant_mix()])
            .sweep_hardware(&profiles)
            .run(executor)
            .expect("grid runs")
    };
    let serial = grid(&SerialExecutor);
    let pool = grid(&ThreadPoolExecutor::with_available_parallelism());
    assert_eq!(serial.len(), SCHEMES.len() * profiles.len());
    for (s, p) in serial.iter().zip(pool.iter()) {
        assert_eq!(s.metrics, p.metrics, "{}: executors diverged", s.label);
    }
    assert_eq!(serial.to_csv(), pool.to_csv());
    assert_eq!(serial.to_tenant_csv(), pool.to_tenant_csv());
}

/// Applying the checked-in DDR4-3200 profile is a no-op: the run it
/// produces is byte-identical to the hardcoded default configuration, so
/// the declarative path cannot drift from the seed behaviour.
#[test]
fn ddr4_profile_reproduces_the_hardcoded_default_run() {
    let ddr4 = checked_in_profiles()
        .into_iter()
        .find(|p| p.name == "ddr4-3200")
        .expect("ddr4-3200 is checked in");
    assert_eq!(ddr4.dram, DramConfig::ddr4_3200_quad_channel());

    let default_cfg = SystemConfig::small_for_tests();
    let profiled_cfg = SystemConfig::small_for_tests().with_hardware(&ddr4);
    for scheme in SCHEMES {
        let default_run =
            run_workload_stepped(scheme, Workload::Redis, &default_cfg, &EventStepper)
                .expect("default run");
        let profiled_run =
            run_workload_stepped(scheme, Workload::Redis, &profiled_cfg, &EventStepper)
                .expect("profiled run");
        assert_eq!(
            default_run, profiled_run,
            "{scheme}: the DDR4-3200 profile drifted from the hardcoded default"
        );
    }
}

/// A structurally invalid DRAM configuration is rejected by the runner
/// with a typed error, never a panic.
#[test]
fn invalid_dram_configuration_is_a_typed_runner_error() {
    let mut cfg = SystemConfig::small_for_tests();
    cfg.dram.t_faw = cfg.dram.t_rrd_s; // < 4 * tRRD_S: inconsistent
    let err = run_workload_stepped(Scheme::Palermo, Workload::Random, &cfg, &EventStepper)
        .expect_err("inconsistent timing must be rejected");
    let msg = err.to_string();
    assert!(msg.contains("invalid DRAM configuration"), "{msg}");
    assert!(msg.contains("t_faw"), "{msg}");
}
