//! Property tests for the event-driven simulation core: arbitrary small
//! configurations must produce metrics byte-identical to the per-cycle
//! reference stepper, regardless of scheme, workload, warm-up window or
//! PE-mesh width.

use palermo_sim::runner::{run_workload_stepped, EventStepper, ReferenceStepper};
use palermo_sim::schemes::Scheme;
use palermo_sim::system::SystemConfig;
use palermo_workloads::Workload;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random (config, scheme, workload) triples run cycle-exactly under
    /// time skipping.
    #[test]
    fn random_configs_are_cycle_exact(
        measured in 5u64..25,
        warmup in 0u64..10,
        pe_columns in 2usize..9,
        seed in any::<u64>(),
        scheme_idx in 0usize..Scheme::ALL.len(),
        workload_idx in 0usize..Workload::ALL.len(),
    ) {
        let mut cfg = SystemConfig::small_for_tests();
        cfg.measured_requests = measured;
        cfg.warmup_requests = warmup;
        cfg.pe_columns = pe_columns;
        cfg.seed = seed;
        let scheme = Scheme::ALL[scheme_idx];
        let workload = Workload::ALL[workload_idx];

        let reference = run_workload_stepped(scheme, workload, &cfg, &ReferenceStepper);
        let event = run_workload_stepped(scheme, workload, &cfg, &EventStepper);
        match (reference, event) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            // Both steppers must agree even on failure (e.g. an all-hits
            // workload stalling), which is config- not clock-driven.
            (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
            (a, b) => prop_assert!(false, "steppers disagreed on success: {a:?} vs {b:?}"),
        }
    }
}
