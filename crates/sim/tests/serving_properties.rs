//! Property tests for the open-loop serving subsystem: admission
//! accounting, the queue-wait/service/end-to-end identity, and run-level
//! determinism must hold for arbitrary rates, capacities, policies and
//! seeds — not just the hand-picked unit-test points.

use palermo_sim::runner::{run_workload_spec_stepped, EventStepper, ReferenceStepper};
use palermo_sim::schemes::Scheme;
use palermo_sim::serving::{AdmissionPolicyKind, ServingEngine};
use palermo_sim::system::SystemConfig;
use palermo_workloads::{ArrivalSpec, OpenLoopSpec, Workload, WorkloadSpec};
use proptest::prelude::*;

fn policy(idx: usize) -> AdmissionPolicyKind {
    [
        AdmissionPolicyKind::Block,
        AdmissionPolicyKind::DropTail,
        AdmissionPolicyKind::FairDrop,
    ][idx]
}

fn open_spec(rate: f64) -> WorkloadSpec {
    WorkloadSpec::OpenLoop(OpenLoopSpec::new(
        ArrivalSpec::Poisson {
            rate_per_kcycle: rate,
        },
        Workload::Random.into(),
    ))
}

fn small(measured: u64, seed: u64, policy_idx: usize, capacity: usize) -> SystemConfig {
    let mut cfg = SystemConfig::small_for_tests();
    cfg.measured_requests = measured;
    cfg.warmup_requests = measured / 4;
    cfg.seed = seed;
    cfg.admission_policy = policy(policy_idx);
    cfg.serving_queue_capacity = capacity;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Engine-level conservation: every arrival the engine resolves is
    /// either still queued, already popped, or dropped — under any policy,
    /// capacity, rate and polling granularity.
    #[test]
    fn arrivals_split_into_popped_queued_and_dropped(
        rate_milli in 10u64..5000,
        capacity in 1usize..48,
        policy_idx in 0usize..3,
        seed in any::<u64>(),
        horizon in 10_000u64..400_000,
        pop_every in 1u64..20,
    ) {
        let spec = OpenLoopSpec::new(
            ArrivalSpec::Poisson { rate_per_kcycle: rate_milli as f64 / 1000.0 },
            Workload::Random.into(),
        );
        let mut engine = ServingEngine::new(&spec, capacity, policy(policy_idx), seed);
        let mut popped = 0u64;
        let mut now = 0u64;
        let mut tick = 0u64;
        while now < horizon {
            now += 1 + (seed.wrapping_add(now) % 977) % 400;
            engine.advance(now.min(horizon));
            tick += 1;
            if tick.is_multiple_of(pop_every) && engine.pop_ready().is_some() {
                popped += 1;
            }
        }
        let c = engine.counters();
        prop_assert!(c.dropped <= c.arrivals);
        prop_assert_eq!(c.admitted(), c.arrivals - c.dropped);
        prop_assert_eq!(popped + engine.queue_len() as u64, c.admitted());
        // A single aggregate process has no per-tenant drop attribution
        // (the dropped request's tenant is chosen at pull time, which a
        // dropped arrival never reaches).
        prop_assert!(c.dropped_by_tenant.is_empty());
    }

    /// Run-level identity: queue wait + service latency equals end-to-end
    /// latency per request, and the arrival accounting invariants hold.
    #[test]
    fn queue_wait_plus_service_is_end_to_end(
        rate_milli in 5u64..2000,
        measured in 8u64..30,
        seed in any::<u64>(),
        policy_idx in 0usize..3,
        capacity in 1usize..64,
    ) {
        let cfg = small(measured, seed, policy_idx, capacity);
        let spec = open_spec(rate_milli as f64 / 1000.0);
        let metrics =
            run_workload_spec_stepped(Scheme::Palermo, &spec, &cfg, &EventStepper).unwrap();
        prop_assert!(metrics.arrival_conservation_ok());
        prop_assert_eq!(metrics.queue_waits.len(), metrics.latencies.len());
        let e2e = metrics.end_to_end_latencies();
        for (i, &total) in e2e.iter().enumerate() {
            prop_assert_eq!(metrics.queue_waits[i] + metrics.latencies[i], total);
        }
        // The block policy never drops; the drop policies never defer more
        // than the queue can hold.
        if cfg.admission_policy == AdmissionPolicyKind::Block {
            prop_assert_eq!(metrics.dropped_arrivals, 0);
        }
    }

    /// Determinism: the same open-loop spec under the same configuration is
    /// byte-identical run to run and across both steppers.
    #[test]
    fn same_spec_twice_is_byte_identical(
        rate_milli in 10u64..2000,
        measured in 8u64..24,
        seed in any::<u64>(),
        policy_idx in 0usize..3,
    ) {
        let cfg = small(measured, seed, policy_idx, 16);
        let spec = open_spec(rate_milli as f64 / 1000.0);
        let first =
            run_workload_spec_stepped(Scheme::RingOram, &spec, &cfg, &EventStepper).unwrap();
        let second =
            run_workload_spec_stepped(Scheme::RingOram, &spec, &cfg, &EventStepper).unwrap();
        prop_assert_eq!(&first, &second);
        let reference =
            run_workload_spec_stepped(Scheme::RingOram, &spec, &cfg, &ReferenceStepper).unwrap();
        prop_assert_eq!(&first, &reference);
    }
}
