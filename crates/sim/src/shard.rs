//! Sharded multi-controller scale-out: K independent ORAM systems behind
//! one workload.
//!
//! A [`ShardedSystem`] partitions the protected address space across K
//! fully independent ORAM instances — per-shard position map, stash, and
//! DRAM channels — using a [`palermo_workloads::ShardRouter`] to split the
//! access stream. Each shard is driven by the ordinary single-system core
//! loop (through the existing [`Stepper`] machinery) and
//! the per-shard [`RunMetrics`] are merged deterministically, in strict
//! shard-index order, with per-shard and per-tenant attribution both
//! preserved and conservation-checked.
//!
//! Because shards share no state, shard stepping is a pure scheduling
//! choice: [`SerialShardStepper`] runs the shards one after another on the
//! calling thread, [`PooledShardStepper`] fans them across
//! [`std::thread::scope`] workers, and the two are byte-identical by
//! construction (each shard's run depends only on its own derived seed and
//! its own filtered stream). `tests/shard_scaling.rs` pins that identity
//! over a K × scheme grid.
//!
//! # Determinism contract
//!
//! * Every shard rebuilds the *global* workload stream from the global
//!   stream seed and filters it through the router, so the set of accesses
//!   a shard sees is independent of how the other shards are scheduled.
//! * Per-shard protocol seeds are derived from the global seed by SplitMix64
//!   expansion (the same idiom the multi-tenant mix uses per tenant), so
//!   shard i's leaf randomness never depends on K's scheduling.
//! * The merge folds shard results in shard-index order only — no
//!   completion-order or thread-order dependence anywhere.

use crate::runner::{run_core, RunMetrics, ShardMetrics, Stepper, TenantMetrics};
use crate::schemes::Scheme;
use crate::system::SystemConfig;
use palermo_analysis::LatencyHistogram;
use palermo_dram::{DramConfig, DramStats, EnergyCoefficients};
use palermo_oram::error::{OramError, OramResult};
use palermo_oram::rng::SplitMix64;
use palermo_workloads::{OpenLoopSpec, ShardRouter, ShardSpec, ShardStream, WorkloadSpec};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A runnable system shape: the simulator's second axis of composition.
///
/// [`SingleSystem`] is the classic one-controller shape;
/// [`ShardedSystem`] is K of them behind a router. Both produce a
/// [`RunMetrics`] from a clock-advance strategy, so experiment code can
/// hold either behind one trait object.
pub trait SystemShape {
    /// Number of independent ORAM instances this shape drives.
    fn shard_count(&self) -> u32;

    /// Runs the shape to completion under the given clock-advance strategy.
    ///
    /// # Errors
    ///
    /// Propagates protocol-configuration and workload-spec build errors.
    fn run(&self, stepper: &dyn Stepper) -> OramResult<RunMetrics>;
}

/// The classic one-controller system, as a [`SystemShape`].
///
/// Thin value wrapper over [`crate::runner::run_workload_spec_stepped`]:
/// exists so call sites that select a shape at runtime can treat single and
/// sharded systems uniformly.
#[derive(Debug, Clone)]
pub struct SingleSystem {
    scheme: Scheme,
    spec: WorkloadSpec,
    config: SystemConfig,
}

impl SingleSystem {
    /// Wraps one (scheme, spec, config) triple as a runnable shape.
    pub fn new(scheme: Scheme, spec: WorkloadSpec, config: SystemConfig) -> Self {
        SingleSystem {
            scheme,
            spec,
            config,
        }
    }
}

impl SystemShape for SingleSystem {
    fn shard_count(&self) -> u32 {
        1
    }

    fn run(&self, stepper: &dyn Stepper) -> OramResult<RunMetrics> {
        crate::runner::run_workload_spec_stepped(self.scheme, &self.spec, &self.config, stepper)
    }
}

/// K independent ORAM systems over a partitioned address space.
///
/// Constructed from a sharded [`WorkloadSpec`] (`shard:<K>:<router>:<inner>`,
/// optionally wrapped in `open:`); derives one [`SystemConfig`] per shard
/// (protected space, request budget and protocol seed all split
/// deterministically) and runs each shard through the ordinary
/// single-system loop.
#[derive(Debug, Clone)]
pub struct ShardedSystem {
    scheme: Scheme,
    /// The full user-facing spec — every shard's metrics carry this label.
    spec: WorkloadSpec,
    shard_spec: ShardSpec,
    router: ShardRouter,
    shard_configs: Vec<SystemConfig>,
    /// Per-shard serving description: the global arrival processes thinned
    /// by 1/K (each shard sees its slice of the offered load). `None` for
    /// closed-loop specs.
    open: Option<OpenLoopSpec>,
    /// Stream footprint hint of the *global* run; every shard rebuilds the
    /// identical global stream from this and filters it.
    global_stream_hint: u64,
    /// Stream seed of the *global* run (see `global_stream_hint`).
    global_stream_seed: u64,
    prefetch_length: u32,
}

impl ShardedSystem {
    /// Builds the sharded system implied by a sharded workload spec.
    ///
    /// The router is constructed from a probe build of the inner stream (it
    /// only needs the footprint and tenant partitions, which are properties
    /// of the spec, not of the access sequence), per-shard request budgets
    /// split the global budget conservatively (sums are exact), and
    /// per-shard protocol seeds come from SplitMix64 expansion of the
    /// global seed.
    ///
    /// # Errors
    ///
    /// Rejects non-sharded specs, invalid shard shapes (see
    /// [`ShardSpec::validate`]) and router builds the inner stream cannot
    /// support (e.g. a footprint with fewer cache lines than shards).
    pub fn new(scheme: Scheme, spec: &WorkloadSpec, config: &SystemConfig) -> OramResult<Self> {
        let shard_spec = spec
            .sharded()
            .ok_or_else(|| OramError::InvalidParams {
                reason: format!("workload spec '{spec}' is not sharded"),
            })?
            .clone();
        spec.validate()?;
        let probe = shard_spec
            .inner
            .build(config.stream_footprint_hint(), config.stream_seed())?;
        let router = ShardRouter::new(shard_spec.router, shard_spec.shards, probe.as_ref())?;
        drop(probe);

        let k = u64::from(shard_spec.shards);
        let mut seeds = SplitMix64::new(config.seed);
        let shard_configs = (0..shard_spec.shards)
            .map(|i| {
                let mut c = config.clone();
                // A shard's protected space is its slice of the global one,
                // but never smaller than the footprint the router sends it
                // (rounded up to whole cache lines so the line count stays
                // exact).
                let fp = router.shard_footprint_bytes(i);
                c.protected_bytes = (config.protected_bytes / k).max(fp).div_ceil(64) * 64;
                // Split the request budget so the totals conserve exactly:
                // shard i gets floor(n/K) plus one of the n mod K leftovers.
                let i = u64::from(i);
                c.measured_requests =
                    config.measured_requests / k + u64::from(i < config.measured_requests % k);
                c.warmup_requests =
                    config.warmup_requests / k + u64::from(i < config.warmup_requests % k);
                c.seed = seeds.next_u64();
                c
            })
            .collect();

        // An open-loop wrapper offers the global rate to the whole system;
        // each shard serves its 1/K slice of it. Thinning a Poisson process
        // is exact; the bursty/diurnal processes keep their time structure
        // and scale their rates (see `ArrivalSpec::scaled`).
        let open = spec.open_loop().map(|o| OpenLoopSpec {
            arrivals: o
                .arrivals
                .iter()
                .map(|a| a.scaled(1.0 / k as f64))
                .collect(),
            inner: shard_spec.inner.clone(),
        });

        let prefetch_length = if scheme.uses_prefetch() {
            config
                .prefetch_override
                .unwrap_or_else(|| spec.default_prefetch_length())
                .max(1)
        } else {
            1
        };

        Ok(ShardedSystem {
            scheme,
            spec: spec.clone(),
            shard_spec,
            router,
            shard_configs,
            open,
            global_stream_hint: config.stream_footprint_hint(),
            global_stream_seed: config.stream_seed(),
            prefetch_length,
        })
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.shard_spec.shards
    }

    /// The scheme every shard runs.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// The router partitioning the address space.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// The derived per-shard system configuration.
    pub fn shard_config(&self, shard: u32) -> &SystemConfig {
        &self.shard_configs[shard as usize]
    }

    /// Runs one shard to completion: rebuilds the global stream, filters it
    /// to this shard through the router, and drives the single-system loop
    /// with the shard's derived configuration. Independent of every other
    /// shard by construction, which is what makes pooled stepping safe.
    ///
    /// # Errors
    ///
    /// Propagates protocol-configuration and stream build errors.
    pub fn run_shard(&self, shard: u32, stepper: &dyn Stepper) -> OramResult<RunMetrics> {
        let config = &self.shard_configs[shard as usize];
        let params = config.hierarchy_params()?;
        let hierarchy_cfg = self.scheme.hierarchy_config(
            params,
            config.seed,
            self.prefetch_length,
            config.stash_capacity,
        )?;
        let controller_cfg = self.scheme.controller_config(config.pe_columns);
        // Rebuild the *global* stream (global hint and seed, not the
        // shard's): all shards filter the identical access sequence, so the
        // union of what the shards consume is exactly the unsharded stream.
        let inner = self
            .shard_spec
            .inner
            .build(self.global_stream_hint, self.global_stream_seed)?;
        let mut stream = ShardStream::new(inner, self.router.clone(), shard);
        run_core(
            self.scheme,
            hierarchy_cfg,
            controller_cfg,
            &self.spec,
            self.open.as_ref(),
            &mut stream,
            config,
            self.prefetch_length,
            stepper,
        )
    }

    /// Merges per-shard runs (in shard-index order) into one aggregate
    /// [`RunMetrics`], preserving per-shard and per-tenant attribution.
    ///
    /// Count-like fields sum; `cycles` and `stash_high_water` take the max
    /// across shards (the makespan); sample vectors concatenate in shard
    /// order; per-tenant metrics merge element-wise (shards tag accesses
    /// with *global* tenant ids). The result satisfies
    /// [`RunMetrics::shard_conservation_ok`] and
    /// [`RunMetrics::tenant_conservation_ok`] by construction.
    fn merge(&self, runs: Vec<RunMetrics>) -> RunMetrics {
        debug_assert_eq!(runs.len(), self.shards() as usize);
        let mut merged = RunMetrics {
            scheme: self.scheme,
            workload: self.spec.clone(),
            oram_requests: 0,
            workload_accesses: 0,
            dummy_requests: 0,
            cycles: 0,
            latencies: Vec::new(),
            behaviour_latency: Vec::new(),
            stash_samples: Vec::new(),
            stash_high_water: 0,
            dram: DramStats::default(),
            sync_stall_by_level: [0; 3],
            sync_stall_cycles: 0,
            llc_hit_rate: 0.0,
            prefetch_length: self.prefetch_length,
            submitted_requests: 0,
            per_tenant: Vec::new(),
            arrivals: 0,
            dropped_arrivals: 0,
            queue_waits: Vec::new(),
            per_shard: Vec::new(),
            hardware: runs
                .first()
                .map_or_else(|| "ddr4-3200".to_string(), |r| r.hardware.clone()),
            energy: runs
                .first()
                .map_or_else(EnergyCoefficients::default, |r| r.energy),
            dram_config: runs
                .first()
                .map_or_else(DramConfig::ddr4_3200_quad_channel, |r| r.dram_config),
        };
        // LLC hit rate is a ratio, not a count: recover the aggregate by
        // weighting each shard's rate with its access volume (falling back
        // to a plain mean over shards when nothing completed anywhere).
        let total_accesses: u64 = runs.iter().map(|r| r.workload_accesses).sum();
        merged.llc_hit_rate = if total_accesses > 0 {
            runs.iter()
                .map(|r| r.llc_hit_rate * r.workload_accesses as f64)
                .sum::<f64>()
                / total_accesses as f64
        } else {
            runs.iter().map(|r| r.llc_hit_rate).sum::<f64>() / runs.len().max(1) as f64
        };
        for (i, run) in runs.into_iter().enumerate() {
            merged.oram_requests += run.oram_requests;
            merged.workload_accesses += run.workload_accesses;
            merged.dummy_requests += run.dummy_requests;
            merged.submitted_requests += run.submitted_requests;
            merged.arrivals += run.arrivals;
            merged.dropped_arrivals += run.dropped_arrivals;
            merged.sync_stall_cycles += run.sync_stall_cycles;
            for (level, stall) in run.sync_stall_by_level.iter().enumerate() {
                merged.sync_stall_by_level[level] += stall;
            }
            // The shards run concurrently in the modelled hardware, so the
            // aggregate window is the shard makespan, not the cycle sum.
            merged.cycles = merged.cycles.max(run.cycles);
            merged.stash_high_water = merged.stash_high_water.max(run.stash_high_water);
            merged.dram = sum_dram(&merged.dram, &run.dram);
            merge_tenants(&mut merged.per_tenant, &run.per_tenant);
            let mut latency = LatencyHistogram::new();
            for &l in &run.latencies {
                latency.record(l);
            }
            merged.per_shard.push(ShardMetrics {
                shard: i as u32,
                oram_requests: run.oram_requests,
                workload_accesses: run.workload_accesses,
                dummy_requests: run.dummy_requests,
                cycles: run.cycles,
                submitted_requests: run.submitted_requests,
                arrivals: run.arrivals,
                dropped_arrivals: run.dropped_arrivals,
                latency,
                stash_high_water: run.stash_high_water,
            });
            merged.latencies.extend(run.latencies);
            merged.behaviour_latency.extend(run.behaviour_latency);
            merged.stash_samples.extend(run.stash_samples);
            merged.queue_waits.extend(run.queue_waits);
        }
        debug_assert!(merged.shard_conservation_ok());
        debug_assert!(merged.tenant_conservation_ok());
        merged
    }
}

impl SystemShape for ShardedSystem {
    fn shard_count(&self) -> u32 {
        self.shards()
    }

    fn run(&self, stepper: &dyn Stepper) -> OramResult<RunMetrics> {
        ShardStepper::run(&SerialShardStepper, self, stepper)
    }
}

/// Accumulates one field-wise DRAM sum (shards own disjoint channels, so
/// every counter adds; the channel count is per shard and identical across
/// shards).
fn sum_dram(a: &DramStats, b: &DramStats) -> DramStats {
    DramStats {
        cycles: a.cycles + b.cycles,
        reads: a.reads + b.reads,
        writes: a.writes + b.writes,
        row_hits: a.row_hits + b.row_hits,
        row_misses: a.row_misses + b.row_misses,
        row_conflicts: a.row_conflicts + b.row_conflicts,
        data_bus_busy_cycles: a.data_bus_busy_cycles + b.data_bus_busy_cycles,
        queue_occupancy_sum: a.queue_occupancy_sum + b.queue_occupancy_sum,
        read_latency_sum: a.read_latency_sum + b.read_latency_sum,
        channels: if a.channels == 0 {
            b.channels
        } else {
            a.channels
        },
    }
}

/// Element-wise per-tenant merge. Shards tag accesses with global tenant
/// ids, so every shard's vector is indexed identically (length = the inner
/// spec's tenant count, or empty when attribution is off).
fn merge_tenants(into: &mut Vec<TenantMetrics>, from: &[TenantMetrics]) {
    if into.is_empty() {
        into.extend(from.iter().cloned());
        return;
    }
    debug_assert_eq!(into.len(), from.len());
    for (t, s) in into.iter_mut().zip(from) {
        t.submitted += s.submitted;
        t.completed += s.completed;
        t.workload_accesses += s.workload_accesses;
        t.dram_ops += s.dram_ops;
        t.dropped += s.dropped;
        t.latency.merge(&s.latency);
        t.queue_wait.merge(&s.queue_wait);
    }
}

/// How the K shards of a [`ShardedSystem`] are scheduled. Implementations
/// must be byte-identical: shards share no state, so scheduling can never
/// change results, only wall-clock time.
pub trait ShardStepper {
    /// Runs every shard of `system` and returns the merged metrics.
    ///
    /// # Errors
    ///
    /// Returns the error of the first (in shard order) failing shard.
    fn run(&self, system: &ShardedSystem, stepper: &dyn Stepper) -> OramResult<RunMetrics>;
}

/// Runs shards one after another on the calling thread, in shard order.
///
/// This is the default used by the runner's sharded dispatch: it composes
/// safely with outer parallelism (a [`crate::ThreadPoolExecutor`] running
/// many sharded runs never oversubscribes cores), and byte-identity with
/// [`PooledShardStepper`] makes the choice purely one of scheduling.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialShardStepper;

impl ShardStepper for SerialShardStepper {
    fn run(&self, system: &ShardedSystem, stepper: &dyn Stepper) -> OramResult<RunMetrics> {
        let runs = (0..system.shards())
            .map(|i| system.run_shard(i, stepper))
            .collect::<OramResult<Vec<_>>>()?;
        Ok(system.merge(runs))
    }
}

/// Fans shards across a fixed number of OS threads using
/// [`std::thread::scope`] — the intra-run parallelism the shards' total
/// independence buys.
///
/// Workers claim shard indices from a shared atomic counter and store each
/// result at the shard's own index, so the merge consumes results in shard
/// order regardless of which worker finishes first — the same deterministic
/// collection discipline as [`crate::ThreadPoolExecutor`], one level down.
#[derive(Debug, Clone, Copy)]
pub struct PooledShardStepper {
    threads: usize,
}

impl PooledShardStepper {
    /// Creates a pool with the given worker count (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        PooledShardStepper {
            threads: threads.max(1),
        }
    }

    /// Creates a pool with one worker per available core.
    ///
    /// The worker count is the one ambient input the pool takes; it can
    /// only change *scheduling*, never results — `tests/shard_scaling.rs`
    /// pins byte-identical `RunMetrics` against [`SerialShardStepper`].
    pub fn with_available_parallelism() -> Self {
        // audit:allow(ambient-state, thread count affects scheduling only; serial-vs-pool byte-identity is pinned by tests)
        Self::new(std::thread::available_parallelism().map_or(1, NonZeroUsize::get))
    }

    /// The number of worker threads this pool will spawn.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl Default for PooledShardStepper {
    fn default() -> Self {
        Self::with_available_parallelism()
    }
}

impl ShardStepper for PooledShardStepper {
    fn run(&self, system: &ShardedSystem, stepper: &dyn Stepper) -> OramResult<RunMetrics> {
        let n = system.shards() as usize;
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<OramResult<RunMetrics>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(n) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let result = system.run_shard(i as u32, stepper);
                    // audit:allow(unwrap, a poisoned slot means a worker already panicked, which aborts the run anyway)
                    *slots[i].lock().expect("result slot poisoned") = Some(result);
                });
            }
        });
        let runs = slots
            .into_iter()
            .map(|slot| {
                // audit:allow(unwrap, a poisoned slot means a worker already panicked, which aborts the run anyway)
                let run = slot.into_inner().expect("result slot poisoned");
                run.unwrap_or_else(|| {
                    // Unreachable: the scope joins every worker and the
                    // counter hands each index to exactly one of them.
                    Err(OramError::InvalidParams {
                        reason: "shard worker dropped a run".into(),
                    })
                })
            })
            .collect::<OramResult<Vec<_>>>()?;
        Ok(system.merge(runs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::EventStepper;

    fn tiny() -> SystemConfig {
        let mut cfg = SystemConfig::small_for_tests();
        cfg.measured_requests = 30;
        cfg.warmup_requests = 10;
        cfg
    }

    fn sharded(name: &str) -> WorkloadSpec {
        WorkloadSpec::from_name(name).unwrap()
    }

    #[test]
    fn construction_derives_conserving_budgets_and_distinct_seeds() {
        let spec = sharded("shard:3:hash:random");
        let cfg = tiny();
        let system = ShardedSystem::new(Scheme::RingOram, &spec, &cfg).unwrap();
        assert_eq!(system.shards(), 3);
        let measured: u64 = (0..3)
            .map(|i| system.shard_config(i).measured_requests)
            .sum();
        let warmup: u64 = (0..3).map(|i| system.shard_config(i).warmup_requests).sum();
        assert_eq!(measured, cfg.measured_requests);
        assert_eq!(warmup, cfg.warmup_requests);
        let seeds: Vec<u64> = (0..3).map(|i| system.shard_config(i).seed).collect();
        assert!(seeds.windows(2).all(|w| w[0] != w[1]));
        for i in 0..3 {
            let c = system.shard_config(i);
            assert_eq!(c.protected_bytes % 64, 0);
            assert!(c.protected_bytes >= system.router().shard_footprint_bytes(i));
        }
    }

    #[test]
    fn non_sharded_specs_are_rejected() {
        let err = ShardedSystem::new(
            Scheme::RingOram,
            &WorkloadSpec::from_name("random").unwrap(),
            &tiny(),
        )
        .unwrap_err();
        assert!(matches!(err, OramError::InvalidParams { .. }));
    }

    #[test]
    fn merged_metrics_conserve_and_carry_the_full_label() {
        let spec = sharded("shard:2:hash:random");
        let m = crate::runner::run_workload_spec(Scheme::RingOram, &spec, &tiny()).unwrap();
        assert_eq!(m.workload, spec);
        assert_eq!(m.per_shard.len(), 2);
        assert!(m.shard_conservation_ok());
        assert!(m.tenant_conservation_ok());
        assert!(m.arrival_conservation_ok());
        assert!(m.oram_requests > 0);
        assert_eq!(m.latencies.len() as u64, m.oram_requests);
    }

    #[test]
    fn single_system_shape_matches_the_direct_runner() {
        let spec = WorkloadSpec::from_name("random").unwrap();
        let shape = SingleSystem::new(Scheme::RingOram, spec.clone(), tiny());
        assert_eq!(shape.shard_count(), 1);
        let via_shape = shape.run(&EventStepper).unwrap();
        let direct = crate::runner::run_workload_spec(Scheme::RingOram, &spec, &tiny()).unwrap();
        assert_eq!(via_shape, direct);
    }

    #[test]
    fn pooled_stepping_is_byte_identical_to_serial() {
        let spec = sharded("shard:2:range:mcf");
        let system = ShardedSystem::new(Scheme::Palermo, &spec, &tiny()).unwrap();
        let serial = ShardStepper::run(&SerialShardStepper, &system, &EventStepper).unwrap();
        let pooled =
            ShardStepper::run(&PooledShardStepper::new(4), &system, &EventStepper).unwrap();
        assert_eq!(serial, pooled);
    }

    #[test]
    fn open_loop_wrapping_thins_arrivals_across_shards() {
        let spec = sharded("open:poisson:0.5:shard:2:hash:random");
        let m = crate::runner::run_workload_spec(Scheme::RingOram, &spec, &tiny()).unwrap();
        assert!(m.arrivals > 0);
        assert_eq!(m.queue_waits.len(), m.latencies.len());
        assert!(m.shard_conservation_ok());
        assert!(m.arrival_conservation_ok());
    }

    #[test]
    fn pool_constructors_clamp_and_report_threads() {
        assert_eq!(PooledShardStepper::new(0).threads(), 1);
        assert!(PooledShardStepper::with_available_parallelism().threads() >= 1);
        assert!(PooledShardStepper::default().threads() >= 1);
    }
}
