//! The cycle-exact end-to-end simulation loop.
//!
//! One [`run_workload`] call simulates a single (scheme, workload) pair:
//! the workload's memory accesses are filtered by the LLC, every miss is
//! converted into an ORAM request by the protocol layer, the controller
//! issues the request's DRAM traffic subject to the scheme's scheduling
//! policy, and the DRAM model services it cycle by cycle. Metrics are
//! collected over the post-warm-up window only.
//!
//! # Event-driven time skipping
//!
//! The loop is *event-driven*: after any iteration in which neither the
//! controller nor the DRAM model did observable work and no new plan is
//! about to be staged, the clock jumps straight to the next cycle at which
//! anything can change — the minimum of the DRAM model's
//! `next_event_cycle()` (bank timing expiry, bus free, data return) and the
//! controller's `next_wakeup()` (compute countdown expiry). Skipped cycles
//! are accounted *exactly* as if they had been ticked (cycle counters, queue
//! occupancy, sync-stall attribution), so all metrics are byte-identical to
//! the per-cycle reference loop; [`ReferenceStepper`] keeps that reference
//! loop alive as a test double and `tests/stepper_equivalence.rs` proves the
//! equivalence over the full scheme × workload grid.
//!
//! Anything bigger than one run — grids, sweeps, parallel execution —
//! belongs to the typed [`crate::experiment`] surface built on top of
//! this module.

use crate::schemes::Scheme;
use crate::serving::ServingEngine;
use crate::system::SystemConfig;
use palermo_analysis::LatencyHistogram;
use palermo_controller::{memory_energy, EnergyBreakdown, OramController};
use palermo_dram::{DramConfig, DramStats, DramSystem, EnergyCoefficients};
use palermo_oram::crypto::Payload;
use palermo_oram::error::{OramError, OramResult};
use palermo_oram::hierarchy::HierarchicalOram;
use palermo_oram::types::{OramOp, PhysAddr};
use palermo_workloads::{AccessStream, Llc, OpenLoopSpec, Workload, WorkloadSpec};

/// Controller clock frequency in Hz (Table III: 1.6 GHz, shared with the
/// DRAM command clock).
pub const CLOCK_HZ: f64 = 1.6e9;

/// Metrics attributed to one tenant of the workload stream over the
/// measured window.
///
/// Attribution is at ORAM-request granularity: a request belongs to the
/// tenant whose access missed the LLC and formed it (the LLC hits absorbed
/// on the way ride along). Everything here is integer-accumulated, so two
/// runs observing the same completions produce byte-identical values — the
/// per-tenant determinism tests compare these vectors with `==` across
/// executors and steppers. Controller-injected dummy requests belong to no
/// tenant and only appear in the aggregate [`RunMetrics::dummy_requests`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantMetrics {
    /// Tenant index within the workload spec (0-based).
    pub tenant: u32,
    /// Real ORAM requests of this tenant submitted to the controller while
    /// the measured window was open — the tenant's *offered load* over the
    /// window. Submission and completion windows overlap but do not nest
    /// (requests submitted before the window opens may complete inside it,
    /// and late submissions may still be in flight at run end), so this can
    /// fall on either side of `completed`.
    pub submitted: u64,
    /// Real ORAM requests of this tenant completed inside the measured
    /// window. Sums to [`RunMetrics::oram_requests`] across tenants.
    pub completed: u64,
    /// Workload accesses consumed by this tenant's completed requests.
    /// Sums to [`RunMetrics::workload_accesses`] across tenants.
    pub workload_accesses: u64,
    /// Fixed-bucket latency histogram (mean/p50/p95/p99 source; its exact
    /// running sum doubles as the tenant's latency total, which sums to the
    /// aggregate latency total across tenants).
    pub latency: LatencyHistogram,
    /// DRAM bursts issued on behalf of this tenant's completed requests —
    /// the tenant's memory-demand share (who occupies the DRAM, and thereby
    /// who stalls whom).
    pub dram_ops: u64,
    /// Queue-wait histogram (admission-queue residency, arrival to
    /// controller submission) of this tenant's completed requests. Empty
    /// for closed-loop runs, where requests have no arrival time.
    pub queue_wait: LatencyHistogram,
    /// Arrivals of this tenant dropped by the admission policy in the
    /// measured window. Attributed only when the open-loop spec routes one
    /// arrival process per tenant; a single aggregate process leaves this 0
    /// (a dropped arrival never reaches the stream's tenant selection, so
    /// its tenant is unknowable) and only
    /// [`RunMetrics::dropped_arrivals`] counts it.
    pub dropped: u64,
}

impl TenantMetrics {
    /// An empty accumulator for tenant `tenant`.
    pub fn new(tenant: u32) -> Self {
        TenantMetrics {
            tenant,
            submitted: 0,
            completed: 0,
            workload_accesses: 0,
            latency: LatencyHistogram::new(),
            dram_ops: 0,
            queue_wait: LatencyHistogram::new(),
            dropped: 0,
        }
    }

    /// Mean ORAM response latency in cycles (exact, from the histogram's
    /// running sum).
    pub fn mean_latency(&self) -> f64 {
        self.latency.mean()
    }

    /// Median latency estimate in cycles.
    pub fn p50_latency(&self) -> u64 {
        self.latency.p50()
    }

    /// 95th-percentile latency estimate in cycles.
    pub fn p95_latency(&self) -> u64 {
        self.latency.p95()
    }

    /// 99th-percentile tail latency estimate in cycles.
    pub fn p99_latency(&self) -> u64 {
        self.latency.p99()
    }

    fn record_completion(
        &mut self,
        latency: u64,
        accesses: u64,
        dram_ops: u64,
        queue_wait: Option<u64>,
    ) {
        self.completed += 1;
        self.workload_accesses += accesses;
        self.latency.record(latency);
        self.dram_ops += dram_ops;
        if let Some(wait) = queue_wait {
            self.queue_wait.record(wait);
        }
    }
}

/// The aggregate slice of one shard of a sharded run: what that shard's
/// independent ORAM instance contributed to the merged [`RunMetrics`].
///
/// Everything here is integer-accumulated (the histogram is fixed-bucket),
/// so serial and pooled shard stepping produce byte-identical vectors —
/// compared with `==` by the sharding determinism tests. Sums across shards
/// reproduce the merged aggregates ([`RunMetrics::shard_conservation_ok`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMetrics {
    /// Shard index (0-based, dense).
    pub shard: u32,
    /// Real ORAM requests this shard completed in its measured window.
    pub oram_requests: u64,
    /// Workload accesses consumed by this shard's completed requests.
    pub workload_accesses: u64,
    /// Dummy (background-eviction) requests this shard completed.
    pub dummy_requests: u64,
    /// Cycles this shard's controller/DRAM spent in its measured window.
    /// The merged aggregate takes the max across shards (the makespan).
    pub cycles: u64,
    /// Real requests this shard submitted while measuring.
    pub submitted_requests: u64,
    /// Open-loop arrivals this shard resolved in its window (0 closed-loop).
    pub arrivals: u64,
    /// Open-loop arrivals this shard's admission policy dropped.
    pub dropped_arrivals: u64,
    /// Fixed-bucket service-latency histogram of this shard's completions.
    pub latency: LatencyHistogram,
    /// Highest stash occupancy this shard's hierarchy observed.
    pub stash_high_water: usize,
}

/// Metrics collected over the measured window of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// The scheme that was simulated.
    pub scheme: Scheme,
    /// The workload spec that drove it (a Table II workload, a trace
    /// replay, or a multi-tenant mix).
    pub workload: WorkloadSpec,
    /// Real (non-dummy) ORAM requests completed in the measured window.
    pub oram_requests: u64,
    /// Workload memory accesses consumed in the measured window (LLC hits
    /// plus misses). This is the application-progress measure that
    /// end-to-end speedups are computed from: prefetching schemes serve more
    /// accesses per ORAM request because prefetched lines hit in the LLC.
    ///
    /// **Window boundary:** accesses are attributed to the ORAM request they
    /// formed (the run of LLC hits ending in the miss that became the
    /// request) and counted when that request *completes* inside the
    /// measured window — the same completion-side boundary that gates
    /// [`RunMetrics::oram_requests`] and [`RunMetrics::latencies`]. Accesses
    /// pulled for requests still in flight when the window closes are not
    /// counted, keeping `workload_accesses` consistent with the request
    /// count it is divided by.
    pub workload_accesses: u64,
    /// Dummy (background-eviction) requests completed in the measured window.
    pub dummy_requests: u64,
    /// Controller/DRAM cycles spent in the measured window.
    pub cycles: u64,
    /// Per-request ORAM response latencies (cycles), measured window only.
    pub latencies: Vec<u64>,
    /// `(block had been written before, latency)` pairs for the
    /// mutual-information analysis of Fig. 9.
    pub behaviour_latency: Vec<(bool, u64)>,
    /// Data-level stash occupancy samples over the measured window,
    /// as `(progress in [0,1], occupancy)`.
    pub stash_samples: Vec<(f64, usize)>,
    /// Highest stash occupancy observed anywhere in the hierarchy.
    pub stash_high_water: usize,
    /// DRAM statistics accumulated over the measured window.
    pub dram: DramStats,
    /// ORAM-sync stall cycles per sub-ORAM level over the measured window.
    pub sync_stall_by_level: [u64; 3],
    /// Total sync stall cycles over the measured window.
    pub sync_stall_cycles: u64,
    /// LLC hit rate over the whole run (prefetch effectiveness).
    pub llc_hit_rate: f64,
    /// Prefetch length the scheme ran with (1 = no prefetching).
    pub prefetch_length: u32,
    /// Real ORAM requests submitted while the measured window was open —
    /// the offered load over the window (requests straddling either window
    /// edge make this differ from [`RunMetrics::oram_requests`] in both
    /// directions).
    pub submitted_requests: u64,
    /// Per-tenant attribution of the measured window, indexed by tenant id
    /// (length = the spec's tenant count; single-tenant specs have exactly
    /// one entry). Empty when [`SystemConfig::collect_per_tenant`] is off.
    /// Conservation holds by construction: per-tenant `submitted`,
    /// `completed`, `workload_accesses` and latency totals each sum to the
    /// corresponding aggregate ([`RunMetrics::tenant_conservation_ok`]).
    pub per_tenant: Vec<TenantMetrics>,
    /// Open-loop arrivals whose admission was resolved (admitted or
    /// dropped) in the measured window — the *offered* load. 0 for
    /// closed-loop runs.
    pub arrivals: u64,
    /// Open-loop arrivals dropped by the admission policy in the measured
    /// window (never exceeds [`RunMetrics::arrivals`]). 0 for closed-loop
    /// runs and under the `block` policy.
    pub dropped_arrivals: u64,
    /// Per-request admission-queue waits in cycles (arrival to controller
    /// submission), aligned index-for-index with
    /// [`RunMetrics::latencies`]: `queue_waits[i] + latencies[i]` is
    /// request `i`'s end-to-end latency, exactly. Empty for closed-loop
    /// runs.
    pub queue_waits: Vec<u64>,
    /// Per-shard attribution of a sharded run, indexed by shard id in
    /// strict shard order (empty for single-system runs). Count sums
    /// reproduce the aggregates and `cycles`/`stash_high_water` are maxima
    /// ([`RunMetrics::shard_conservation_ok`]).
    pub per_shard: Vec<ShardMetrics>,
    /// Name of the hardware profile the run executed on (from
    /// [`SystemConfig::hardware`]; "ddr4-3200" for the default).
    pub hardware: String,
    /// Energy coefficients of that profile, carried so energy is
    /// derivable from the DRAM counters without re-resolving the profile.
    pub energy: EnergyCoefficients,
    /// The DRAM organisation the run executed on (its bank count feeds
    /// the background-energy term).
    pub dram_config: DramConfig,
}

impl RunMetrics {
    /// Measured LLC-miss (ORAM-request) throughput in requests per second.
    pub fn requests_per_second(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.oram_requests as f64 / (self.cycles as f64 / CLOCK_HZ)
    }

    /// Measured ORAM requests per cycle (controller service rate).
    pub fn requests_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.oram_requests as f64 / self.cycles as f64
    }

    /// Measured workload accesses per cycle — the end-to-end performance
    /// metric the Fig. 10 / Fig. 13 speedups are computed from (equivalent
    /// to normalised application progress per unit time).
    pub fn accesses_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.workload_accesses as f64 / self.cycles as f64
    }

    /// Mean ORAM response latency in cycles.
    pub fn mean_latency(&self) -> f64 {
        if self.latencies.is_empty() {
            return 0.0;
        }
        self.latencies.iter().sum::<u64>() as f64 / self.latencies.len() as f64
    }

    /// Fraction of completed requests that were dummies.
    pub fn dummy_fraction(&self) -> f64 {
        let total = self.oram_requests + self.dummy_requests;
        if total == 0 {
            return 0.0;
        }
        self.dummy_requests as f64 / total as f64
    }

    /// Tenant `i`'s share of the DRAM bursts issued for completed real
    /// requests in the window (0 when nothing was attributed or `i` is out
    /// of range) — the "who occupies the DRAM" answer behind per-tenant
    /// interference analysis.
    pub fn tenant_dram_share(&self, i: usize) -> f64 {
        let total: u64 = self.per_tenant.iter().map(|t| t.dram_ops).sum();
        if total == 0 {
            return 0.0;
        }
        self.per_tenant
            .get(i)
            .map_or(0.0, |t| t.dram_ops as f64 / total as f64)
    }

    /// Memory energy of the measured window, decomposed by source —
    /// derived on demand from the DRAM counters and the profile's
    /// coefficients, so the determinism contract stays purely integral.
    pub fn energy_breakdown(&self) -> EnergyBreakdown {
        memory_energy(&self.energy, &self.dram_config, &self.dram)
    }

    /// Total memory energy of the measured window, joules.
    pub fn energy_j(&self) -> f64 {
        self.energy_breakdown().total_j()
    }

    /// Memory energy per DRAM access (64-byte burst), joules; 0 when the
    /// window performed no accesses.
    pub fn energy_per_access_j(&self) -> f64 {
        self.energy_breakdown()
            .per_access_j(self.dram.total_accesses())
    }

    /// Tenant `i`'s share of the window's memory energy in joules,
    /// attributed proportionally to its [`TenantMetrics::dram_ops`] count
    /// ([`RunMetrics::tenant_dram_share`]) — the per-tenant bill next to
    /// the per-tenant p99.
    pub fn tenant_energy_j(&self, i: usize) -> f64 {
        self.tenant_dram_share(i) * self.energy_j()
    }

    /// Tenant `i`'s energy per *its own* DRAM burst, joules; 0 when the
    /// tenant issued none.
    pub fn tenant_energy_per_access_j(&self, i: usize) -> f64 {
        let ops = self.per_tenant.get(i).map_or(0, |t| t.dram_ops);
        if ops == 0 {
            return 0.0;
        }
        self.tenant_energy_j(i) / ops as f64
    }

    /// Checks the per-tenant conservation invariant: when per-tenant
    /// attribution ran, the per-tenant `submitted`/`completed`/
    /// `workload_accesses`/latency and queue-wait sums/histogram counts
    /// must sum exactly to the aggregates. Trivially `true` when
    /// attribution was off.
    pub fn tenant_conservation_ok(&self) -> bool {
        if self.per_tenant.is_empty() {
            return true;
        }
        let sum = |f: fn(&TenantMetrics) -> u64| -> u64 { self.per_tenant.iter().map(f).sum() };
        sum(|t| t.completed) == self.oram_requests
            && sum(|t| t.submitted) == self.submitted_requests
            && sum(|t| t.workload_accesses) == self.workload_accesses
            && sum(|t| t.latency.sum()) == self.latencies.iter().sum::<u64>()
            && sum(|t| t.latency.count()) == self.latencies.len() as u64
            && sum(|t| t.queue_wait.sum()) == self.queue_waits.iter().sum::<u64>()
            && sum(|t| t.queue_wait.count()) == self.queue_waits.len() as u64
            && self
                .per_tenant
                .iter()
                .enumerate()
                .all(|(i, t)| t.tenant as usize == i && t.latency.count() == t.completed)
    }

    /// Checks the per-shard conservation invariant of a merged sharded
    /// run: count-like fields sum exactly to the aggregates, the aggregate
    /// `cycles` is the shard makespan (max), `stash_high_water` is the max,
    /// the shard latency histograms account for every recorded latency, and
    /// shard ids are dense in order. Trivially `true` for single-system
    /// runs (no per-shard attribution).
    pub fn shard_conservation_ok(&self) -> bool {
        if self.per_shard.is_empty() {
            return true;
        }
        let sum = |f: fn(&ShardMetrics) -> u64| -> u64 { self.per_shard.iter().map(f).sum() };
        sum(|s| s.oram_requests) == self.oram_requests
            && sum(|s| s.workload_accesses) == self.workload_accesses
            && sum(|s| s.dummy_requests) == self.dummy_requests
            && sum(|s| s.submitted_requests) == self.submitted_requests
            && sum(|s| s.arrivals) == self.arrivals
            && sum(|s| s.dropped_arrivals) == self.dropped_arrivals
            && sum(|s| s.latency.sum()) == self.latencies.iter().sum::<u64>()
            && sum(|s| s.latency.count()) == self.latencies.len() as u64
            && self.per_shard.iter().map(|s| s.cycles).max() == Some(self.cycles)
            && self.per_shard.iter().map(|s| s.stash_high_water).max()
                == Some(self.stash_high_water)
            && self
                .per_shard
                .iter()
                .enumerate()
                .all(|(i, s)| s.shard as usize == i && s.latency.count() == s.oram_requests)
    }

    /// Open-loop arrivals admitted in the measured window
    /// (`arrivals - dropped_arrivals`). 0 for closed-loop runs.
    pub fn admitted_arrivals(&self) -> u64 {
        self.arrivals - self.dropped_arrivals
    }

    /// Fraction of measured-window arrivals the admission policy dropped
    /// (0 for closed-loop runs and empty windows).
    pub fn drop_fraction(&self) -> f64 {
        if self.arrivals == 0 {
            return 0.0;
        }
        self.dropped_arrivals as f64 / self.arrivals as f64
    }

    /// Mean admission-queue wait in cycles over the measured window (0 for
    /// closed-loop runs).
    pub fn mean_queue_wait(&self) -> f64 {
        if self.queue_waits.is_empty() {
            return 0.0;
        }
        self.queue_waits.iter().sum::<u64>() as f64 / self.queue_waits.len() as f64
    }

    /// Per-request end-to-end latencies (queue wait + ORAM service) in
    /// cycles. For closed-loop runs, where requests have no queue wait,
    /// this is just [`RunMetrics::latencies`].
    pub fn end_to_end_latencies(&self) -> Vec<u64> {
        if self.queue_waits.is_empty() {
            return self.latencies.clone();
        }
        self.latencies
            .iter()
            .zip(&self.queue_waits)
            .map(|(&service, &wait)| service + wait)
            .collect()
    }

    /// Offered load in requests per kilocycle — the long-run mean rate of
    /// the workload spec's arrival processes. `None` for closed-loop runs
    /// (a closed loop offers no rate; it saturates the pipeline).
    pub fn offered_rate_per_kcycle(&self) -> Option<f64> {
        self.workload
            .open_loop()
            .map(palermo_workloads::OpenLoopSpec::offered_rate_per_kcycle)
    }

    /// Achieved throughput in completed requests per kilocycle over the
    /// measured window. Under overload this plateaus below the offered
    /// rate — the saturation knee `figures::load_curve` plots.
    pub fn achieved_rate_per_kcycle(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.oram_requests as f64 * 1000.0 / self.cycles as f64
    }

    /// Checks the arrival-accounting invariants. Closed-loop runs must
    /// carry no arrival state at all; open-loop runs must have drops
    /// bounded by arrivals, exactly one queue wait per recorded latency,
    /// and per-tenant drop attribution bounded by the aggregate.
    pub fn arrival_conservation_ok(&self) -> bool {
        if self.workload.open_loop().is_none() {
            return self.arrivals == 0 && self.dropped_arrivals == 0 && self.queue_waits.is_empty();
        }
        self.dropped_arrivals <= self.arrivals
            && self.queue_waits.len() == self.latencies.len()
            && self.per_tenant.iter().map(|t| t.dropped).sum::<u64>() <= self.dropped_arrivals
    }
}

/// Per-request bookkeeping carried from submission to completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct InFlightEntry {
    request_id: u64,
    /// Whether the block had been written before (Fig. 9 behaviour bit).
    found: bool,
    /// Whether this is a controller-injected background eviction.
    is_dummy: bool,
    /// Workload accesses (LLC hits plus the final miss) consumed to form
    /// this request; attributed to the measured window at completion.
    accesses: u64,
    /// Tenant the request belongs to (the tenant of the missing access;
    /// meaningless for dummies).
    tenant: u32,
    /// Open-loop arrival cycle of the request (`None` for closed-loop
    /// requests and dummies). The queue wait is
    /// `FinishedRequest::submitted_at - arrived_at`, so queue wait plus
    /// service latency is the end-to-end latency exactly.
    arrived_at: Option<u64>,
}

/// Bookkeeping for the requests currently in flight, keyed by request id.
///
/// The number of outstanding requests is bounded by the PE-column count
/// plus the one staged plan, so a linear scan over a tiny vector beats
/// hashing on the simulation hot path (every completed request used to pay
/// a `HashMap` insert + remove).
#[derive(Debug, Default)]
struct InFlightTable {
    entries: Vec<InFlightEntry>,
}

impl InFlightTable {
    fn insert(
        &mut self,
        request_id: u64,
        found: bool,
        is_dummy: bool,
        accesses: u64,
        tenant: u32,
        arrived_at: Option<u64>,
    ) {
        self.entries.push(InFlightEntry {
            request_id,
            found,
            is_dummy,
            accesses,
            tenant,
            arrived_at,
        });
    }

    fn remove(&mut self, request_id: u64) -> Option<InFlightEntry> {
        let pos = self
            .entries
            .iter()
            .position(|e| e.request_id == request_id)?;
        Some(self.entries.swap_remove(pos))
    }
}

/// Clock-advance strategy for the simulation loop.
///
/// Every iteration of [`run_with_configs`] performs one reference step
/// (stage/submit, controller tick, DRAM tick, drain completions) and then
/// hands the stepper a chance to advance the clock past provably-idle
/// cycles. The two implementations must produce byte-identical
/// [`RunMetrics`]; `tests/stepper_equivalence.rs` enforces this over the
/// full scheme × workload grid.
///
/// `Sync` is a supertrait so one `&dyn Stepper` can drive every shard of a
/// sharded run across `std::thread::scope` threads — steppers are stateless
/// strategies (both implementations are zero-sized), so this costs nothing.
pub trait Stepper: Sync {
    /// Possibly advance time after one reference iteration. `quiescent` is
    /// `true` only when the iteration proved the system state frozen until
    /// the next predictable event: the controller tick settled (no retire,
    /// issue pass fully drained), the DRAM tick produced no completions, no
    /// DRAM-rejected enqueue could retry against freed queue space, and the
    /// runner will not stage a new plan next iteration.
    ///
    /// `external_next` is the earliest cycle at which a runner-level event
    /// outside the two clock models can change the system — today, the next
    /// open-loop arrival. A skip must never jump past it: an arrival can
    /// make an idle pipeline stage a request, and landing late would shift
    /// the submission (and every metric downstream of it) relative to the
    /// per-cycle reference loop. `None` for closed-loop runs.
    fn advance_idle(
        &self,
        controller: &mut OramController,
        dram: &mut DramSystem,
        quiescent: bool,
        external_next: Option<u64>,
    );
}

/// The seed per-cycle stepper: never skips, ticking every 1.6 GHz cycle.
/// Kept as the oracle the event-driven core is checked against.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReferenceStepper;

impl Stepper for ReferenceStepper {
    fn advance_idle(
        &self,
        _controller: &mut OramController,
        _dram: &mut DramSystem,
        _quiescent: bool,
        _external_next: Option<u64>,
    ) {
    }
}

/// The event-driven stepper: after a quiescent iteration, jumps the clock to
/// the earliest cycle at which anything can change and bulk-accounts the
/// skipped cycles exactly as if they had been ticked.
#[derive(Debug, Clone, Copy, Default)]
pub struct EventStepper;

impl Stepper for EventStepper {
    fn advance_idle(
        &self,
        controller: &mut OramController,
        dram: &mut DramSystem,
        quiescent: bool,
        external_next: Option<u64>,
    ) {
        if !quiescent || dram.has_pending_completions() {
            return;
        }
        let now = dram.cycle();
        let internal = match (controller.next_wakeup(now), dram.next_event_cycle()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        };
        // A pending open-loop arrival bounds the skip even when both clock
        // models are idle: the arrival will stage work the reference loop
        // would have staged at exactly that cycle.
        let next = match (internal, external_next) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            // Nothing pending anywhere: the next iteration will either stage
            // work or exit; single-stepping is the only correct move.
            (None, None) => return,
        };
        debug_assert!(next >= now, "next event {next} lies before cycle {now}");
        let skipped = next.saturating_sub(now);
        if skipped > 0 {
            controller.skip_cycles(skipped, dram.queued());
            dram.skip_cycles(skipped);
        }
    }
}

/// The settled-window stepper: like [`EventStepper`], but when the
/// controller is settled while DRAM traffic is still draining it does not
/// hand control back after a single jump. It keeps executing DRAM event
/// ticks *inside* `advance_idle` — replaying the controller's per-cycle
/// accounting in bulk between them — until something the controller must
/// react to happens (a completion, a compute-countdown expiry, or an
/// open-loop arrival). Backed by the DRAM system's calendar queue for the
/// next-event lookups, hence the name.
///
/// Correctness rests on the window's freeze argument: with the controller
/// settled, no pending completions, nothing to stage and the enqueue path
/// unblocked, every controller readiness predicate (dependency counts,
/// predecessor gating, retirement, submission capacity) is a pure function
/// of state only completions or countdown expiries can change. Interior
/// DRAM ticks issue commands but complete nothing, so the reference loop
/// would have run one inert controller tick per cycle — exactly what
/// [`OramController::skip_cycles`] replays, segmented at each interior DRAM
/// tick so the stall-accounting rule always sees the queue depth the
/// reference controller tick would have seen. Queue-full retries are the
/// one exception (a freed slot un-blocks the controller without a
/// completion), so a blocked enqueue falls back to the single-jump move.
#[derive(Debug, Clone, Copy, Default)]
pub struct CalendarStepper;

impl Stepper for CalendarStepper {
    fn advance_idle(
        &self,
        controller: &mut OramController,
        dram: &mut DramSystem,
        quiescent: bool,
        external_next: Option<u64>,
    ) {
        if !quiescent || dram.has_pending_completions() {
            return;
        }
        // Events the controller must run a real tick for, as one absolute
        // bound. The wakeup stays valid across the whole window: skipped
        // cycles decrement every countdown in lock step, so the expiry
        // cycle is invariant.
        let wakeup = controller
            .next_wakeup(dram.cycle())
            .unwrap_or(u64::MAX)
            .min(external_next.unwrap_or(u64::MAX));
        if controller.enqueue_blocked() {
            // A DRAM issue can free the slot a rejected enqueue retries
            // into: the retry cycle is the DRAM's next event, so jump to it
            // and let the main loop run the real iteration there.
            let now = dram.cycle();
            let next = match dram.next_event_cycle() {
                Some(e) => e.min(wakeup),
                None => wakeup,
            };
            if next != u64::MAX && next > now {
                controller.skip_cycles(next - now, dram.queued());
                dram.skip_cycles(next - now);
            }
            return;
        }
        // Controller-side accounting for the whole window folds into two
        // counters: total quiet cycles, and the subset with a DRAM queue
        // depth below the stall threshold (the only per-segment input the
        // stall rule reads — everything else is frozen). One
        // [`OramController::skip_cycles_window`] call flushes them, so the
        // countdown lists are walked once per window instead of once per
        // interior DRAM command.
        let mut total = 0u64;
        let mut stalled = 0u64;
        loop {
            let now = dram.cycle();
            let dram_next = dram.next_event_cycle().unwrap_or(u64::MAX);
            if dram_next >= wakeup {
                // The controller acts first (or simultaneously: the
                // reference loop runs the controller tick before the DRAM
                // tick of the same cycle). Stop at the bound.
                if wakeup != u64::MAX && wakeup > now {
                    let seg = wakeup - now;
                    total += seg;
                    if dram.queued() < 4 {
                        stalled += seg;
                    }
                    dram.skip_cycles(seg);
                }
                controller.skip_cycles_window(total, stalled);
                return;
            }
            if dram_next == u64::MAX {
                // DRAM idle and no controller event pending: the next
                // iteration stages work or the run is over; single-step.
                controller.skip_cycles_window(total, stalled);
                return;
            }
            // The DRAM acts strictly before anything the controller reacts
            // to: account the inert controller cycles through the event
            // (the queue depth is frozen until the tick below), then
            // execute the one DRAM tick the reference loop would have.
            let seg = dram_next - now + 1;
            total += seg;
            if dram.queued() < 4 {
                stalled += seg;
            }
            let result = dram.skip_to_and_tick(dram_next);
            if result.completions {
                // The controller routes these on the next real tick.
                controller.skip_cycles_window(total, stalled);
                return;
            }
            debug_assert!(result.issued, "DRAM event tick at {dram_next} did nothing");
        }
    }
}

fn dram_delta(end: &DramStats, start: &DramStats) -> DramStats {
    DramStats {
        cycles: end.cycles - start.cycles,
        reads: end.reads - start.reads,
        writes: end.writes - start.writes,
        row_hits: end.row_hits - start.row_hits,
        row_misses: end.row_misses - start.row_misses,
        row_conflicts: end.row_conflicts - start.row_conflicts,
        data_bus_busy_cycles: end.data_bus_busy_cycles - start.data_bus_busy_cycles,
        queue_occupancy_sum: end.queue_occupancy_sum - start.queue_occupancy_sum,
        read_latency_sum: end.read_latency_sum - start.read_latency_sum,
        channels: end.channels,
    }
}

/// Simulates one (scheme, workload) pair under the given configuration.
///
/// # Errors
///
/// Propagates protocol-configuration errors; runs themselves cannot fail
/// (the simulation loop always converges because every request eventually
/// drains through the DRAM model).
pub fn run_workload(
    scheme: Scheme,
    workload: Workload,
    config: &SystemConfig,
) -> OramResult<RunMetrics> {
    run_workload_stepped(scheme, workload, config, &CalendarStepper)
}

/// Simulates one (scheme, workload spec) pair under the given
/// configuration. This is the open-surface generalisation of
/// [`run_workload`]: the spec may be a Table II workload (identical to the
/// fast path), a trace-file replay, or a multi-tenant mix.
///
/// # Errors
///
/// Propagates protocol-configuration errors and workload-spec build errors
/// (e.g. a missing or malformed trace file).
pub fn run_workload_spec(
    scheme: Scheme,
    spec: &WorkloadSpec,
    config: &SystemConfig,
) -> OramResult<RunMetrics> {
    run_workload_spec_stepped(scheme, spec, config, &CalendarStepper)
}

/// Simulates a run with explicitly supplied protocol and controller
/// configurations. This is the entry point used by experiments that need a
/// variant outside the standard [`Scheme`] set (e.g. PrORAM without the fat
/// tree for Fig. 4, or parameter sweeps for Fig. 14); `scheme` is only used
/// as a label on the returned metrics.
///
/// # Errors
///
/// Propagates protocol-configuration errors.
pub fn run_with_configs(
    scheme: Scheme,
    hierarchy_cfg: palermo_oram::hierarchy::HierarchyConfig,
    controller_cfg: palermo_controller::ControllerConfig,
    workload: Workload,
    config: &SystemConfig,
    prefetch_length: u32,
) -> OramResult<RunMetrics> {
    run_with_configs_spec_stepped(
        scheme,
        hierarchy_cfg,
        controller_cfg,
        &WorkloadSpec::Table2(workload),
        config,
        prefetch_length,
        &CalendarStepper,
    )
}

/// [`run_with_configs`] over an arbitrary [`WorkloadSpec`].
///
/// # Errors
///
/// Propagates protocol-configuration and workload-spec build errors.
pub fn run_with_configs_spec(
    scheme: Scheme,
    hierarchy_cfg: palermo_oram::hierarchy::HierarchyConfig,
    controller_cfg: palermo_controller::ControllerConfig,
    spec: &WorkloadSpec,
    config: &SystemConfig,
    prefetch_length: u32,
) -> OramResult<RunMetrics> {
    run_with_configs_spec_stepped(
        scheme,
        hierarchy_cfg,
        controller_cfg,
        spec,
        config,
        prefetch_length,
        &CalendarStepper,
    )
}

/// Simulates one (scheme, workload) pair under an explicit clock-advance
/// strategy. [`run_workload`] uses the [`CalendarStepper`]; passing
/// [`ReferenceStepper`] reproduces the seed per-cycle loop for equivalence
/// checking.
///
/// # Errors
///
/// Propagates protocol-configuration errors.
pub fn run_workload_stepped(
    scheme: Scheme,
    workload: Workload,
    config: &SystemConfig,
    stepper: &dyn Stepper,
) -> OramResult<RunMetrics> {
    run_workload_spec_stepped(scheme, &WorkloadSpec::Table2(workload), config, stepper)
}

/// [`run_workload_spec`] with an explicit clock-advance strategy. Prefetch-
/// capable schemes resolve their prefetch length from the spec
/// ([`WorkloadSpec::default_prefetch_length`]) unless
/// [`SystemConfig::prefetch_override`] is set.
///
/// # Errors
///
/// Propagates protocol-configuration and workload-spec build errors.
pub fn run_workload_spec_stepped(
    scheme: Scheme,
    spec: &WorkloadSpec,
    config: &SystemConfig,
    stepper: &dyn Stepper,
) -> OramResult<RunMetrics> {
    // Sharded specs run as K independent systems with deterministically
    // merged metrics. Serial shard stepping is the default here so nesting
    // (a `ThreadPoolExecutor` running many sharded runs) never
    // oversubscribes cores — `crate::shard::PooledShardStepper` is proven
    // byte-identical, so this is purely a scheduling choice.
    if spec.sharded().is_some() {
        let system = crate::shard::ShardedSystem::new(scheme, spec, config)?;
        return crate::shard::ShardStepper::run(
            &crate::shard::SerialShardStepper,
            &system,
            stepper,
        );
    }
    let params = config.hierarchy_params()?;
    let prefetch_length = if scheme.uses_prefetch() {
        config
            .prefetch_override
            .unwrap_or_else(|| spec.default_prefetch_length())
            .max(1)
    } else {
        1
    };
    let hierarchy_cfg =
        scheme.hierarchy_config(params, config.seed, prefetch_length, config.stash_capacity)?;
    let controller_cfg = scheme.controller_config(config.pe_columns);
    run_with_configs_spec_stepped(
        scheme,
        hierarchy_cfg,
        controller_cfg,
        spec,
        config,
        prefetch_length,
        stepper,
    )
}

/// [`run_with_configs`] with an explicit clock-advance strategy.
///
/// # Errors
///
/// Propagates protocol-configuration errors.
pub fn run_with_configs_stepped(
    scheme: Scheme,
    hierarchy_cfg: palermo_oram::hierarchy::HierarchyConfig,
    controller_cfg: palermo_controller::ControllerConfig,
    workload: Workload,
    config: &SystemConfig,
    prefetch_length: u32,
    stepper: &dyn Stepper,
) -> OramResult<RunMetrics> {
    run_with_configs_spec_stepped(
        scheme,
        hierarchy_cfg,
        controller_cfg,
        &WorkloadSpec::Table2(workload),
        config,
        prefetch_length,
        stepper,
    )
}

/// The fully general single-system simulation entry point: explicit
/// protocol/controller configurations, an arbitrary [`WorkloadSpec`], and
/// an explicit clock-advance strategy. Everything else in this module
/// lowers to this function (sharded specs instead lower to one core-loop
/// call per shard via `crate::shard`).
///
/// # Errors
///
/// Propagates protocol-configuration and workload-spec build errors.
/// Rejects sharded specs: explicit protocol configurations describe one
/// system, and a sharded run derives one configuration per shard.
pub fn run_with_configs_spec_stepped(
    scheme: Scheme,
    hierarchy_cfg: palermo_oram::hierarchy::HierarchyConfig,
    controller_cfg: palermo_controller::ControllerConfig,
    spec: &WorkloadSpec,
    config: &SystemConfig,
    prefetch_length: u32,
    stepper: &dyn Stepper,
) -> OramResult<RunMetrics> {
    if spec.sharded().is_some() {
        return Err(OramError::InvalidParams {
            reason: format!(
                "sharded spec '{spec}' cannot run under one explicit protocol \
configuration; use run_workload_spec, which derives a configuration per shard"
            ),
        });
    }
    let mut stream = spec.build(config.stream_footprint_hint(), config.stream_seed())?;
    run_core(
        scheme,
        hierarchy_cfg,
        controller_cfg,
        spec,
        spec.open_loop(),
        stream.as_mut(),
        config,
        prefetch_length,
        stepper,
    )
}

/// The simulation loop proper, over an already-built access stream.
///
/// This is the seam the sharded system drives each shard through:
/// `label_spec` only labels the returned metrics (every shard of a sharded
/// run carries the full sharded spec), `open` supplies the (per-shard
/// rate-scaled) serving description explicitly instead of deriving it from
/// the label, and the stream is whatever view the caller built — the whole
/// workload, or one shard's filtered slice of it.
///
/// # Errors
///
/// Propagates protocol-configuration errors and rejects non-Table II
/// streams whose footprint overruns the protected space.
#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
pub(crate) fn run_core(
    scheme: Scheme,
    hierarchy_cfg: palermo_oram::hierarchy::HierarchyConfig,
    controller_cfg: palermo_controller::ControllerConfig,
    label_spec: &WorkloadSpec,
    open: Option<&OpenLoopSpec>,
    stream: &mut dyn AccessStream,
    config: &SystemConfig,
    prefetch_length: u32,
    stepper: &dyn Stepper,
) -> OramResult<RunMetrics> {
    config
        .dram
        .validate()
        .map_err(|e| OramError::InvalidParams {
            reason: format!("invalid DRAM configuration: {e}"),
        })?;
    let mut oram = HierarchicalOram::new(hierarchy_cfg)?;
    let mut controller = OramController::new(controller_cfg);
    let mut dram = DramSystem::new(config.dram);
    let mut llc = Llc::new(config.llc);

    // Table II generators scale themselves to the footprint hint, but the
    // data-driven specs cannot: a replay's footprint is whatever the trace
    // recorded, and a mix's is the sum of its tenants. If such a stream
    // overruns the protected space the modulo below would silently wrap it,
    // aliasing tenant partitions / destroying the trace's locality while
    // reporting metrics as if it ran faithfully — reject instead.
    if !matches!(label_spec, WorkloadSpec::Table2(_)) {
        let footprint = stream.footprint_bytes();
        if footprint > config.protected_bytes {
            return Err(OramError::InvalidParams {
                reason: format!(
                    "workload spec '{label_spec}' needs a {footprint}-byte footprint but only \
{} bytes are protected; addresses would wrap and alias (shrink the trace/mix \
or raise protected_bytes)",
                    config.protected_bytes
                ),
            });
        }
    }

    let protected_lines = config.protected_bytes / 64;
    let total_requests = config.total_requests();
    let warmup = config.warmup_requests;
    // Single-tenant streams tag everything as tenant 0 by contract, so the
    // hot loop only pays the tagged pull (an extra dyn dispatch per access)
    // when there is more than one tenant to tell apart.
    let pull_tags = config.collect_per_tenant && stream.tenant_count() > 1;

    // Open-loop specs get a serving engine: arrivals land on the simulated
    // clock and requests stage only when an admitted arrival is waiting.
    // Closed-loop specs (`serving == None`) stage greedily, exactly as
    // before.
    let mut serving = open.map(|o| {
        ServingEngine::new(
            o,
            config.serving_queue_capacity,
            config.admission_policy,
            config.seed,
        )
    });
    let mut serving_at_start = serving.as_ref().map(|e| e.counters().clone());

    let mut in_flight = InFlightTable::default();

    let mut submitted: u64 = 0;
    let mut finished_real: u64 = 0;
    let mut pending_plan = None;

    // With no warm-up the measured window opens at cycle 0, before any
    // completion: waiting for the first completion (the old behaviour) left
    // every counter at zero because `finished_real == warmup` can never hold
    // once a real request has already retired.
    let mut measuring = warmup == 0;
    let mut measure_start_cycle = 0u64;
    let mut dram_at_start = dram.stats();
    let mut ctrl_at_start = *controller.stats();

    let mut metrics = RunMetrics {
        scheme,
        workload: label_spec.clone(),
        oram_requests: 0,
        workload_accesses: 0,
        dummy_requests: 0,
        cycles: 0,
        latencies: Vec::new(),
        behaviour_latency: Vec::new(),
        stash_samples: Vec::new(),
        stash_high_water: 0,
        dram: DramStats::default(),
        sync_stall_by_level: [0; 3],
        sync_stall_cycles: 0,
        llc_hit_rate: 0.0,
        prefetch_length,
        submitted_requests: 0,
        per_tenant: if config.collect_per_tenant {
            (0..stream.tenant_count())
                .map(|i| TenantMetrics::new(i as u32))
                .collect()
        } else {
            Vec::new()
        },
        arrivals: 0,
        dropped_arrivals: 0,
        queue_waits: Vec::new(),
        per_shard: Vec::new(),
        hardware: config.hardware.clone(),
        energy: config.energy,
        dram_config: config.dram,
    };

    let sample_every = (config.measured_requests / 100).max(1);

    // TEMP instrumentation (removed before commit).
    while finished_real < total_requests {
        // Deliver every open-loop arrival up to the current cycle into the
        // admission queue (a no-op for closed-loop runs).
        let arrivals_advanced_to = dram.cycle();
        if let Some(engine) = serving.as_mut() {
            engine.advance(arrivals_advanced_to);
        }

        // Generate the next ORAM request if the pipeline has room for one.
        if pending_plan.is_none() && submitted < total_requests + config.measured_requests {
            if oram.needs_background_evict() {
                let result = oram.background_evict();
                in_flight.insert(result.plan.request_id, false, true, 0, 0, None);
                pending_plan = Some(result.plan);
            } else if submitted < total_requests {
                // Closed loop stages unconditionally; open loop only when an
                // admitted arrival is waiting in the queue.
                let arrival = match serving.as_mut() {
                    None => Some(None),
                    Some(engine) => engine.pop_ready().map(Some),
                };
                if let Some(arrival) = arrival {
                    // When the spec routes one arrival process per tenant,
                    // the arrival decides whose stream forms the request;
                    // otherwise the stream keeps its own tenant selection.
                    let route = arrival.and_then(|a: crate::serving::Arrival| {
                        serving
                            .as_ref()
                            .is_some_and(ServingEngine::routes_per_tenant)
                            .then_some(a.tenant)
                    });
                    // Pull workload accesses through the LLC until one
                    // misses. An all-hits workload cannot form an ORAM
                    // request, so it would wedge this loop forever; fail
                    // loudly instead. The request belongs to the tenant of
                    // the missing access.
                    let mut accesses_for_request = 0u64;
                    let mut guard = 0u64;
                    let (pa, op, tenant) = loop {
                        let (entry, tenant) = if let Some(t) = route {
                            let tagged = stream.next_tagged_for(t);
                            (tagged.entry, tagged.tenant)
                        } else if pull_tags {
                            let tagged = stream.next_tagged();
                            (tagged.entry, tagged.tenant)
                        } else {
                            (stream.next_access(), 0)
                        };
                        accesses_for_request += 1;
                        let pa = PhysAddr::new(entry.addr.0 % (protected_lines * 64));
                        if !llc.access(pa) {
                            break (pa, entry.op, tenant);
                        }
                        guard += 1;
                        if guard > 1_000_000 {
                            return Err(OramError::WorkloadStalled {
                                accesses_scanned: guard,
                            });
                        }
                    };
                    let payload = (op == OramOp::Write).then(|| Payload::from_u64(pa.0));
                    let result = oram.access(pa, op, payload)?;
                    for line in &result.prefetched {
                        llc.fill_line(line.0);
                    }
                    in_flight.insert(
                        result.plan.request_id,
                        result.found,
                        false,
                        accesses_for_request,
                        tenant,
                        arrival.map(|a| a.arrived_at),
                    );
                    pending_plan = Some(result.plan);
                    submitted += 1;
                    if measuring {
                        metrics.submitted_requests += 1;
                        if let Some(tm) = metrics.per_tenant.get_mut(tenant as usize) {
                            tm.submitted += 1;
                        }
                    }
                }
            }
        }

        // Hand the plan to the controller as soon as a PE column frees up.
        if let Some(plan) = pending_plan.take() {
            if let Err(plan) = controller.try_submit(plan, dram.cycle()) {
                pending_plan = Some(plan);
            }
        }

        let ctrl_activity = controller.tick(&mut dram);
        let dram_result = dram.tick();

        for finished in controller.drain_finished() {
            // A completion for an id the runner never submitted means the
            // controller's bookkeeping is corrupt; surfacing it as dummy
            // traffic (the old fallback) would mask the bug.
            let entry = match in_flight.remove(finished.request_id) {
                Some(entry) => entry,
                None => {
                    debug_assert!(
                        false,
                        "controller retired unknown request id {} — \
                         in-flight table out of sync",
                        finished.request_id
                    );
                    InFlightEntry {
                        request_id: finished.request_id,
                        found: false,
                        is_dummy: finished.is_dummy,
                        accesses: 0,
                        tenant: 0,
                        arrived_at: None,
                    }
                }
            };
            if !entry.is_dummy {
                finished_real += 1;
            }
            if finished_real == warmup && !measuring {
                measuring = true;
                measure_start_cycle = dram.cycle();
                dram_at_start = dram.stats();
                ctrl_at_start = *controller.stats();
                if let Some(engine) = serving.as_mut() {
                    // Bring arrival accounting up to the window-open cycle
                    // (identical across steppers: the warm-up completion
                    // pins this cycle) before snapshotting.
                    engine.advance(dram.cycle());
                    serving_at_start = Some(engine.counters().clone());
                }
            }
            if measuring && finished_real > warmup {
                if entry.is_dummy {
                    metrics.dummy_requests += 1;
                } else {
                    metrics.oram_requests += 1;
                    metrics.workload_accesses += entry.accesses;
                    metrics.latencies.push(finished.latency());
                    let queue_wait = entry
                        .arrived_at
                        .map(|at| finished.submitted_at.saturating_sub(at));
                    if let Some(wait) = queue_wait {
                        metrics.queue_waits.push(wait);
                    }
                    metrics
                        .behaviour_latency
                        .push((entry.found, finished.latency()));
                    if let Some(tm) = metrics.per_tenant.get_mut(entry.tenant as usize) {
                        tm.record_completion(
                            finished.latency(),
                            entry.accesses,
                            finished.dram_ops,
                            queue_wait,
                        );
                    } else {
                        debug_assert!(
                            metrics.per_tenant.is_empty(),
                            "request tagged with tenant {} but only {} tenants attributed",
                            entry.tenant,
                            metrics.per_tenant.len()
                        );
                    }
                    if metrics.oram_requests.is_multiple_of(sample_every) {
                        let progress =
                            metrics.oram_requests as f64 / config.measured_requests as f64;
                        metrics
                            .stash_samples
                            .push((progress, oram.data_stash_len()));
                    }
                }
            }
        }

        // Time skipping: after a provably-quiet iteration, jump to the next
        // cycle at which anything can change. Falls back to single-stepping
        // whenever a new plan is about to be staged (staging is a zero-time
        // runner-level event the clock models cannot predict).
        let will_stage = pending_plan.is_none()
            && submitted < total_requests + config.measured_requests
            && (oram.needs_background_evict()
                || (submitted < total_requests
                    && serving.as_ref().is_none_or(|e| e.queue_len() > 0)));
        let quiescent = ctrl_activity.settled
            && !dram_result.completions
            && !will_stage
            && (!dram_result.issued || !controller.enqueue_blocked());
        // Pending arrivals bound the skip while the run still submits
        // (`arrivals_advanced_to` rather than the post-tick cycle, so an
        // arrival landing on the current cycle forces a single step). After
        // the last submission pops stop, so arrival bookkeeping becomes a
        // pure function of the final cycle and the tail can skip freely —
        // the post-loop `advance` settles it.
        let external_next = serving
            .as_ref()
            .filter(|_| submitted < total_requests)
            .and_then(|e| e.next_arrival_cycle(arrivals_advanced_to));
        stepper.advance_idle(&mut controller, &mut dram, quiescent, external_next);
    }

    let dram_end = dram.stats();
    let ctrl_end = controller.stats();
    metrics.cycles = dram.cycle() - measure_start_cycle;
    metrics.dram = dram_delta(&dram_end, &dram_at_start);
    metrics.sync_stall_cycles = ctrl_end.sync_stall_cycles - ctrl_at_start.sync_stall_cycles;
    for i in 0..3 {
        metrics.sync_stall_by_level[i] =
            ctrl_end.sync_stall_by_level[i] - ctrl_at_start.sync_stall_by_level[i];
    }
    metrics.stash_high_water = oram.stash_high_water();
    metrics.llc_hit_rate = llc.hit_rate();
    if let Some(engine) = serving.as_mut() {
        // Settle arrival bookkeeping at the (stepper-identical) final cycle
        // and restrict the counters to the measured window by delta.
        engine.advance(dram.cycle());
        let end = engine.counters();
        let start = serving_at_start.unwrap_or_default();
        metrics.arrivals = end.arrivals - start.arrivals;
        metrics.dropped_arrivals = end.dropped - start.dropped;
        if engine.routes_per_tenant() {
            for tm in &mut metrics.per_tenant {
                let i = tm.tenant as usize;
                tm.dropped =
                    end.dropped_by_tenant[i] - start.dropped_by_tenant.get(i).copied().unwrap_or(0);
            }
        }
    }
    Ok(metrics)
}

/// Runs every workload of Table II under one scheme, returning the metrics
/// in [`Workload::ALL`] order.
///
/// # Errors
///
/// Propagates the first configuration error encountered.
pub fn run_all_workloads(scheme: Scheme, config: &SystemConfig) -> OramResult<Vec<RunMetrics>> {
    run_all_workloads_with(scheme, config, &crate::experiment::SerialExecutor)
}

/// Runs every workload of Table II under one scheme on the given executor,
/// returning the metrics in [`Workload::ALL`] order.
///
/// # Errors
///
/// Propagates the first (in grid order) error encountered.
pub fn run_all_workloads_with(
    scheme: Scheme,
    config: &SystemConfig,
    executor: &dyn crate::experiment::Executor,
) -> OramResult<Vec<RunMetrics>> {
    let results = crate::experiment::Experiment::new(config.clone())
        .schemes([scheme])
        .workloads(Workload::ALL)
        .run(executor)?;
    Ok(results
        .into_records()
        .into_iter()
        .map(|r| r.metrics)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SystemConfig {
        let mut cfg = SystemConfig::small_for_tests();
        cfg.measured_requests = 40;
        cfg.warmup_requests = 10;
        cfg
    }

    #[test]
    fn palermo_run_produces_consistent_metrics() {
        let m = run_workload(Scheme::Palermo, Workload::Random, &tiny()).unwrap();
        assert_eq!(m.oram_requests, 40);
        assert_eq!(m.latencies.len(), 40);
        assert!(m.cycles > 0);
        assert!(m.mean_latency() > 0.0);
        assert!(m.requests_per_cycle() > 0.0);
        assert!(m.dram.total_accesses() > 0);
        assert!(m.dram.bandwidth_utilization() > 0.0);
        assert!(m.stash_high_water <= 256);
        assert!(!m.stash_samples.is_empty());
    }

    #[test]
    fn palermo_beats_ring_on_random_traffic() {
        let cfg = tiny();
        let ring = run_workload(Scheme::RingOram, Workload::Random, &cfg).unwrap();
        let palermo = run_workload(Scheme::Palermo, Workload::Random, &cfg).unwrap();
        assert!(
            palermo.requests_per_cycle() > ring.requests_per_cycle(),
            "palermo {} vs ring {}",
            palermo.requests_per_cycle(),
            ring.requests_per_cycle()
        );
        assert!(
            palermo.dram.bandwidth_utilization() > ring.dram.bandwidth_utilization(),
            "palermo util {} vs ring util {}",
            palermo.dram.bandwidth_utilization(),
            ring.dram.bandwidth_utilization()
        );
    }

    #[test]
    fn ring_baseline_is_sync_dominated() {
        let m = run_workload(Scheme::RingOram, Workload::Mcf, &tiny()).unwrap();
        assert!(
            m.sync_stall_cycles as f64 > 0.3 * m.cycles as f64,
            "sync stalls {} of {} cycles",
            m.sync_stall_cycles,
            m.cycles
        );
    }

    #[test]
    fn prefetch_scheme_hits_in_llc_on_streaming() {
        let mut cfg = tiny();
        cfg.prefetch_override = Some(8);
        let m = run_workload(Scheme::PalermoPrefetch, Workload::Streaming, &cfg).unwrap();
        assert_eq!(m.prefetch_length, 8);
        assert!(m.llc_hit_rate > 0.5, "llc hit rate {}", m.llc_hit_rate);
    }

    #[test]
    fn dummy_requests_counted_for_proram() {
        let mut cfg = tiny();
        cfg.prefetch_override = Some(8);
        let m = run_workload(Scheme::PrOram, Workload::Streaming, &cfg).unwrap();
        // PrORAM on a perfectly sequential trace with forced leaf grouping
        // must eventually trigger background evictions.
        assert!(m.dummy_fraction() >= 0.0); // counted (may be 0 for tiny runs)
        assert_eq!(m.oram_requests, 40);
    }

    #[test]
    fn all_hit_workload_returns_typed_stall_error() {
        // The whole streaming footprint fits in the LLC, so after the first
        // pass every access hits and no further ORAM request can be formed.
        let mut cfg = SystemConfig::small_for_tests();
        cfg.workload_footprint = 1 << 20;
        cfg.llc.capacity_bytes = 4 << 20;
        cfg.prefetch_override = Some(8);
        cfg.measured_requests = 2300; // more requests than the LLC can miss
        cfg.warmup_requests = 0;
        let err = run_workload(Scheme::PalermoPrefetch, Workload::Streaming, &cfg).unwrap_err();
        assert!(
            matches!(err, OramError::WorkloadStalled { accesses_scanned } if accesses_scanned > 1_000_000),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn in_flight_table_handles_out_of_order_completion() {
        let entry = |request_id, found, is_dummy, accesses, tenant, arrived_at| InFlightEntry {
            request_id,
            found,
            is_dummy,
            accesses,
            tenant,
            arrived_at,
        };
        let mut table = InFlightTable::default();
        table.insert(1, true, false, 4, 0, None);
        table.insert(2, false, true, 0, 0, None);
        table.insert(3, false, false, 1, 2, Some(77));
        assert_eq!(table.remove(2), Some(entry(2, false, true, 0, 0, None)));
        assert_eq!(table.remove(2), None);
        assert_eq!(table.remove(1), Some(entry(1, true, false, 4, 0, None)));
        assert_eq!(
            table.remove(3),
            Some(entry(3, false, false, 1, 2, Some(77)))
        );
        assert_eq!(table.remove(4), None);
    }

    #[test]
    fn zero_warmup_opens_measured_window() {
        // Regression: with `warmup_requests = 0` the old loop only started
        // measuring if a dummy happened to complete before the first real
        // request, so metrics silently stayed empty.
        let mut cfg = SystemConfig::small_for_tests();
        cfg.measured_requests = 30;
        cfg.warmup_requests = 0;
        let m = run_workload(Scheme::Palermo, Workload::Random, &cfg).unwrap();
        assert_eq!(m.oram_requests, cfg.measured_requests);
        assert_eq!(m.latencies.len(), cfg.measured_requests as usize);
        assert!(m.workload_accesses >= m.oram_requests);
        assert!(m.cycles > 0);
        assert!(m.dram.total_accesses() > 0);
    }

    #[test]
    fn single_tenant_run_attributes_everything_to_tenant_zero() {
        let m = run_workload(Scheme::Palermo, Workload::Random, &tiny()).unwrap();
        assert_eq!(m.per_tenant.len(), 1);
        assert!(m.tenant_conservation_ok());
        let t = &m.per_tenant[0];
        assert_eq!(t.tenant, 0);
        assert_eq!(t.completed, m.oram_requests);
        assert_eq!(t.workload_accesses, m.workload_accesses);
        assert!(t.submitted > 0);
        assert_eq!(m.submitted_requests, t.submitted);
        assert_eq!(t.latency.sum(), m.latencies.iter().sum::<u64>());
        assert!((t.mean_latency() - m.mean_latency()).abs() < 1e-9);
        assert!(t.p50_latency() <= t.p95_latency() && t.p95_latency() <= t.p99_latency());
        assert!(t.dram_ops > 0);
        assert_eq!(m.tenant_dram_share(0), 1.0);
        assert_eq!(m.tenant_dram_share(1), 0.0);
    }

    #[test]
    fn disabling_attribution_changes_no_aggregate_metric() {
        let mut cfg = tiny();
        let tagged = run_workload(Scheme::Palermo, Workload::Random, &cfg).unwrap();
        cfg.collect_per_tenant = false;
        let untagged = run_workload(Scheme::Palermo, Workload::Random, &cfg).unwrap();
        assert!(untagged.per_tenant.is_empty());
        assert!(untagged.tenant_conservation_ok());
        // Everything except the per-tenant vector is byte-identical.
        let mut tagged_stripped = tagged.clone();
        tagged_stripped.per_tenant = Vec::new();
        assert_eq!(tagged_stripped, untagged);
    }

    #[test]
    fn open_loop_run_accounts_queue_waits_and_arrivals() {
        let spec = WorkloadSpec::from_name("open:poisson:0.02:random").unwrap();
        let m = run_workload_spec(Scheme::Palermo, &spec, &tiny()).unwrap();
        assert_eq!(m.oram_requests, 40);
        assert_eq!(m.queue_waits.len(), m.latencies.len());
        assert!(m.arrivals > 0);
        assert!(m.arrival_conservation_ok());
        assert!(m.tenant_conservation_ok());
        assert_eq!(m.offered_rate_per_kcycle(), Some(0.02));
        assert!(m.achieved_rate_per_kcycle() > 0.0);
        // Queue wait + service latency = end-to-end latency, per request.
        let e2e = m.end_to_end_latencies();
        for (i, &total) in e2e.iter().enumerate() {
            assert_eq!(total, m.queue_waits[i] + m.latencies[i]);
        }
    }

    #[test]
    fn open_loop_run_is_identical_across_steppers() {
        let cfg = tiny();
        for name in [
            "open:poisson:0.05:random",
            "open:bursty:0.2:20000:60000:mcf",
        ] {
            let spec = WorkloadSpec::from_name(name).unwrap();
            let event =
                run_workload_spec_stepped(Scheme::Palermo, &spec, &cfg, &EventStepper).unwrap();
            let reference =
                run_workload_spec_stepped(Scheme::Palermo, &spec, &cfg, &ReferenceStepper).unwrap();
            assert_eq!(event, reference, "steppers diverged on {name}");
        }
    }

    #[test]
    fn closed_loop_run_carries_no_arrival_state() {
        let m = run_workload(Scheme::Palermo, Workload::Random, &tiny()).unwrap();
        assert_eq!(m.arrivals, 0);
        assert_eq!(m.dropped_arrivals, 0);
        assert!(m.queue_waits.is_empty());
        assert!(m.arrival_conservation_ok());
        assert_eq!(m.end_to_end_latencies(), m.latencies);
    }

    #[test]
    fn metrics_empty_helpers_are_safe() {
        let m = RunMetrics {
            scheme: Scheme::Palermo,
            workload: WorkloadSpec::Table2(Workload::Random),
            oram_requests: 0,
            workload_accesses: 0,
            dummy_requests: 0,
            cycles: 0,
            latencies: vec![],
            behaviour_latency: vec![],
            stash_samples: vec![],
            stash_high_water: 0,
            dram: DramStats::default(),
            sync_stall_by_level: [0; 3],
            sync_stall_cycles: 0,
            llc_hit_rate: 0.0,
            prefetch_length: 1,
            submitted_requests: 0,
            per_tenant: vec![],
            arrivals: 0,
            dropped_arrivals: 0,
            queue_waits: vec![],
            per_shard: vec![],
            hardware: "ddr4-3200".to_string(),
            energy: EnergyCoefficients::default(),
            dram_config: DramConfig::ddr4_3200_quad_channel(),
        };
        assert_eq!(m.requests_per_second(), 0.0);
        assert_eq!(m.mean_latency(), 0.0);
        assert_eq!(m.dummy_fraction(), 0.0);
        assert_eq!(m.tenant_dram_share(0), 0.0);
        assert_eq!(m.mean_queue_wait(), 0.0);
        assert_eq!(m.drop_fraction(), 0.0);
        assert_eq!(m.achieved_rate_per_kcycle(), 0.0);
        assert_eq!(m.offered_rate_per_kcycle(), None);
        assert!(m.end_to_end_latencies().is_empty());
        assert!(m.tenant_conservation_ok());
        assert!(m.arrival_conservation_ok());
    }
}
