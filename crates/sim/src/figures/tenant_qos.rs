//! Per-tenant QoS runner: who stalls whom inside a multi-tenant mix.
//!
//! [`super::tenant_mix`] compares *schemes* on a mix by aggregate
//! throughput; this runner answers the orthogonal multi-tenant deployment
//! question — what each co-located tenant experiences: per-tenant
//! completion counts, mean/p50/p95/p99 response latency and the tenant's
//! share of DRAM demand, per scheme. Works for any [`WorkloadSpec`]
//! (single-tenant specs produce one row per scheme); the interesting inputs
//! are mixes and phased mixes, e.g. [`phased_service_mix`]'s
//! arrival/departure scenario.

use crate::experiment::{Executor, Experiment, ResultSet, SerialExecutor};
use crate::schemes::Scheme;
use crate::system::SystemConfig;
use palermo_analysis::report::{percent, Table};
use palermo_oram::error::{OramError, OramResult};
use palermo_workloads::{PhaseWindow, PhasedMixSpec, Workload, WorkloadSpec};

/// One row of the per-tenant QoS comparison (one tenant under one scheme).
#[derive(Debug, Clone)]
pub struct TenantQosRow {
    /// The scheme.
    pub scheme: Scheme,
    /// Tenant index within the spec.
    pub tenant: u32,
    /// Canonical name of the tenant's child workload.
    pub workload: String,
    /// Real requests submitted while the measured window was open.
    pub submitted: u64,
    /// Real requests completed inside the measured window.
    pub completed: u64,
    /// Mean response latency in cycles.
    pub mean_latency: f64,
    /// Median latency estimate in cycles.
    pub p50_latency: u64,
    /// 95th-percentile latency estimate in cycles.
    pub p95_latency: u64,
    /// 99th-percentile tail latency estimate in cycles.
    pub p99_latency: u64,
    /// The tenant's share of tenant-attributed DRAM bursts.
    pub dram_share: f64,
}

/// The canonical tenant arrival/departure scenario used by the example and
/// CI: a hot redis tier (weight 2) that never leaves, an llm tenant that
/// arrives a quarter of the way into the access budget, and a streaming
/// tenant that departs three quarters in. `budget` is the total access
/// budget the windows are sized against (pass roughly the number of
/// accesses the run will consume; the shape survives overshoot because
/// redis covers the tail).
pub fn phased_service_mix(budget: u64) -> WorkloadSpec {
    let budget = budget.max(4);
    WorkloadSpec::PhasedMix(
        PhasedMixSpec::new()
            .tenant(Workload::Redis.into(), 2, PhaseWindow::ALWAYS)
            .tenant(Workload::Llm.into(), 1, PhaseWindow::from_start(budget / 4))
            .tenant(
                Workload::Streaming.into(),
                1,
                PhaseWindow::until(budget * 3 / 4),
            ),
    )
}

/// Runs the comparison serially.
///
/// # Errors
///
/// Propagates configuration and workload-spec build errors.
pub fn run(
    config: &SystemConfig,
    spec: &WorkloadSpec,
    schemes: &[Scheme],
) -> OramResult<Vec<TenantQosRow>> {
    run_with(config, spec, schemes, &SerialExecutor)
}

/// Runs the comparison on the given executor, returning one row per
/// (scheme, tenant) in scheme-major order.
///
/// # Errors
///
/// Propagates configuration and workload-spec build errors, and rejects a
/// configuration with per-tenant attribution disabled (there would be
/// nothing to report).
pub fn run_with(
    config: &SystemConfig,
    spec: &WorkloadSpec,
    schemes: &[Scheme],
    executor: &dyn Executor,
) -> OramResult<Vec<TenantQosRow>> {
    if !config.collect_per_tenant {
        return Err(OramError::InvalidParams {
            reason: "tenant_qos needs collect_per_tenant enabled".into(),
        });
    }
    let results = Experiment::new(config.clone())
        .schemes(schemes.iter().copied())
        .workload_specs([spec.clone()])
        .run(executor)?;
    Ok(rows(&results, spec, schemes))
}

/// Maps already-executed results into QoS rows, one per (scheme, tenant)
/// in scheme-major order — use this instead of [`run_with`] when the grid
/// has been run elsewhere (the rows are derived from the records, so no
/// simulation is repeated). Schemes missing from the set are skipped.
pub fn rows(results: &ResultSet, spec: &WorkloadSpec, schemes: &[Scheme]) -> Vec<TenantQosRow> {
    let mut rows = Vec::new();
    for &scheme in schemes {
        let Some(record) = results.get_spec(scheme, spec) else {
            continue;
        };
        debug_assert!(record.metrics.tenant_conservation_ok());
        // Reuse the export mapping so the figure table and the CSV/JSON
        // exports can never disagree on a field's meaning.
        for s in record.tenant_summaries() {
            rows.push(TenantQosRow {
                scheme,
                tenant: s.tenant,
                workload: s.tenant_workload,
                submitted: s.submitted,
                completed: s.completed,
                mean_latency: s.mean_latency,
                p50_latency: s.p50_latency,
                p95_latency: s.p95_latency,
                p99_latency: s.p99_latency,
                dram_share: s.dram_share,
            });
        }
    }
    rows
}

/// Renders the rows as a text table titled with the spec name.
pub fn table(spec: &WorkloadSpec, rows: &[TenantQosRow]) -> Table {
    let mut t = Table::new(
        format!("Per-tenant QoS — {spec}"),
        &[
            "scheme",
            "tenant",
            "workload",
            "subm",
            "compl",
            "mean",
            "p50",
            "p95",
            "p99",
            "DRAM share",
        ],
    );
    for r in rows {
        t.row(&[
            r.scheme.to_string(),
            r.tenant.to_string(),
            r.workload.clone(),
            r.submitted.to_string(),
            r.completed.to_string(),
            format!("{:.0}", r.mean_latency),
            r.p50_latency.to_string(),
            r.p95_latency.to_string(),
            r.p99_latency.to_string(),
            percent(r.dram_share),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qos_rows_cover_the_scheme_by_tenant_grid() {
        let cfg = super::super::smoke_config();
        let spec = phased_service_mix(4000);
        let schemes = [Scheme::RingOram, Scheme::Palermo];
        let rows = run(&cfg, &spec, &schemes).unwrap();
        assert_eq!(rows.len(), schemes.len() * spec.tenant_count());
        for r in &rows {
            assert!(r.p50_latency <= r.p95_latency && r.p95_latency <= r.p99_latency);
            assert!((0.0..=1.0).contains(&r.dram_share));
        }
        // The always-on redis tenant serves work under every scheme.
        for &scheme in &schemes {
            let redis = rows
                .iter()
                .find(|r| r.scheme == scheme && r.tenant == 0)
                .unwrap();
            assert_eq!(redis.workload, "redis");
            assert!(redis.completed > 0, "{scheme} starved the always-on tenant");
        }
        assert_eq!(table(&spec, &rows).len(), rows.len());
    }

    #[test]
    fn disabled_attribution_is_rejected() {
        let mut cfg = super::super::smoke_config();
        cfg.collect_per_tenant = false;
        let err = run(&cfg, &phased_service_mix(1000), &[Scheme::Palermo]).unwrap_err();
        assert!(err.to_string().contains("collect_per_tenant"), "{err}");
    }
}
