//! Multi-tenant mix runner: scheme comparison on mixed cloud-service
//! traffic.
//!
//! The paper evaluates one workload at a time (Table II / Fig. 10); real
//! ORAM deployments serve *mixes* of co-located tenants. This runner sweeps
//! a set of schemes over one [`WorkloadSpec`] — typically a
//! [`WorkloadSpec::Mix`] built with [`service_mix`] — and reports the
//! end-to-end serving metrics per scheme, normalised to the first scheme in
//! the list (the baseline column of the table).

use crate::experiment::{Executor, Experiment, SerialExecutor};
use crate::schemes::Scheme;
use crate::system::SystemConfig;
use palermo_analysis::report::{percent, speedup, Table};
use palermo_oram::error::OramResult;
use palermo_workloads::{MixSpec, Workload, WorkloadSpec};

/// One row of the tenant-mix comparison (one scheme on the mix).
#[derive(Debug, Clone)]
pub struct TenantMixRow {
    /// The scheme.
    pub scheme: Scheme,
    /// Workload accesses served per cycle (the end-to-end metric).
    pub accesses_per_cycle: f64,
    /// `accesses_per_cycle` normalised to the first scheme in the sweep.
    pub speedup_over_baseline: f64,
    /// Mean ORAM response latency in cycles.
    pub mean_latency: f64,
    /// DRAM data-bus utilisation.
    pub bandwidth_utilization: f64,
    /// LLC hit rate over the run.
    pub llc_hit_rate: f64,
    /// Fraction of completed requests that were background-eviction
    /// dummies.
    pub dummy_fraction: f64,
}

/// Builds the canonical N-tenant cloud-serving mix used by the example and
/// CI: tenants cycle through redis (weight 2), llm (weight 1) and stream
/// (weight 1) under weighted round-robin — a hot KV tier in front of
/// inference and streaming services.
pub fn service_mix(tenants: usize) -> WorkloadSpec {
    let mut mix = MixSpec::round_robin();
    for i in 0..tenants.max(1) {
        let (workload, weight) = match i % 3 {
            0 => (Workload::Redis, 2),
            1 => (Workload::Llm, 1),
            _ => (Workload::Streaming, 1),
        };
        mix = mix.tenant(workload.into(), weight);
    }
    WorkloadSpec::Mix(mix)
}

/// Runs the comparison serially.
///
/// # Errors
///
/// Propagates configuration and workload-spec build errors.
pub fn run(
    config: &SystemConfig,
    spec: &WorkloadSpec,
    schemes: &[Scheme],
) -> OramResult<Vec<TenantMixRow>> {
    run_with(config, spec, schemes, &SerialExecutor)
}

/// Runs the comparison on the given executor. The first scheme in
/// `schemes` is the normalisation baseline.
///
/// # Errors
///
/// Propagates configuration and workload-spec build errors.
pub fn run_with(
    config: &SystemConfig,
    spec: &WorkloadSpec,
    schemes: &[Scheme],
    executor: &dyn Executor,
) -> OramResult<Vec<TenantMixRow>> {
    let results = Experiment::new(config.clone())
        .schemes(schemes.iter().copied())
        .workload_specs([spec.clone()])
        .run(executor)?;
    let baseline = schemes
        .first()
        .and_then(|&s| results.get_spec(s, spec))
        .map_or(f64::MIN_POSITIVE, |r| {
            r.metrics.accesses_per_cycle().max(f64::MIN_POSITIVE)
        });
    Ok(schemes
        .iter()
        .filter_map(|&scheme| results.get_spec(scheme, spec))
        .map(|record| {
            let m = &record.metrics;
            TenantMixRow {
                scheme: record.scheme,
                accesses_per_cycle: m.accesses_per_cycle(),
                speedup_over_baseline: m.accesses_per_cycle() / baseline,
                mean_latency: m.mean_latency(),
                bandwidth_utilization: m.dram.bandwidth_utilization(),
                llc_hit_rate: m.llc_hit_rate,
                dummy_fraction: m.dummy_fraction(),
            }
        })
        .collect())
}

/// Renders the rows as a text table titled with the mix's spec name.
pub fn table(spec: &WorkloadSpec, rows: &[TenantMixRow]) -> Table {
    let mut t = Table::new(
        format!("Tenant mix — {spec}"),
        &[
            "scheme",
            "acc/cycle",
            "speedup",
            "mean lat",
            "BW util",
            "LLC hit",
            "dummy",
        ],
    );
    for r in rows {
        t.row(&[
            r.scheme.to_string(),
            format!("{:.5}", r.accesses_per_cycle),
            speedup(r.speedup_over_baseline),
            format!("{:.0}", r.mean_latency),
            percent(r.bandwidth_utilization),
            percent(r.llc_hit_rate),
            percent(r.dummy_fraction),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn palermo_beats_ring_on_the_service_mix() {
        let cfg = super::super::smoke_config();
        let spec = service_mix(4);
        let rows = run(&cfg, &spec, &[Scheme::RingOram, Scheme::Palermo]).unwrap();
        assert_eq!(rows.len(), 2);
        assert!((rows[0].speedup_over_baseline - 1.0).abs() < 1e-12);
        assert!(
            rows[1].speedup_over_baseline > 1.0,
            "palermo speedup {} on the mix",
            rows[1].speedup_over_baseline
        );
        assert_eq!(table(&spec, &rows).len(), 2);
    }

    #[test]
    fn service_mix_shape_is_stable() {
        let spec = service_mix(8);
        assert_eq!(
            spec.name(),
            "mix:rr:redis*2+llm+stream+redis*2+llm+stream+redis*2+llm"
        );
        let WorkloadSpec::Mix(mix) = &spec else {
            panic!("service_mix must build a mix");
        };
        assert_eq!(mix.tenants.len(), 8);
        assert!(spec.validate().is_ok());
    }
}
