//! Fig. 12: Palermo stash occupancy over time.
//!
//! Even with concurrent requests in flight, the Palermo protocol keeps the
//! data stash bounded well below the 256-entry hardware capacity (the paper
//! observes maxima of 228–237 across the deep-dive workloads).

use crate::experiment::{Executor, Experiment, SerialExecutor};
use crate::schemes::Scheme;
use crate::system::SystemConfig;
use palermo_analysis::report::Table;
use palermo_oram::error::OramResult;
use palermo_workloads::Workload;

/// Stash-occupancy series for one workload.
#[derive(Debug, Clone)]
pub struct Fig12Row {
    /// The workload.
    pub workload: Workload,
    /// `(progress in [0,1], data-stash occupancy)` samples.
    pub samples: Vec<(f64, usize)>,
    /// Maximum stash occupancy observed anywhere in the hierarchy.
    pub high_water: usize,
    /// The configured hardware capacity.
    pub capacity: usize,
}

/// Runs the Fig. 12 experiment serially.
///
/// # Errors
///
/// Propagates configuration errors from the protocol layer.
pub fn run(config: &SystemConfig) -> OramResult<Vec<Fig12Row>> {
    run_with(config, &SerialExecutor)
}

/// Runs the Fig. 12 experiment on the given executor.
///
/// # Errors
///
/// Propagates configuration errors from the protocol layer.
pub fn run_with(config: &SystemConfig, executor: &dyn Executor) -> OramResult<Vec<Fig12Row>> {
    let results = Experiment::new(config.clone())
        .schemes([Scheme::Palermo])
        .workloads(super::DEEP_DIVE_WORKLOADS)
        .run(executor)?;
    Ok(results
        .iter()
        .map(|record| Fig12Row {
            workload: record
                .workload
                .as_table2()
                .expect("the Fig. 12 grid is built from Table II workloads"),
            samples: record.metrics.stash_samples.clone(),
            high_water: record.metrics.stash_high_water,
            capacity: config.stash_capacity,
        })
        .collect())
}

/// Renders the high-water summary as a text table.
pub fn table(rows: &[Fig12Row]) -> Table {
    let mut t = Table::new(
        "Fig. 12 — Palermo stash occupancy",
        &["workload", "max occupancy", "capacity", "bounded"],
    );
    for r in rows {
        t.row(&[
            r.workload.to_string(),
            format!("{}", r.high_water),
            format!("{}", r.capacity),
            if r.high_water <= r.capacity {
                "yes"
            } else {
                "NO"
            }
            .to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stash_stays_bounded_for_all_workloads() {
        let cfg = super::super::smoke_config();
        let rows = run(&cfg).unwrap();
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(
                r.high_water <= r.capacity,
                "{}: {} > {}",
                r.workload,
                r.high_water,
                r.capacity
            );
            assert!(!r.samples.is_empty());
            assert!(r.samples.iter().all(|&(p, _)| (0.0..=1.01).contains(&p)));
        }
        assert_eq!(table(&rows).len(), 4);
    }
}
