//! Fig. 15: area and power of the Palermo ORAM controller.
//!
//! Reproduced with the analytical model of `palermo-controller::area_power`
//! (calibrated against the paper's 28 nm synthesis results: 5.78 mm² and
//! 2.14 W at 1.6 GHz, dominated by the on-chip caches and PE buffers).

use crate::system::SystemConfig;
use palermo_analysis::report::Table;
use palermo_controller::area_power::{estimate, AreaPowerEstimate, ControllerProvisioning};

/// Builds the provisioning implied by a system configuration: the Table
/// III defaults with the mesh width taken from `pe_columns`, then any
/// overrides the configuration's hardware profile carries on top.
pub fn provisioning(config: &SystemConfig) -> ControllerProvisioning {
    let defaults = ControllerProvisioning::default();
    let o = &config.provisioning;
    ControllerProvisioning {
        pe_rows: o.pe_rows.unwrap_or(3),
        pe_columns: o.pe_columns.unwrap_or(config.pe_columns as u32),
        treetop_bytes: o.treetop_bytes.unwrap_or(defaults.treetop_bytes),
        posmap3_bytes: o.posmap3_bytes.unwrap_or(defaults.posmap3_bytes),
        stash_bytes: o.stash_bytes.unwrap_or(defaults.stash_bytes),
    }
}

/// Runs the Fig. 15 estimate.
pub fn run(config: &SystemConfig) -> AreaPowerEstimate {
    estimate(&provisioning(config))
}

/// Renders the component breakdown as a text table.
pub fn table(est: &AreaPowerEstimate) -> Table {
    let mut t = Table::new(
        "Fig. 15 — Palermo controller area and power (28 nm, 1.6 GHz)",
        &["component", "area (mm^2)", "power (W)"],
    );
    for c in &est.components {
        t.row(&[
            c.name.to_string(),
            format!("{:.3}", c.area_mm2),
            format!("{:.3}", c.power_w),
        ]);
    }
    t.row(&[
        "TOTAL".to_string(),
        format!("{:.2}", est.total_area_mm2()),
        format!("{:.2}", est.total_power_w()),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_configuration_matches_paper_scale() {
        let est = run(&SystemConfig::paper_default());
        assert!((est.total_area_mm2() - 5.78).abs() < 1.5);
        assert!((est.total_power_w() - 2.14).abs() < 0.8);
        let t = table(&est);
        assert_eq!(t.len(), est.components.len() + 1);
    }

    #[test]
    fn profile_overrides_flow_into_the_provisioning() {
        use palermo_dram::HardwareProfile;
        let base = provisioning(&SystemConfig::paper_default());
        assert_eq!(
            base.treetop_bytes,
            ControllerProvisioning::default().treetop_bytes
        );
        // hbm2e doubles the tree-top cache; everything else keeps defaults.
        let cfg = SystemConfig::paper_default().with_hardware(&HardwareProfile::hbm2e());
        let hbm = provisioning(&cfg);
        assert_eq!(hbm.treetop_bytes, 2 * base.treetop_bytes);
        assert_eq!(hbm.pe_columns, base.pe_columns);
        assert_eq!(hbm.posmap3_bytes, base.posmap3_bytes);
        assert!(estimate(&hbm).total_area_mm2() > estimate(&base).total_area_mm2());
    }
}
