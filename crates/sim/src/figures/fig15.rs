//! Fig. 15: area and power of the Palermo ORAM controller.
//!
//! Reproduced with the analytical model of `palermo-controller::area_power`
//! (calibrated against the paper's 28 nm synthesis results: 5.78 mm² and
//! 2.14 W at 1.6 GHz, dominated by the on-chip caches and PE buffers).

use crate::system::SystemConfig;
use palermo_analysis::report::Table;
use palermo_controller::area_power::{estimate, AreaPowerEstimate, ControllerProvisioning};

/// Builds the provisioning implied by a system configuration.
pub fn provisioning(config: &SystemConfig) -> ControllerProvisioning {
    ControllerProvisioning {
        pe_rows: 3,
        pe_columns: config.pe_columns as u32,
        ..ControllerProvisioning::default()
    }
}

/// Runs the Fig. 15 estimate.
pub fn run(config: &SystemConfig) -> AreaPowerEstimate {
    estimate(&provisioning(config))
}

/// Renders the component breakdown as a text table.
pub fn table(est: &AreaPowerEstimate) -> Table {
    let mut t = Table::new(
        "Fig. 15 — Palermo controller area and power (28 nm, 1.6 GHz)",
        &["component", "area (mm^2)", "power (W)"],
    );
    for c in &est.components {
        t.row(&[
            c.name.to_string(),
            format!("{:.3}", c.area_mm2),
            format!("{:.3}", c.power_w),
        ]);
    }
    t.row(&[
        "TOTAL".to_string(),
        format!("{:.2}", est.total_area_mm2()),
        format!("{:.2}", est.total_power_w()),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_configuration_matches_paper_scale() {
        let est = run(&SystemConfig::paper_default());
        assert!((est.total_area_mm2() - 5.78).abs() < 1.5);
        assert!((est.total_power_w() - 2.14).abs() < 0.8);
        let t = table(&est);
        assert_eq!(t.len(), est.components.len() + 1);
    }
}
