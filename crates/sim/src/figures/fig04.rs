//! Fig. 4: prefetch-based baselines on the synthetic streaming workload.
//!
//! PrORAM and LAORAM (PrORAM with the fat tree) are swept over prefetch
//! lengths on `stm`. The paper's point: despite perfect spatial locality,
//! the forced same-leaf mapping inflates the dummy-request ratio and caps
//! the achievable speedup (≈3.2× for LAORAM at pf=4).

use crate::experiment::{CustomProtocol, Executor, Experiment, RunSpec, SerialExecutor};
use crate::schemes::Scheme;
use crate::system::SystemConfig;
use palermo_analysis::report::{percent, speedup, Table};
use palermo_oram::baselines;
use palermo_oram::error::OramResult;
use palermo_workloads::Workload;

/// One configuration point of Fig. 4.
#[derive(Debug, Clone)]
pub struct Fig04Row {
    /// Prefetch length (1 = no prefetch).
    pub prefetch_length: u32,
    /// `true` for LAORAM (PrORAM with the fat tree).
    pub fat_tree: bool,
    /// Speedup over the no-prefetch PrORAM configuration.
    pub speedup: f64,
    /// Fraction of ORAM requests that were dummy background evictions.
    pub dummy_ratio: f64,
    /// Data-stash high-water mark.
    pub stash_high_water: usize,
}

fn point_label(prefetch_length: u32, fat_tree: bool) -> String {
    let variant = if fat_tree { "fat" } else { "slim" };
    format!("{variant}/pf={prefetch_length}")
}

fn point_spec(config: &SystemConfig, prefetch_length: u32, fat_tree: bool) -> OramResult<RunSpec> {
    let params = config.hierarchy_params()?;
    // The Fig. 4 experiment models PrORAM with a 1024-entry stash.
    let stash = 1024;
    let hierarchy = baselines::pr_oram(
        params,
        config.seed,
        prefetch_length,
        fat_tree,
        stash,
        stash * 3 / 4,
    )?;
    Ok(
        RunSpec::new(Scheme::PrOram, Workload::Streaming, config.clone())
            .with_custom(CustomProtocol {
                hierarchy,
                controller: Scheme::PrOram.controller_config(config.pe_columns),
                prefetch_length,
            })
            .with_label(point_label(prefetch_length, fat_tree)),
    )
}

/// Runs the Fig. 4 sweep serially.
///
/// # Errors
///
/// Propagates configuration errors from the protocol layer.
pub fn run(config: &SystemConfig, prefetch_lengths: &[u32]) -> OramResult<Vec<Fig04Row>> {
    run_with(config, prefetch_lengths, &SerialExecutor)
}

/// Runs the Fig. 4 sweep over the given prefetch lengths on the given
/// executor. All configuration points (both tree shapes, every length,
/// plus the no-prefetch normalisation baseline) run independently.
///
/// # Errors
///
/// Propagates configuration errors from the protocol layer.
pub fn run_with(
    config: &SystemConfig,
    prefetch_lengths: &[u32],
    executor: &dyn Executor,
) -> OramResult<Vec<Fig04Row>> {
    // The normalisation baseline is the slim-tree pf=1 point; when that
    // point is already part of the sweep, reuse it instead of simulating
    // the identical configuration twice.
    let mut experiment = Experiment::new(config.clone());
    let baseline_label = if prefetch_lengths.contains(&1) {
        point_label(1, false)
    } else {
        experiment = experiment.spec(point_spec(config, 1, false)?.with_label("baseline"));
        "baseline".to_string()
    };
    for &fat_tree in &[false, true] {
        for &pf in prefetch_lengths {
            experiment = experiment.spec(point_spec(config, pf, fat_tree)?);
        }
    }
    let results = experiment.run(executor)?;
    let baseline_perf = results
        .by_label(&baseline_label)
        .expect("baseline spec always present")
        .metrics
        .accesses_per_cycle()
        .max(f64::MIN_POSITIVE);
    let mut rows = Vec::new();
    for &fat_tree in &[false, true] {
        for &pf in prefetch_lengths {
            let m = &results
                .by_label(&point_label(pf, fat_tree))
                .expect("every sweep point was queued")
                .metrics;
            rows.push(Fig04Row {
                prefetch_length: pf,
                fat_tree,
                speedup: m.accesses_per_cycle() / baseline_perf,
                dummy_ratio: m.dummy_fraction(),
                stash_high_water: m.stash_high_water,
            });
        }
    }
    Ok(rows)
}

/// Renders the rows as a text table.
pub fn table(rows: &[Fig04Row]) -> Table {
    let mut t = Table::new(
        "Fig. 4 — PrORAM / LAORAM prefetch sweep on stm",
        &["variant", "pf", "speedup", "dummy ratio", "stash max"],
    );
    for r in rows {
        t.row(&[
            if r.fat_tree {
                "PrORAM w/ Fat Tree"
            } else {
                "PrORAM"
            }
            .to_string(),
            format!("{}", r.prefetch_length),
            speedup(r.speedup),
            percent(r.dummy_ratio),
            format!("{}", r.stash_high_water),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grouping_increases_stash_pressure_and_dummy_ratio() {
        let mut cfg = super::super::smoke_config();
        cfg.measured_requests = 60;
        cfg.warmup_requests = 10;
        let rows = run(&cfg, &[1, 8]).unwrap();
        assert_eq!(rows.len(), 4);
        let slim_pf1 = &rows[0];
        let slim_pf8 = &rows[1];
        assert!(
            slim_pf8.stash_high_water >= slim_pf1.stash_high_water,
            "pf=8 stash {} < pf=1 stash {}",
            slim_pf8.stash_high_water,
            slim_pf1.stash_high_water
        );
        // Fat tree should not have a larger dummy ratio than the slim tree
        // at the same prefetch length.
        let fat_pf8 = &rows[3];
        assert!(fat_pf8.dummy_ratio <= slim_pf8.dummy_ratio + 1e-9);
        let t = table(&rows);
        assert_eq!(t.len(), 4);
    }
}
