//! Latency-vs-offered-load knee curves for open-loop serving.
//!
//! The paper's figures drive every scheme closed-loop (the next request is
//! issued the moment a slot frees up), which measures *capacity* but not
//! *responsiveness under a given demand*. This runner sweeps a Poisson
//! offered load over a grid of arrival rates via
//! [`Experiment::sweep_offered_load`] and reports, per (scheme, rate)
//! point, the achieved throughput and the end-to-end (queue wait + ORAM
//! service) latency percentiles. Plotting p99 against offered rate traces
//! the classic open-loop knee: flat while the system keeps up, then a
//! sharp rise as the admission queue fills, while achieved throughput
//! plateaus at the scheme's saturation rate below the offered rate.
//!
//! Comparing schemes on the same grid shows *where* each scheme's knee
//! sits — a scheme with higher closed-loop throughput saturates at a
//! proportionally higher offered rate.

use crate::experiment::{Executor, Experiment, ResultSet, SerialExecutor};
use crate::schemes::Scheme;
use crate::system::SystemConfig;
use palermo_analysis::report::{percent, Table};
use palermo_oram::error::{OramError, OramResult};
use palermo_workloads::{ArrivalSpec, OpenLoopSpec, WorkloadSpec};

/// One point of the load curve: one scheme at one offered Poisson rate.
#[derive(Debug, Clone)]
pub struct LoadCurveRow {
    /// The scheme.
    pub scheme: Scheme,
    /// Offered load in requests per kilocycle (the swept arrival rate).
    pub offered_rate: f64,
    /// Achieved throughput in completed requests per kilocycle over the
    /// measured window.
    pub achieved_rate: f64,
    /// Arrivals resolved in the measured window.
    pub arrivals: u64,
    /// Requests completed in the measured window.
    pub completed: u64,
    /// Fraction of measured-window arrivals dropped by the admission
    /// policy.
    pub drop_fraction: f64,
    /// Mean admission-queue wait in cycles.
    pub mean_queue_wait: f64,
    /// Median end-to-end latency (queue wait + service) in cycles.
    pub p50_e2e: u64,
    /// 99th-percentile end-to-end latency in cycles.
    pub p99_e2e: u64,
}

/// Exact `q`-quantile of a sorted sample set (nearest-rank method);
/// 0 when empty.
fn exact_percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank.min(sorted.len()) - 1]
}

/// Runs the sweep serially.
///
/// # Errors
///
/// Propagates configuration and workload-spec build errors.
pub fn run(
    config: &SystemConfig,
    inner: &WorkloadSpec,
    rates: &[f64],
    schemes: &[Scheme],
) -> OramResult<Vec<LoadCurveRow>> {
    run_with(config, inner, rates, schemes, &SerialExecutor)
}

/// Runs the sweep on the given executor, returning one row per
/// (scheme, rate) in scheme-major order with rates in sweep order.
///
/// # Errors
///
/// Propagates configuration and workload-spec build errors, and rejects an
/// empty rate grid or an `inner` spec that is already open-loop (the sweep
/// supplies the arrival process).
pub fn run_with(
    config: &SystemConfig,
    inner: &WorkloadSpec,
    rates: &[f64],
    schemes: &[Scheme],
    executor: &dyn Executor,
) -> OramResult<Vec<LoadCurveRow>> {
    if rates.is_empty() {
        return Err(OramError::InvalidParams {
            reason: "load_curve needs at least one offered rate".into(),
        });
    }
    if inner.open_loop().is_some() {
        return Err(OramError::InvalidParams {
            reason: "load_curve sweeps the arrival rate itself; pass the inner \
                     (closed-loop) workload spec"
                .into(),
        });
    }
    let results = Experiment::new(config.clone())
        .schemes(schemes.iter().copied())
        .workload_specs([inner.clone()])
        .sweep_offered_load(rates.iter().copied())
        .run(executor)?;
    Ok(rows(&results, inner, rates, schemes))
}

/// Maps already-executed results into load-curve rows, one per
/// (scheme, rate) in scheme-major order — use this instead of [`run_with`]
/// when the grid has been run elsewhere (no simulation is repeated).
/// (scheme, rate) points missing from the set are skipped.
pub fn rows(
    results: &ResultSet,
    inner: &WorkloadSpec,
    rates: &[f64],
    schemes: &[Scheme],
) -> Vec<LoadCurveRow> {
    let mut out = Vec::new();
    for &scheme in schemes {
        for &rate in rates {
            let wrapped = WorkloadSpec::OpenLoop(OpenLoopSpec::new(
                ArrivalSpec::Poisson {
                    rate_per_kcycle: rate,
                },
                inner.clone(),
            ));
            let Some(record) = results.get_spec(scheme, &wrapped) else {
                continue;
            };
            debug_assert!(record.metrics.arrival_conservation_ok());
            let mut e2e = record.metrics.end_to_end_latencies();
            e2e.sort_unstable();
            out.push(LoadCurveRow {
                scheme,
                offered_rate: record.metrics.offered_rate_per_kcycle().unwrap_or(rate),
                achieved_rate: record.metrics.achieved_rate_per_kcycle(),
                arrivals: record.metrics.arrivals,
                completed: record.metrics.latencies.len() as u64,
                drop_fraction: record.metrics.drop_fraction(),
                mean_queue_wait: record.metrics.mean_queue_wait(),
                p50_e2e: exact_percentile(&e2e, 0.50),
                p99_e2e: exact_percentile(&e2e, 0.99),
            });
        }
    }
    out
}

/// The saturation throughput of a scheme: the highest achieved rate it
/// reaches anywhere on the curve (requests per kilocycle). `None` when the
/// scheme has no rows.
pub fn saturation_rate(rows: &[LoadCurveRow], scheme: Scheme) -> Option<f64> {
    rows.iter()
        .filter(|r| r.scheme == scheme)
        .map(|r| r.achieved_rate)
        .fold(None, |best, rate| {
            Some(best.map_or(rate, |b: f64| b.max(rate)))
        })
}

/// Renders the rows as a text table titled with the inner workload name.
pub fn table(inner: &WorkloadSpec, rows: &[LoadCurveRow]) -> Table {
    let mut t = Table::new(
        format!("Latency vs offered load — {inner}"),
        &[
            "scheme",
            "offered/kcyc",
            "achieved/kcyc",
            "arrivals",
            "compl",
            "dropped",
            "mean qwait",
            "p50 e2e",
            "p99 e2e",
        ],
    );
    for r in rows {
        t.row(&[
            r.scheme.to_string(),
            format!("{:.4}", r.offered_rate),
            format!("{:.4}", r.achieved_rate),
            r.arrivals.to_string(),
            r.completed.to_string(),
            percent(r.drop_fraction),
            format!("{:.0}", r.mean_queue_wait),
            r.p50_e2e.to_string(),
            r.p99_e2e.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use palermo_workloads::Workload;

    /// A low rate the small test system comfortably keeps up with and a
    /// high rate that saturates it (arrivals every 100 cycles is far
    /// faster than any ORAM access completes).
    const SMOKE_RATES: [f64; 2] = [0.005, 10.0];

    #[test]
    fn curve_shows_the_knee_for_both_schemes() {
        let cfg = super::super::smoke_config();
        let inner = WorkloadSpec::Table2(Workload::Random);
        let schemes = [Scheme::RingOram, Scheme::Palermo];
        let rows = run(&cfg, &inner, &SMOKE_RATES, &schemes).unwrap();
        assert_eq!(rows.len(), schemes.len() * SMOKE_RATES.len());
        for &scheme in &schemes {
            let per: Vec<&LoadCurveRow> = rows.iter().filter(|r| r.scheme == scheme).collect();
            let (low, high) = (per[0], per[1]);
            // Latency is monotone in load with a saturation knee: the tail
            // blows up at overload as the admission queue fills.
            assert!(
                low.p99_e2e < high.p99_e2e,
                "{scheme}: p99 {} !< {}",
                low.p99_e2e,
                high.p99_e2e
            );
            assert!(low.p50_e2e <= high.p50_e2e, "{scheme}: p50 not monotone");
            // At low load the system keeps up (no drops, negligible wait);
            // at overload achieved throughput plateaus below offered.
            assert!(low.drop_fraction == 0.0, "{scheme} dropped at low load");
            assert!(
                high.achieved_rate < high.offered_rate * 0.9,
                "{scheme}: achieved {} did not plateau below offered {}",
                high.achieved_rate,
                high.offered_rate
            );
            assert!(high.drop_fraction > 0.0, "{scheme} overload never dropped");
            let sat = saturation_rate(&rows, scheme).unwrap();
            assert!(sat >= high.achieved_rate);
        }
        assert_eq!(table(&inner, &rows).len(), rows.len());
    }

    #[test]
    fn empty_grids_and_open_inners_are_rejected() {
        let cfg = super::super::smoke_config();
        let inner = WorkloadSpec::Table2(Workload::Random);
        let err = run(&cfg, &inner, &[], &[Scheme::Palermo]).unwrap_err();
        assert!(err.to_string().contains("at least one"), "{err}");
        let open = WorkloadSpec::from_name("open:poisson:0.1:random").unwrap();
        let err = run(&cfg, &open, &[0.1], &[Scheme::Palermo]).unwrap_err();
        assert!(err.to_string().contains("inner"), "{err}");
    }
}
