//! Memory-technology comparison: the same workload mix across hardware
//! profiles, with energy next to latency.
//!
//! The Palermo evaluation fixes the memory part (Table III DDR4-3200);
//! this runner asks the deployment question the hardware-profile layer
//! exists for — how the scheme behaves when the *memory technology*
//! changes. One [`Experiment::sweep_hardware`] grid traces every (scheme,
//! profile) cell of the same workload mix and reports latency, achieved
//! bandwidth and energy per access side by side, plus the per-tenant
//! split (p99 next to the tenant's energy bill). All values derive from
//! the integer determinism-contract counters, so rows are byte-identical
//! across both executors and both steppers.

use crate::experiment::{Executor, Experiment, ResultSet, SerialExecutor};
use crate::schemes::Scheme;
use crate::system::SystemConfig;
use palermo_analysis::report::{percent, Table};
use palermo_dram::HardwareProfile;
use palermo_oram::error::{OramError, OramResult};
use palermo_workloads::WorkloadSpec;

/// One row of the aggregate comparison (one scheme on one profile).
#[derive(Debug, Clone)]
pub struct MemoryTechRow {
    /// Name of the hardware profile.
    pub hardware: String,
    /// The scheme.
    pub scheme: Scheme,
    /// Mean ORAM response latency in cycles.
    pub mean_latency: f64,
    /// 99th-percentile response latency in cycles.
    pub p99_latency: u64,
    /// Achieved DRAM data bandwidth in GB/s over the measured window.
    pub achieved_gbps: f64,
    /// DRAM data-bus utilisation over the measured window.
    pub bandwidth_utilization: f64,
    /// Total memory energy of the measured window, joules.
    pub energy_j: f64,
    /// Memory energy per DRAM access (64-byte burst), joules.
    pub energy_per_access_j: f64,
}

/// One row of the per-tenant split (one tenant, one scheme, one profile).
#[derive(Debug, Clone)]
pub struct MemoryTechTenantRow {
    /// Name of the hardware profile.
    pub hardware: String,
    /// The scheme.
    pub scheme: Scheme,
    /// Tenant index within the spec.
    pub tenant: u32,
    /// Canonical name of the tenant's child workload.
    pub workload: String,
    /// Real requests completed inside the measured window.
    pub completed: u64,
    /// 99th-percentile tail latency estimate in cycles.
    pub p99_latency: u64,
    /// The tenant's share of tenant-attributed DRAM bursts.
    pub dram_share: f64,
    /// The tenant's share of the window's memory energy, joules.
    pub energy_j: f64,
}

/// Runs the comparison serially.
///
/// # Errors
///
/// Propagates configuration and workload-spec build errors.
pub fn run(
    config: &SystemConfig,
    spec: &WorkloadSpec,
    schemes: &[Scheme],
    profiles: &[HardwareProfile],
) -> OramResult<ResultSet> {
    run_with(config, spec, schemes, profiles, &SerialExecutor)
}

/// Runs the scheme x profile grid on the given executor and returns the
/// raw result set (derive the tables with [`rows`] and [`tenant_rows`]).
///
/// # Errors
///
/// Propagates configuration and workload-spec build errors, rejects an
/// empty profile list, and rejects a configuration with per-tenant
/// attribution disabled (the per-tenant energy split needs it).
pub fn run_with(
    config: &SystemConfig,
    spec: &WorkloadSpec,
    schemes: &[Scheme],
    profiles: &[HardwareProfile],
    executor: &dyn Executor,
) -> OramResult<ResultSet> {
    if profiles.is_empty() {
        return Err(OramError::InvalidParams {
            reason: "memory_tech needs at least one hardware profile".into(),
        });
    }
    if !config.collect_per_tenant {
        return Err(OramError::InvalidParams {
            reason: "memory_tech needs collect_per_tenant enabled".into(),
        });
    }
    Experiment::new(config.clone())
        .schemes(schemes.iter().copied())
        .workload_specs([spec.clone()])
        .sweep_hardware(profiles)
        .run(executor)
}

/// Maps already-executed results into aggregate rows, profile-major in
/// the given profile order, schemes in the given scheme order within each
/// profile. Cells missing from the set are skipped.
pub fn rows(
    results: &ResultSet,
    schemes: &[Scheme],
    profiles: &[HardwareProfile],
) -> Vec<MemoryTechRow> {
    let mut out = Vec::new();
    for profile in profiles {
        for &scheme in schemes {
            let Some(record) = results
                .iter()
                .find(|r| r.scheme == scheme && r.metrics.hardware == profile.name)
            else {
                continue;
            };
            let m = &record.metrics;
            // Reuse the export mapping so the figure table and the
            // CSV/JSON exports can never disagree on a field's meaning.
            let summary = record.summary();
            out.push(MemoryTechRow {
                hardware: summary.hardware,
                scheme,
                mean_latency: summary.mean_latency,
                p99_latency: {
                    let mut sorted = m.latencies.clone();
                    sorted.sort_unstable();
                    let idx = (sorted.len().saturating_sub(1)) * 99 / 100;
                    sorted.get(idx).copied().unwrap_or(0)
                },
                achieved_gbps: m.dram.achieved_gbps(&m.dram_config),
                bandwidth_utilization: summary.bandwidth_utilization,
                energy_j: summary.energy_j,
                energy_per_access_j: m.energy_per_access_j(),
            });
        }
    }
    out
}

/// Maps already-executed results into per-tenant rows, profile-major,
/// schemes within each profile, tenants in tenant order within each cell.
pub fn tenant_rows(
    results: &ResultSet,
    schemes: &[Scheme],
    profiles: &[HardwareProfile],
) -> Vec<MemoryTechTenantRow> {
    let mut out = Vec::new();
    for profile in profiles {
        for &scheme in schemes {
            let Some(record) = results
                .iter()
                .find(|r| r.scheme == scheme && r.metrics.hardware == profile.name)
            else {
                continue;
            };
            debug_assert!(record.metrics.tenant_conservation_ok());
            for s in record.tenant_summaries() {
                out.push(MemoryTechTenantRow {
                    hardware: profile.name.clone(),
                    scheme,
                    tenant: s.tenant,
                    workload: s.tenant_workload,
                    completed: s.completed,
                    p99_latency: s.p99_latency,
                    dram_share: s.dram_share,
                    energy_j: s.energy_j,
                });
            }
        }
    }
    out
}

/// Renders the aggregate rows as a text table titled with the spec name.
pub fn table(spec: &WorkloadSpec, rows: &[MemoryTechRow]) -> Table {
    let mut t = Table::new(
        format!("Memory technology comparison — {spec}"),
        &[
            "hardware",
            "scheme",
            "mean",
            "p99",
            "GB/s",
            "bus util",
            "energy (mJ)",
            "nJ/access",
        ],
    );
    for r in rows {
        t.row(&[
            r.hardware.clone(),
            r.scheme.to_string(),
            format!("{:.0}", r.mean_latency),
            r.p99_latency.to_string(),
            format!("{:.2}", r.achieved_gbps),
            percent(r.bandwidth_utilization),
            format!("{:.3}", r.energy_j * 1e3),
            format!("{:.1}", r.energy_per_access_j * 1e9),
        ]);
    }
    t
}

/// Renders the per-tenant split as a text table.
pub fn tenant_table(spec: &WorkloadSpec, rows: &[MemoryTechTenantRow]) -> Table {
    let mut t = Table::new(
        format!("Per-tenant energy split — {spec}"),
        &[
            "hardware",
            "scheme",
            "tenant",
            "workload",
            "compl",
            "p99",
            "DRAM share",
            "energy (uJ)",
        ],
    );
    for r in rows {
        t.row(&[
            r.hardware.clone(),
            r.scheme.to_string(),
            r.tenant.to_string(),
            r.workload.clone(),
            r.completed.to_string(),
            r.p99_latency.to_string(),
            percent(r.dram_share),
            format!("{:.1}", r.energy_j * 1e6),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use palermo_workloads::{MixSpec, Workload};

    fn mix() -> WorkloadSpec {
        WorkloadSpec::Mix(
            MixSpec::round_robin()
                .tenant(Workload::Redis.into(), 2)
                .tenant(Workload::Llm.into(), 1),
        )
    }

    #[test]
    fn rows_cover_the_profile_by_scheme_grid() {
        let cfg = super::super::smoke_config();
        let spec = mix();
        let schemes = [Scheme::RingOram, Scheme::Palermo];
        let profiles = HardwareProfile::builtins();
        let results = run(&cfg, &spec, &schemes, &profiles).unwrap();
        let rows = rows(&results, &schemes, &profiles);
        assert_eq!(rows.len(), schemes.len() * profiles.len());
        for r in &rows {
            assert!(r.energy_j > 0.0, "{}/{}", r.hardware, r.scheme);
            assert!(r.energy_per_access_j > 0.0);
            assert!(r.achieved_gbps > 0.0);
        }
        // Profile-major order, DDR4 first.
        assert_eq!(rows[0].hardware, "ddr4-3200");
        assert_eq!(rows[0].scheme, Scheme::RingOram);
        assert_eq!(rows[1].scheme, Scheme::Palermo);
        assert_eq!(rows[2].hardware, "ddr5-6400");
        assert_eq!(table(&spec, &rows).len(), rows.len());

        let trows = tenant_rows(&results, &schemes, &profiles);
        assert_eq!(
            trows.len(),
            schemes.len() * profiles.len() * spec.tenant_count()
        );
        // Tenant energies partition each cell's total.
        for r in &rows {
            let cell: f64 = trows
                .iter()
                .filter(|t| t.hardware == r.hardware && t.scheme == r.scheme)
                .map(|t| t.energy_j)
                .sum();
            assert!((cell - r.energy_j).abs() <= r.energy_j * 1e-9);
        }
        assert_eq!(tenant_table(&spec, &trows).len(), trows.len());
    }

    #[test]
    fn empty_profile_list_and_disabled_attribution_are_rejected() {
        let cfg = super::super::smoke_config();
        let err = run(&cfg, &mix(), &[Scheme::Palermo], &[]).unwrap_err();
        assert!(err.to_string().contains("profile"), "{err}");
        let mut cfg = super::super::smoke_config();
        cfg.collect_per_tenant = false;
        let err = run(
            &cfg,
            &mix(),
            &[Scheme::Palermo],
            &HardwareProfile::builtins(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("collect_per_tenant"), "{err}");
    }
}
