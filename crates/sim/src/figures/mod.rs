//! Experiment runners: one module per table/figure of the paper's
//! evaluation, plus runners that go beyond the paper ([`tenant_mix`],
//! [`tenant_qos`]).
//!
//! Every module exposes a `run` function returning structured rows and a
//! `table` function rendering them in the layout the paper uses, so the
//! examples (`cargo run --example fig10`) and the Criterion benches share
//! the same code path. Each runner builds its grid through
//! [`crate::experiment::Experiment`] and also offers a `run_with` variant
//! taking any [`crate::experiment::Executor`] (the examples pass a
//! [`crate::experiment::ThreadPoolExecutor`] to fan the independent runs
//! across cores). `EXPERIMENTS.md` records the paper-reported values next
//! to the values these runners produce.

pub mod fig03;
pub mod fig04;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod load_curve;
pub mod memory_tech;
pub mod shard_scaling;
pub mod tenant_mix;
pub mod tenant_qos;

use palermo_workloads::Workload;

/// The four workloads the paper uses for its deep-dive figures
/// (Figs. 3, 9, 11, 12, 13).
pub const DEEP_DIVE_WORKLOADS: [Workload; 4] = [
    Workload::Mcf,
    Workload::PageRank,
    Workload::Llm,
    Workload::Redis,
];

/// A configuration scaled for quick figure smoke tests.
#[cfg(test)]
pub(crate) fn smoke_config() -> crate::system::SystemConfig {
    use crate::system::SystemConfig;
    let mut cfg = SystemConfig::small_for_tests();
    cfg.measured_requests = 30;
    cfg.warmup_requests = 10;
    cfg
}
