//! Fig. 14: sensitivity to the protocol parameter Z (a) and to the number
//! of PE columns (b), both measured on the `rand` workload.
//!
//! Larger (Z, S, A) create fewer write barriers between concurrent
//! requests, and more PE columns remove structural hazards until the memory
//! bandwidth saturates (the paper sees ≈2.2× from 3×1 to 3×8).

use crate::experiment::{Executor, Experiment, SerialExecutor};
use crate::schemes::Scheme;
use crate::system::SystemConfig;
use palermo_analysis::report::Table;
use palermo_oram::error::OramResult;
use palermo_workloads::Workload;

/// One point of the Fig. 14a Z sweep.
#[derive(Debug, Clone, Copy)]
pub struct ZSweepPoint {
    /// Real blocks per bucket.
    pub z: u16,
    /// Dummy slots per bucket (scaled with Z following the RingORAM table).
    pub s: u16,
    /// Eviction period (scaled with Z following the RingORAM table).
    pub a: u32,
    /// Measured ORAM request throughput (requests per kilo-cycle).
    pub throughput: f64,
    /// Speedup relative to the smallest-Z configuration.
    pub speedup_vs_smallest: f64,
}

/// One point of the Fig. 14b PE sweep.
#[derive(Debug, Clone, Copy)]
pub struct PeSweepPoint {
    /// PE columns.
    pub columns: usize,
    /// Measured ORAM request throughput (requests per kilo-cycle).
    pub throughput: f64,
    /// Speedup relative to a single column.
    pub speedup_vs_one: f64,
}

/// The valid (Z, S, A) combinations used by the sweep, following the
/// RingORAM parameter table cited by the paper.
pub fn zsa_for(z: u16) -> (u16, u32) {
    match z {
        4 => (5, 3),
        8 => (12, 8),
        16 => (27, 20),
        32 => (56, 46),
        _ => (z + z / 2, u32::from(z)),
    }
}

/// Runs the Fig. 14a Z sweep serially.
///
/// # Errors
///
/// Propagates configuration errors from the protocol layer.
pub fn run_z_sweep(config: &SystemConfig, zs: &[u16]) -> OramResult<Vec<ZSweepPoint>> {
    run_z_sweep_with(config, zs, &SerialExecutor)
}

/// Runs the Fig. 14a Z sweep on the given executor.
///
/// # Errors
///
/// Propagates configuration errors from the protocol layer.
pub fn run_z_sweep_with(
    config: &SystemConfig,
    zs: &[u16],
    executor: &dyn Executor,
) -> OramResult<Vec<ZSweepPoint>> {
    let mut experiment = Experiment::new(config.clone())
        .schemes([Scheme::Palermo])
        .workloads([Workload::Random]);
    for &z in zs {
        let (s, a) = zsa_for(z);
        experiment = experiment.sweep_config(format!("Z={z}"), move |cfg| {
            cfg.z = z;
            cfg.s = s;
            cfg.a = a;
        });
    }
    let results = experiment.run(executor)?;
    // One record per variant, in sweep order (the grid is 1 scheme x
    // 1 workload, and config variants are the outermost grid dimension).
    debug_assert_eq!(results.len(), zs.len());
    let mut points: Vec<ZSweepPoint> = zs
        .iter()
        .zip(results.iter())
        .map(|(&z, record)| {
            let (s, a) = zsa_for(z);
            ZSweepPoint {
                z,
                s,
                a,
                throughput: record.metrics.requests_per_cycle() * 1000.0,
                speedup_vs_smallest: 0.0,
            }
        })
        .collect();
    let base = points
        .first()
        .map(|p| p.throughput)
        .unwrap_or(1.0)
        .max(f64::MIN_POSITIVE);
    for p in &mut points {
        p.speedup_vs_smallest = p.throughput / base;
    }
    Ok(points)
}

/// Runs the Fig. 14b PE-column sweep serially.
///
/// # Errors
///
/// Propagates configuration errors from the protocol layer.
pub fn run_pe_sweep(config: &SystemConfig, columns: &[usize]) -> OramResult<Vec<PeSweepPoint>> {
    run_pe_sweep_with(config, columns, &SerialExecutor)
}

/// Runs the Fig. 14b PE-column sweep on the given executor.
///
/// # Errors
///
/// Propagates configuration errors from the protocol layer.
pub fn run_pe_sweep_with(
    config: &SystemConfig,
    columns: &[usize],
    executor: &dyn Executor,
) -> OramResult<Vec<PeSweepPoint>> {
    let mut experiment = Experiment::new(config.clone())
        .schemes([Scheme::Palermo])
        .workloads([Workload::Random]);
    for &c in columns {
        experiment = experiment.sweep_config(format!("pe={c}"), move |cfg| {
            cfg.pe_columns = c.max(1);
        });
    }
    let results = experiment.run(executor)?;
    debug_assert_eq!(results.len(), columns.len());
    let mut points: Vec<PeSweepPoint> = columns
        .iter()
        .zip(results.iter())
        .map(|(&c, record)| PeSweepPoint {
            columns: c,
            throughput: record.metrics.requests_per_cycle() * 1000.0,
            speedup_vs_one: 0.0,
        })
        .collect();
    let base = points
        .first()
        .map(|p| p.throughput)
        .unwrap_or(1.0)
        .max(f64::MIN_POSITIVE);
    for p in &mut points {
        p.speedup_vs_one = p.throughput / base;
    }
    Ok(points)
}

/// Renders both sweeps as text tables.
pub fn tables(z_points: &[ZSweepPoint], pe_points: &[PeSweepPoint]) -> (Table, Table) {
    let mut zt = Table::new(
        "Fig. 14a — Palermo sensitivity to Z",
        &[
            "Z",
            "S",
            "A",
            "throughput (req/kcyc)",
            "speedup vs smallest",
        ],
    );
    for p in z_points {
        zt.row(&[
            p.z.to_string(),
            p.s.to_string(),
            p.a.to_string(),
            format!("{:.3}", p.throughput),
            format!("{:.2}x", p.speedup_vs_smallest),
        ]);
    }
    let mut pt = Table::new(
        "Fig. 14b — Palermo sensitivity to PE columns",
        &["columns", "throughput (req/kcyc)", "speedup vs 1"],
    );
    for p in pe_points {
        pt.row(&[
            p.columns.to_string(),
            format!("{:.3}", p.throughput),
            format!("{:.2}x", p.speedup_vs_one),
        ]);
    }
    (zt, pt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_pe_columns_do_not_hurt() {
        let cfg = super::super::smoke_config();
        let points = run_pe_sweep(&cfg, &[1, 8]).unwrap();
        assert_eq!(points.len(), 2);
        assert!(
            points[1].speedup_vs_one > 1.0,
            "8 columns should beat 1: {}",
            points[1].speedup_vs_one
        );
    }

    #[test]
    fn z_sweep_produces_points_for_valid_configs() {
        let cfg = super::super::smoke_config();
        let points = run_z_sweep(&cfg, &[4, 8]).unwrap();
        assert_eq!(points.len(), 2);
        assert!((points[0].speedup_vs_smallest - 1.0).abs() < 1e-9);
        assert!(points.iter().all(|p| p.throughput > 0.0));
        let (zt, pt) = tables(&points, &run_pe_sweep(&cfg, &[1]).unwrap());
        assert_eq!(zt.len(), 2);
        assert_eq!(pt.len(), 1);
    }

    #[test]
    fn zsa_table_matches_ring_oram_configurations() {
        assert_eq!(zsa_for(4), (5, 3));
        assert_eq!(zsa_for(16), (27, 20));
        assert_eq!(zsa_for(32), (56, 46));
        let (s, a) = zsa_for(10);
        assert!(s > 10 && a == 10);
    }
}
