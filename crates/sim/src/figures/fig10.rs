//! Fig. 10: end-to-end speedup of every scheme on every workload,
//! normalised to PathORAM — the paper's headline result
//! (geo-mean: RingORAM 1.1×, PageORAM 1.2×, PrORAM 1.7×, IR-ORAM 1.1×,
//! Palermo-SW 1.2×, Palermo 2.4×, Palermo+Prefetch 3.1×).

use crate::experiment::{Executor, Experiment, SerialExecutor};
use crate::runner::RunMetrics;
use crate::schemes::Scheme;
use crate::system::SystemConfig;
use palermo_analysis::report::{speedup, Table};
use palermo_analysis::stats::geometric_mean;
use palermo_oram::error::OramResult;
use palermo_workloads::Workload;

/// The full Fig. 10 result matrix.
#[derive(Debug, Clone)]
pub struct Fig10 {
    /// The workloads evaluated (row order of the matrix).
    pub workloads: Vec<Workload>,
    /// The schemes evaluated (column order of the matrix).
    pub schemes: Vec<Scheme>,
    /// `speedup[w][s]`: performance of scheme `s` on workload `w`
    /// normalised to PathORAM on the same workload.
    pub speedup: Vec<Vec<f64>>,
    /// Raw per-run metrics, same indexing as `speedup`.
    pub metrics: Vec<Vec<RunMetrics>>,
}

impl Fig10 {
    /// Geometric-mean speedup of one scheme across all workloads.
    pub fn geo_mean(&self, scheme: Scheme) -> f64 {
        let Some(col) = self.schemes.iter().position(|&s| s == scheme) else {
            return 0.0;
        };
        let values: Vec<f64> = self.speedup.iter().map(|row| row[col]).collect();
        geometric_mean(&values)
    }
}

/// Runs the Fig. 10 experiment serially.
///
/// # Errors
///
/// Propagates configuration errors from the protocol layer.
pub fn run(config: &SystemConfig, workloads: &[Workload], schemes: &[Scheme]) -> OramResult<Fig10> {
    run_with(config, workloads, schemes, &SerialExecutor)
}

/// Runs the Fig. 10 experiment over the given workloads and schemes on the
/// given executor. The PathORAM normalisation baseline is added to the grid
/// when it is not among `schemes`.
///
/// # Errors
///
/// Propagates configuration errors from the protocol layer.
pub fn run_with(
    config: &SystemConfig,
    workloads: &[Workload],
    schemes: &[Scheme],
    executor: &dyn Executor,
) -> OramResult<Fig10> {
    let mut grid_schemes = schemes.to_vec();
    if !grid_schemes.contains(&Scheme::PathOram) {
        grid_schemes.insert(0, Scheme::PathOram);
    }
    let results = Experiment::new(config.clone())
        .schemes(grid_schemes)
        .workloads(workloads.iter().copied())
        .run(executor)?;
    let speedup = results.speedup_matrix(Scheme::PathOram, workloads, schemes);
    // Move each record's metrics into its matrix cell rather than cloning
    // the per-request vectors (records not in `schemes` — the implicitly
    // added baseline — are dropped here).
    let mut cells: Vec<Vec<Option<RunMetrics>>> = workloads
        .iter()
        .map(|_| vec![None; schemes.len()])
        .collect();
    for record in results.into_records() {
        let target = (0..workloads.len())
            .flat_map(|r| (0..schemes.len()).map(move |c| (r, c)))
            .find(|&(r, c)| {
                record.workload.as_table2() == Some(workloads[r])
                    && schemes[c] == record.scheme
                    && cells[r][c].is_none()
            });
        if let Some((r, c)) = target {
            cells[r][c] = Some(record.metrics);
        }
    }
    let metrics = cells
        .into_iter()
        .map(|row| {
            row.into_iter()
                .map(|m| m.expect("every grid cell was executed"))
                .collect()
        })
        .collect();
    Ok(Fig10 {
        workloads: workloads.to_vec(),
        schemes: schemes.to_vec(),
        speedup,
        metrics,
    })
}

/// Renders the speedup matrix (plus the geo-mean row) as a text table.
pub fn table(fig: &Fig10) -> Table {
    let mut header = vec!["workload".to_string()];
    header.extend(fig.schemes.iter().map(Scheme::to_string));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new("Fig. 10 — end-to-end speedup over PathORAM", &header_refs);
    for (w, row) in fig.workloads.iter().zip(&fig.speedup) {
        let mut cells = vec![w.to_string()];
        cells.extend(row.iter().map(|&v| speedup(v)));
        t.row(&cells);
    }
    let mut gm = vec!["geo-mean".to_string()];
    gm.extend(fig.schemes.iter().map(|&s| speedup(fig.geo_mean(s))));
    t.row(&gm);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn palermo_wins_the_comparison_on_random_traffic() {
        let cfg = super::super::smoke_config();
        let fig = run(
            &cfg,
            &[Workload::Random],
            &[Scheme::PathOram, Scheme::RingOram, Scheme::Palermo],
        )
        .unwrap();
        let path = fig.speedup[0][0];
        let ring = fig.speedup[0][1];
        let palermo = fig.speedup[0][2];
        assert!((path - 1.0).abs() < 1e-9);
        assert!(palermo > ring, "palermo {palermo} vs ring {ring}");
        assert!(palermo > 1.2, "palermo speedup too small: {palermo}");
        assert!(fig.geo_mean(Scheme::Palermo) > 1.0);
        assert_eq!(table(&fig).len(), 2);
    }
}
