//! Fig. 10: end-to-end speedup of every scheme on every workload,
//! normalised to PathORAM — the paper's headline result
//! (geo-mean: RingORAM 1.1×, PageORAM 1.2×, PrORAM 1.7×, IR-ORAM 1.1×,
//! Palermo-SW 1.2×, Palermo 2.4×, Palermo+Prefetch 3.1×).

use crate::runner::{run_workload, RunMetrics};
use crate::schemes::Scheme;
use crate::system::SystemConfig;
use palermo_analysis::report::{speedup, Table};
use palermo_analysis::stats::geometric_mean;
use palermo_oram::error::OramResult;
use palermo_workloads::Workload;

/// The full Fig. 10 result matrix.
#[derive(Debug, Clone)]
pub struct Fig10 {
    /// The workloads evaluated (row order of the matrix).
    pub workloads: Vec<Workload>,
    /// The schemes evaluated (column order of the matrix).
    pub schemes: Vec<Scheme>,
    /// `speedup[w][s]`: performance of scheme `s` on workload `w`
    /// normalised to PathORAM on the same workload.
    pub speedup: Vec<Vec<f64>>,
    /// Raw per-run metrics, same indexing as `speedup`.
    pub metrics: Vec<Vec<RunMetrics>>,
}

impl Fig10 {
    /// Geometric-mean speedup of one scheme across all workloads.
    pub fn geo_mean(&self, scheme: Scheme) -> f64 {
        let Some(col) = self.schemes.iter().position(|&s| s == scheme) else {
            return 0.0;
        };
        let values: Vec<f64> = self.speedup.iter().map(|row| row[col]).collect();
        geometric_mean(&values)
    }
}

/// Runs the Fig. 10 experiment over the given workloads and schemes.
///
/// # Errors
///
/// Propagates configuration errors from the protocol layer.
pub fn run(config: &SystemConfig, workloads: &[Workload], schemes: &[Scheme]) -> OramResult<Fig10> {
    let mut speedups = Vec::new();
    let mut all_metrics = Vec::new();
    for &workload in workloads {
        let baseline = run_workload(Scheme::PathOram, workload, config)?;
        let baseline_perf = baseline.accesses_per_cycle().max(f64::MIN_POSITIVE);
        let mut row_speedup = Vec::new();
        let mut row_metrics = Vec::new();
        for &scheme in schemes {
            let m = if scheme == Scheme::PathOram {
                baseline.clone()
            } else {
                run_workload(scheme, workload, config)?
            };
            row_speedup.push(m.accesses_per_cycle() / baseline_perf);
            row_metrics.push(m);
        }
        speedups.push(row_speedup);
        all_metrics.push(row_metrics);
    }
    Ok(Fig10 {
        workloads: workloads.to_vec(),
        schemes: schemes.to_vec(),
        speedup: speedups,
        metrics: all_metrics,
    })
}

/// Renders the speedup matrix (plus the geo-mean row) as a text table.
pub fn table(fig: &Fig10) -> Table {
    let mut header: Vec<&str> = vec!["workload"];
    let names: Vec<&'static str> = fig.schemes.iter().map(|s| s.name()).collect();
    header.extend(names.iter().copied());
    let mut t = Table::new("Fig. 10 — end-to-end speedup over PathORAM", &header);
    for (w, row) in fig.workloads.iter().zip(&fig.speedup) {
        let mut cells = vec![w.name().to_string()];
        cells.extend(row.iter().map(|&v| speedup(v)));
        t.row(&cells);
    }
    let mut gm = vec!["geo-mean".to_string()];
    gm.extend(fig.schemes.iter().map(|&s| speedup(fig.geo_mean(s))));
    t.row(&gm);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn palermo_wins_the_comparison_on_random_traffic() {
        let cfg = super::super::smoke_config();
        let fig = run(
            &cfg,
            &[Workload::Random],
            &[Scheme::PathOram, Scheme::RingOram, Scheme::Palermo],
        )
        .unwrap();
        let path = fig.speedup[0][0];
        let ring = fig.speedup[0][1];
        let palermo = fig.speedup[0][2];
        assert!((path - 1.0).abs() < 1e-9);
        assert!(palermo > ring, "palermo {palermo} vs ring {ring}");
        assert!(palermo > 1.2, "palermo speedup too small: {palermo}");
        assert!(fig.geo_mean(Scheme::Palermo) > 1.0);
        assert_eq!(table(&fig).len(), 2);
    }
}
