//! Fig. 11: DRAM bandwidth utilisation and average outstanding requests,
//! RingORAM vs Palermo (both without prefetch). The paper reports ≈2.8×
//! more outstanding requests and ≈2.2× higher utilisation for Palermo.

use crate::experiment::{Executor, Experiment, SerialExecutor};
use crate::schemes::Scheme;
use crate::system::SystemConfig;
use palermo_analysis::report::{percent, Table};
use palermo_oram::error::OramResult;
use palermo_workloads::Workload;

/// One row of Fig. 11 (one workload, both schemes).
#[derive(Debug, Clone)]
pub struct Fig11Row {
    /// The workload.
    pub workload: Workload,
    /// RingORAM bandwidth utilisation.
    pub ring_utilization: f64,
    /// Palermo bandwidth utilisation.
    pub palermo_utilization: f64,
    /// RingORAM average outstanding DRAM requests in the memory controller.
    pub ring_outstanding: f64,
    /// Palermo average outstanding DRAM requests in the memory controller.
    pub palermo_outstanding: f64,
}

impl Fig11Row {
    /// Utilisation improvement of Palermo over RingORAM.
    pub fn utilization_gain(&self) -> f64 {
        if self.ring_utilization == 0.0 {
            0.0
        } else {
            self.palermo_utilization / self.ring_utilization
        }
    }

    /// Outstanding-request improvement of Palermo over RingORAM.
    pub fn outstanding_gain(&self) -> f64 {
        if self.ring_outstanding == 0.0 {
            0.0
        } else {
            self.palermo_outstanding / self.ring_outstanding
        }
    }
}

/// Runs the Fig. 11 experiment serially.
///
/// # Errors
///
/// Propagates configuration errors from the protocol layer.
pub fn run(config: &SystemConfig) -> OramResult<Vec<Fig11Row>> {
    run_with(config, &SerialExecutor)
}

/// Runs the Fig. 11 experiment on the given executor.
///
/// # Errors
///
/// Propagates configuration errors from the protocol layer.
pub fn run_with(config: &SystemConfig, executor: &dyn Executor) -> OramResult<Vec<Fig11Row>> {
    let results = Experiment::new(config.clone())
        .schemes([Scheme::RingOram, Scheme::Palermo])
        .workloads(super::DEEP_DIVE_WORKLOADS)
        .run(executor)?;
    Ok(super::DEEP_DIVE_WORKLOADS
        .into_iter()
        .map(|workload| {
            let cell = |scheme| {
                &results
                    .get(scheme, workload)
                    .expect("every grid cell was executed")
                    .metrics
            };
            let ring = cell(Scheme::RingOram);
            let palermo = cell(Scheme::Palermo);
            Fig11Row {
                workload,
                ring_utilization: ring.dram.bandwidth_utilization(),
                palermo_utilization: palermo.dram.bandwidth_utilization(),
                ring_outstanding: ring.dram.avg_queue_occupancy(),
                palermo_outstanding: palermo.dram.avg_queue_occupancy(),
            }
        })
        .collect())
}

/// Renders the rows as a text table.
pub fn table(rows: &[Fig11Row]) -> Table {
    let mut t = Table::new(
        "Fig. 11 — memory-level parallelism: RingORAM vs Palermo",
        &[
            "workload",
            "ring util",
            "palermo util",
            "util gain",
            "ring outst",
            "palermo outst",
            "outst gain",
        ],
    );
    for r in rows {
        t.row(&[
            r.workload.to_string(),
            percent(r.ring_utilization),
            percent(r.palermo_utilization),
            format!("{:.2}x", r.utilization_gain()),
            format!("{:.1}", r.ring_outstanding),
            format!("{:.1}", r.palermo_outstanding),
            format!("{:.2}x", r.outstanding_gain()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn palermo_increases_mlp_and_utilisation() {
        let cfg = super::super::smoke_config();
        let rows = run(&cfg).unwrap();
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(
                r.utilization_gain() > 1.0,
                "{}: gain {}",
                r.workload,
                r.utilization_gain()
            );
            assert!(
                r.outstanding_gain() > 1.0,
                "{}: outstanding gain {}",
                r.workload,
                r.outstanding_gain()
            );
        }
        assert_eq!(table(&rows).len(), 4);
    }
}
