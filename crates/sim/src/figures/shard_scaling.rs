//! Throughput-vs-shard-count scaling curves for the sharded scale-out.
//!
//! The paper evaluates one ORAM controller; this runner asks the scale-out
//! question: partition the protected space across K independent controllers
//! (`shard:<K>:hash:<inner>`) and trace how aggregate throughput (workload
//! accesses per makespan cycle) grows with K, under RingORAM vs Palermo.
//! Because each shard keeps its own position map, stash and DRAM channels,
//! the modelled hardware scales close to linearly until the per-shard
//! request budget gets too small to amortise warm-up.
//!
//! Every point runs through [`crate::shard::ShardedSystem`] with an
//! explicit [`crate::shard::ShardStepper`], so the same grid can be driven
//! serially or on a [`crate::shard::PooledShardStepper`] pool — byte-identical
//! results either way, which `examples/shard_scaling.rs` re-checks under
//! `PALERMO_SERIAL_CHECK=1`.

use crate::runner::CalendarStepper;
use crate::schemes::Scheme;
use crate::shard::{SerialShardStepper, ShardStepper, ShardedSystem};
use crate::system::SystemConfig;
use palermo_analysis::report::Table;
use palermo_oram::error::{OramError, OramResult};
use palermo_workloads::{ShardRouterKind, ShardSpec, WorkloadSpec};

/// One point of the scaling curve: one scheme at one shard count.
#[derive(Debug, Clone)]
pub struct ShardScalingRow {
    /// The scheme every shard runs.
    pub scheme: Scheme,
    /// Number of shards.
    pub shards: u32,
    /// Real ORAM requests completed across all shards.
    pub oram_requests: u64,
    /// Makespan cycles (the slowest shard's measured window).
    pub cycles: u64,
    /// Aggregate workload accesses per makespan cycle — the throughput
    /// measure the speedups are computed from.
    pub accesses_per_cycle: f64,
    /// Mean ORAM response latency in cycles across all shards.
    pub mean_latency: f64,
    /// Throughput relative to the same scheme's 1-shard point (1.0 when
    /// K = 1 or when the 1-shard point is missing from the grid).
    pub speedup_over_one_shard: f64,
}

/// Runs the grid serially (serial shard stepping).
///
/// # Errors
///
/// Propagates configuration and workload-spec build errors; see
/// [`run_with`] for the grid-shape rejections.
pub fn run(
    config: &SystemConfig,
    inner: &WorkloadSpec,
    shard_counts: &[u32],
    schemes: &[Scheme],
) -> OramResult<Vec<ShardScalingRow>> {
    run_with(config, inner, shard_counts, schemes, &SerialShardStepper)
}

/// Runs the grid with an explicit shard-scheduling strategy, returning one
/// row per (scheme, shard count) in scheme-major order with shard counts
/// in sweep order.
///
/// # Errors
///
/// Rejects an empty shard-count grid, a shard count of 0, and an `inner`
/// spec that is already sharded or open-loop (the sweep builds the
/// `shard:` wrapper itself); propagates build errors from each point.
pub fn run_with(
    config: &SystemConfig,
    inner: &WorkloadSpec,
    shard_counts: &[u32],
    schemes: &[Scheme],
    shard_stepper: &dyn ShardStepper,
) -> OramResult<Vec<ShardScalingRow>> {
    if shard_counts.is_empty() {
        return Err(OramError::InvalidParams {
            reason: "shard_scaling needs at least one shard count".into(),
        });
    }
    if inner.sharded().is_some() || inner.open_loop().is_some() {
        return Err(OramError::InvalidParams {
            reason: "shard_scaling builds the shard: wrapper itself; pass the inner \
                     (closed-loop, unsharded) workload spec"
                .into(),
        });
    }
    let mut out = Vec::new();
    for &scheme in schemes {
        let mut one_shard_rate: Option<f64> = None;
        for &shards in shard_counts {
            let spec =
                WorkloadSpec::Sharded(ShardSpec::new(shards, ShardRouterKind::Hash, inner.clone()));
            spec.validate()?;
            let system = ShardedSystem::new(scheme, &spec, config)?;
            let metrics = shard_stepper.run(&system, &CalendarStepper)?;
            debug_assert!(metrics.shard_conservation_ok());
            let rate = metrics.accesses_per_cycle();
            if shards == 1 {
                one_shard_rate = Some(rate);
            }
            out.push(ShardScalingRow {
                scheme,
                shards,
                oram_requests: metrics.oram_requests,
                cycles: metrics.cycles,
                accesses_per_cycle: rate,
                mean_latency: metrics.mean_latency(),
                speedup_over_one_shard: one_shard_rate
                    .map_or(1.0, |base| rate / base.max(f64::MIN_POSITIVE)),
            });
        }
    }
    Ok(out)
}

/// Renders the rows as a text table titled with the inner workload name.
pub fn table(inner: &WorkloadSpec, rows: &[ShardScalingRow]) -> Table {
    let mut t = Table::new(
        format!("Throughput vs shard count — {inner}"),
        &[
            "scheme",
            "shards",
            "requests",
            "cycles",
            "acc/cyc",
            "mean lat",
            "speedup vs K=1",
        ],
    );
    for r in rows {
        t.row(&[
            r.scheme.to_string(),
            r.shards.to_string(),
            r.oram_requests.to_string(),
            r.cycles.to_string(),
            format!("{:.6}", r.accesses_per_cycle),
            format!("{:.0}", r.mean_latency),
            format!("{:.2}x", r.speedup_over_one_shard),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::PooledShardStepper;
    use palermo_workloads::Workload;

    #[test]
    fn curve_covers_the_grid_and_normalises_against_one_shard() {
        let cfg = super::super::smoke_config();
        let inner = WorkloadSpec::Table2(Workload::Random);
        let schemes = [Scheme::RingOram, Scheme::Palermo];
        let counts = [1, 2];
        let rows = run(&cfg, &inner, &counts, &schemes).unwrap();
        assert_eq!(rows.len(), schemes.len() * counts.len());
        for &scheme in &schemes {
            let per: Vec<&ShardScalingRow> = rows.iter().filter(|r| r.scheme == scheme).collect();
            assert!((per[0].speedup_over_one_shard - 1.0).abs() < 1e-12);
            assert!(per.iter().all(|r| r.cycles > 0 && r.oram_requests > 0));
        }
        assert_eq!(table(&inner, &rows).len(), rows.len());
    }

    #[test]
    fn pooled_grid_matches_the_serial_grid() {
        let cfg = super::super::smoke_config();
        let inner = WorkloadSpec::Table2(Workload::Mcf);
        let schemes = [Scheme::Palermo];
        let counts = [2];
        let serial = run(&cfg, &inner, &counts, &schemes).unwrap();
        let pooled =
            run_with(&cfg, &inner, &counts, &schemes, &PooledShardStepper::new(2)).unwrap();
        assert_eq!(serial.len(), pooled.len());
        for (s, p) in serial.iter().zip(&pooled) {
            assert_eq!(s.cycles, p.cycles);
            assert_eq!(s.oram_requests, p.oram_requests);
            assert_eq!(s.accesses_per_cycle, p.accesses_per_cycle);
        }
    }

    #[test]
    fn malformed_grids_are_rejected() {
        let cfg = super::super::smoke_config();
        let inner = WorkloadSpec::Table2(Workload::Random);
        let err = run(&cfg, &inner, &[], &[Scheme::Palermo]).unwrap_err();
        assert!(err.to_string().contains("at least one"), "{err}");
        let sharded = WorkloadSpec::from_name("shard:2:hash:random").unwrap();
        let err = run(&cfg, &sharded, &[2], &[Scheme::Palermo]).unwrap_err();
        assert!(err.to_string().contains("inner"), "{err}");
        let open = WorkloadSpec::from_name("open:poisson:0.1:random").unwrap();
        let err = run(&cfg, &open, &[2], &[Scheme::Palermo]).unwrap_err();
        assert!(err.to_string().contains("inner"), "{err}");
    }
}
