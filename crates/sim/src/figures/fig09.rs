//! Fig. 9 and Table I: the quantitative security analysis.
//!
//! For each workload, Palermo's ORAM response latencies are collected
//! together with the victim-behaviour bit, and the attacker's information
//! gain (Equation 1) is computed from the longer/shorter-than-median
//! observation channel. The paper reports mutual information within noise
//! of zero and near-identical DRAM row-hit / bank-conflict statistics
//! across workloads.

use crate::experiment::{Executor, Experiment, SerialExecutor};
use crate::schemes::Scheme;
use crate::system::SystemConfig;
use palermo_analysis::mutual_info::estimate_from_samples;
use palermo_analysis::report::{percent, Table};
use palermo_analysis::Summary;
use palermo_oram::error::OramResult;
use palermo_workloads::Workload;

/// One row of the Fig. 9 table (one workload under Palermo).
#[derive(Debug, Clone)]
pub struct Fig09Row {
    /// The workload.
    pub workload: Workload,
    /// DRAM row-buffer hit rate.
    pub row_hit_rate: f64,
    /// DRAM bank-conflict rate.
    pub bank_conflict_rate: f64,
    /// Mutual information between victim behaviour and latency observation.
    pub mutual_information: f64,
    /// Mean ORAM response latency (cycles).
    pub mean_latency: f64,
    /// Standard deviation of the response latency (cycles).
    pub latency_std: f64,
}

/// Runs the Fig. 9 experiment serially.
///
/// # Errors
///
/// Propagates configuration errors from the protocol layer.
pub fn run(config: &SystemConfig) -> OramResult<Vec<Fig09Row>> {
    run_with(config, &SerialExecutor)
}

/// Runs the Fig. 9 experiment on the given executor.
///
/// # Errors
///
/// Propagates configuration errors from the protocol layer.
pub fn run_with(config: &SystemConfig, executor: &dyn Executor) -> OramResult<Vec<Fig09Row>> {
    let results = Experiment::new(config.clone())
        .schemes([Scheme::Palermo])
        .workloads(super::DEEP_DIVE_WORKLOADS)
        .run(executor)?;
    Ok(results
        .iter()
        .map(|record| {
            let m = &record.metrics;
            let samples: Vec<(bool, f64)> = m
                .behaviour_latency
                .iter()
                .map(|&(b, l)| (b, l as f64))
                .collect();
            let mutual_information = estimate_from_samples(&samples)
                .map(|(_, mi)| mi)
                .unwrap_or(0.0);
            let mut latency = Summary::new();
            latency.extend(m.latencies.iter().map(|&l| l as f64));
            Fig09Row {
                workload: record
                    .workload
                    .as_table2()
                    .expect("the Fig. 9 grid is built from Table II workloads"),
                row_hit_rate: m.dram.row_hit_rate(),
                bank_conflict_rate: m.dram.bank_conflict_rate(),
                mutual_information,
                mean_latency: latency.mean(),
                latency_std: latency.std_dev(),
            }
        })
        .collect())
}

/// Renders the rows as a text table.
pub fn table(rows: &[Fig09Row]) -> Table {
    let mut t = Table::new(
        "Fig. 9 — attacker observations on Palermo",
        &[
            "workload",
            "row hit %",
            "bank conflict %",
            "mutual info",
            "mean lat",
            "lat std",
        ],
    );
    for r in rows {
        t.row(&[
            r.workload.to_string(),
            percent(r.row_hit_rate),
            percent(r.bank_conflict_rate),
            format!("{:.4}", r.mutual_information),
            format!("{:.0}", r.mean_latency),
            format!("{:.0}", r.latency_std),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_channel_leaks_little_and_dram_stats_are_uniform() {
        let mut cfg = super::super::smoke_config();
        cfg.measured_requests = 60;
        let rows = run(&cfg).unwrap();
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(
                r.mutual_information < 0.25,
                "{}: MI {}",
                r.workload,
                r.mutual_information
            );
            assert!(r.mean_latency > 0.0);
        }
        // Row-hit rates should be similar across workloads (ORAM homogenises
        // the traffic): spread within 30 percentage points even at tiny scale.
        let max = rows.iter().map(|r| r.row_hit_rate).fold(0.0, f64::max);
        let min = rows.iter().map(|r| r.row_hit_rate).fold(1.0, f64::min);
        assert!(max - min < 0.3, "row hit spread {}", max - min);
        assert_eq!(table(&rows).len(), 4);
    }
}
