//! Fig. 13: Palermo performance sensitivity to the prefetch length.
//!
//! Palermo's block-widening prefetch converts each data-tree block access
//! into `pf` consecutive DRAM bursts. Performance changes only moderately
//! with `pf` for the moderate-locality workloads and never drops below
//! PathORAM — unlike PrORAM, the scheme is not critically dependent on
//! choosing the best length.

use crate::experiment::{Executor, Experiment, RunSpec, SerialExecutor};
use crate::schemes::Scheme;
use crate::system::SystemConfig;
use palermo_analysis::report::{speedup, Table};
use palermo_oram::error::OramResult;
use palermo_workloads::Workload;

/// Speedup of Palermo at several prefetch lengths, relative to PathORAM.
#[derive(Debug, Clone)]
pub struct Fig13Row {
    /// The workload.
    pub workload: Workload,
    /// `(prefetch length, speedup over PathORAM)` points; length 1 is the
    /// no-prefetch Palermo configuration.
    pub points: Vec<(u32, f64)>,
}

/// Runs the Fig. 13 sweep serially.
///
/// # Errors
///
/// Propagates configuration errors from the protocol layer.
pub fn run(config: &SystemConfig, prefetch_lengths: &[u32]) -> OramResult<Vec<Fig13Row>> {
    run_with(config, prefetch_lengths, &SerialExecutor)
}

/// Runs the Fig. 13 sweep on the given executor. Every (workload, length)
/// point — and each workload's PathORAM baseline — is an independent run.
///
/// # Errors
///
/// Propagates configuration errors from the protocol layer.
pub fn run_with(
    config: &SystemConfig,
    prefetch_lengths: &[u32],
    executor: &dyn Executor,
) -> OramResult<Vec<Fig13Row>> {
    let mut experiment = Experiment::new(config.clone());
    for &workload in &super::DEEP_DIVE_WORKLOADS {
        experiment = experiment.spec(
            RunSpec::new(Scheme::PathOram, workload, config.clone())
                .with_label(format!("base/{workload}")),
        );
        for &pf in prefetch_lengths {
            let mut cfg = config.clone();
            cfg.prefetch_override = Some(pf);
            // Length 1 is the no-prefetch Palermo configuration.
            let scheme = if pf <= 1 {
                Scheme::Palermo
            } else {
                Scheme::PalermoPrefetch
            };
            experiment = experiment.spec(
                RunSpec::new(scheme, workload, cfg).with_label(format!("{workload}/pf={pf}")),
            );
        }
    }
    let results = experiment.run(executor)?;
    Ok(super::DEEP_DIVE_WORKLOADS
        .into_iter()
        .map(|workload| {
            let baseline_perf = results
                .by_label(&format!("base/{workload}"))
                .expect("baseline run was queued")
                .metrics
                .accesses_per_cycle()
                .max(f64::MIN_POSITIVE);
            let points = prefetch_lengths
                .iter()
                .map(|&pf| {
                    let m = &results
                        .by_label(&format!("{workload}/pf={pf}"))
                        .expect("every sweep point was queued")
                        .metrics;
                    (pf, m.accesses_per_cycle() / baseline_perf)
                })
                .collect();
            Fig13Row { workload, points }
        })
        .collect())
}

/// Renders the rows as a text table.
pub fn table(rows: &[Fig13Row]) -> Table {
    let mut header = vec!["workload".to_string()];
    if let Some(first) = rows.first() {
        header.extend(first.points.iter().map(|(pf, _)| format!("pf={pf}")));
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(
        "Fig. 13 — Palermo prefetch-length sensitivity",
        &header_refs,
    );
    for r in rows {
        let mut cells = vec![r.workload.to_string()];
        cells.extend(r.points.iter().map(|&(_, s)| speedup(s)));
        t.row(&cells);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn palermo_stays_ahead_of_pathoram_across_lengths() {
        let cfg = super::super::smoke_config();
        let rows = run(&cfg, &[1, 4]).unwrap();
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert_eq!(r.points.len(), 2);
            for &(pf, s) in &r.points {
                assert!(s > 0.9, "{} pf={pf}: speedup {s}", r.workload);
            }
        }
        assert_eq!(table(&rows).len(), 4);
    }
}
