//! Fig. 3: RingORAM bandwidth utilisation and memory-cycle breakdown.
//!
//! The paper's motivating measurement: the RingORAM baseline keeps DRAM
//! bandwidth utilisation under ~30 % and spends ~72 % of its memory cycles
//! in ORAM-sync stalls, split roughly evenly between the three sub-ORAMs.

use crate::experiment::{Executor, Experiment, SerialExecutor};
use crate::schemes::Scheme;
use crate::system::SystemConfig;
use palermo_analysis::report::{percent, Table};
use palermo_oram::error::OramResult;
use palermo_oram::types::SubOram;
use palermo_workloads::Workload;

/// One row of Fig. 3 (one workload under RingORAM).
#[derive(Debug, Clone)]
pub struct Fig03Row {
    /// The workload.
    pub workload: Workload,
    /// DRAM bandwidth utilisation in `[0, 1]` (Fig. 3a).
    pub bandwidth_utilization: f64,
    /// Fraction of measured cycles lost to ORAM-sync stalls (Fig. 3b).
    pub sync_fraction: f64,
    /// Share of the sync stalls attributed to Data / PosMap1 / PosMap2.
    pub sync_share_by_level: [f64; 3],
    /// DRAM row-buffer hit rate (the §III-A analytical cross-check).
    pub row_hit_rate: f64,
    /// Average memory-controller queue occupancy.
    pub avg_queue_occupancy: f64,
}

/// Runs the Fig. 3 experiment serially.
///
/// # Errors
///
/// Propagates configuration errors from the protocol layer.
pub fn run(config: &SystemConfig) -> OramResult<Vec<Fig03Row>> {
    run_with(config, &SerialExecutor)
}

/// Runs the Fig. 3 experiment on the given executor.
///
/// # Errors
///
/// Propagates configuration errors from the protocol layer.
pub fn run_with(config: &SystemConfig, executor: &dyn Executor) -> OramResult<Vec<Fig03Row>> {
    let results = Experiment::new(config.clone())
        .schemes([Scheme::RingOram])
        .workloads(
            super::DEEP_DIVE_WORKLOADS
                .into_iter()
                .chain(std::iter::once(Workload::Random)),
        )
        .run(executor)?;
    Ok(results
        .iter()
        .map(|record| {
            let m = &record.metrics;
            let level_total: u64 = m.sync_stall_by_level.iter().sum();
            let share = |i: usize| {
                if level_total == 0 {
                    0.0
                } else {
                    m.sync_stall_by_level[i] as f64 / level_total as f64
                }
            };
            Fig03Row {
                workload: record
                    .workload
                    .as_table2()
                    .expect("the Fig. 3 grid is built from Table II workloads"),
                bandwidth_utilization: m.dram.bandwidth_utilization(),
                sync_fraction: m.sync_stall_cycles as f64 / m.cycles.max(1) as f64,
                sync_share_by_level: [share(0), share(1), share(2)],
                row_hit_rate: m.dram.row_hit_rate(),
                avg_queue_occupancy: m.dram.avg_queue_occupancy(),
            }
        })
        .collect())
}

/// Renders the rows as a text table.
pub fn table(rows: &[Fig03Row]) -> Table {
    let mut t = Table::new(
        "Fig. 3 — RingORAM bandwidth utilisation and cycle breakdown",
        &[
            "workload",
            "BW util",
            "sync frac",
            "data share",
            "pos1 share",
            "pos2 share",
            "row hit",
            "queue occ",
        ],
    );
    for r in rows {
        t.row(&[
            r.workload.to_string(),
            percent(r.bandwidth_utilization),
            percent(r.sync_fraction),
            percent(r.sync_share_by_level[SubOram::Data.index()]),
            percent(r.sync_share_by_level[SubOram::Pos1.index()]),
            percent(r.sync_share_by_level[SubOram::Pos2.index()]),
            percent(r.row_hit_rate),
            format!("{:.1}", r.avg_queue_occupancy),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_baseline_underutilises_bandwidth() {
        let mut cfg = super::super::smoke_config();
        cfg.measured_requests = 25;
        let rows = run(&cfg).unwrap();
        assert_eq!(rows.len(), 5);
        for row in &rows {
            assert!(
                row.bandwidth_utilization < 0.55,
                "{}: util {}",
                row.workload,
                row.bandwidth_utilization
            );
            assert!(
                row.sync_fraction > 0.1,
                "{}: sync {}",
                row.workload,
                row.sync_fraction
            );
        }
        let t = table(&rows);
        assert_eq!(t.len(), 5);
    }
}
