//! # palermo-sim
//!
//! The end-to-end Palermo system simulator: it wires a workload generator,
//! the LLC model, an ORAM protocol instance, an ORAM controller model and
//! the DRAM substrate into a single cycle-driven loop, and provides the
//! experiment runners that regenerate every table and figure of the paper's
//! evaluation (see `EXPERIMENTS.md`).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiment;
pub mod figures;
pub mod runner;
pub mod schemes;
pub mod serving;
pub mod shard;
pub mod system;

pub use experiment::{
    Executor, Experiment, ResultSet, RunRecord, RunSpec, SerialExecutor, ThreadPoolExecutor,
};
pub use runner::{
    run_workload, run_workload_spec, run_workload_spec_stepped, run_workload_stepped,
    CalendarStepper, EventStepper, ReferenceStepper, RunMetrics, ShardMetrics, Stepper,
    TenantMetrics,
};
pub use schemes::Scheme;
pub use serving::{
    AdmissionOutcome, AdmissionPolicy, AdmissionPolicyKind, Arrival, ArrivalProcess, ServingEngine,
};
pub use shard::{
    PooledShardStepper, SerialShardStepper, ShardStepper, ShardedSystem, SingleSystem, SystemShape,
};
pub use system::SystemConfig;

pub use palermo_dram::{
    DramConfigError, EnergyCoefficients, HardwareProfile, ProfileError, ProvisioningOverrides,
};
// Re-exported so experiment code can name specs without a second import.
pub use palermo_workloads::WorkloadSpec;
