//! The ORAM designs compared in the evaluation (Fig. 10).

use palermo_controller::{ControllerConfig, SchedulePolicy};
use palermo_oram::baselines;
use palermo_oram::error::OramResult;
use palermo_oram::hierarchy::HierarchyConfig;
use palermo_oram::params::HierarchyParams;

/// One of the ORAM designs evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Scheme {
    /// PathORAM (Stefanov et al.) — the normalisation baseline of Fig. 10.
    PathOram,
    /// RingORAM (Ren et al.).
    RingOram,
    /// PageORAM (Rajat et al.).
    PageOram,
    /// PrORAM with the fat-tree refinement, swept for the best prefetch length.
    PrOram,
    /// IR-ORAM (Raoufi et al.).
    IrOram,
    /// The Palermo protocol executed with software-style synchronisation.
    PalermoSw,
    /// The full Palermo protocol-hardware co-design.
    Palermo,
    /// Palermo with block-widening prefetch matched to PrORAM's length.
    PalermoPrefetch,
}

impl Scheme {
    /// All schemes in the order Fig. 10 plots them.
    pub const ALL: [Scheme; 8] = [
        Scheme::PathOram,
        Scheme::RingOram,
        Scheme::PageOram,
        Scheme::PrOram,
        Scheme::IrOram,
        Scheme::PalermoSw,
        Scheme::Palermo,
        Scheme::PalermoPrefetch,
    ];

    /// The label used in the figures.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::PathOram => "PathORAM",
            Scheme::RingOram => "RingORAM",
            Scheme::PageOram => "PageORAM",
            Scheme::PrOram => "PrORAM",
            Scheme::IrOram => "IR-ORAM",
            Scheme::PalermoSw => "Palermo-SW",
            Scheme::Palermo => "Palermo",
            Scheme::PalermoPrefetch => "Palermo+Prefetch",
        }
    }

    /// Parses a figure-style scheme name (the inverse of [`Scheme::name`]).
    pub fn from_name(name: &str) -> Option<Scheme> {
        Scheme::ALL.into_iter().find(|s| s.name() == name)
    }

    /// Returns `true` for the schemes that prefetch multiple cache lines per
    /// ORAM access.
    pub fn uses_prefetch(self) -> bool {
        matches!(self, Scheme::PrOram | Scheme::PalermoPrefetch)
    }

    /// The controller model each scheme runs on. Prior designs use the
    /// serial multi-issue controller; Palermo-SW runs the new protocol with
    /// software synchronisation; Palermo uses the PE mesh.
    pub fn controller_config(self, pe_columns: usize) -> ControllerConfig {
        match self {
            Scheme::Palermo | Scheme::PalermoPrefetch => ControllerConfig {
                policy: SchedulePolicy::PalermoMesh,
                pe_columns,
                issue_width: 16,
            },
            Scheme::PalermoSw => ControllerConfig {
                policy: SchedulePolicy::PalermoSoftware,
                pe_columns,
                issue_width: 16,
            },
            _ => ControllerConfig::serial_default(),
        }
    }

    /// Builds the protocol configuration for this scheme.
    ///
    /// `prefetch_length` is the per-workload prefetch length (the paper
    /// sweeps PrORAM for its best length and gives Palermo+Prefetch the same
    /// one); it is ignored by the non-prefetching schemes.
    ///
    /// # Errors
    ///
    /// Propagates parameter-validation errors from the protocol layer.
    pub fn hierarchy_config(
        self,
        params: HierarchyParams,
        seed: u64,
        prefetch_length: u32,
        stash_capacity: usize,
    ) -> OramResult<HierarchyConfig> {
        let mut cfg = match self {
            Scheme::PathOram => baselines::path_oram(params, seed)?,
            Scheme::RingOram => baselines::ring_oram(params, seed)?,
            Scheme::PageOram => baselines::page_oram(params, seed)?,
            Scheme::PrOram => baselines::pr_oram(
                params,
                seed,
                prefetch_length,
                true,
                // PrORAM's evaluation uses a larger (1024-entry) stash with a
                // background-eviction threshold at 3/4 occupancy (§III-B).
                stash_capacity.max(1024),
                stash_capacity.max(1024) * 3 / 4,
            )?,
            Scheme::IrOram => baselines::ir_oram(params, seed)?,
            Scheme::PalermoSw | Scheme::Palermo => baselines::palermo(params, seed)?,
            Scheme::PalermoPrefetch => {
                baselines::palermo_with_prefetch(params, seed, prefetch_length)?
            }
        };
        if !matches!(self, Scheme::PrOram) {
            cfg.stash_capacity = stash_capacity;
        }
        Ok(cfg)
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use palermo_oram::hierarchy::{HierarchicalOram, ProtocolFlavor};
    use palermo_oram::params::OramParams;

    fn params() -> HierarchyParams {
        let data = OramParams::builder()
            .z(4)
            .s(6)
            .a(4)
            .num_blocks(4096)
            .build()
            .unwrap();
        HierarchyParams::derive(data, 4, 2).unwrap()
    }

    #[test]
    fn all_schemes_produce_valid_configs() {
        for scheme in Scheme::ALL {
            let cfg = scheme.hierarchy_config(params(), 1, 4, 256).unwrap();
            assert!(HierarchicalOram::new(cfg).is_ok(), "{scheme}");
        }
    }

    #[test]
    fn controller_policies_match_design() {
        assert_eq!(
            Scheme::Palermo.controller_config(8).policy,
            SchedulePolicy::PalermoMesh
        );
        assert_eq!(
            Scheme::PalermoSw.controller_config(8).policy,
            SchedulePolicy::PalermoSoftware
        );
        for scheme in [
            Scheme::PathOram,
            Scheme::RingOram,
            Scheme::PrOram,
            Scheme::IrOram,
        ] {
            assert_eq!(
                scheme.controller_config(8).policy,
                SchedulePolicy::Serial,
                "{scheme}"
            );
        }
    }

    #[test]
    fn prefetch_flags_and_flavors() {
        assert!(Scheme::PrOram.uses_prefetch());
        assert!(Scheme::PalermoPrefetch.uses_prefetch());
        assert!(!Scheme::Palermo.uses_prefetch());
        let cfg = Scheme::Palermo
            .hierarchy_config(params(), 0, 1, 256)
            .unwrap();
        assert_eq!(cfg.flavor, ProtocolFlavor::Palermo);
        let cfg = Scheme::RingOram
            .hierarchy_config(params(), 0, 1, 256)
            .unwrap();
        assert_eq!(cfg.flavor, ProtocolFlavor::RingOram);
    }

    #[test]
    fn names_are_unique_and_round_trip() {
        // Membership-only set: hash order never observed, so D01 cannot bite
        // even though test code is exempt — stated here because the audit
        // contract is worth making grep-able wherever a HashSet appears.
        // audit:allow(map-iter, membership-only HashSet; order never observed)
        let mut names = std::collections::HashSet::new();
        for s in Scheme::ALL {
            assert!(names.insert(s.name()));
            assert_eq!(Scheme::from_name(s.name()), Some(s));
            assert_eq!(s.to_string(), s.name());
        }
        assert_eq!(Scheme::from_name("nope"), None);
    }
}
