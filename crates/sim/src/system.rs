//! End-to-end system configuration (Table III).

use crate::serving::AdmissionPolicyKind;
use palermo_dram::{DramConfig, EnergyCoefficients, HardwareProfile, ProvisioningOverrides};
use palermo_oram::error::OramResult;
use palermo_oram::params::{HierarchyParams, OramParams};
use palermo_workloads::LlcConfig;

/// Configuration of a full simulated system run.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Size of the protected user memory space in bytes (Table III: 16 GiB).
    pub protected_bytes: u64,
    /// Working-set hint handed to the workload generators, in bytes.
    pub workload_footprint: u64,
    /// RingORAM/Palermo real slots per bucket.
    pub z: u16,
    /// RingORAM/Palermo dummy slots per bucket.
    pub s: u16,
    /// Eviction period.
    pub a: u32,
    /// Tree levels held in the on-chip tree-top cache.
    pub treetop_levels: u32,
    /// Hardware stash capacity per sub-ORAM, in entries.
    pub stash_capacity: usize,
    /// PE columns in the Palermo mesh (Table III: 8).
    pub pe_columns: usize,
    /// ORAM requests measured after warm-up.
    pub measured_requests: u64,
    /// ORAM requests used to warm up caches, stashes and tree state.
    pub warmup_requests: u64,
    /// Seed for all randomness (leaf selection, workloads).
    pub seed: u64,
    /// LLC geometry.
    pub llc: LlcConfig,
    /// DRAM organisation and timing.
    pub dram: DramConfig,
    /// Name of the hardware profile `dram`/`energy`/`provisioning` came
    /// from ("ddr4-3200" for the hardcoded Table III default). Carried
    /// into `RunMetrics` and the export schema so swept results stay
    /// attributable to their memory part.
    pub hardware: String,
    /// Energy coefficients of the memory part.
    pub energy: EnergyCoefficients,
    /// Controller provisioning overrides the hardware profile carries
    /// (empty for the defaults); applied by `figures::fig15` when
    /// estimating controller area/power.
    pub provisioning: ProvisioningOverrides,
    /// Override the per-workload prefetch length (None = use the workload's
    /// default, mirroring the paper's per-workload sweep).
    pub prefetch_override: Option<u32>,
    /// Whether the runner attributes metrics per tenant
    /// (`RunMetrics::per_tenant`). On by default; the only reason to turn it
    /// off is to measure the attribution's own overhead (see the
    /// `fig03_ring_baseline` bench's tagged-vs-untagged comparison).
    pub collect_per_tenant: bool,
    /// Capacity of the open-loop admission queue (ignored by closed-loop
    /// runs, i.e. any non-`open:` workload spec).
    pub serving_queue_capacity: usize,
    /// What happens to arrivals that find the admission queue full
    /// (ignored by closed-loop runs).
    pub admission_policy: AdmissionPolicyKind,
}

impl SystemConfig {
    /// The paper's Table III configuration, with a request budget sized so a
    /// full Fig. 10 sweep finishes in minutes on a laptop. Increase
    /// `measured_requests` for longer, lower-variance runs.
    pub fn paper_default() -> Self {
        SystemConfig {
            protected_bytes: 16 << 30,
            workload_footprint: 256 << 20,
            z: 16,
            s: 27,
            a: 20,
            treetop_levels: 6,
            stash_capacity: 256,
            pe_columns: 8,
            measured_requests: 600,
            warmup_requests: 150,
            seed: 0x9A1E_0A90,
            llc: LlcConfig::default(),
            dram: DramConfig::ddr4_3200_quad_channel(),
            hardware: "ddr4-3200".to_string(),
            energy: EnergyCoefficients::default(),
            provisioning: ProvisioningOverrides::default(),
            prefetch_override: None,
            collect_per_tenant: true,
            serving_queue_capacity: 64,
            admission_policy: AdmissionPolicyKind::DropTail,
        }
    }

    /// A heavily shrunken configuration for unit and integration tests:
    /// a small protected space (short tree paths) and a handful of requests.
    pub fn small_for_tests() -> Self {
        SystemConfig {
            protected_bytes: 32 << 20,
            workload_footprint: 16 << 20,
            z: 8,
            s: 12,
            a: 8,
            treetop_levels: 3,
            stash_capacity: 256,
            pe_columns: 8,
            measured_requests: 60,
            warmup_requests: 15,
            seed: 7,
            llc: LlcConfig {
                capacity_bytes: 1 << 20,
                ways: 16,
                line_bytes: 64,
            },
            dram: DramConfig::ddr4_3200_quad_channel(),
            hardware: "ddr4-3200".to_string(),
            energy: EnergyCoefficients::default(),
            provisioning: ProvisioningOverrides::default(),
            prefetch_override: None,
            collect_per_tenant: true,
            serving_queue_capacity: 64,
            admission_policy: AdmissionPolicyKind::DropTail,
        }
    }

    /// Applies a hardware profile in place: the DRAM organisation/timing,
    /// the energy coefficients, the profile name, and — when the profile
    /// carries a `pe_columns` override — the mesh width.
    pub fn apply_hardware(&mut self, profile: &HardwareProfile) {
        self.hardware = profile.name.clone();
        self.dram = profile.dram;
        self.energy = profile.energy;
        self.provisioning = profile.provisioning;
        if let Some(columns) = profile.provisioning.pe_columns {
            self.pe_columns = columns as usize;
        }
    }

    /// Builder-style [`SystemConfig::apply_hardware`].
    #[must_use]
    pub fn with_hardware(mut self, profile: &HardwareProfile) -> Self {
        self.apply_hardware(profile);
        self
    }

    /// The footprint hint the runner hands the workload stream built for
    /// this configuration. Exposed so captures
    /// ([`palermo_workloads::capture`]) can record exactly the stream a run
    /// would consume.
    pub fn stream_footprint_hint(&self) -> u64 {
        self.workload_footprint.min(self.protected_bytes)
    }

    /// The seed the runner hands the workload stream built for this
    /// configuration (decorrelated from the protocol-layer seed).
    pub fn stream_seed(&self) -> u64 {
        self.seed ^ 0xF00D
    }

    /// Derives the ORAM hierarchy parameters implied by this configuration.
    ///
    /// # Errors
    ///
    /// Propagates parameter-validation failures (e.g. a zero-sized space).
    pub fn hierarchy_params(&self) -> OramResult<HierarchyParams> {
        let data = OramParams::builder()
            .z(self.z)
            .s(self.s)
            .a(self.a)
            .capacity_bytes(self.protected_bytes)
            .build()?;
        HierarchyParams::derive(data, 4, self.treetop_levels)
    }

    /// Total ORAM requests issued per run (warm-up plus measured).
    pub fn total_requests(&self) -> u64 {
        self.measured_requests + self.warmup_requests
    }

    /// Returns a copy with the measured/warm-up request budget scaled by
    /// `factor` (used by benches to keep iteration times reasonable).
    pub fn scaled_requests(mut self, factor: f64) -> Self {
        self.measured_requests = ((self.measured_requests as f64 * factor) as u64).max(10);
        self.warmup_requests = ((self.warmup_requests as f64 * factor) as u64).max(5);
        self
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table_iii() {
        let cfg = SystemConfig::paper_default();
        assert_eq!(cfg.protected_bytes, 16 << 30);
        assert_eq!((cfg.z, cfg.s, cfg.a), (16, 27, 20));
        assert_eq!(cfg.pe_columns, 8);
        assert_eq!(cfg.stash_capacity, 256);
        let params = cfg.hierarchy_params().unwrap();
        assert_eq!(params.data.levels, 25);
    }

    #[test]
    fn small_config_builds_quickly() {
        let cfg = SystemConfig::small_for_tests();
        let params = cfg.hierarchy_params().unwrap();
        assert!(params.data.levels < 20);
        assert_eq!(cfg.total_requests(), 75);
    }

    #[test]
    fn default_hardware_is_the_ddr4_profile() {
        let cfg = SystemConfig::paper_default();
        let profile = HardwareProfile::ddr4_3200();
        assert_eq!(cfg.hardware, profile.name);
        assert_eq!(cfg.dram, profile.dram);
        assert_eq!(cfg.energy, profile.energy);
        assert!(cfg.provisioning.is_empty());
        // Applying the DDR4 profile to the default is a no-op.
        assert_eq!(cfg.clone().with_hardware(&profile), cfg);
    }

    #[test]
    fn applying_a_profile_swaps_dram_energy_and_name() {
        let profile = HardwareProfile::hbm2e();
        let cfg = SystemConfig::small_for_tests().with_hardware(&profile);
        assert_eq!(cfg.hardware, "hbm2e");
        assert_eq!(cfg.dram, profile.dram);
        assert_eq!(cfg.energy, profile.energy);
        assert_eq!(cfg.provisioning, profile.provisioning);
        // hbm2e overrides tree-top provisioning but not pe_columns.
        assert_eq!(cfg.pe_columns, SystemConfig::small_for_tests().pe_columns);

        let mut wide = profile.clone();
        wide.provisioning.pe_columns = Some(16);
        assert_eq!(
            SystemConfig::small_for_tests()
                .with_hardware(&wide)
                .pe_columns,
            16
        );
    }

    #[test]
    fn scaling_respects_minimums() {
        let cfg = SystemConfig::small_for_tests().scaled_requests(0.01);
        assert_eq!(cfg.measured_requests, 10);
        assert_eq!(cfg.warmup_requests, 5);
        let cfg = SystemConfig::paper_default().scaled_requests(2.0);
        assert_eq!(cfg.measured_requests, 1200);
    }
}
