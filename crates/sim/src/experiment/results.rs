//! Result collection: per-run records, baseline normalisation, geo-means
//! and dependency-free CSV/JSON export.

use crate::runner::RunMetrics;
use crate::schemes::Scheme;
use palermo_analysis::stats::geometric_mean;
use palermo_workloads::{Workload, WorkloadSpec};
use std::fmt::Write as _;

/// The outcome of one executed [`RunSpec`](super::RunSpec).
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// The spec's label.
    pub label: String,
    /// The scheme that was simulated.
    pub scheme: Scheme,
    /// The workload spec that drove it.
    pub workload: WorkloadSpec,
    /// Full metrics of the measured window.
    pub metrics: RunMetrics,
}

impl RunRecord {
    /// The per-tenant summaries of this record, one per tenant in tenant
    /// order (empty when the run was executed with per-tenant attribution
    /// disabled).
    pub fn tenant_summaries(&self) -> Vec<TenantSummary> {
        self.metrics
            .per_tenant
            .iter()
            .map(|t| TenantSummary {
                label: self.label.clone(),
                scheme: self.scheme,
                workload: self.workload.clone(),
                tenant: t.tenant,
                tenant_workload: self
                    .workload
                    .tenant_workload_name(t.tenant as usize)
                    .unwrap_or_default(),
                submitted: t.submitted,
                completed: t.completed,
                workload_accesses: t.workload_accesses,
                mean_latency: t.mean_latency(),
                p50_latency: t.p50_latency(),
                p95_latency: t.p95_latency(),
                p99_latency: t.p99_latency(),
                dram_ops: t.dram_ops,
                dram_share: self.metrics.tenant_dram_share(t.tenant as usize),
                energy_j: self.metrics.tenant_energy_j(t.tenant as usize),
            })
            .collect()
    }

    /// The per-shard summaries of this record, one per shard in shard
    /// order (empty for single-system runs).
    pub fn shard_summaries(&self) -> Vec<ShardSummary> {
        self.metrics
            .per_shard
            .iter()
            .map(|s| ShardSummary {
                label: self.label.clone(),
                scheme: self.scheme,
                workload: self.workload.clone(),
                shard: s.shard,
                oram_requests: s.oram_requests,
                workload_accesses: s.workload_accesses,
                dummy_requests: s.dummy_requests,
                cycles: s.cycles,
                submitted_requests: s.submitted_requests,
                arrivals: s.arrivals,
                dropped_arrivals: s.dropped_arrivals,
                mean_latency: s.latency.mean(),
                p99_latency: s.latency.p99(),
                stash_high_water: s.stash_high_water,
            })
            .collect()
    }

    /// The scalar summary of this record used by the CSV/JSON exports.
    pub fn summary(&self) -> RunSummary {
        RunSummary {
            label: self.label.clone(),
            scheme: self.scheme,
            workload: self.workload.clone(),
            prefetch_length: self.metrics.prefetch_length,
            oram_requests: self.metrics.oram_requests,
            workload_accesses: self.metrics.workload_accesses,
            dummy_requests: self.metrics.dummy_requests,
            cycles: self.metrics.cycles,
            mean_latency: self.metrics.mean_latency(),
            llc_hit_rate: self.metrics.llc_hit_rate,
            stash_high_water: self.metrics.stash_high_water,
            bandwidth_utilization: self.metrics.dram.bandwidth_utilization(),
            sync_stall_cycles: self.metrics.sync_stall_cycles,
            arrivals: self.metrics.arrivals,
            dropped_arrivals: self.metrics.dropped_arrivals,
            mean_queue_wait: self.metrics.mean_queue_wait(),
            shards: self.metrics.per_shard.len() as u32,
            hardware: self.metrics.hardware.clone(),
            energy_j: self.metrics.energy_j(),
        }
    }
}

/// The scalar per-run summary exported to CSV/JSON (and parsed back by the
/// round-trip helpers). Floats use Rust's shortest round-trippable
/// formatting, so `to_*`/`parse_*` round-trip exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// The spec's label (commas are replaced by `;` in CSV output).
    pub label: String,
    /// The scheme.
    pub scheme: Scheme,
    /// The workload spec, exported by its canonical name
    /// ([`WorkloadSpec::name`]) and parsed back with
    /// [`WorkloadSpec::from_name`].
    pub workload: WorkloadSpec,
    /// Prefetch length the run used (1 = none).
    pub prefetch_length: u32,
    /// Real ORAM requests completed in the measured window.
    pub oram_requests: u64,
    /// Workload accesses consumed in the measured window.
    pub workload_accesses: u64,
    /// Dummy (background-eviction) requests completed.
    pub dummy_requests: u64,
    /// Cycles spent in the measured window.
    pub cycles: u64,
    /// Mean ORAM response latency in cycles.
    pub mean_latency: f64,
    /// LLC hit rate over the whole run.
    pub llc_hit_rate: f64,
    /// Highest stash occupancy observed anywhere in the hierarchy.
    pub stash_high_water: usize,
    /// DRAM data-bus utilisation over the measured window.
    pub bandwidth_utilization: f64,
    /// Total ORAM-sync stall cycles over the measured window.
    pub sync_stall_cycles: u64,
    /// Open-loop arrivals resolved in the measured window (0 for
    /// closed-loop runs).
    pub arrivals: u64,
    /// Open-loop arrivals dropped by the admission policy in the measured
    /// window (0 for closed-loop runs).
    pub dropped_arrivals: u64,
    /// Mean admission-queue wait in cycles (0 for closed-loop runs).
    pub mean_queue_wait: f64,
    /// Shard count of a sharded run (0 for single-system runs — the
    /// per-shard rows live in the shard CSV/JSON documents).
    pub shards: u32,
    /// Name of the hardware profile the run executed on ("ddr4-3200" for
    /// the default; commas become `;` in CSV output, though profile names
    /// never contain them).
    pub hardware: String,
    /// Total memory energy of the measured window, joules.
    pub energy_j: f64,
}

impl RunSummary {
    /// The CSV header row matching [`RunSummary::to_csv_row`].
    pub const CSV_HEADER: &'static str = "label,scheme,workload,prefetch_length,oram_requests,\
workload_accesses,dummy_requests,cycles,mean_latency,llc_hit_rate,stash_high_water,\
bandwidth_utilization,sync_stall_cycles,arrivals,dropped_arrivals,mean_queue_wait,shards,\
hardware,energy_j";

    /// Measured workload accesses per cycle (the end-to-end speedup metric).
    pub fn accesses_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.workload_accesses as f64 / self.cycles as f64
    }

    /// Renders one CSV data row (no trailing newline).
    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            sanitize_csv(&self.label),
            self.scheme,
            sanitize_csv(&self.workload.name()),
            self.prefetch_length,
            self.oram_requests,
            self.workload_accesses,
            self.dummy_requests,
            self.cycles,
            self.mean_latency,
            self.llc_hit_rate,
            self.stash_high_water,
            self.bandwidth_utilization,
            self.sync_stall_cycles,
            self.arrivals,
            self.dropped_arrivals,
            self.mean_queue_wait,
            self.shards,
            sanitize_csv(&self.hardware),
            self.energy_j,
        )
    }

    /// Parses one CSV data row produced by [`RunSummary::to_csv_row`].
    /// Returns `None` on a malformed row or an unknown scheme/workload name.
    pub fn from_csv_row(row: &str) -> Option<RunSummary> {
        let fields: Vec<&str> = row.split(',').collect();
        if fields.len() != 19 {
            return None;
        }
        Some(RunSummary {
            label: fields[0].to_string(),
            scheme: Scheme::from_name(fields[1])?,
            workload: WorkloadSpec::from_name(fields[2])?,
            prefetch_length: fields[3].parse().ok()?,
            oram_requests: fields[4].parse().ok()?,
            workload_accesses: fields[5].parse().ok()?,
            dummy_requests: fields[6].parse().ok()?,
            cycles: fields[7].parse().ok()?,
            mean_latency: fields[8].parse().ok()?,
            llc_hit_rate: fields[9].parse().ok()?,
            stash_high_water: fields[10].parse().ok()?,
            bandwidth_utilization: fields[11].parse().ok()?,
            sync_stall_cycles: fields[12].parse().ok()?,
            arrivals: fields[13].parse().ok()?,
            dropped_arrivals: fields[14].parse().ok()?,
            mean_queue_wait: fields[15].parse().ok()?,
            shards: fields[16].parse().ok()?,
            hardware: fields[17].to_string(),
            energy_j: fields[18].parse().ok()?,
        })
    }

    /// Renders this summary as one flat JSON object.
    pub fn to_json_object(&self) -> String {
        format!(
            "{{\"label\":\"{}\",\"scheme\":\"{}\",\"workload\":\"{}\",\
\"prefetch_length\":{},\"oram_requests\":{},\"workload_accesses\":{},\
\"dummy_requests\":{},\"cycles\":{},\"mean_latency\":{},\"llc_hit_rate\":{},\
\"stash_high_water\":{},\"bandwidth_utilization\":{},\"sync_stall_cycles\":{},\
\"arrivals\":{},\"dropped_arrivals\":{},\"mean_queue_wait\":{},\"shards\":{},\
\"hardware\":\"{}\",\"energy_j\":{}}}",
            escape_json(&self.label),
            self.scheme,
            escape_json(&self.workload.name()),
            self.prefetch_length,
            self.oram_requests,
            self.workload_accesses,
            self.dummy_requests,
            self.cycles,
            self.mean_latency,
            self.llc_hit_rate,
            self.stash_high_water,
            self.bandwidth_utilization,
            self.sync_stall_cycles,
            self.arrivals,
            self.dropped_arrivals,
            self.mean_queue_wait,
            self.shards,
            escape_json(&self.hardware),
            self.energy_j,
        )
    }
}

/// One tenant's scalar QoS summary of one run, exported to the per-tenant
/// CSV/JSON documents ([`ResultSet::to_tenant_csv`] /
/// [`ResultSet::to_tenant_json`]) and parsed back by the round-trip
/// helpers. One run contributes one row per tenant.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSummary {
    /// The run's label (commas become `;` in CSV output).
    pub label: String,
    /// The scheme.
    pub scheme: Scheme,
    /// The workload spec of the whole run (canonical name in the exports).
    pub workload: WorkloadSpec,
    /// Tenant index within the spec.
    pub tenant: u32,
    /// Canonical name of the tenant's child workload (= the spec name for
    /// single-tenant runs).
    pub tenant_workload: String,
    /// Real requests submitted while the measured window was open.
    pub submitted: u64,
    /// Real requests completed inside the measured window.
    pub completed: u64,
    /// Workload accesses consumed by the completed requests.
    pub workload_accesses: u64,
    /// Mean response latency in cycles.
    pub mean_latency: f64,
    /// Median latency estimate in cycles.
    pub p50_latency: u64,
    /// 95th-percentile latency estimate in cycles.
    pub p95_latency: u64,
    /// 99th-percentile tail latency estimate in cycles.
    pub p99_latency: u64,
    /// DRAM bursts issued for the tenant's completed requests.
    pub dram_ops: u64,
    /// The tenant's share of all tenant-attributed DRAM bursts in the run.
    pub dram_share: f64,
    /// The tenant's share of the run's memory energy in joules,
    /// attributed proportionally to `dram_ops` — the per-tenant bill next
    /// to the per-tenant p99.
    pub energy_j: f64,
}

impl TenantSummary {
    /// The CSV header row matching [`TenantSummary::to_csv_row`].
    pub const CSV_HEADER: &'static str = "label,scheme,workload,tenant,tenant_workload,\
submitted,completed,workload_accesses,mean_latency,p50_latency,p95_latency,p99_latency,\
dram_ops,dram_share,energy_j";

    /// Renders one CSV data row (no trailing newline).
    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            sanitize_csv(&self.label),
            self.scheme,
            sanitize_csv(&self.workload.name()),
            self.tenant,
            sanitize_csv(&self.tenant_workload),
            self.submitted,
            self.completed,
            self.workload_accesses,
            self.mean_latency,
            self.p50_latency,
            self.p95_latency,
            self.p99_latency,
            self.dram_ops,
            self.dram_share,
            self.energy_j,
        )
    }

    /// Parses one CSV data row produced by [`TenantSummary::to_csv_row`].
    /// Returns `None` on a malformed row or an unknown scheme/workload name.
    pub fn from_csv_row(row: &str) -> Option<TenantSummary> {
        let fields: Vec<&str> = row.split(',').collect();
        if fields.len() != 15 {
            return None;
        }
        Some(TenantSummary {
            label: fields[0].to_string(),
            scheme: Scheme::from_name(fields[1])?,
            workload: WorkloadSpec::from_name(fields[2])?,
            tenant: fields[3].parse().ok()?,
            tenant_workload: fields[4].to_string(),
            submitted: fields[5].parse().ok()?,
            completed: fields[6].parse().ok()?,
            workload_accesses: fields[7].parse().ok()?,
            mean_latency: fields[8].parse().ok()?,
            p50_latency: fields[9].parse().ok()?,
            p95_latency: fields[10].parse().ok()?,
            p99_latency: fields[11].parse().ok()?,
            dram_ops: fields[12].parse().ok()?,
            dram_share: fields[13].parse().ok()?,
            energy_j: fields[14].parse().ok()?,
        })
    }

    /// Renders this summary as one flat JSON object.
    pub fn to_json_object(&self) -> String {
        format!(
            "{{\"label\":\"{}\",\"scheme\":\"{}\",\"workload\":\"{}\",\"tenant\":{},\
\"tenant_workload\":\"{}\",\"submitted\":{},\"completed\":{},\"workload_accesses\":{},\
\"mean_latency\":{},\"p50_latency\":{},\"p95_latency\":{},\"p99_latency\":{},\
\"dram_ops\":{},\"dram_share\":{},\"energy_j\":{}}}",
            escape_json(&self.label),
            self.scheme,
            escape_json(&self.workload.name()),
            self.tenant,
            escape_json(&self.tenant_workload),
            self.submitted,
            self.completed,
            self.workload_accesses,
            self.mean_latency,
            self.p50_latency,
            self.p95_latency,
            self.p99_latency,
            self.dram_ops,
            self.dram_share,
            self.energy_j,
        )
    }
}

/// One shard's scalar summary of one sharded run, exported to the
/// per-shard CSV/JSON documents ([`ResultSet::to_shard_csv`] /
/// [`ResultSet::to_shard_json`]) and parsed back by the round-trip
/// helpers. One sharded run contributes one row per shard; single-system
/// runs contribute none.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSummary {
    /// The run's label (commas become `;` in CSV output).
    pub label: String,
    /// The scheme.
    pub scheme: Scheme,
    /// The workload spec of the whole run (canonical name in the exports).
    pub workload: WorkloadSpec,
    /// Shard index within the run.
    pub shard: u32,
    /// Real ORAM requests the shard completed in its measured window.
    pub oram_requests: u64,
    /// Workload accesses consumed by the shard's completed requests.
    pub workload_accesses: u64,
    /// Dummy (background-eviction) requests the shard completed.
    pub dummy_requests: u64,
    /// Cycles the shard spent in its measured window.
    pub cycles: u64,
    /// Real requests the shard submitted while measuring.
    pub submitted_requests: u64,
    /// Open-loop arrivals the shard resolved (0 for closed-loop runs).
    pub arrivals: u64,
    /// Open-loop arrivals the shard's admission policy dropped.
    pub dropped_arrivals: u64,
    /// Mean response latency of the shard's completions, in cycles.
    pub mean_latency: f64,
    /// 99th-percentile tail latency estimate in cycles.
    pub p99_latency: u64,
    /// Highest stash occupancy the shard's hierarchy observed.
    pub stash_high_water: usize,
}

impl ShardSummary {
    /// The CSV header row matching [`ShardSummary::to_csv_row`].
    pub const CSV_HEADER: &'static str = "label,scheme,workload,shard,oram_requests,\
workload_accesses,dummy_requests,cycles,submitted_requests,arrivals,dropped_arrivals,\
mean_latency,p99_latency,stash_high_water";

    /// Renders one CSV data row (no trailing newline).
    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            sanitize_csv(&self.label),
            self.scheme,
            sanitize_csv(&self.workload.name()),
            self.shard,
            self.oram_requests,
            self.workload_accesses,
            self.dummy_requests,
            self.cycles,
            self.submitted_requests,
            self.arrivals,
            self.dropped_arrivals,
            self.mean_latency,
            self.p99_latency,
            self.stash_high_water,
        )
    }

    /// Parses one CSV data row produced by [`ShardSummary::to_csv_row`].
    /// Returns `None` on a malformed row or an unknown scheme/workload name.
    pub fn from_csv_row(row: &str) -> Option<ShardSummary> {
        let fields: Vec<&str> = row.split(',').collect();
        if fields.len() != 14 {
            return None;
        }
        Some(ShardSummary {
            label: fields[0].to_string(),
            scheme: Scheme::from_name(fields[1])?,
            workload: WorkloadSpec::from_name(fields[2])?,
            shard: fields[3].parse().ok()?,
            oram_requests: fields[4].parse().ok()?,
            workload_accesses: fields[5].parse().ok()?,
            dummy_requests: fields[6].parse().ok()?,
            cycles: fields[7].parse().ok()?,
            submitted_requests: fields[8].parse().ok()?,
            arrivals: fields[9].parse().ok()?,
            dropped_arrivals: fields[10].parse().ok()?,
            mean_latency: fields[11].parse().ok()?,
            p99_latency: fields[12].parse().ok()?,
            stash_high_water: fields[13].parse().ok()?,
        })
    }

    /// Renders this summary as one flat JSON object.
    pub fn to_json_object(&self) -> String {
        format!(
            "{{\"label\":\"{}\",\"scheme\":\"{}\",\"workload\":\"{}\",\"shard\":{},\
\"oram_requests\":{},\"workload_accesses\":{},\"dummy_requests\":{},\"cycles\":{},\
\"submitted_requests\":{},\"arrivals\":{},\"dropped_arrivals\":{},\"mean_latency\":{},\
\"p99_latency\":{},\"stash_high_water\":{}}}",
            escape_json(&self.label),
            self.scheme,
            escape_json(&self.workload.name()),
            self.shard,
            self.oram_requests,
            self.workload_accesses,
            self.dummy_requests,
            self.cycles,
            self.submitted_requests,
            self.arrivals,
            self.dropped_arrivals,
            self.mean_latency,
            self.p99_latency,
            self.stash_high_water,
        )
    }
}

fn shard_summary_from_json_object(object: &str) -> Option<ShardSummary> {
    Some(ShardSummary {
        label: json_field(object, "label")?,
        scheme: Scheme::from_name(&json_field(object, "scheme")?)?,
        workload: WorkloadSpec::from_name(&json_field(object, "workload")?)?,
        shard: json_field(object, "shard")?.parse().ok()?,
        oram_requests: json_field(object, "oram_requests")?.parse().ok()?,
        workload_accesses: json_field(object, "workload_accesses")?.parse().ok()?,
        dummy_requests: json_field(object, "dummy_requests")?.parse().ok()?,
        cycles: json_field(object, "cycles")?.parse().ok()?,
        submitted_requests: json_field(object, "submitted_requests")?.parse().ok()?,
        arrivals: json_field(object, "arrivals")?.parse().ok()?,
        dropped_arrivals: json_field(object, "dropped_arrivals")?.parse().ok()?,
        mean_latency: json_field(object, "mean_latency")?.parse().ok()?,
        p99_latency: json_field(object, "p99_latency")?.parse().ok()?,
        stash_high_water: json_field(object, "stash_high_water")?.parse().ok()?,
    })
}

fn tenant_summary_from_json_object(object: &str) -> Option<TenantSummary> {
    Some(TenantSummary {
        label: json_field(object, "label")?,
        scheme: Scheme::from_name(&json_field(object, "scheme")?)?,
        workload: WorkloadSpec::from_name(&json_field(object, "workload")?)?,
        tenant: json_field(object, "tenant")?.parse().ok()?,
        tenant_workload: json_field(object, "tenant_workload")?,
        submitted: json_field(object, "submitted")?.parse().ok()?,
        completed: json_field(object, "completed")?.parse().ok()?,
        workload_accesses: json_field(object, "workload_accesses")?.parse().ok()?,
        mean_latency: json_field(object, "mean_latency")?.parse().ok()?,
        p50_latency: json_field(object, "p50_latency")?.parse().ok()?,
        p95_latency: json_field(object, "p95_latency")?.parse().ok()?,
        p99_latency: json_field(object, "p99_latency")?.parse().ok()?,
        dram_ops: json_field(object, "dram_ops")?.parse().ok()?,
        dram_share: json_field(object, "dram_share")?.parse().ok()?,
        energy_j: json_field(object, "energy_j")?.parse().ok()?,
    })
}

/// Makes a label safe for one CSV cell: the separator becomes `;` and
/// control characters (which would break the line structure) become spaces.
fn sanitize_csv(s: &str) -> String {
    s.chars()
        .map(|c| match c {
            ',' => ';',
            c if c.is_control() => ' ',
            c => c,
        })
        .collect()
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The ordered results of one executed experiment grid.
#[derive(Debug, Clone, Default)]
pub struct ResultSet {
    records: Vec<RunRecord>,
}

impl ResultSet {
    /// Wraps an ordered list of records.
    pub fn new(records: Vec<RunRecord>) -> Self {
        ResultSet { records }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` when the set holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates the records in grid order.
    pub fn iter(&self) -> std::slice::Iter<'_, RunRecord> {
        self.records.iter()
    }

    /// The records in grid order.
    pub fn records(&self) -> &[RunRecord] {
        &self.records
    }

    /// Consumes the set, returning the owned records in grid order (use
    /// this to move `RunMetrics` out instead of cloning them).
    pub fn into_records(self) -> Vec<RunRecord> {
        self.records
    }

    /// The first record for the given (scheme, Table II workload) cell, if
    /// any. Sweeps produce several records per cell — disambiguate those
    /// with [`ResultSet::by_label`]; replay/mix cells are looked up with
    /// [`ResultSet::get_spec`].
    pub fn get(&self, scheme: Scheme, workload: Workload) -> Option<&RunRecord> {
        self.get_spec(scheme, &WorkloadSpec::Table2(workload))
    }

    /// The first record for the given (scheme, workload spec) cell, if any.
    pub fn get_spec(&self, scheme: Scheme, workload: &WorkloadSpec) -> Option<&RunRecord> {
        self.records
            .iter()
            .find(|r| r.scheme == scheme && &r.workload == workload)
    }

    /// The record with the given label, if any.
    pub fn by_label(&self, label: &str) -> Option<&RunRecord> {
        self.records.iter().find(|r| r.label == label)
    }

    /// End-to-end speedup (workload accesses per cycle) of `scheme` over
    /// `baseline` on one workload. `None` when either run is missing.
    pub fn speedup_over(
        &self,
        baseline: Scheme,
        scheme: Scheme,
        workload: Workload,
    ) -> Option<f64> {
        let base = self.get(baseline, workload)?.metrics.accesses_per_cycle();
        let this = self.get(scheme, workload)?.metrics.accesses_per_cycle();
        Some(this / base.max(f64::MIN_POSITIVE))
    }

    /// The `workloads × schemes` matrix of speedups over `baseline`
    /// (missing cells are 0.0) — the Fig. 10 normalisation.
    pub fn speedup_matrix(
        &self,
        baseline: Scheme,
        workloads: &[Workload],
        schemes: &[Scheme],
    ) -> Vec<Vec<f64>> {
        workloads
            .iter()
            .map(|&w| {
                schemes
                    .iter()
                    .map(|&s| self.speedup_over(baseline, s, w).unwrap_or(0.0))
                    .collect()
            })
            .collect()
    }

    /// Geometric-mean speedup of `scheme` over `baseline` across the given
    /// workloads (cells missing from the set are skipped).
    pub fn geo_mean_speedup(
        &self,
        baseline: Scheme,
        scheme: Scheme,
        workloads: &[Workload],
    ) -> f64 {
        let speedups: Vec<f64> = workloads
            .iter()
            .filter_map(|&w| self.speedup_over(baseline, scheme, w))
            .collect();
        geometric_mean(&speedups)
    }

    /// The scalar summaries of every record, in grid order.
    pub fn summaries(&self) -> Vec<RunSummary> {
        self.records.iter().map(RunRecord::summary).collect()
    }

    /// Renders the set as CSV (header row first).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", RunSummary::CSV_HEADER);
        for record in &self.records {
            let _ = writeln!(out, "{}", record.summary().to_csv_row());
        }
        out
    }

    /// Parses CSV produced by [`ResultSet::to_csv`] back into summaries.
    /// Returns `None` on a malformed document.
    pub fn parse_csv(csv: &str) -> Option<Vec<RunSummary>> {
        let mut lines = csv.lines();
        if lines.next()? != RunSummary::CSV_HEADER {
            return None;
        }
        lines.map(RunSummary::from_csv_row).collect()
    }

    /// Renders the set as a JSON array of flat per-run objects.
    pub fn to_json(&self) -> String {
        let objects: Vec<String> = self
            .records
            .iter()
            .map(|r| format!("  {}", r.summary().to_json_object()))
            .collect();
        format!("[\n{}\n]\n", objects.join(",\n"))
    }

    /// Parses JSON produced by [`ResultSet::to_json`] back into summaries.
    /// This is a minimal reader for the flat shape this module emits, not a
    /// general JSON parser. Returns `None` on malformed input.
    pub fn parse_json(json: &str) -> Option<Vec<RunSummary>> {
        let body = json.trim();
        let body = body.strip_prefix('[')?.strip_suffix(']')?.trim();
        if body.is_empty() {
            return Some(Vec::new());
        }
        let mut summaries = Vec::new();
        for object in split_top_level_objects(body)? {
            summaries.push(summary_from_json_object(&object)?);
        }
        Some(summaries)
    }

    /// The per-tenant summaries of every record, flattened in grid order
    /// (record by record, tenants in tenant order within each record).
    pub fn tenant_summaries(&self) -> Vec<TenantSummary> {
        self.records
            .iter()
            .flat_map(RunRecord::tenant_summaries)
            .collect()
    }

    /// Renders the per-tenant QoS table as CSV (header row first), one row
    /// per (run, tenant).
    pub fn to_tenant_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", TenantSummary::CSV_HEADER);
        for summary in self.tenant_summaries() {
            let _ = writeln!(out, "{}", summary.to_csv_row());
        }
        out
    }

    /// Parses CSV produced by [`ResultSet::to_tenant_csv`] back into
    /// per-tenant summaries. Returns `None` on a malformed document.
    pub fn parse_tenant_csv(csv: &str) -> Option<Vec<TenantSummary>> {
        let mut lines = csv.lines();
        if lines.next()? != TenantSummary::CSV_HEADER {
            return None;
        }
        lines.map(TenantSummary::from_csv_row).collect()
    }

    /// Renders the per-tenant QoS table as a JSON array of flat objects.
    pub fn to_tenant_json(&self) -> String {
        let objects: Vec<String> = self
            .tenant_summaries()
            .iter()
            .map(|s| format!("  {}", s.to_json_object()))
            .collect();
        if objects.is_empty() {
            return "[]\n".to_string();
        }
        format!("[\n{}\n]\n", objects.join(",\n"))
    }

    /// Parses JSON produced by [`ResultSet::to_tenant_json`] back into
    /// per-tenant summaries. Returns `None` on malformed input.
    pub fn parse_tenant_json(json: &str) -> Option<Vec<TenantSummary>> {
        let body = json.trim();
        let body = body.strip_prefix('[')?.strip_suffix(']')?.trim();
        if body.is_empty() {
            return Some(Vec::new());
        }
        let mut summaries = Vec::new();
        for object in split_top_level_objects(body)? {
            summaries.push(tenant_summary_from_json_object(&object)?);
        }
        Some(summaries)
    }

    /// The per-shard summaries of every record, flattened in grid order
    /// (record by record, shards in shard order within each record).
    /// Single-system records contribute no rows.
    pub fn shard_summaries(&self) -> Vec<ShardSummary> {
        self.records
            .iter()
            .flat_map(RunRecord::shard_summaries)
            .collect()
    }

    /// Renders the per-shard attribution table as CSV (header row first),
    /// one row per (sharded run, shard).
    pub fn to_shard_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", ShardSummary::CSV_HEADER);
        for summary in self.shard_summaries() {
            let _ = writeln!(out, "{}", summary.to_csv_row());
        }
        out
    }

    /// Parses CSV produced by [`ResultSet::to_shard_csv`] back into
    /// per-shard summaries. Returns `None` on a malformed document.
    pub fn parse_shard_csv(csv: &str) -> Option<Vec<ShardSummary>> {
        let mut lines = csv.lines();
        if lines.next()? != ShardSummary::CSV_HEADER {
            return None;
        }
        lines.map(ShardSummary::from_csv_row).collect()
    }

    /// Renders the per-shard attribution table as a JSON array of flat
    /// objects.
    pub fn to_shard_json(&self) -> String {
        let objects: Vec<String> = self
            .shard_summaries()
            .iter()
            .map(|s| format!("  {}", s.to_json_object()))
            .collect();
        if objects.is_empty() {
            return "[]\n".to_string();
        }
        format!("[\n{}\n]\n", objects.join(",\n"))
    }

    /// Parses JSON produced by [`ResultSet::to_shard_json`] back into
    /// per-shard summaries. Returns `None` on malformed input.
    pub fn parse_shard_json(json: &str) -> Option<Vec<ShardSummary>> {
        let body = json.trim();
        let body = body.strip_prefix('[')?.strip_suffix(']')?.trim();
        if body.is_empty() {
            return Some(Vec::new());
        }
        let mut summaries = Vec::new();
        for object in split_top_level_objects(body)? {
            summaries.push(shard_summary_from_json_object(&object)?);
        }
        Some(summaries)
    }
}

impl<'a> IntoIterator for &'a ResultSet {
    type Item = &'a RunRecord;
    type IntoIter = std::slice::Iter<'a, RunRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

/// Splits `{..},{..},..` into the individual `{..}` bodies, honouring
/// string literals so braces inside labels don't confuse the nesting count.
fn split_top_level_objects(body: &str) -> Option<Vec<String>> {
    let mut objects = Vec::new();
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut current = String::new();
    for c in body.chars() {
        if in_string {
            current.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                current.push(c);
            }
            '{' => {
                depth += 1;
                current.push(c);
            }
            '}' => {
                depth = depth.checked_sub(1)?;
                current.push(c);
                if depth == 0 {
                    objects.push(current.trim().to_string());
                    current = String::new();
                }
            }
            ',' if depth == 0 => {}
            _ => {
                if depth > 0 {
                    current.push(c);
                }
            }
        }
    }
    if depth != 0 || in_string {
        return None;
    }
    Some(objects)
}

/// Extracts the value of `"key":` from a flat JSON object body.
fn json_field(object: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":");
    let start = object.find(&marker)? + marker.len();
    let rest = &object[start..];
    if let Some(rest) = rest.strip_prefix('"') {
        // String value: scan to the closing unescaped quote, decoding the
        // escapes `escape_json` can produce.
        let mut value = String::new();
        let mut chars = rest.chars();
        while let Some(c) = chars.next() {
            match c {
                '"' => return Some(value),
                '\\' => match chars.next()? {
                    '"' => value.push('"'),
                    '\\' => value.push('\\'),
                    'n' => value.push('\n'),
                    'r' => value.push('\r'),
                    't' => value.push('\t'),
                    'u' => {
                        let hex: String = chars.by_ref().take(4).collect();
                        let code = u32::from_str_radix(&hex, 16).ok()?;
                        value.push(char::from_u32(code)?);
                    }
                    _ => return None,
                },
                c => value.push(c),
            }
        }
        None
    } else {
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim().to_string())
    }
}

fn summary_from_json_object(object: &str) -> Option<RunSummary> {
    Some(RunSummary {
        label: json_field(object, "label")?,
        scheme: Scheme::from_name(&json_field(object, "scheme")?)?,
        workload: WorkloadSpec::from_name(&json_field(object, "workload")?)?,
        prefetch_length: json_field(object, "prefetch_length")?.parse().ok()?,
        oram_requests: json_field(object, "oram_requests")?.parse().ok()?,
        workload_accesses: json_field(object, "workload_accesses")?.parse().ok()?,
        dummy_requests: json_field(object, "dummy_requests")?.parse().ok()?,
        cycles: json_field(object, "cycles")?.parse().ok()?,
        mean_latency: json_field(object, "mean_latency")?.parse().ok()?,
        llc_hit_rate: json_field(object, "llc_hit_rate")?.parse().ok()?,
        stash_high_water: json_field(object, "stash_high_water")?.parse().ok()?,
        bandwidth_utilization: json_field(object, "bandwidth_utilization")?.parse().ok()?,
        sync_stall_cycles: json_field(object, "sync_stall_cycles")?.parse().ok()?,
        arrivals: json_field(object, "arrivals")?.parse().ok()?,
        dropped_arrivals: json_field(object, "dropped_arrivals")?.parse().ok()?,
        mean_queue_wait: json_field(object, "mean_queue_wait")?.parse().ok()?,
        shards: json_field(object, "shards")?.parse().ok()?,
        hardware: json_field(object, "hardware")?,
        energy_j: json_field(object, "energy_j")?.parse().ok()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{Experiment, SerialExecutor};
    use crate::system::SystemConfig;

    fn small_set() -> ResultSet {
        let mut cfg = SystemConfig::small_for_tests();
        cfg.measured_requests = 20;
        cfg.warmup_requests = 5;
        Experiment::new(cfg)
            .schemes([Scheme::PathOram, Scheme::Palermo])
            .workloads([Workload::Random])
            .run(&SerialExecutor)
            .unwrap()
    }

    #[test]
    fn speedup_and_geo_mean_normalise_against_the_baseline() {
        let set = small_set();
        let self_speedup = set
            .speedup_over(Scheme::PathOram, Scheme::PathOram, Workload::Random)
            .unwrap();
        assert!((self_speedup - 1.0).abs() < 1e-12);
        let palermo = set
            .speedup_over(Scheme::PathOram, Scheme::Palermo, Workload::Random)
            .unwrap();
        assert!(palermo > 1.0);
        let matrix = set.speedup_matrix(Scheme::PathOram, &[Workload::Random], &[Scheme::Palermo]);
        assert_eq!(matrix, vec![vec![palermo]]);
        let gm = set.geo_mean_speedup(Scheme::PathOram, Scheme::Palermo, &[Workload::Random]);
        assert!((gm - palermo).abs() < 1e-12);
        assert!(set
            .speedup_over(Scheme::IrOram, Scheme::Palermo, Workload::Random)
            .is_none());
    }

    #[test]
    fn csv_round_trips_exactly() {
        let set = small_set();
        let parsed = ResultSet::parse_csv(&set.to_csv()).unwrap();
        assert_eq!(parsed, set.summaries());
    }

    fn mix_set() -> ResultSet {
        use palermo_workloads::MixSpec;
        let mut cfg = SystemConfig::small_for_tests();
        cfg.measured_requests = 20;
        cfg.warmup_requests = 5;
        let mix = WorkloadSpec::Mix(
            MixSpec::round_robin()
                .tenant(Workload::Redis.into(), 2)
                .tenant(Workload::Llm.into(), 1),
        );
        Experiment::new(cfg)
            .schemes([Scheme::Palermo])
            .workload_specs([mix])
            .run(&SerialExecutor)
            .unwrap()
    }

    #[test]
    fn tenant_csv_round_trips_exactly() {
        let set = mix_set();
        let summaries = set.tenant_summaries();
        assert_eq!(summaries.len(), 2, "one row per tenant");
        assert_eq!(summaries[0].tenant_workload, "redis");
        assert_eq!(summaries[1].tenant_workload, "llm");
        let parsed = ResultSet::parse_tenant_csv(&set.to_tenant_csv()).unwrap();
        assert_eq!(parsed, summaries);
    }

    #[test]
    fn tenant_json_round_trips_exactly() {
        let set = mix_set();
        let parsed = ResultSet::parse_tenant_json(&set.to_tenant_json()).unwrap();
        assert_eq!(parsed, set.tenant_summaries());
        // Single-tenant sets export one row per run, and empty sets parse.
        let single = small_set();
        assert_eq!(single.tenant_summaries().len(), single.len());
        assert_eq!(ResultSet::parse_tenant_json("[]").unwrap(), Vec::new());
        assert_eq!(
            ResultSet::parse_tenant_json(&ResultSet::default().to_tenant_json()).unwrap(),
            Vec::new()
        );
        assert!(ResultSet::parse_tenant_csv("nope\n1,2").is_none());
    }

    fn shard_set() -> ResultSet {
        let mut cfg = SystemConfig::small_for_tests();
        cfg.measured_requests = 20;
        cfg.warmup_requests = 4;
        Experiment::new(cfg)
            .schemes([Scheme::RingOram])
            .workload_specs([WorkloadSpec::from_name("shard:2:hash:random").unwrap()])
            .run(&SerialExecutor)
            .unwrap()
    }

    #[test]
    fn shard_csv_round_trips_exactly() {
        let set = shard_set();
        let summaries = set.shard_summaries();
        assert_eq!(summaries.len(), 2, "one row per shard");
        assert_eq!(summaries[0].shard, 0);
        assert_eq!(summaries[1].shard, 1);
        assert_eq!(set.summaries()[0].shards, 2);
        let parsed = ResultSet::parse_shard_csv(&set.to_shard_csv()).unwrap();
        assert_eq!(parsed, summaries);
        // Single-system sets export no shard rows and a shards count of 0.
        let single = small_set();
        assert!(single.shard_summaries().is_empty());
        assert!(single.summaries().iter().all(|s| s.shards == 0));
        assert!(ResultSet::parse_shard_csv("nope\n1,2").is_none());
    }

    #[test]
    fn shard_json_round_trips_exactly() {
        let set = shard_set();
        let parsed = ResultSet::parse_shard_json(&set.to_shard_json()).unwrap();
        assert_eq!(parsed, set.shard_summaries());
        assert_eq!(ResultSet::parse_shard_json("[]").unwrap(), Vec::new());
        assert_eq!(
            ResultSet::parse_shard_json(&ResultSet::default().to_shard_json()).unwrap(),
            Vec::new()
        );
    }

    #[test]
    fn shard_exports_survive_hostile_labels_both_directions() {
        let set = shard_set();
        let mut record = set.records()[0].clone();
        record.label = "odd \"label\" with {braces},\ncommas\tand\u{1}controls".to_string();
        let odd = ResultSet::new(vec![record]);
        let parsed = ResultSet::parse_shard_json(&odd.to_shard_json()).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(
            parsed[0].label,
            "odd \"label\" with {braces},\ncommas\tand\u{1}controls"
        );
        assert_eq!(parsed[0].workload.name(), "shard:2:hash:random");
        assert!(!odd
            .to_shard_json()
            .chars()
            .any(|c| c.is_control() && c != '\n'));
        // CSV flattens the label but stays one well-formed row per shard.
        let csv = odd.to_shard_csv();
        assert_eq!(csv.lines().count(), 3);
        let parsed = ResultSet::parse_shard_csv(&csv).unwrap();
        assert_eq!(
            parsed[1].label,
            "odd \"label\" with {braces}; commas and controls"
        );
        // The sharded run-level summary round-trips through both formats
        // too (its workload cell carries the reserved `:`-grammar name).
        let run_parsed = ResultSet::parse_csv(&odd.to_csv()).unwrap();
        assert_eq!(run_parsed[0].shards, 2);
        assert_eq!(run_parsed[0].workload.name(), "shard:2:hash:random");
        let run_parsed = ResultSet::parse_json(&odd.to_json()).unwrap();
        assert_eq!(run_parsed, odd.summaries());
    }

    fn hardware_set() -> ResultSet {
        use palermo_dram::HardwareProfile;
        let mut cfg = SystemConfig::small_for_tests();
        cfg.measured_requests = 20;
        cfg.warmup_requests = 5;
        Experiment::new(cfg)
            .schemes([Scheme::Palermo])
            .workloads([Workload::Random])
            .sweep_hardware(&HardwareProfile::builtins())
            .run(&SerialExecutor)
            .unwrap()
    }

    #[test]
    fn hardware_and_energy_columns_round_trip_exactly() {
        let set = hardware_set();
        let summaries = set.summaries();
        assert_eq!(summaries.len(), 3, "one run per profile");
        let names: Vec<&str> = summaries.iter().map(|s| s.hardware.as_str()).collect();
        assert_eq!(names, ["ddr4-3200", "ddr5-6400", "hbm2e"]);
        assert!(summaries.iter().all(|s| s.energy_j > 0.0));
        let parsed = ResultSet::parse_csv(&set.to_csv()).unwrap();
        assert_eq!(parsed, summaries);
        let parsed = ResultSet::parse_json(&set.to_json()).unwrap();
        assert_eq!(parsed, summaries);
        // A pre-extension row (17 fields) no longer parses.
        let legacy = set.to_csv();
        let short_row: String = legacy
            .lines()
            .nth(1)
            .unwrap()
            .split(',')
            .take(17)
            .collect::<Vec<_>>()
            .join(",");
        assert!(RunSummary::from_csv_row(&short_row).is_none());
    }

    #[test]
    fn tenant_energy_column_round_trips_and_partitions_the_total() {
        let set = mix_set();
        let record = &set.records()[0];
        let summaries = set.tenant_summaries();
        let tenant_total: f64 = summaries.iter().map(|t| t.energy_j).sum();
        assert!(tenant_total > 0.0);
        assert!(
            (tenant_total - record.metrics.energy_j()).abs() <= record.metrics.energy_j() * 1e-12
        );
        let parsed = ResultSet::parse_tenant_csv(&set.to_tenant_csv()).unwrap();
        assert_eq!(parsed, summaries);
        let parsed = ResultSet::parse_tenant_json(&set.to_tenant_json()).unwrap();
        assert_eq!(parsed, summaries);
    }

    #[test]
    fn tenant_shares_partition_the_dram_demand() {
        let set = mix_set();
        let record = &set.records()[0];
        let shares: f64 = (0..record.metrics.per_tenant.len())
            .map(|i| record.metrics.tenant_dram_share(i))
            .sum();
        assert!((shares - 1.0).abs() < 1e-12, "shares sum to {shares}");
        assert!(record.metrics.tenant_conservation_ok());
    }

    #[test]
    fn json_round_trips_exactly() {
        let set = small_set();
        let parsed = ResultSet::parse_json(&set.to_json()).unwrap();
        assert_eq!(parsed, set.summaries());
    }

    #[test]
    fn json_labels_with_quotes_braces_and_control_chars_survive() {
        let set = small_set();
        let mut record = set.records()[0].clone();
        record.label = "odd \"label\" with {braces},\ncommas\tand\u{1}controls".to_string();
        let odd = ResultSet::new(vec![record.clone()]);
        let parsed = ResultSet::parse_json(&odd.to_json()).unwrap();
        assert_eq!(
            parsed[0].label,
            "odd \"label\" with {braces},\ncommas\tand\u{1}controls"
        );
        // The JSON document itself contains no raw control characters.
        assert!(!odd.to_json().chars().any(|c| c.is_control() && c != '\n'));
        // CSV flattens the label but stays one well-formed row per record.
        let csv = odd.to_csv();
        assert_eq!(csv.lines().count(), 2);
        let parsed = ResultSet::parse_csv(&csv).unwrap();
        assert_eq!(
            parsed[0].label,
            "odd \"label\" with {braces}; commas and controls"
        );
    }

    #[test]
    fn into_records_moves_the_metrics_out() {
        let set = small_set();
        let len = set.len();
        let records = set.into_records();
        assert_eq!(records.len(), len);
        assert!(records.iter().all(|r| !r.metrics.latencies.is_empty()));
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(ResultSet::parse_csv("not,a,header\n1,2").is_none());
        assert!(ResultSet::parse_json("{\"not\":\"an array\"").is_none());
        assert!(RunSummary::from_csv_row("too,few,fields").is_none());
        assert_eq!(ResultSet::parse_json("[]").unwrap(), Vec::new());
    }

    #[test]
    fn lookup_helpers_find_records() {
        let set = small_set();
        assert!(set.get(Scheme::Palermo, Workload::Random).is_some());
        assert!(set.by_label("Palermo/random").is_some());
        assert!(set.by_label("nope").is_none());
        assert_eq!(set.iter().count(), set.len());
        assert_eq!((&set).into_iter().count(), 2);
    }
}
