//! The typed experiment surface of the simulator.
//!
//! The paper's evaluation is a large grid of *independent* (scheme ×
//! workload × configuration) simulations. This module replaces the
//! hand-rolled nested loops the figure runners used to build around
//! [`run_workload`](crate::runner::run_workload) with three pieces:
//!
//! * [`RunSpec`] — a fully-resolved description of one simulation run
//!   (scheme, workload, per-run [`SystemConfig`], label);
//! * [`Experiment`] — a builder that composes grids and sweeps of
//!   `RunSpec`s declaratively;
//! * [`Executor`] — a pluggable execution strategy. [`SerialExecutor`]
//!   runs the specs in order; [`ThreadPoolExecutor`] fans them across OS
//!   threads with deterministic, order-preserving result collection.
//!
//! Results come back as a [`ResultSet`] of [`RunRecord`]s with
//! baseline-normalisation, geo-mean and CSV/JSON export helpers.
//!
//! # Example
//!
//! ```
//! use palermo_sim::experiment::{Experiment, SerialExecutor};
//! use palermo_sim::{Scheme, SystemConfig};
//! use palermo_workloads::Workload;
//!
//! let mut cfg = SystemConfig::small_for_tests();
//! cfg.measured_requests = 20;
//! cfg.warmup_requests = 5;
//! let results = Experiment::new(cfg)
//!     .schemes([Scheme::PathOram, Scheme::Palermo])
//!     .workloads([Workload::Random])
//!     .run(&SerialExecutor)?;
//! assert_eq!(results.len(), 2);
//! let speedup = results
//!     .speedup_over(Scheme::PathOram, Scheme::Palermo, Workload::Random)
//!     .unwrap();
//! assert!(speedup > 1.0);
//! # Ok::<(), palermo_oram::error::OramError>(())
//! ```

pub mod executor;
pub mod results;

pub use executor::{Executor, SerialExecutor, ThreadPoolExecutor};
pub use results::{ResultSet, RunRecord, RunSummary, ShardSummary, TenantSummary};

use crate::runner::{run_with_configs_spec, run_workload_spec, RunMetrics};
use crate::schemes::Scheme;
use crate::system::SystemConfig;
use palermo_controller::ControllerConfig;
use palermo_dram::HardwareProfile;
use palermo_oram::error::OramResult;
use palermo_oram::hierarchy::HierarchyConfig;
use palermo_workloads::{ArrivalSpec, OpenLoopSpec, Workload, WorkloadSpec};

/// Explicit protocol/controller configurations for a run that falls outside
/// the standard [`Scheme`] set (e.g. PrORAM without the fat tree for
/// Fig. 4). The spec's `scheme` is then only a label on the metrics.
#[derive(Debug, Clone)]
pub struct CustomProtocol {
    /// The protocol configuration to instantiate.
    pub hierarchy: HierarchyConfig,
    /// The controller model to execute the access plans on.
    pub controller: ControllerConfig,
    /// Prefetch length recorded on the metrics (1 = no prefetch).
    pub prefetch_length: u32,
}

/// A fully-resolved description of one simulation run.
///
/// A `RunSpec` is self-contained: executing it needs no context beyond the
/// spec itself, which is what makes a grid of them embarrassingly parallel.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// The ORAM design to simulate (or to label a custom run with).
    pub scheme: Scheme,
    /// The workload spec driving the run: a Table II workload, a trace
    /// replay, or a multi-tenant mix.
    pub workload: WorkloadSpec,
    /// The complete system configuration, per-run overrides already applied.
    pub config: SystemConfig,
    /// Human-readable label; unique within one experiment's grid.
    pub label: String,
    /// Explicit protocol/controller configuration overriding the standard
    /// scheme wiring, if any.
    pub custom: Option<CustomProtocol>,
}

impl RunSpec {
    /// Creates a spec for a Table II workload with the default
    /// `scheme/workload` label.
    pub fn new(scheme: Scheme, workload: Workload, config: SystemConfig) -> Self {
        Self::with_workload_spec(scheme, WorkloadSpec::Table2(workload), config)
    }

    /// Creates a spec for an arbitrary [`WorkloadSpec`] with the default
    /// `scheme/spec-name` label.
    pub fn with_workload_spec(
        scheme: Scheme,
        workload: WorkloadSpec,
        config: SystemConfig,
    ) -> Self {
        let label = format!("{scheme}/{workload}");
        RunSpec {
            scheme,
            workload,
            config,
            label,
            custom: None,
        }
    }

    /// Replaces the label.
    #[must_use]
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Attaches an explicit protocol/controller configuration.
    #[must_use]
    pub fn with_custom(mut self, custom: CustomProtocol) -> Self {
        self.custom = Some(custom);
        self
    }

    /// Executes this spec, producing the run's metrics.
    ///
    /// # Errors
    ///
    /// Propagates configuration and simulation errors from the protocol
    /// layer (e.g. [`OramError::WorkloadStalled`] when the working set fits
    /// entirely in the LLC).
    ///
    /// [`OramError::WorkloadStalled`]: palermo_oram::error::OramError::WorkloadStalled
    pub fn execute(&self) -> OramResult<RunMetrics> {
        match &self.custom {
            Some(custom) => run_with_configs_spec(
                self.scheme,
                custom.hierarchy.clone(),
                custom.controller,
                &self.workload,
                &self.config,
                custom.prefetch_length,
            ),
            None => run_workload_spec(self.scheme, &self.workload, &self.config),
        }
    }

    /// Executes this spec and wraps the metrics in a [`RunRecord`].
    ///
    /// # Errors
    ///
    /// Propagates errors from [`RunSpec::execute`].
    pub fn run(&self) -> OramResult<RunRecord> {
        let metrics = self.execute()?;
        Ok(RunRecord {
            label: self.label.clone(),
            scheme: self.scheme,
            workload: self.workload.clone(),
            metrics,
        })
    }
}

/// A declarative builder for grids and sweeps of [`RunSpec`]s.
///
/// The grid is the cross product
/// `config variants × workloads × schemes × prefetch points`, in that
/// nesting order (workloads outermost after variants, matching the row
/// order the paper's figures use), plus any explicitly added specs.
///
/// ```
/// use palermo_sim::experiment::Experiment;
/// use palermo_sim::{Scheme, SystemConfig};
/// use palermo_workloads::Workload;
///
/// let specs = Experiment::new(SystemConfig::small_for_tests())
///     .schemes(Scheme::ALL)
///     .workloads([Workload::Mcf, Workload::Random])
///     .build();
/// assert_eq!(specs.len(), Scheme::ALL.len() * 2);
/// ```
#[derive(Debug, Clone)]
pub struct Experiment {
    base: SystemConfig,
    schemes: Vec<Scheme>,
    workloads: Vec<WorkloadSpec>,
    prefetch_lengths: Vec<u32>,
    offered_loads: Vec<f64>,
    variants: Vec<(String, SystemConfig)>,
    extra: Vec<RunSpec>,
}

impl Experiment {
    /// Starts an experiment from a base system configuration.
    pub fn new(base: SystemConfig) -> Self {
        Experiment {
            base,
            schemes: Vec::new(),
            workloads: Vec::new(),
            prefetch_lengths: Vec::new(),
            offered_loads: Vec::new(),
            variants: Vec::new(),
            extra: Vec::new(),
        }
    }

    /// Adds schemes to the grid (column dimension).
    #[must_use]
    pub fn schemes(mut self, schemes: impl IntoIterator<Item = Scheme>) -> Self {
        self.schemes.extend(schemes);
        self
    }

    /// Adds Table II workloads to the grid (row dimension).
    #[must_use]
    pub fn workloads(mut self, workloads: impl IntoIterator<Item = Workload>) -> Self {
        self.workloads
            .extend(workloads.into_iter().map(WorkloadSpec::Table2));
        self
    }

    /// Adds arbitrary workload specs to the grid (row dimension) — trace
    /// replays and multi-tenant mixes sweep exactly like Table II
    /// workloads.
    #[must_use]
    pub fn workload_specs(mut self, specs: impl IntoIterator<Item = WorkloadSpec>) -> Self {
        self.workloads.extend(specs);
        self
    }

    /// Sweeps the prefetch length over the given values: each grid cell is
    /// run once per length with `prefetch_override` set. Without this call
    /// every run uses the workload's default length.
    #[must_use]
    pub fn sweep_prefetch(mut self, lengths: impl IntoIterator<Item = u32>) -> Self {
        self.prefetch_lengths.extend(lengths);
        self
    }

    /// Sweeps the offered load over the given Poisson arrival rates
    /// (requests per kilocycle): each grid cell is run once per rate with
    /// its workload wrapped in an open-loop
    /// [`WorkloadSpec::OpenLoop`] spec, which is what
    /// [`figures::load_curve`](crate::figures::load_curve) uses to trace
    /// latency-vs-load knee curves. Workloads that are *already* open-loop
    /// pass through exactly once, unmultiplied, keeping their own arrival
    /// spec. Without this call every run stays closed-loop.
    #[must_use]
    pub fn sweep_offered_load(mut self, rates: impl IntoIterator<Item = f64>) -> Self {
        self.offered_loads.extend(rates);
        self
    }

    /// Adds a named configuration variant derived from the base
    /// configuration. Calling this repeatedly builds a sweep: the grid is
    /// run once per variant. Without any variant the base configuration is
    /// used as-is.
    #[must_use]
    pub fn sweep_config(
        mut self,
        label: impl Into<String>,
        mutate: impl FnOnce(&mut SystemConfig),
    ) -> Self {
        let mut cfg = self.base.clone();
        mutate(&mut cfg);
        self.variants.push((label.into(), cfg));
        self
    }

    /// Adds one configuration variant per hardware profile, labelled with
    /// the profile's name — a scheme x workload x hardware grid becomes a
    /// one-liner:
    ///
    /// ```ignore
    /// Experiment::new(config)
    ///     .schemes([Scheme::RingOram, Scheme::Palermo])
    ///     .workloads([Workload::Random])
    ///     .sweep_hardware(&HardwareProfile::builtins())
    ///     .run(&SerialExecutor)
    /// ```
    #[must_use]
    pub fn sweep_hardware(mut self, profiles: &[HardwareProfile]) -> Self {
        for profile in profiles {
            self.variants.push((
                profile.name.clone(),
                self.base.clone().with_hardware(profile),
            ));
        }
        self
    }

    /// Appends an explicitly constructed spec (used for runs outside the
    /// standard scheme wiring, e.g. the Fig. 4 PrORAM variants).
    #[must_use]
    pub fn spec(mut self, spec: RunSpec) -> Self {
        self.extra.push(spec);
        self
    }

    /// Appends a batch of explicitly constructed specs.
    #[must_use]
    pub fn specs(mut self, specs: impl IntoIterator<Item = RunSpec>) -> Self {
        self.extra.extend(specs);
        self
    }

    /// Materialises the grid into an ordered list of run specs.
    pub fn build(&self) -> Vec<RunSpec> {
        let variants: Vec<(String, SystemConfig)> = if self.variants.is_empty() {
            vec![(String::new(), self.base.clone())]
        } else {
            self.variants.clone()
        };
        let prefetch: Vec<Option<u32>> = if self.prefetch_lengths.is_empty() {
            vec![None]
        } else {
            self.prefetch_lengths.iter().copied().map(Some).collect()
        };
        let mut specs = Vec::new();
        for (vlabel, vcfg) in &variants {
            for workload in &self.workloads {
                // The load sweep wraps each closed-loop workload in one
                // open-loop spec per rate point; a workload that is already
                // open-loop keeps its own arrival spec and runs once.
                let load_points: Vec<(WorkloadSpec, Option<f64>)> =
                    if self.offered_loads.is_empty() || workload.open_loop().is_some() {
                        vec![(workload.clone(), None)]
                    } else {
                        self.offered_loads
                            .iter()
                            .map(|&rate| {
                                let arrival = ArrivalSpec::Poisson {
                                    rate_per_kcycle: rate,
                                };
                                let open = OpenLoopSpec::new(arrival, workload.clone());
                                (WorkloadSpec::OpenLoop(open), Some(rate))
                            })
                            .collect()
                    };
                for (wl_spec, load) in &load_points {
                    for &scheme in &self.schemes {
                        for &pf in &prefetch {
                            let mut config = vcfg.clone();
                            if let Some(p) = pf {
                                config.prefetch_override = Some(p);
                            }
                            // Synthesized load points label with the *inner*
                            // workload name; the `load=` suffix carries the
                            // arrival rate.
                            let mut label = format!("{scheme}/{workload}");
                            if !vlabel.is_empty() {
                                label = format!("{label}/{vlabel}");
                            }
                            if let Some(p) = pf {
                                label = format!("{label}/pf={p}");
                            }
                            if let Some(rate) = load {
                                label = format!("{label}/load={rate}");
                            }
                            specs.push(RunSpec {
                                scheme,
                                workload: wl_spec.clone(),
                                config,
                                label,
                                custom: None,
                            });
                        }
                    }
                }
            }
        }
        specs.extend(self.extra.iter().cloned());
        specs
    }

    /// Builds the grid and executes it on the given executor.
    ///
    /// # Errors
    ///
    /// Propagates the error of the first (in grid order) failing run.
    pub fn run<E: Executor + ?Sized>(&self, executor: &E) -> OramResult<ResultSet> {
        Ok(ResultSet::new(executor.execute(self.build())?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SystemConfig {
        let mut cfg = SystemConfig::small_for_tests();
        cfg.measured_requests = 20;
        cfg.warmup_requests = 5;
        cfg
    }

    #[test]
    fn grid_is_the_cross_product_in_row_major_order() {
        let specs = Experiment::new(tiny())
            .schemes([Scheme::PathOram, Scheme::Palermo])
            .workloads([Workload::Mcf, Workload::Random])
            .build();
        assert_eq!(specs.len(), 4);
        assert_eq!(specs[0].label, "PathORAM/mcf");
        assert_eq!(specs[1].label, "Palermo/mcf");
        assert_eq!(specs[2].label, "PathORAM/random");
        assert_eq!(specs[3].label, "Palermo/random");
    }

    #[test]
    fn prefetch_sweep_multiplies_the_grid_and_sets_the_override() {
        let specs = Experiment::new(tiny())
            .schemes([Scheme::PalermoPrefetch])
            .workloads([Workload::Streaming])
            .sweep_prefetch([2, 8])
            .build();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].config.prefetch_override, Some(2));
        assert_eq!(specs[1].config.prefetch_override, Some(8));
        assert!(specs[1].label.ends_with("pf=8"));
    }

    #[test]
    fn config_sweep_produces_one_variant_per_call() {
        let specs = Experiment::new(tiny())
            .schemes([Scheme::Palermo])
            .workloads([Workload::Random])
            .sweep_config("pe=1", |c| c.pe_columns = 1)
            .sweep_config("pe=8", |c| c.pe_columns = 8)
            .build();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].config.pe_columns, 1);
        assert_eq!(specs[1].config.pe_columns, 8);
        assert_eq!(specs[0].label, "Palermo/random/pe=1");
    }

    #[test]
    fn hardware_sweep_produces_one_labelled_variant_per_profile() {
        let specs = Experiment::new(tiny())
            .schemes([Scheme::RingOram, Scheme::Palermo])
            .workloads([Workload::Random])
            .sweep_hardware(&HardwareProfile::builtins())
            .build();
        assert_eq!(specs.len(), 6, "3 profiles x 2 schemes");
        assert_eq!(specs[0].label, "RingORAM/random/ddr4-3200");
        assert_eq!(specs[0].config.hardware, "ddr4-3200");
        assert_eq!(
            specs[0].config.dram,
            palermo_dram::DramConfig::ddr4_3200_quad_channel()
        );
        let hbm = specs.iter().find(|s| s.config.hardware == "hbm2e").unwrap();
        assert_eq!(hbm.config.dram.channels, 16);
        assert_eq!(hbm.config.energy, HardwareProfile::hbm2e().energy);
    }

    #[test]
    fn load_sweep_wraps_each_workload_per_rate_point() {
        let specs = Experiment::new(tiny())
            .schemes([Scheme::RingOram, Scheme::Palermo])
            .workloads([Workload::Random])
            .sweep_offered_load([0.05, 0.2])
            .build();
        assert_eq!(specs.len(), 4);
        for spec in &specs {
            let open = spec.workload.open_loop().expect("wrapped open-loop");
            assert_eq!(open.inner.name(), "random");
        }
        assert_eq!(specs[0].label, "RingORAM/random/load=0.05");
        assert_eq!(specs[1].label, "Palermo/random/load=0.05");
        assert!(specs[3].label.ends_with("load=0.2"));
        assert_eq!(specs[3].workload.open_loop().unwrap().arrivals.len(), 1);
    }

    #[test]
    fn load_sweep_passes_open_loop_workloads_through_once() {
        let already_open = WorkloadSpec::from_name("open:bursty:0.2:20000:60000:mcf").unwrap();
        let specs = Experiment::new(tiny())
            .schemes([Scheme::Palermo])
            .workload_specs([already_open.clone()])
            .sweep_offered_load([0.05, 0.2])
            .build();
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].workload, already_open);
        assert!(!specs[0].label.contains("load="));
    }

    #[test]
    fn explicit_specs_ride_along_after_the_grid() {
        let extra = RunSpec::new(Scheme::RingOram, Workload::Llm, tiny()).with_label("extra");
        let specs = Experiment::new(tiny())
            .schemes([Scheme::Palermo])
            .workloads([Workload::Random])
            .spec(extra)
            .build();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[1].label, "extra");
    }

    #[test]
    fn spec_executes_like_run_workload() {
        let cfg = tiny();
        let spec = RunSpec::new(Scheme::Palermo, Workload::Random, cfg.clone());
        let direct = crate::runner::run_workload(Scheme::Palermo, Workload::Random, &cfg).unwrap();
        let via_spec = spec.execute().unwrap();
        assert_eq!(via_spec.cycles, direct.cycles);
        assert_eq!(via_spec.latencies, direct.latencies);
    }
}
