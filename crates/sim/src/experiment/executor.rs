//! Pluggable execution strategies for a grid of [`RunSpec`]s.
//!
//! Every run in a grid is independent — each one constructs its own ORAM,
//! controller, DRAM model and workload stream from the spec — so a grid is
//! embarrassingly parallel. [`ThreadPoolExecutor`] exploits that with
//! scoped OS threads and *deterministic* result collection: results land in
//! grid order regardless of which worker finishes first, and each run's
//! randomness is derived solely from its spec's seed, so the metrics are
//! byte-identical to a [`SerialExecutor`] run of the same grid.

use super::results::RunRecord;
use super::RunSpec;
use palermo_oram::error::{OramError, OramResult};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// An execution strategy for a batch of independent run specs.
pub trait Executor {
    /// Executes every spec, returning the records in spec order.
    ///
    /// # Errors
    ///
    /// Returns the error of the first (in spec order) failing run.
    /// Implementations must preserve spec order in the returned records.
    fn execute(&self, specs: Vec<RunSpec>) -> OramResult<Vec<RunRecord>>;
}

/// Runs every spec in order on the calling thread.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialExecutor;

impl Executor for SerialExecutor {
    fn execute(&self, specs: Vec<RunSpec>) -> OramResult<Vec<RunRecord>> {
        specs.iter().map(RunSpec::run).collect()
    }
}

/// Fans independent runs across a fixed number of OS threads using
/// [`std::thread::scope`] (no external dependencies).
///
/// Workers claim specs from a shared atomic counter (dynamic load
/// balancing: long runs don't serialise behind short ones) and store each
/// result at the spec's own index, so the output order — and, because every
/// run is seeded from its spec alone, every metric — is identical to what
/// [`SerialExecutor`] produces.
#[derive(Debug, Clone, Copy)]
pub struct ThreadPoolExecutor {
    threads: usize,
}

impl ThreadPoolExecutor {
    /// Creates an executor with the given worker count (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        ThreadPoolExecutor {
            threads: threads.max(1),
        }
    }

    /// Creates an executor with one worker per available core.
    ///
    /// The worker count is the one ambient input the executor takes; it can
    /// only change *scheduling*, never results — `tests/experiment_api.rs`
    /// pins byte-identical `RunMetrics` against [`SerialExecutor`].
    pub fn with_available_parallelism() -> Self {
        // audit:allow(ambient-state, thread count affects scheduling only; serial-vs-pool byte-identity is pinned by tests)
        Self::new(std::thread::available_parallelism().map_or(1, NonZeroUsize::get))
    }

    /// The number of worker threads this executor will spawn.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl Default for ThreadPoolExecutor {
    fn default() -> Self {
        Self::with_available_parallelism()
    }
}

impl Executor for ThreadPoolExecutor {
    fn execute(&self, specs: Vec<RunSpec>) -> OramResult<Vec<RunRecord>> {
        let n = specs.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<OramResult<RunRecord>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(n) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let result = specs[i].run();
                    *slots[i].lock().expect("result slot poisoned") = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .unwrap_or_else(|| {
                        // Unreachable: the scope joins every worker and the
                        // counter hands each index to exactly one of them.
                        Err(OramError::InvalidParams {
                            reason: "executor worker dropped a run".into(),
                        })
                    })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Experiment;
    use crate::schemes::Scheme;
    use crate::system::SystemConfig;
    use palermo_workloads::Workload;

    fn tiny() -> SystemConfig {
        let mut cfg = SystemConfig::small_for_tests();
        cfg.measured_requests = 20;
        cfg.warmup_requests = 5;
        cfg
    }

    fn grid() -> Experiment {
        Experiment::new(tiny())
            .schemes([Scheme::PathOram, Scheme::RingOram, Scheme::Palermo])
            .workloads([Workload::Random, Workload::Mcf])
    }

    #[test]
    fn thread_pool_matches_serial_exactly() {
        let serial = grid().run(&SerialExecutor).unwrap();
        let pooled = grid().run(&ThreadPoolExecutor::new(4)).unwrap();
        assert_eq!(serial.len(), pooled.len());
        for (s, p) in serial.iter().zip(pooled.iter()) {
            assert_eq!(s.label, p.label);
            assert_eq!(s.metrics.cycles, p.metrics.cycles);
            assert_eq!(s.metrics.latencies, p.metrics.latencies);
            assert_eq!(s.metrics.oram_requests, p.metrics.oram_requests);
            assert_eq!(s.metrics.dram.reads, p.metrics.dram.reads);
        }
    }

    #[test]
    fn thread_pool_handles_more_threads_than_specs() {
        let set = Experiment::new(tiny())
            .schemes([Scheme::Palermo])
            .workloads([Workload::Random])
            .run(&ThreadPoolExecutor::new(16))
            .unwrap();
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn empty_grid_is_fine() {
        let set = Experiment::new(tiny())
            .run(&ThreadPoolExecutor::new(2))
            .unwrap();
        assert!(set.is_empty());
    }

    #[test]
    fn first_error_in_spec_order_wins() {
        let mut bad = tiny();
        bad.protected_bytes = 0; // invalid: zero-sized protected space
        let err = Experiment::new(tiny())
            .schemes([Scheme::Palermo])
            .workloads([Workload::Random])
            .spec(super::super::RunSpec::new(
                Scheme::Palermo,
                Workload::Random,
                bad,
            ))
            .run(&ThreadPoolExecutor::new(2))
            .unwrap_err();
        assert!(matches!(err, OramError::InvalidParams { .. }));
    }

    #[test]
    fn constructors_clamp_and_report_threads() {
        assert_eq!(ThreadPoolExecutor::new(0).threads(), 1);
        assert!(ThreadPoolExecutor::with_available_parallelism().threads() >= 1);
        assert!(ThreadPoolExecutor::default().threads() >= 1);
    }
}
