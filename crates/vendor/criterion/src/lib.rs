//! Minimal, offline, API-compatible stand-in for the `criterion` benchmark
//! harness.
//!
//! The build environment for this repository has no access to a crates
//! registry, so the real `criterion` crate cannot be downloaded. This shim
//! implements exactly the API surface the `palermo-bench` targets use
//! (`criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_function, bench_with_input, finish}`,
//! `Bencher::iter`, `BenchmarkId::new`, `black_box`) with a simple
//! wall-clock measurement loop, so `cargo bench` still executes every
//! benchmark body and reports a mean time per iteration.

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::Instant;

/// Prevent the compiler from optimising away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// A benchmark identifier composed of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a benchmark name and a displayable parameter.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Trait unifying the `&str` / `String` / `BenchmarkId` arguments accepted
/// by `bench_function` and `bench_with_input`.
pub trait IntoBenchmarkId {
    /// Render the id as the string used in reports.
    fn into_id_string(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id_string(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id_string(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id_string(self) -> String {
        self
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    /// Mean nanoseconds per iteration recorded by the last `iter` call.
    last_mean_ns: f64,
}

impl Bencher {
    /// Run `f` repeatedly and record the mean wall-clock time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warmup call.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        let elapsed = start.elapsed();
        self.last_mean_ns = elapsed.as_nanos() as f64 / self.iters.max(1) as f64;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations used per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: self.sample_size as u64,
            last_mean_ns: 0.0,
        };
        f(&mut b);
        report(&self.name, &id.into_id_string(), b.last_mean_ns);
        self
    }

    /// Benchmark a closure that receives `input` by reference.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        let mut b = Bencher {
            iters: self.sample_size as u64,
            last_mean_ns: 0.0,
        };
        f(&mut b, input);
        report(&self.name, &id.into_id_string(), b.last_mean_ns);
        self
    }

    /// Finish the group (report flushing is immediate in this shim).
    pub fn finish(self) {}
}

fn report(group: &str, id: &str, mean_ns: f64) {
    let (value, unit) = if mean_ns >= 1e9 {
        (mean_ns / 1e9, "s")
    } else if mean_ns >= 1e6 {
        (mean_ns / 1e6, "ms")
    } else if mean_ns >= 1e3 {
        (mean_ns / 1e3, "µs")
    } else {
        (mean_ns, "ns")
    };
    println!("{group}/{id}: mean {value:.3} {unit}/iter");
    if let Ok(path) = std::env::var("PALERMO_BENCH_JSON") {
        append_json_record(&path, group, id, mean_ns);
    }
}

/// Appends one JSON-lines record per benchmark to the file named by the
/// `PALERMO_BENCH_JSON` environment variable, so CI can persist a machine-
/// readable baseline (e.g. `BENCH_tick_loop.json`) and future changes can be
/// compared against it.
fn append_json_record(path: &str, group: &str, id: &str, mean_ns: f64) {
    use std::io::Write;
    let escape = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let record = format!(
        "{{\"group\":\"{}\",\"id\":\"{}\",\"mean_ns\":{:.1}}}\n",
        escape(group),
        escape(id),
        mean_ns
    );
    let result = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| f.write_all(record.as_bytes()));
    if let Err(e) = result {
        eprintln!("warning: could not write bench record to {path}: {e}");
    }
}

/// The benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Apply command-line configuration (accepted and ignored by this shim).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Benchmark a single closure outside of any group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id_string();
        let mut group = self.benchmark_group(id.clone());
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// Define a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define the benchmark binary's `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
