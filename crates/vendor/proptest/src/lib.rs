//! Minimal, offline, API-compatible stand-in for the `proptest`
//! property-testing framework.
//!
//! The build environment for this repository has no access to a crates
//! registry, so the real `proptest` crate cannot be downloaded. This shim
//! implements the API surface used by the workspace's property tests: the
//! `proptest!` macro (with `#![proptest_config(..)]`), `prop_assert!` /
//! `prop_assert_eq!` / `prop_assert_ne!`, `any::<T>()`, integer-range
//! strategies, tuple strategies, `prop::collection::vec` and
//! `prop::sample::select`. Sampling is driven by a deterministic
//! SplitMix64 generator seeded from the test's module path, so runs are
//! reproducible.

#![warn(missing_docs)]

/// Deterministic random number generation for test-case sampling.
pub mod test_runner {
    /// A small deterministic SplitMix64 generator.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Build a generator deterministically seeded from `name`
        /// (typically the fully qualified test name).
        pub fn deterministic(name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self { state: seed }
        }

        /// Next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// A uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

/// The sampling abstraction: a `Strategy` produces values of its
/// associated type from a [`test_runner::TestRng`].
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of random test-case values.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;
        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + (rng.below(span) as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                    if span == 0 {
                        rng.next_u64() as $t
                    } else {
                        start + (rng.below(span) as $t)
                    }
                }
            }
        )+};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// A strategy producing a constant value, mirroring `proptest::strategy::Just`.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

/// `any::<T>()` support for primitive types.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`, mirroring `proptest::arbitrary::any`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A vector strategy with element strategy `element` and a length in
    /// `size`, mirroring `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Sampling strategies (`prop::sample::select`).
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy selecting uniformly from a fixed set of values.
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            assert!(
                !self.options.is_empty(),
                "select() needs at least one option"
            );
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }

    /// Select uniformly from `options`, mirroring `proptest::sample::select`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        Select { options }
    }
}

/// Runner configuration (`ProptestConfig`).
pub mod config {
    /// Mirror of `proptest::test_runner::Config` with the fields this
    /// workspace uses.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases executed per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }
}

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::config::ProptestConfig;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert a condition inside a property, mirroring `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a property, mirroring `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Assert inequality inside a property, mirroring `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Define property tests, mirroring `proptest::proptest!`.
///
/// Each `fn name(binding in strategy, ...) { body }` item expands to a
/// `#[test]` that samples the strategies with a deterministic RNG and runs
/// the body for the configured number of cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::config::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for _case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}
