//! Deep-learning recommendation model (DLRM) generators: `rm1`
//! (memory-bound, Meta-style, many embedding lookups per sample) and `rm2`
//! (balanced, Alibaba-style, fewer lookups interleaved with dense compute).

use super::AccessBuffer;
use crate::trace::{AccessStream, TraceEntry};
use crate::zipf::{scramble, Zipf};
use palermo_oram::rng::OramRng;

/// Shared embedding-gather engine.
#[derive(Debug, Clone)]
struct EmbeddingTables {
    rows: u64,
    row_bytes: u64,
    sampler: Zipf,
    rng: OramRng,
}

impl EmbeddingTables {
    fn new(rows: u64, row_bytes: u64, skew: f64, seed: u64) -> Self {
        EmbeddingTables {
            rows,
            row_bytes,
            sampler: Zipf::new(rows, skew),
            rng: OramRng::new(seed),
        }
    }

    fn gather(&mut self, buffer: &mut AccessBuffer) {
        let row = scramble(self.sampler.sample(&mut self.rng), self.rows);
        let addr = row * self.row_bytes;
        buffer.push_span_read(addr, self.row_bytes.div_ceil(64));
    }

    fn footprint(&self) -> u64 {
        (self.rows * self.row_bytes).next_power_of_two()
    }
}

/// `rm1`: memory-bound DLRM inference — dozens of sparse embedding lookups
/// per sample dominate, dense layers are negligible.
#[derive(Debug, Clone)]
pub struct DlrmMemBound {
    tables: EmbeddingTables,
    buffer: AccessBuffer,
    lookups_per_sample: u32,
}

impl DlrmMemBound {
    /// Creates the generator with `rows` embedding rows of 128 bytes.
    pub fn new(rows: u64, seed: u64) -> Self {
        DlrmMemBound {
            tables: EmbeddingTables::new(rows.max(1024), 128, 0.9, seed),
            buffer: AccessBuffer::new(),
            lookups_per_sample: 64,
        }
    }

    fn refill(&mut self) {
        for _ in 0..self.lookups_per_sample {
            self.tables.gather(&mut self.buffer);
        }
    }
}

impl AccessStream for DlrmMemBound {
    fn next_access(&mut self) -> TraceEntry {
        while self.buffer.is_empty() {
            self.refill();
        }
        self.buffer.pop().expect("buffer refilled")
    }

    fn footprint_bytes(&self) -> u64 {
        self.tables.footprint()
    }
}

/// `rm2`: balanced DLRM — fewer embedding lookups per sample, interleaved
/// with sequential sweeps over MLP weight matrices.
#[derive(Debug, Clone)]
pub struct DlrmBalanced {
    tables: EmbeddingTables,
    buffer: AccessBuffer,
    mlp_cursor: u64,
    mlp_bytes: u64,
    lookups_per_sample: u32,
}

impl DlrmBalanced {
    /// Creates the generator with `rows` embedding rows of 256 bytes and a
    /// 4 MiB dense-weight region.
    pub fn new(rows: u64, seed: u64) -> Self {
        let tables = EmbeddingTables::new(rows.max(1024), 256, 0.8, seed);
        DlrmBalanced {
            mlp_bytes: 4 << 20,
            mlp_cursor: 0,
            buffer: AccessBuffer::new(),
            lookups_per_sample: 16,
            tables,
        }
    }

    fn refill(&mut self) {
        let embedding_footprint = self.tables.footprint();
        for _ in 0..self.lookups_per_sample {
            self.tables.gather(&mut self.buffer);
        }
        // Dense-layer sweep: 32 sequential lines from the weight region,
        // which lives above the embedding tables.
        for i in 0..32u64 {
            let addr = embedding_footprint + (self.mlp_cursor + i * 64) % self.mlp_bytes;
            self.buffer.push_read(addr);
        }
        self.mlp_cursor = (self.mlp_cursor + 32 * 64) % self.mlp_bytes;
    }
}

impl AccessStream for DlrmBalanced {
    fn next_access(&mut self) -> TraceEntry {
        while self.buffer.is_empty() {
            self.refill();
        }
        self.buffer.pop().expect("buffer refilled")
    }

    fn footprint_bytes(&self) -> u64 {
        (self.tables.footprint() + self.mlp_bytes).next_power_of_two()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::profile;

    #[test]
    fn rm1_is_gather_dominated() {
        let mut g = DlrmMemBound::new(1 << 20, 1);
        let p = profile(&mut g, 20_000);
        // Rows are 2 lines, so roughly half the accesses are the second line
        // of a row (sequential), the other half are random row starts.
        assert!(p.sequential_fraction > 0.3 && p.sequential_fraction < 0.7);
        assert_eq!(p.write_fraction, 0.0);
        for _ in 0..1000 {
            assert!(g.next_access().addr.0 < g.footprint_bytes());
        }
    }

    #[test]
    fn rm2_mixes_dense_and_sparse() {
        let mut g = DlrmBalanced::new(1 << 18, 2);
        let p = profile(&mut g, 20_000);
        assert!(p.sequential_fraction > 0.5, "{}", p.sequential_fraction);
        for _ in 0..1000 {
            assert!(g.next_access().addr.0 < g.footprint_bytes());
        }
    }

    #[test]
    fn embedding_popularity_is_skewed() {
        let mut g = DlrmMemBound::new(1 << 16, 3);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..30_000 {
            let e = g.next_access();
            *counts.entry(e.addr.0 / 128).or_insert(0u64) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        let avg = 30_000 / counts.len() as u64;
        assert!(max > avg * 5, "max {max} avg {avg}");
    }
}
