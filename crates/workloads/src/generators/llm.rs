//! Large-language-model inference generator (`llm`): GPT-2-style token
//! feature-table reads driven by a Zipfian token stream, plus sequential
//! KV-cache appends.

use super::AccessBuffer;
use crate::trace::{AccessStream, TraceEntry};
use crate::zipf::{scramble, Zipf};
use palermo_oram::rng::OramRng;

/// The `llm` workload of Table II: the sensitive structure is the token
/// embedding table — the sequence of rows read reveals the user's prompt —
/// so that table lives in the protected space.
#[derive(Debug, Clone)]
pub struct LlmInference {
    vocab: u64,
    row_bytes: u64,
    sampler: Zipf,
    rng: OramRng,
    buffer: AccessBuffer,
    kv_cursor: u64,
    kv_bytes: u64,
}

impl LlmInference {
    /// Creates the generator with a `vocab`-entry token table whose rows are
    /// 1536 bytes (GPT-2 small hidden size at fp16).
    pub fn new(vocab: u64, seed: u64) -> Self {
        let vocab = vocab.max(1024);
        LlmInference {
            vocab,
            row_bytes: 1536,
            sampler: Zipf::new(vocab, 0.95),
            rng: OramRng::new(seed),
            buffer: AccessBuffer::new(),
            kv_cursor: 0,
            kv_bytes: 8 << 20,
        }
    }

    fn table_footprint(&self) -> u64 {
        self.vocab * self.row_bytes
    }

    fn refill(&mut self) {
        // One decoded token: read its embedding row...
        let token = scramble(self.sampler.sample(&mut self.rng), self.vocab);
        let row_addr = token * self.row_bytes;
        self.buffer.push_span_read(row_addr, self.row_bytes / 64);
        // ...and append a KV-cache entry (sequential writes above the table).
        let kv_base = self.table_footprint();
        for i in 0..2u64 {
            self.buffer
                .push_write(kv_base + (self.kv_cursor + i * 64) % self.kv_bytes);
        }
        self.kv_cursor = (self.kv_cursor + 2 * 64) % self.kv_bytes;
    }
}

impl AccessStream for LlmInference {
    fn next_access(&mut self) -> TraceEntry {
        while self.buffer.is_empty() {
            self.refill();
        }
        self.buffer.pop().expect("buffer refilled")
    }

    fn footprint_bytes(&self) -> u64 {
        (self.table_footprint() + self.kv_bytes).next_power_of_two()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::profile;

    #[test]
    fn rows_are_read_as_bursts() {
        let mut g = LlmInference::new(50_000, 1);
        let p = profile(&mut g, 20_000);
        // 24 of every 26 accesses walk a row sequentially.
        assert!(p.sequential_fraction > 0.7, "{}", p.sequential_fraction);
        assert!(p.write_fraction > 0.03 && p.write_fraction < 0.15);
    }

    #[test]
    fn token_popularity_is_skewed() {
        let mut g = LlmInference::new(50_000, 2);
        let mut rows = std::collections::HashMap::new();
        for _ in 0..50_000 {
            let e = g.next_access();
            if e.addr.0 < g.table_footprint() {
                *rows.entry(e.addr.0 / g.row_bytes).or_insert(0u64) += 1;
            }
        }
        let max = rows.values().copied().max().unwrap();
        let avg = (rows.values().sum::<u64>() / rows.len() as u64).max(1);
        assert!(max > avg * 4, "max {max} avg {avg}");
    }

    #[test]
    fn addresses_in_footprint() {
        let mut g = LlmInference::new(10_000, 3);
        for _ in 0..5000 {
            assert!(g.next_access().addr.0 < g.footprint_bytes());
        }
    }
}
