//! Graph-analytics generators: PageRank (`pr`) and temporal motif mining
//! (`motif`) over a synthetic power-law graph.

use super::AccessBuffer;
use crate::graph::CsrGraph;
use crate::trace::{AccessStream, TraceEntry};
use palermo_oram::rng::OramRng;

/// Memory layout of the CSR graph and per-vertex state inside the protected
/// address space.
#[derive(Debug, Clone, Copy)]
struct GraphLayout {
    offsets_base: u64,
    edges_base: u64,
    rank_base: u64,
    next_rank_base: u64,
    footprint: u64,
}

impl GraphLayout {
    fn new(g: &CsrGraph) -> Self {
        let offsets_base = 0;
        let edges_base = offsets_base + (g.offsets.len() as u64) * 8;
        let rank_base = edges_base + g.num_edges() * 8;
        let next_rank_base = rank_base + g.num_vertices() * 8;
        let footprint = next_rank_base + g.num_vertices() * 8;
        GraphLayout {
            offsets_base,
            edges_base,
            rank_base,
            next_rank_base,
            footprint: footprint.next_power_of_two(),
        }
    }

    fn offset_addr(&self, v: u64) -> u64 {
        self.offsets_base + v * 8
    }

    fn edge_addr(&self, e: u64) -> u64 {
        self.edges_base + e * 8
    }

    fn rank_addr(&self, v: u64) -> u64 {
        self.rank_base + v * 8
    }

    fn next_rank_addr(&self, v: u64) -> u64 {
        self.next_rank_base + v * 8
    }
}

/// PageRank in pull direction: for each vertex, stream its edge list and
/// gather the ranks of its (power-law-distributed) neighbours.
#[derive(Debug, Clone)]
pub struct PageRank {
    graph: CsrGraph,
    layout: GraphLayout,
    buffer: AccessBuffer,
    vertex: u64,
}

impl PageRank {
    /// Builds the synthetic graph and the generator. `scale` controls the
    /// vertex count (`scale` vertices with average degree 8).
    pub fn new(scale: u64, seed: u64) -> Self {
        let graph = CsrGraph::synthetic(scale.max(64), 8, 0.85, seed);
        let layout = GraphLayout::new(&graph);
        PageRank {
            graph,
            layout,
            buffer: AccessBuffer::new(),
            vertex: 0,
        }
    }

    fn refill(&mut self) {
        let v = self.vertex % self.graph.num_vertices();
        self.vertex += 1;
        // Offsets are read sequentially (v and v+1 usually share a line).
        self.buffer.push_read(self.layout.offset_addr(v));
        let start = self.graph.offsets[v as usize];
        for (i, &n) in self.graph.neighbours(v).iter().enumerate() {
            // The edge list streams sequentially; the neighbour rank gather
            // is effectively random (power-law destinations).
            self.buffer
                .push_read(self.layout.edge_addr(start + i as u64));
            self.buffer.push_read(self.layout.rank_addr(n));
        }
        self.buffer.push_write(self.layout.next_rank_addr(v));
    }
}

impl AccessStream for PageRank {
    fn next_access(&mut self) -> TraceEntry {
        while self.buffer.is_empty() {
            self.refill();
        }
        self.buffer.pop().expect("buffer refilled")
    }

    fn footprint_bytes(&self) -> u64 {
        self.layout.footprint
    }
}

/// Edge-driven motif (temporal subgraph) mining: repeatedly pick a random
/// edge and explore the neighbourhoods of both endpoints — almost no
/// spatial locality beyond the individual adjacency lists.
#[derive(Debug, Clone)]
pub struct MotifMining {
    graph: CsrGraph,
    layout: GraphLayout,
    buffer: AccessBuffer,
    rng: OramRng,
}

impl MotifMining {
    /// Builds the synthetic graph and the generator.
    pub fn new(scale: u64, seed: u64) -> Self {
        let graph = CsrGraph::synthetic(scale.max(64), 8, 0.9, seed ^ 0x6d6f);
        let layout = GraphLayout::new(&graph);
        MotifMining {
            graph,
            layout,
            buffer: AccessBuffer::new(),
            rng: OramRng::new(seed),
        }
    }

    fn explore(&mut self, v: u64, fanout: usize) {
        self.buffer.push_read(self.layout.offset_addr(v));
        let start = self.graph.offsets[v as usize];
        let neighbours = self.graph.neighbours(v);
        for (i, &n) in neighbours.iter().take(fanout).enumerate() {
            self.buffer
                .push_read(self.layout.edge_addr(start + i as u64));
            self.buffer.push_read(self.layout.offset_addr(n));
        }
    }

    fn refill(&mut self) {
        let v = self.rng.gen_range(self.graph.num_vertices());
        self.explore(v, 4);
        if let Some(&first) = self.graph.neighbours(v).first() {
            self.explore(first, 3);
        }
    }
}

impl AccessStream for MotifMining {
    fn next_access(&mut self) -> TraceEntry {
        while self.buffer.is_empty() {
            self.refill();
        }
        self.buffer.pop().expect("buffer refilled")
    }

    fn footprint_bytes(&self) -> u64 {
        self.layout.footprint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::profile;

    #[test]
    fn pagerank_addresses_stay_in_footprint() {
        let mut g = PageRank::new(10_000, 1);
        for _ in 0..20_000 {
            assert!(g.next_access().addr.0 < g.footprint_bytes());
        }
    }

    #[test]
    fn pagerank_mixes_sequential_and_random() {
        let mut g = PageRank::new(20_000, 2);
        let p = profile(&mut g, 30_000);
        assert!(p.sequential_fraction < 0.5, "{}", p.sequential_fraction);
        assert!(p.write_fraction > 0.0 && p.write_fraction < 0.2);
        assert!(p.distinct_lines > 1000);
    }

    #[test]
    fn motif_has_low_locality() {
        let mut g = MotifMining::new(20_000, 3);
        let p = profile(&mut g, 30_000);
        assert!(p.sequential_fraction < 0.3, "{}", p.sequential_fraction);
        for _ in 0..1000 {
            assert!(g.next_access().addr.0 < g.footprint_bytes());
        }
    }

    #[test]
    fn footprints_are_powers_of_two() {
        assert!(PageRank::new(5000, 1).footprint_bytes().is_power_of_two());
        assert!(MotifMining::new(5000, 1)
            .footprint_bytes()
            .is_power_of_two());
    }
}
