//! Key-value and synthetic memory generators: `redis` (Zipfian KV reads and
//! writes), `stm` (perfectly sequential streaming) and `rand` (uniform
//! random).

use super::AccessBuffer;
use crate::trace::{AccessStream, TraceEntry};
use crate::zipf::{scramble, Zipf};
use palermo_oram::rng::OramRng;

/// `redis`: a Zipfian key-value store. Each operation touches the key's
/// index entry and a small value spanning one to four cache lines; 10 % of
/// operations are writes.
#[derive(Debug, Clone)]
pub struct RedisKv {
    keys: u64,
    value_slot_bytes: u64,
    sampler: Zipf,
    rng: OramRng,
    buffer: AccessBuffer,
}

impl RedisKv {
    /// Creates the generator with `keys` keys and 256-byte value slots.
    pub fn new(keys: u64, seed: u64) -> Self {
        let keys = keys.max(1024);
        RedisKv {
            keys,
            value_slot_bytes: 256,
            sampler: Zipf::new(keys, 0.9),
            rng: OramRng::new(seed),
            buffer: AccessBuffer::new(),
        }
    }

    fn refill(&mut self) {
        let key = scramble(self.sampler.sample(&mut self.rng), self.keys);
        // Hash-table index entry.
        let index_addr = key * 16;
        self.buffer.push_read(index_addr);
        // Value area above the index.
        let value_base = self.keys * 16 + key * self.value_slot_bytes;
        let lines = 1 + self.rng.gen_range(self.value_slot_bytes / 64);
        if self.rng.chance(0.1) {
            for i in 0..lines {
                self.buffer.push_write(value_base + i * 64);
            }
        } else {
            self.buffer.push_span_read(value_base, lines);
        }
    }
}

impl AccessStream for RedisKv {
    fn next_access(&mut self) -> TraceEntry {
        while self.buffer.is_empty() {
            self.refill();
        }
        self.buffer.pop().expect("buffer refilled")
    }

    fn footprint_bytes(&self) -> u64 {
        (self.keys * 16 + self.keys * self.value_slot_bytes).next_power_of_two()
    }
}

/// `stm`: the synthetic streaming workload of Fig. 4 — consecutive cache
/// lines are missed one after another, i.e. perfect spatial locality.
#[derive(Debug, Clone)]
pub struct Streaming {
    footprint: u64,
    cursor: u64,
}

impl Streaming {
    /// Creates the generator over a `footprint`-byte region.
    pub fn new(footprint: u64, _seed: u64) -> Self {
        Streaming {
            footprint: footprint.max(1 << 16),
            cursor: 0,
        }
    }
}

impl AccessStream for Streaming {
    fn next_access(&mut self) -> TraceEntry {
        let entry = TraceEntry::read(self.cursor);
        self.cursor = (self.cursor + 64) % self.footprint;
        entry
    }

    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }
}

/// `rand`: uniformly random cache-line accesses with a 10 % write mix — the
/// worst case for any prefetch-based optimisation.
#[derive(Debug, Clone)]
pub struct UniformRandom {
    footprint: u64,
    rng: OramRng,
}

impl UniformRandom {
    /// Creates the generator over a `footprint`-byte region.
    pub fn new(footprint: u64, seed: u64) -> Self {
        UniformRandom {
            footprint: footprint.max(1 << 16),
            rng: OramRng::new(seed),
        }
    }
}

impl AccessStream for UniformRandom {
    fn next_access(&mut self) -> TraceEntry {
        let line = self.rng.gen_range(self.footprint / 64);
        let addr = line * 64;
        if self.rng.chance(0.1) {
            TraceEntry::write(addr)
        } else {
            TraceEntry::read(addr)
        }
    }

    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::profile;

    #[test]
    fn redis_mix_and_bounds() {
        let mut g = RedisKv::new(100_000, 1);
        let p = profile(&mut g, 20_000);
        assert!(p.write_fraction > 0.02 && p.write_fraction < 0.3);
        for _ in 0..2000 {
            assert!(g.next_access().addr.0 < g.footprint_bytes());
        }
    }

    #[test]
    fn streaming_is_perfectly_sequential() {
        let mut g = Streaming::new(1 << 20, 0);
        let p = profile(&mut g, 10_000);
        assert!(p.sequential_fraction > 0.99);
        assert_eq!(p.write_fraction, 0.0);
    }

    #[test]
    fn streaming_wraps_around() {
        let mut g = Streaming::new(1 << 16, 0);
        let mut max_addr = 0;
        for _ in 0..3000 {
            max_addr = max_addr.max(g.next_access().addr.0);
        }
        assert!(max_addr < 1 << 16);
    }

    #[test]
    fn random_has_no_locality() {
        let mut g = UniformRandom::new(256 << 20, 42);
        let p = profile(&mut g, 20_000);
        assert!(p.sequential_fraction < 0.01, "{}", p.sequential_fraction);
        assert!(p.write_fraction > 0.05 && p.write_fraction < 0.15);
        assert!(p.distinct_lines > 19_000);
    }
}
