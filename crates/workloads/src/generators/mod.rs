//! Workload generators for the Table II cloud services.
//!
//! Each generator is a deterministic, seedable [`AccessStream`] that mimics
//! the memory-access *structure* of the corresponding application class:
//! pointer chasing (`mcf`), streaming sweeps (`lbm`, `stm`), graph traversal
//! (`pr`, `motif`), embedding gathers (`rm1`, `rm2`, `llm`), key-value
//! accesses (`redis`) and uniform random traffic (`rand`). The generators do
//! not attempt cycle-accurate application modelling — the ORAM homogenises
//! DRAM traffic anyway (§VIII-A) — but they do control the two properties the
//! evaluation is sensitive to: spatial locality (for the prefetch studies)
//! and footprint / reuse (for LLC filtering).
//!
//! [`AccessStream`]: crate::trace::AccessStream

pub mod dlrm;
pub mod graph_apps;
pub mod kv;
pub mod llm;
pub mod spec;

use crate::trace::TraceEntry;
use std::collections::VecDeque;

/// A small helper owned by most generators: a refillable queue of upcoming
/// accesses, so generators can think in terms of "bursts" (a row read, a
/// node visit, an embedding gather) while still exposing a one-access-at-a-
/// time stream.
#[derive(Debug, Clone, Default)]
pub(crate) struct AccessBuffer {
    queue: VecDeque<TraceEntry>,
}

impl AccessBuffer {
    pub(crate) fn new() -> Self {
        AccessBuffer {
            queue: VecDeque::new(),
        }
    }

    pub(crate) fn push_read(&mut self, addr: u64) {
        self.queue.push_back(TraceEntry::read(addr));
    }

    pub(crate) fn push_write(&mut self, addr: u64) {
        self.queue.push_back(TraceEntry::write(addr));
    }

    /// Pushes `lines` consecutive cache-line reads starting at `addr`.
    pub(crate) fn push_span_read(&mut self, addr: u64, lines: u64) {
        for i in 0..lines {
            self.push_read(addr + i * 64);
        }
    }

    pub(crate) fn pop(&mut self) -> Option<TraceEntry> {
        self.queue.pop_front()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use palermo_oram::types::OramOp;

    #[test]
    fn buffer_preserves_order_and_ops() {
        let mut b = AccessBuffer::new();
        b.push_read(0);
        b.push_write(64);
        b.push_span_read(128, 2);
        assert_eq!(b.pop().unwrap().op, OramOp::Read);
        assert_eq!(b.pop().unwrap().op, OramOp::Write);
        assert_eq!(b.pop().unwrap().addr.0, 128);
        assert_eq!(b.pop().unwrap().addr.0, 192);
        assert!(b.is_empty());
        assert!(b.pop().is_none());
    }
}
