//! SPEC CPU2017-style generators: `mcf` (route planning, pointer chasing)
//! and `lbm` (fluid dynamics, structured streaming).

use super::AccessBuffer;
use crate::trace::{AccessStream, TraceEntry};
use palermo_oram::rng::OramRng;

/// `mcf`: network-simplex route planning. The memory behaviour is dominated
/// by pointer chasing through arc and node structures with occasional short
/// sequential scans of the arc array — moderate spatial locality.
#[derive(Debug, Clone)]
pub struct Mcf {
    footprint: u64,
    rng: OramRng,
    buffer: AccessBuffer,
    cursor: u64,
}

impl Mcf {
    /// Creates the generator over a `footprint`-byte working set.
    pub fn new(footprint: u64, seed: u64) -> Self {
        Mcf {
            footprint: footprint.max(1 << 16),
            rng: OramRng::new(seed),
            buffer: AccessBuffer::new(),
            cursor: 0,
        }
    }

    fn refill(&mut self) {
        // A node visit: read the node record (2 lines at a pointer-chased
        // location), then with some probability scan a short run of arcs.
        let node = self.rng.gen_range(self.footprint / 128) * 128;
        self.buffer.push_span_read(node, 2);
        if self.rng.chance(0.35) {
            let run = 4 + self.rng.gen_range(4);
            self.buffer
                .push_span_read(self.cursor % self.footprint, run);
            self.cursor = (self.cursor + run * 64) % self.footprint;
        }
        if self.rng.chance(0.15) {
            self.buffer.push_write(node);
        }
    }
}

impl AccessStream for Mcf {
    fn next_access(&mut self) -> TraceEntry {
        while self.buffer.is_empty() {
            self.refill();
        }
        self.buffer.pop().expect("buffer refilled")
    }

    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }
}

/// `lbm`: lattice-Boltzmann fluid dynamics. Sweeps linearly over large
/// lattices reading several neighbouring cells and writing the updated cell
/// — very high spatial locality.
#[derive(Debug, Clone)]
pub struct Lbm {
    footprint: u64,
    cursor: u64,
    buffer: AccessBuffer,
}

impl Lbm {
    /// Creates the generator over a `footprint`-byte lattice.
    pub fn new(footprint: u64, _seed: u64) -> Self {
        Lbm {
            footprint: footprint.max(1 << 16),
            cursor: 0,
            buffer: AccessBuffer::new(),
        }
    }

    fn refill(&mut self) {
        // One cell update: read 3 consecutive lines of the source lattice and
        // write 1 line of the destination lattice (second half of footprint).
        let half = self.footprint / 2;
        let src = self.cursor % half;
        self.buffer.push_span_read(src, 3);
        self.buffer.push_write(half + src);
        self.cursor = (self.cursor + 3 * 64) % half;
    }
}

impl AccessStream for Lbm {
    fn next_access(&mut self) -> TraceEntry {
        while self.buffer.is_empty() {
            self.refill();
        }
        self.buffer.pop().expect("buffer refilled")
    }

    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::profile;

    #[test]
    fn mcf_has_moderate_locality_and_stays_in_bounds() {
        let mut g = Mcf::new(64 << 20, 1);
        for _ in 0..5000 {
            let e = g.next_access();
            assert!(e.addr.0 < g.footprint_bytes());
        }
        let p = profile(&mut g, 20_000);
        assert!(p.sequential_fraction > 0.2 && p.sequential_fraction < 0.8);
        assert!(p.write_fraction > 0.0 && p.write_fraction < 0.3);
    }

    #[test]
    fn lbm_is_highly_sequential() {
        let mut g = Lbm::new(64 << 20, 1);
        let p = profile(&mut g, 20_000);
        assert!(p.sequential_fraction > 0.45, "{}", p.sequential_fraction);
        assert!(p.write_fraction > 0.2);
        for _ in 0..1000 {
            assert!(g.next_access().addr.0 < g.footprint_bytes());
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = Mcf::new(1 << 24, 9);
        let mut b = Mcf::new(1 << 24, 9);
        for _ in 0..100 {
            assert_eq!(a.next_access(), b.next_access());
        }
    }
}
