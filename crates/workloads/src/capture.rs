//! Trace capture: dump the first N accesses of any [`WorkloadSpec`] to a
//! trace file, closing the generator → capture → replay loop.
//!
//! A captured trace replays bit-for-bit through
//! [`TraceReplay`](crate::replay::TraceReplay): building the same spec with
//! the same `(footprint_hint, seed)` and replaying the capture yields the
//! identical access stream for the first N accesses (and, because replays
//! loop, an identical *simulation* whenever the run consumes at most N
//! accesses — `tests/capture_replay.rs` pins this end to end). This is the
//! supported way to
//!
//! * freeze a synthetic generator into a portable artifact (hand a
//!   redis-shaped trace to another simulator without shipping a generator),
//! * snapshot a multi-tenant mix into a flat single-tenant trace, and
//! * build regression fixtures that survive generator refactors.
//!
//! To capture exactly what a simulation run would consume, pass the run's
//! stream inputs (`SystemConfig::stream_footprint_hint` /
//! `SystemConfig::stream_seed` in `palermo-sim`).

use crate::format;
use crate::spec::WorkloadSpec;
use crate::trace::TraceEntry;
use palermo_oram::error::{OramError, OramResult};
use std::path::Path;

/// On-disk encoding for a capture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaptureEncoding {
    /// Human-editable `R/W <addr>` lines.
    Text,
    /// Compact binary `PTRC` records — the right choice beyond ~10⁵
    /// accesses.
    Binary,
}

/// Records the first `n` accesses of a spec's stream into memory.
///
/// # Errors
///
/// Rejects `n == 0` (an empty trace cannot replay) and propagates spec
/// validation/build errors.
pub fn capture(
    spec: &WorkloadSpec,
    n: usize,
    footprint_hint: u64,
    seed: u64,
) -> OramResult<Vec<TraceEntry>> {
    if n == 0 {
        return Err(OramError::InvalidParams {
            reason: "capture needs n ≥ 1 (an empty trace cannot replay)".into(),
        });
    }
    let mut stream = spec.build(footprint_hint, seed)?;
    Ok((0..n).map(|_| stream.next_access()).collect())
}

/// Records the first `n` accesses of a spec's stream into a trace file and
/// returns the [`WorkloadSpec::TraceReplay`] that plays it back — the
/// closed loop in one call:
///
/// ```no_run
/// use palermo_workloads::{capture, Workload, WorkloadSpec};
///
/// let spec = WorkloadSpec::from(Workload::Redis);
/// let replay = capture::capture_to_file(
///     &spec,
///     100_000,
///     256 << 20,
///     7,
///     "/tmp/redis.ptrc",
///     capture::CaptureEncoding::Binary,
/// )?;
/// assert_eq!(replay.name(), "replay:/tmp/redis.ptrc");
/// # Ok::<(), palermo_oram::error::OramError>(())
/// ```
///
/// # Errors
///
/// Propagates [`capture`] errors, I/O failures, and paths the replay-spec
/// grammar cannot round-trip (see
/// [`ReplaySpec::validate`](crate::spec::ReplaySpec::validate)).
pub fn capture_to_file(
    spec: &WorkloadSpec,
    n: usize,
    footprint_hint: u64,
    seed: u64,
    path: impl AsRef<Path>,
    encoding: CaptureEncoding,
) -> OramResult<WorkloadSpec> {
    let path = path.as_ref();
    let replay = WorkloadSpec::replay(path.display().to_string());
    // Validate the destination path *before* doing the capture work: a path
    // the grammar rejects would produce a file the returned spec cannot
    // name.
    replay.validate()?;
    let entries = capture(spec, n, footprint_hint, seed)?;
    let saved = match encoding {
        CaptureEncoding::Text => format::save_text(path, &entries),
        CaptureEncoding::Binary => format::save_binary(path, &entries),
    };
    saved.map_err(|reason| OramError::InvalidParams { reason })?;
    Ok(replay)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::TraceReplay;
    use crate::trace::AccessStream;
    use crate::workload::Workload;

    #[test]
    fn capture_matches_the_generator_prefix() {
        let spec = WorkloadSpec::from(Workload::Redis);
        let captured = capture(&spec, 500, 8 << 20, 99).unwrap();
        let mut direct = spec.build(8 << 20, 99).unwrap();
        for (i, e) in captured.iter().enumerate() {
            assert_eq!(*e, direct.next_access(), "diverged at access {i}");
        }
    }

    #[test]
    fn capture_of_a_mix_replays_identically() {
        use crate::mix::MixSpec;
        let spec = WorkloadSpec::Mix(
            MixSpec::round_robin()
                .tenant(Workload::Redis.into(), 2)
                .tenant(Workload::Llm.into(), 1),
        );
        let dir = std::env::temp_dir().join("palermo_capture_tests");
        std::fs::create_dir_all(&dir).unwrap();
        for (encoding, file) in [
            (CaptureEncoding::Text, "mix.trace"),
            (CaptureEncoding::Binary, "mix.ptrc"),
        ] {
            let path = dir.join(file);
            let replay = capture_to_file(&spec, 800, 8 << 20, 3, &path, encoding).unwrap();
            let mut replayed = replay.build(0, 0).unwrap();
            let mut direct = spec.build(8 << 20, 3).unwrap();
            for i in 0..800 {
                assert_eq!(
                    replayed.next_access(),
                    direct.next_access(),
                    "{file} diverged at access {i}"
                );
            }
        }
    }

    #[test]
    fn text_and_binary_captures_decode_identically() {
        let spec = WorkloadSpec::from(Workload::Mcf);
        let dir = std::env::temp_dir().join("palermo_capture_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let text = dir.join("mcf.trace");
        let bin = dir.join("mcf.ptrc");
        capture_to_file(&spec, 300, 4 << 20, 11, &text, CaptureEncoding::Text).unwrap();
        capture_to_file(&spec, 300, 4 << 20, 11, &bin, CaptureEncoding::Binary).unwrap();
        assert_eq!(
            crate::format::load(&text).unwrap(),
            crate::format::load(&bin).unwrap()
        );
        let replayed = TraceReplay::from_file(&bin).unwrap();
        assert_eq!(replayed.len(), 300);
        assert!(replayed.footprint_bytes() <= 4 << 20);
    }

    #[test]
    fn degenerate_captures_are_rejected() {
        let spec = WorkloadSpec::from(Workload::Random);
        assert!(capture(&spec, 0, 1 << 20, 1).is_err());
        // A path the spec-name grammar cannot round-trip is rejected before
        // any capture work happens.
        assert!(capture_to_file(
            &spec,
            10,
            1 << 20,
            1,
            "/tmp/bad,path.trace",
            CaptureEncoding::Text
        )
        .is_err());
        // Build failures (missing trace file) surface through capture too.
        let missing = WorkloadSpec::replay("/definitely/not/here.trace");
        assert!(capture(&missing, 10, 1 << 20, 1).is_err());
    }
}
