//! Zipfian and uniform samplers for synthetic workload generation.

use palermo_oram::rng::OramRng;

/// A Zipfian sampler over `[0, n)` with skew `s`, using the rejection-free
/// approximate inversion method of Gray et al. (the standard approach in
/// YCSB-style generators).
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipf {
    /// Creates a sampler over `[0, n)` with skew `theta` (0 = uniform,
    /// typical hot-spot workloads use 0.8–0.99).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `theta >= 1.0` (the method requires θ < 1).
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "population must be non-zero");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0, 1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2.min(n), theta);
        Zipf {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct summation is exact but O(n); cap the work and extrapolate
        // with the integral approximation for very large populations.
        const EXACT_LIMIT: u64 = 100_000;
        let exact_n = n.min(EXACT_LIMIT);
        let mut sum = 0.0;
        for i in 1..=exact_n {
            sum += 1.0 / (i as f64).powf(theta);
        }
        if n > exact_n && theta < 1.0 {
            // Integral of x^-theta from EXACT_LIMIT to n.
            sum +=
                ((n as f64).powf(1.0 - theta) - (exact_n as f64).powf(1.0 - theta)) / (1.0 - theta);
        }
        sum
    }

    /// Draws one sample (rank 0 is the hottest item).
    pub fn sample(&self, rng: &mut OramRng) -> u64 {
        if self.n == 1 {
            return 0;
        }
        let u = rng.next_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// The population size.
    pub fn population(&self) -> u64 {
        self.n
    }
}

/// Scrambles a rank into a stable pseudo-random item id so the hottest items
/// are not clustered at the low end of the address space.
pub fn scramble(rank: u64, n: u64) -> u64 {
    // Fibonacci hashing followed by a modulo keeps the mapping stable and
    // roughly bijective for the populations used here.
    (rank.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17) % n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(1000, 0.9);
        let mut rng = OramRng::new(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 1000);
        }
    }

    #[test]
    fn skewed_distribution_is_head_heavy() {
        let z = Zipf::new(10_000, 0.95);
        let mut rng = OramRng::new(2);
        let samples: Vec<u64> = (0..50_000).map(|_| z.sample(&mut rng)).collect();
        let head = samples.iter().filter(|&&s| s < 100).count();
        // With theta = 0.95 the top 1 % of items should absorb well over a
        // third of the accesses.
        assert!(
            head > samples.len() / 3,
            "head fraction too small: {head}/{}",
            samples.len()
        );
    }

    #[test]
    fn zero_theta_is_roughly_uniform() {
        let z = Zipf::new(64, 0.0);
        let mut rng = OramRng::new(3);
        let mut counts = vec![0u64; 64];
        for _ in 0..64_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(max / min.max(1.0) < 2.5, "max {max} min {min}");
    }

    #[test]
    fn single_item_population() {
        let z = Zipf::new(1, 0.5);
        let mut rng = OramRng::new(4);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.population(), 1);
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn theta_one_rejected() {
        Zipf::new(10, 1.0);
    }

    #[test]
    fn scramble_stays_in_range_and_spreads() {
        let n = 1 << 20;
        let mut seen_high = false;
        for rank in 0..1000u64 {
            let s = scramble(rank, n);
            assert!(s < n);
            if s > n / 2 {
                seen_high = true;
            }
        }
        assert!(
            seen_high,
            "scramble should spread hot ranks across the space"
        );
    }
}
