//! Zipfian and uniform samplers for synthetic workload generation.

use palermo_oram::rng::OramRng;

/// A Zipfian sampler over `[0, n)` with skew `s`, using the rejection-free
/// approximate inversion method of Gray et al. (the standard approach in
/// YCSB-style generators).
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipf {
    /// Creates a sampler over `[0, n)` with skew `theta` (0 = uniform,
    /// typical hot-spot workloads use 0.8–0.99).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `theta >= 1.0` (the method requires θ < 1).
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "population must be non-zero");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0, 1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2.min(n), theta);
        // For n <= 2 the Gray et al. denominator `1 - zeta(2)/zeta(n)` is
        // exactly zero (zeta(2.min(n)) == zeta(n)), which used to produce a
        // NaN/inf eta — latent only because `sample` short-circuits those
        // populations before touching eta. Define eta as 0 there instead so
        // the sampler state is finite for every valid population.
        let eta_denominator = 1.0 - zeta2 / zetan;
        let eta = if eta_denominator == 0.0 {
            0.0
        } else {
            (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / eta_denominator
        };
        Zipf {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct summation is exact but O(n); cap the work and extrapolate
        // with the integral approximation for very large populations.
        const EXACT_LIMIT: u64 = 100_000;
        let exact_n = n.min(EXACT_LIMIT);
        let mut sum = 0.0;
        for i in 1..=exact_n {
            sum += 1.0 / (i as f64).powf(theta);
        }
        if n > exact_n && theta < 1.0 {
            // Integral of x^-theta from EXACT_LIMIT to n.
            sum +=
                ((n as f64).powf(1.0 - theta) - (exact_n as f64).powf(1.0 - theta)) / (1.0 - theta);
        }
        sum
    }

    /// Draws one sample (rank 0 is the hottest item).
    pub fn sample(&self, rng: &mut OramRng) -> u64 {
        if self.n == 1 {
            return 0;
        }
        let u = rng.next_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// The population size.
    pub fn population(&self) -> u64 {
        self.n
    }
}

/// Scrambles a rank into a stable pseudo-random item id so the hottest items
/// are not clustered at the low end of the address space.
///
/// The mapping is a true bijection on `[0, n)`: a two-round Feistel network
/// over the enclosing power-of-two domain, cycle-walked back into `[0, n)`
/// (each walk step applies the same permutation, so distinct ranks can never
/// collide). The previous multiply-shift-modulo "roughly bijective" mapping
/// collided heavily, silently merging distinct hot ranks into one address
/// and shrinking the effective footprint of every Zipf-backed generator.
///
/// # Panics
///
/// Panics if `n` is zero. Ranks outside `[0, n)` are first folded into the
/// enclosing power-of-two domain (callers always pass `rank < n`).
pub fn scramble(rank: u64, n: u64) -> u64 {
    assert!(n > 0, "scramble population must be non-zero");
    debug_assert!(rank < n, "rank {rank} outside population {n}");
    if n == 1 {
        return 0;
    }
    // Enclosing power-of-two domain 2^bits >= n (bits >= 1).
    let bits = 64 - (n - 1).leading_zeros();
    let domain_mask = if bits == 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    };
    let right_bits = bits - bits / 2; // low half, >= high half
    let right_mask = (1u64 << right_bits) - 1;
    let left_mask = domain_mask >> right_bits;
    let mix = |x: u64, c: u64| -> u64 {
        let mut z = x.wrapping_add(c).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^= z >> 29;
        z.wrapping_mul(0x94D0_49BB_1331_11EB)
    };
    let mut x = rank & domain_mask;
    loop {
        // Two unbalanced Feistel rounds: each XOR-step is invertible given
        // the untouched half, so the whole round pair permutes the domain.
        let mut left = x >> right_bits;
        let mut right = x & right_mask;
        right ^= mix(left, 0x9E37_79B9_7F4A_7C15) & right_mask;
        left ^= mix(right, 0xD1B5_4A32_D192_ED03) & left_mask;
        x = (left << right_bits) | right;
        // Cycle-walk: 2^bits < 2n, so this loops back into [0, n) after
        // fewer than two iterations in expectation.
        if x < n {
            return x;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(1000, 0.9);
        let mut rng = OramRng::new(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 1000);
        }
    }

    #[test]
    fn skewed_distribution_is_head_heavy() {
        let z = Zipf::new(10_000, 0.95);
        let mut rng = OramRng::new(2);
        let samples: Vec<u64> = (0..50_000).map(|_| z.sample(&mut rng)).collect();
        let head = samples.iter().filter(|&&s| s < 100).count();
        // With theta = 0.95 the top 1 % of items should absorb well over a
        // third of the accesses.
        assert!(
            head > samples.len() / 3,
            "head fraction too small: {head}/{}",
            samples.len()
        );
    }

    #[test]
    fn zero_theta_is_roughly_uniform() {
        let z = Zipf::new(64, 0.0);
        let mut rng = OramRng::new(3);
        let mut counts = vec![0u64; 64];
        for _ in 0..64_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(max / min.max(1.0) < 2.5, "max {max} min {min}");
    }

    #[test]
    fn single_item_population() {
        let z = Zipf::new(1, 0.5);
        let mut rng = OramRng::new(4);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.population(), 1);
    }

    #[test]
    fn tiny_populations_have_finite_state_and_sane_samples() {
        // Regression: `Zipf::new(1, θ)` used to compute eta as x / 0 = NaN
        // (and n = 2 as 0 / 0), latent only because `sample` short-circuits
        // those populations. The state must be finite for every valid n.
        for n in [1u64, 2, 3, 4] {
            for theta in [0.0, 0.5, 0.9, 0.99] {
                let z = Zipf::new(n, theta);
                assert!(
                    z.eta.is_finite(),
                    "eta not finite for n={n} theta={theta}: {}",
                    z.eta
                );
                assert!(z.zetan.is_finite());
                let mut rng = OramRng::new(n ^ 0xBEEF);
                for _ in 0..1000 {
                    assert!(z.sample(&mut rng) < n, "n={n} theta={theta}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn theta_one_rejected() {
        Zipf::new(10, 1.0);
    }

    #[test]
    fn scramble_stays_in_range_and_spreads() {
        let n = 1 << 20;
        let mut seen_high = false;
        for rank in 0..1000u64 {
            let s = scramble(rank, n);
            assert!(s < n);
            if s > n / 2 {
                seen_high = true;
            }
        }
        assert!(
            seen_high,
            "scramble should spread hot ranks across the space"
        );
    }

    #[test]
    fn scramble_is_injective_over_the_hot_prefix() {
        use std::collections::HashSet;
        // Regression: the old multiply-shift-modulo mapping collided
        // heavily (merging distinct hot ranks into one address). The first
        // min(n, 10^5) ranks must map injectively for power-of-two and
        // ragged populations alike.
        for n in [
            1u64,
            2,
            3,
            64,
            1000,
            12_345,
            1 << 17,
            (1 << 17) + 1,
            1 << 40,
        ] {
            let probe = n.min(100_000);
            let mut seen = HashSet::with_capacity(probe as usize);
            for rank in 0..probe {
                let s = scramble(rank, n);
                assert!(s < n, "scramble({rank}, {n}) = {s} out of range");
                assert!(
                    seen.insert(s),
                    "scramble({rank}, {n}) = {s} collides with an earlier rank"
                );
            }
        }
    }

    #[test]
    fn scramble_is_a_full_permutation_on_small_populations() {
        use std::collections::HashSet;
        for n in [1u64, 2, 5, 8, 129, 4096] {
            let image: HashSet<u64> = (0..n).map(|r| scramble(r, n)).collect();
            assert_eq!(image.len() as u64, n, "n={n}");
        }
    }
}
