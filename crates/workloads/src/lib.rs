//! # palermo-workloads
//!
//! Workload trace generators and the last-level-cache model used to drive
//! the Palermo evaluation (Table II of the paper): SPEC17-style compute,
//! graph analytics on synthetic power-law graphs, deep-learning
//! recommendation and LLM inference, key-value serving, and the synthetic
//! streaming/random microbenchmarks.
//!
//! Real datasets (LiveJournal, Criteo, OpenORCA, …) are not redistributable
//! inside a code artifact, so each generator reproduces the documented
//! *memory-access structure* of its application class instead — see
//! `DESIGN.md` for the substitution argument. All generators are seeded and
//! deterministic.
//!
//! Beyond the closed Table II set, [`WorkloadSpec`] opens the workload
//! surface: replay a recorded trace file ([`replay`], [`mod@format`]),
//! compose several streams into a multi-tenant mix ([`mix`]) — optionally
//! with tenant arrival/departure windows ([`mix::PhasedMixSpec`]) — or dump
//! any spec's stream back to a trace file ([`capture`]), all behind one
//! buildable, name-round-trippable spec type. Multi-tenant streams tag each
//! access with its originating tenant ([`trace::TaggedEntry`]) so the
//! simulator can attribute per-tenant QoS metrics. Open-loop serving specs
//! ([`arrival`]) wrap any of these with deterministic arrival processes
//! (Poisson / bursty / diurnal, rates in requests per kilocycle) so the
//! simulator can decouple request arrival from request completion. Sharded
//! specs ([`shard`]) partition a closed-loop workload's address space
//! across K independent ORAM shards with pluggable routing.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arrival;
pub mod capture;
pub mod format;
pub mod generators;
pub mod graph;
pub mod llc;
pub mod mix;
pub mod replay;
pub mod shard;
pub mod spec;
pub mod trace;
pub mod workload;
pub mod zipf;

pub use arrival::{ArrivalSpec, OpenLoopSpec};
pub use capture::CaptureEncoding;
pub use llc::{Llc, LlcConfig};
pub use mix::{
    MixSpec, MixStream, PhaseWindow, PhasedMixSpec, PhasedMixStream, PhasedTenantSpec,
    TenantSelection, TenantSpec,
};
pub use replay::TraceReplay;
pub use shard::{ShardRouter, ShardRouterKind, ShardSpec, ShardStream};
pub use spec::{ReplaySpec, WorkloadSpec};
pub use trace::{AccessStream, TaggedEntry, TraceEntry, TraceProfile};
pub use workload::Workload;
pub use zipf::Zipf;
