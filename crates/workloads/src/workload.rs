//! The Table II workload registry.

use crate::generators::dlrm::{DlrmBalanced, DlrmMemBound};
use crate::generators::graph_apps::{MotifMining, PageRank};
use crate::generators::kv::{RedisKv, Streaming, UniformRandom};
use crate::generators::llm::LlmInference;
use crate::generators::spec::{Lbm, Mcf};
use crate::trace::AccessStream;

/// The ten cloud-service workloads of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Workload {
    /// SPEC17 `mcf`: route-planning computation (pointer chasing).
    Mcf,
    /// SPEC17 `lbm`: fluid dynamics (streaming sweeps).
    Lbm,
    /// GAP PageRank on a power-law graph.
    PageRank,
    /// Temporal motif mining on a power-law graph.
    Motif,
    /// DLRM, memory-bound configuration (Meta-style).
    Rm1,
    /// DLRM, balanced configuration (Alibaba-style).
    Rm2,
    /// GPT-2 style LLM inference over a token feature table.
    Llm,
    /// Redis key-value accesses.
    Redis,
    /// Synthetic streaming accesses (`stm`).
    Streaming,
    /// Synthetic uniform random accesses (`rand`).
    Random,
}

impl Workload {
    /// All workloads in the order Fig. 10 plots them.
    pub const ALL: [Workload; 10] = [
        Workload::Mcf,
        Workload::Lbm,
        Workload::PageRank,
        Workload::Motif,
        Workload::Rm1,
        Workload::Rm2,
        Workload::Llm,
        Workload::Redis,
        Workload::Streaming,
        Workload::Random,
    ];

    /// The short name used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Mcf => "mcf",
            Workload::Lbm => "lbm",
            Workload::PageRank => "pr",
            Workload::Motif => "motif",
            Workload::Rm1 => "rm1",
            Workload::Rm2 => "rm2",
            Workload::Llm => "llm",
            Workload::Redis => "redis",
            Workload::Streaming => "stream",
            Workload::Random => "random",
        }
    }

    /// Parses a paper-style short name.
    pub fn from_name(name: &str) -> Option<Workload> {
        Workload::ALL.into_iter().find(|w| w.name() == name)
    }

    /// Whether the workload has enough spatial locality for prefetch-based
    /// schemes to help noticeably (used to pick per-workload prefetch
    /// lengths, mirroring the paper's per-workload sweep).
    pub fn default_prefetch_length(self) -> u32 {
        match self {
            Workload::Lbm | Workload::Streaming => 8,
            Workload::Llm | Workload::Rm2 => 4,
            Workload::Rm1 | Workload::Redis | Workload::Mcf => 2,
            Workload::PageRank | Workload::Motif | Workload::Random => 1,
        }
    }

    /// Builds the generator for this workload, scaled so that its footprint
    /// stays within `footprint_hint` bytes (generators round as needed).
    pub fn build(self, footprint_hint: u64, seed: u64) -> Box<dyn AccessStream> {
        let hint = footprint_hint.max(1 << 20);
        match self {
            Workload::Mcf => Box::new(Mcf::new(hint, seed)),
            Workload::Lbm => Box::new(Lbm::new(hint, seed)),
            Workload::PageRank => Box::new(PageRank::new(hint / 512, seed)),
            Workload::Motif => Box::new(MotifMining::new(hint / 512, seed)),
            Workload::Rm1 => Box::new(DlrmMemBound::new(hint / 256, seed)),
            Workload::Rm2 => Box::new(DlrmBalanced::new(hint / 512, seed)),
            Workload::Llm => Box::new(LlmInference::new((hint / 3072).max(1024), seed)),
            Workload::Redis => Box::new(RedisKv::new(hint / 512, seed)),
            Workload::Streaming => Box::new(Streaming::new(hint, seed)),
            Workload::Random => Box::new(UniformRandom::new(hint, seed)),
        }
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::profile;

    #[test]
    fn names_round_trip() {
        for w in Workload::ALL {
            assert_eq!(Workload::from_name(w.name()), Some(w));
            assert_eq!(format!("{w}"), w.name());
        }
        assert_eq!(Workload::from_name("nope"), None);
    }

    #[test]
    fn all_workloads_build_and_stay_in_bounds() {
        for w in Workload::ALL {
            let mut stream = w.build(64 << 20, 7);
            let footprint = stream.footprint_bytes();
            assert!(footprint > 0, "{w}");
            for _ in 0..2000 {
                let e = stream.next_access();
                assert!(
                    e.addr.0 < footprint,
                    "{w}: {:#x} >= {footprint:#x}",
                    e.addr.0
                );
            }
        }
    }

    #[test]
    fn locality_ordering_matches_expectations() {
        // Streaming must be the most sequential; random the least. This is
        // the property the Fig. 4 / Fig. 10 prefetch contrast relies on.
        let seq_frac = |w: Workload| {
            let mut stream = w.build(64 << 20, 3);
            profile(stream.as_mut(), 20_000).sequential_fraction
        };
        let stream_frac = seq_frac(Workload::Streaming);
        let lbm_frac = seq_frac(Workload::Lbm);
        let rand_frac = seq_frac(Workload::Random);
        let motif_frac = seq_frac(Workload::Motif);
        assert!(stream_frac > 0.95);
        assert!(lbm_frac > rand_frac);
        assert!(motif_frac < 0.5);
        assert!(rand_frac < 0.05);
    }

    #[test]
    fn prefetch_lengths_follow_locality() {
        assert!(
            Workload::Streaming.default_prefetch_length()
                > Workload::Random.default_prefetch_length()
        );
        assert_eq!(Workload::Random.default_prefetch_length(), 1);
    }
}
