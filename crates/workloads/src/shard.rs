//! Sharded partitioning of the protected address space.
//!
//! A sharded workload splits one access stream across `K` independent ORAM
//! instances. The split is defined by a [`ShardRouter`]: a total,
//! collision-free mapping from every global byte address in the inner
//! stream's footprint to a `(shard, shard-local address)` pair. Because the
//! routing is a pure function of the address (and, for the tenant-affine
//! router, of the stream's static tenant partition table), every shard can
//! filter the *same* deterministic inner stream and observe exactly the
//! subsequence destined for it — which is what makes serial and pooled
//! shard stepping byte-identical.
//!
//! Three router policies are provided:
//!
//! | name     | policy                                                      |
//! |----------|-------------------------------------------------------------|
//! | `hash`   | Feistel-scrambled line index modulo `K` (load-spreading)    |
//! | `range`  | contiguous equal line ranges (locality-preserving)          |
//! | `tenant` | tenant `t` lives wholly on shard `t % K` (isolation-affine) |
//!
//! The spec grammar is `shard:<K>:<router>:<inner>` (see
//! [`crate::spec::WorkloadSpec`]); the simulator side lives in
//! `palermo-sim`'s `shard` module.

use crate::spec::WorkloadSpec;
use crate::trace::{AccessStream, TaggedEntry, TraceEntry};
use crate::zipf::scramble;
use palermo_oram::error::{OramError, OramResult};
use palermo_oram::types::PhysAddr;
use std::fmt;

/// Maximum shard count accepted by [`ShardSpec::validate`]. Large enough
/// for any realistic multi-controller deployment, small enough that a typo
/// cannot ask for millions of ORAM instances.
pub const MAX_SHARDS: u32 = 64;

/// Upper bound on how many inner accesses a [`ShardStream`] will pull while
/// waiting for one that routes to its shard. Validation guarantees every
/// shard owns a non-empty partition, so hitting this bound indicates a
/// router/stream mismatch rather than an unlucky stream.
const MAX_FILTER_PULLS: u64 = 100_000_000;

fn invalid(reason: String) -> OramError {
    OramError::InvalidParams { reason }
}

/// The routing policy that assigns each global address to a shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShardRouterKind {
    /// Feistel-scramble the cache-line index over the footprint, then take
    /// it modulo `K`. Spreads any access pattern near-uniformly across
    /// shards; destroys spatial locality by design.
    Hash,
    /// Split the line space into `K` contiguous, near-equal ranges.
    /// Preserves spatial locality within a shard.
    Range,
    /// Tenant `t`'s entire partition lives on shard `t % K`. Requires the
    /// inner stream to expose contiguous ascending per-tenant partitions
    /// (single-tenant streams and mixes do) and `K <=` tenant count.
    TenantAffine,
}

impl ShardRouterKind {
    /// The canonical spec-grammar name (`hash`, `range`, `tenant`).
    pub fn name(self) -> &'static str {
        match self {
            ShardRouterKind::Hash => "hash",
            ShardRouterKind::Range => "range",
            ShardRouterKind::TenantAffine => "tenant",
        }
    }

    /// Parses a canonical name back into the kind.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "hash" => Some(ShardRouterKind::Hash),
            "range" => Some(ShardRouterKind::Range),
            "tenant" => Some(ShardRouterKind::TenantAffine),
            _ => None,
        }
    }
}

impl fmt::Display for ShardRouterKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A sharded workload: `K` shards, a routing policy, and the inner
/// (closed-loop) workload whose address space is partitioned.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSpec {
    /// Number of shards (`1..=MAX_SHARDS`).
    pub shards: u32,
    /// The routing policy.
    pub router: ShardRouterKind,
    /// The inner workload. Must be closed-loop: open-loop serving wraps
    /// *around* sharding (`open:…:shard:…`), never inside it.
    pub inner: Box<WorkloadSpec>,
}

impl ShardSpec {
    /// Convenience constructor.
    pub fn new(shards: u32, router: ShardRouterKind, inner: WorkloadSpec) -> Self {
        ShardSpec {
            shards,
            router,
            inner: Box::new(inner),
        }
    }

    /// The canonical name: `shard:<K>:<router>:<inner>`.
    pub fn name(&self) -> String {
        format!(
            "shard:{}:{}:{}",
            self.shards,
            self.router,
            self.inner.name()
        )
    }

    /// Validates the shard count, routing policy, and inner spec.
    ///
    /// # Errors
    ///
    /// Rejects shard counts outside `1..=MAX_SHARDS`, open-loop or nested
    /// sharded inners, tenant-affine routing over fewer tenants than
    /// shards, and anything the inner spec itself rejects.
    pub fn validate(&self) -> OramResult<()> {
        if self.shards == 0 || self.shards > MAX_SHARDS {
            return Err(invalid(format!(
                "shard count must be in 1..={MAX_SHARDS}, got {}",
                self.shards
            )));
        }
        match self.inner.as_ref() {
            WorkloadSpec::OpenLoop(_) => {
                return Err(invalid(
                    "sharded inner workloads must be closed-loop; wrap sharding in \
                     the open-loop spec instead (open:<arrivals>:shard:...)"
                        .into(),
                ));
            }
            WorkloadSpec::Sharded(_) => {
                return Err(invalid("sharded workloads cannot be nested".into()));
            }
            _ => {}
        }
        self.inner.validate()?;
        if self.router == ShardRouterKind::TenantAffine {
            let tenants = self.inner.tenant_count();
            if (self.shards as usize) > tenants {
                return Err(invalid(format!(
                    "tenant-affine routing needs at least as many tenants as \
                     shards ({} shards over {tenants} tenant(s))",
                    self.shards
                )));
            }
        }
        Ok(())
    }
}

/// A total, collision-free partition of a stream's footprint across `K`
/// shards, built once per run from the inner stream's static geometry
/// (footprint, tenant partitions) and shared by every shard.
#[derive(Debug, Clone)]
pub struct ShardRouter {
    kind: ShardRouterKind,
    shards: u32,
    /// Total cache lines in the global footprint (`footprint.div_ceil(64)`).
    total_lines: u64,
    /// Range router only: `starts[i]` is the first global line of shard
    /// `i`; length `K + 1` with `starts[K] == total_lines`.
    starts: Vec<u64>,
    /// Tenant-affine only: each tenant's global `(base, size)` byte
    /// partition in ascending tenant order.
    tenant_bases: Vec<(u64, u64)>,
    /// Tenant-affine only: the shard-local byte base of each tenant's
    /// partition on its owning shard.
    tenant_local_base: Vec<u64>,
    /// Per-shard footprint upper bound in bytes.
    shard_footprints: Vec<u64>,
}

impl ShardRouter {
    /// Builds a router over the given stream's footprint (and, for
    /// tenant-affine routing, its tenant partition table).
    ///
    /// # Errors
    ///
    /// Rejects zero shard counts, footprints with fewer lines than shards
    /// (hash/range), and tenant-affine routing over streams that do not
    /// expose contiguous ascending non-empty tenant partitions covering
    /// the whole footprint.
    pub fn new(kind: ShardRouterKind, shards: u32, stream: &dyn AccessStream) -> OramResult<Self> {
        if shards == 0 {
            return Err(invalid("shard router needs at least one shard".into()));
        }
        let footprint = stream.footprint_bytes();
        let total_lines = footprint.div_ceil(64);
        let k = u64::from(shards);
        let mut router = ShardRouter {
            kind,
            shards,
            total_lines,
            starts: Vec::new(),
            tenant_bases: Vec::new(),
            tenant_local_base: Vec::new(),
            shard_footprints: Vec::new(),
        };
        match kind {
            ShardRouterKind::Hash => {
                if total_lines < k {
                    return Err(invalid(format!(
                        "hash router needs >= {k} cache lines, footprint has {total_lines}"
                    )));
                }
                // Shard i receives scrambled lines s = i, i + K, i + 2K, …
                // below `total_lines`, so its local line space is exactly
                // [0, L/K + (i < L % K)).
                router.shard_footprints = (0..k)
                    .map(|i| (total_lines / k + u64::from(i < total_lines % k)) * 64)
                    .collect();
            }
            ShardRouterKind::Range => {
                if total_lines < k {
                    return Err(invalid(format!(
                        "range router needs >= {k} cache lines, footprint has {total_lines}"
                    )));
                }
                router.starts = (0..=k)
                    .map(|i| (u128::from(i) * u128::from(total_lines) / u128::from(k)) as u64)
                    .collect();
                router.shard_footprints = router
                    .starts
                    .windows(2)
                    .map(|w| (w[1] - w[0]) * 64)
                    .collect();
            }
            ShardRouterKind::TenantAffine => {
                let tenants = stream.tenant_count();
                if (shards as usize) > tenants {
                    return Err(invalid(format!(
                        "tenant-affine router needs >= {shards} tenants, stream has {tenants}"
                    )));
                }
                let mut expected_base = 0u64;
                for t in 0..tenants {
                    let Some((base, size)) = stream.tenant_partition(t) else {
                        return Err(invalid(format!(
                            "tenant-affine routing needs contiguous tenant \
                             partitions; tenant {t} does not expose one"
                        )));
                    };
                    if base != expected_base || size == 0 {
                        return Err(invalid(format!(
                            "tenant-affine routing needs contiguous ascending \
                             non-empty tenant partitions; tenant {t} has base \
                             {base} size {size}, expected base {expected_base}"
                        )));
                    }
                    router.tenant_bases.push((base, size));
                    expected_base = base + size;
                }
                if expected_base != footprint {
                    return Err(invalid(format!(
                        "tenant partitions cover {expected_base} of {footprint} \
                         footprint bytes"
                    )));
                }
                router.shard_footprints = vec![0; shards as usize];
                router.tenant_local_base = Vec::with_capacity(tenants);
                for (t, &(_, size)) in router.tenant_bases.iter().enumerate() {
                    let shard = t % shards as usize;
                    router
                        .tenant_local_base
                        .push(router.shard_footprints[shard]);
                    router.shard_footprints[shard] += size;
                }
            }
        }
        Ok(router)
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The routing policy.
    pub fn kind(&self) -> ShardRouterKind {
        self.kind
    }

    /// Upper bound on shard `i`'s local footprint in bytes: every
    /// shard-local address this router produces for shard `i` is below it.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= self.shards()`.
    pub fn shard_footprint_bytes(&self, shard: u32) -> u64 {
        self.shard_footprints[shard as usize]
    }

    /// Routes a global byte address to its `(shard, shard-local address)`.
    /// Total and collision-free over `[0, footprint)`: every address maps
    /// to exactly one shard, and distinct addresses on the same shard map
    /// to distinct local addresses.
    pub fn route(&self, addr: u64) -> (u32, u64) {
        let line = addr / 64;
        let offset = addr % 64;
        match self.kind {
            ShardRouterKind::Hash => {
                let s = scramble(line, self.total_lines);
                let k = u64::from(self.shards);
                ((s % k) as u32, (s / k) * 64 + offset)
            }
            ShardRouterKind::Range => {
                // First start strictly above `line`, minus one: shard ids
                // are in 0..K because starts[0] == 0 and starts[K] == L.
                let shard = self.starts.partition_point(|&s| s <= line) - 1;
                (shard as u32, (line - self.starts[shard]) * 64 + offset)
            }
            ShardRouterKind::TenantAffine => {
                let t = self.tenant_bases.partition_point(|&(b, _)| b <= addr) - 1;
                let shard = (t % self.shards as usize) as u32;
                (
                    shard,
                    self.tenant_local_base[t] + (addr - self.tenant_bases[t].0),
                )
            }
        }
    }
}

/// The shard-local view of a shared inner stream: pulls the inner stream
/// until an access routes to this shard, then rewrites the address into
/// the shard-local space (preserving the global tenant id).
///
/// Every shard wraps its *own* rebuild of the same seeded inner stream, so
/// shards share no mutable state yet observe consistent subsequences of
/// one global access order.
pub struct ShardStream {
    inner: Box<dyn AccessStream>,
    router: ShardRouter,
    shard: u32,
}

impl ShardStream {
    /// Wraps `inner` as shard `shard`'s view under `router`.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= router.shards()`.
    pub fn new(inner: Box<dyn AccessStream>, router: ShardRouter, shard: u32) -> Self {
        assert!(
            shard < router.shards(),
            "shard {shard} out of range for {}-shard router",
            router.shards()
        );
        ShardStream {
            inner,
            router,
            shard,
        }
    }
}

impl AccessStream for ShardStream {
    fn next_access(&mut self) -> TraceEntry {
        self.next_tagged().entry
    }

    fn next_tagged(&mut self) -> TaggedEntry {
        for _ in 0..MAX_FILTER_PULLS {
            let tagged = self.inner.next_tagged();
            let (shard, local) = self.router.route(tagged.entry.addr.0);
            if shard == self.shard {
                return TaggedEntry {
                    entry: TraceEntry {
                        addr: PhysAddr::new(local),
                        op: tagged.entry.op,
                    },
                    tenant: tagged.tenant,
                };
            }
        }
        panic!(
            "shard {} saw no routed access in {MAX_FILTER_PULLS} pulls; \
             router and stream disagree about the footprint",
            self.shard
        );
    }

    fn tenant_count(&self) -> usize {
        self.inner.tenant_count()
    }

    fn footprint_bytes(&self) -> u64 {
        self.router.shard_footprint_bytes(self.shard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;

    fn stream(spec: &WorkloadSpec) -> Box<dyn AccessStream> {
        spec.build(1 << 20, 7).unwrap()
    }

    fn random_spec() -> WorkloadSpec {
        WorkloadSpec::Table2(Workload::Random)
    }

    #[test]
    fn router_kind_names_round_trip() {
        for kind in [
            ShardRouterKind::Hash,
            ShardRouterKind::Range,
            ShardRouterKind::TenantAffine,
        ] {
            assert_eq!(ShardRouterKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(ShardRouterKind::from_name("nope"), None);
    }

    #[test]
    fn every_router_partitions_the_footprint() {
        let s = stream(&random_spec());
        let footprint = s.footprint_bytes();
        for kind in [ShardRouterKind::Hash, ShardRouterKind::Range] {
            let router = ShardRouter::new(kind, 4, s.as_ref()).unwrap();
            let mut per_shard_lines = [0u64; 4];
            // Walk every line (offset 0) plus a mid-line offset.
            for line in 0..footprint.div_ceil(64) {
                let (shard, local) = router.route(line * 64);
                assert!(shard < 4, "{kind:?}");
                assert!(
                    local < router.shard_footprint_bytes(shard),
                    "{kind:?}: local {local} beyond shard {shard} footprint"
                );
                let (shard2, local2) = router.route(line * 64 + 17);
                assert_eq!((shard, local + 17), (shard2, local2), "{kind:?}");
                per_shard_lines[shard as usize] += 1;
            }
            let total: u64 = per_shard_lines.iter().sum();
            assert_eq!(total, footprint.div_ceil(64), "{kind:?} dropped lines");
            for (i, &lines) in per_shard_lines.iter().enumerate() {
                assert_eq!(
                    lines * 64,
                    router.shard_footprint_bytes(i as u32),
                    "{kind:?} shard {i} line count vs footprint"
                );
            }
        }
    }

    #[test]
    fn range_router_is_order_preserving_within_a_shard() {
        let s = stream(&random_spec());
        let router = ShardRouter::new(ShardRouterKind::Range, 3, s.as_ref()).unwrap();
        let mut prev: Vec<Option<u64>> = vec![None; 3];
        for line in 0..s.footprint_bytes().div_ceil(64) {
            let (shard, local) = router.route(line * 64);
            if let Some(p) = prev[shard as usize] {
                assert!(local > p, "range routing must preserve order");
            }
            prev[shard as usize] = Some(local);
        }
    }

    #[test]
    fn tenant_affine_router_pins_tenants_to_shards() {
        let spec = WorkloadSpec::from_name("mix:rr:mcf+random+redis").unwrap();
        let s = stream(&spec);
        let router = ShardRouter::new(ShardRouterKind::TenantAffine, 2, s.as_ref()).unwrap();
        let mut covered = 0u64;
        for t in 0..s.tenant_count() {
            let (base, size) = s.tenant_partition(t).unwrap();
            covered += size;
            let expect_shard = (t % 2) as u32;
            for probe in [base, base + size / 2, base + size - 1] {
                let (shard, local) = router.route(probe);
                assert_eq!(shard, expect_shard, "tenant {t} strayed off its shard");
                assert!(local < router.shard_footprint_bytes(shard));
            }
        }
        assert_eq!(covered, s.footprint_bytes());
        let sum: u64 = (0..2).map(|i| router.shard_footprint_bytes(i)).sum();
        assert_eq!(sum, s.footprint_bytes());
    }

    #[test]
    fn degenerate_router_builds_are_rejected() {
        let s = stream(&random_spec());
        let err = ShardRouter::new(ShardRouterKind::Hash, 0, s.as_ref()).unwrap_err();
        assert!(err.to_string().contains("at least one"), "{err}");
        // A single-tenant stream cannot feed a 2-way tenant-affine router.
        let err = ShardRouter::new(ShardRouterKind::TenantAffine, 2, s.as_ref()).unwrap_err();
        assert!(err.to_string().contains("tenant"), "{err}");
        // Fewer lines than shards.
        struct Tiny;
        impl AccessStream for Tiny {
            fn next_access(&mut self) -> TraceEntry {
                TraceEntry::read(0)
            }
            fn footprint_bytes(&self) -> u64 {
                128
            }
        }
        let err = ShardRouter::new(ShardRouterKind::Hash, 4, &Tiny).unwrap_err();
        assert!(err.to_string().contains("cache lines"), "{err}");
        let err = ShardRouter::new(ShardRouterKind::Range, 4, &Tiny).unwrap_err();
        assert!(err.to_string().contains("cache lines"), "{err}");
    }

    #[test]
    fn shard_streams_partition_the_global_sequence() {
        // Four shard streams over identical inner rebuilds must partition
        // the exact global sequence: merging their pulls in global order
        // reproduces the unsharded stream.
        let spec = random_spec();
        let probe = stream(&spec);
        let router = ShardRouter::new(ShardRouterKind::Hash, 4, probe.as_ref()).unwrap();
        let mut global = stream(&spec);
        let mut shards: Vec<ShardStream> = (0..4)
            .map(|i| ShardStream::new(stream(&spec), router.clone(), i))
            .collect();
        for _ in 0..500 {
            let g = global.next_tagged();
            let (shard, local) = router.route(g.entry.addr.0);
            let s = shards[shard as usize].next_tagged();
            assert_eq!(s.entry.addr.0, local);
            assert_eq!(s.entry.op, g.entry.op);
            assert_eq!(s.tenant, g.tenant);
            assert!(s.entry.addr.0 < shards[shard as usize].footprint_bytes());
        }
    }

    #[test]
    fn shard_spec_validation_rejects_bad_shapes() {
        let inner = random_spec();
        assert!(ShardSpec::new(0, ShardRouterKind::Hash, inner.clone())
            .validate()
            .is_err());
        assert!(ShardSpec::new(65, ShardRouterKind::Hash, inner.clone())
            .validate()
            .is_err());
        assert!(
            ShardSpec::new(2, ShardRouterKind::TenantAffine, inner.clone())
                .validate()
                .is_err(),
            "tenant-affine over one tenant"
        );
        let nested = WorkloadSpec::Sharded(ShardSpec::new(2, ShardRouterKind::Hash, inner.clone()));
        assert!(ShardSpec::new(2, ShardRouterKind::Hash, nested)
            .validate()
            .is_err());
        let open = WorkloadSpec::from_name("open:poisson:0.1:random").unwrap();
        assert!(ShardSpec::new(2, ShardRouterKind::Hash, open)
            .validate()
            .is_err());
        assert!(ShardSpec::new(2, ShardRouterKind::Hash, inner)
            .validate()
            .is_ok());
    }
}
