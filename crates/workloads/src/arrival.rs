//! Open-loop arrival specs: *when* requests arrive, decoupled from *what*
//! they access.
//!
//! Every closed-loop run pulls the next access the instant an in-flight
//! slot frees, so the simulator always observes the system at 100% load.
//! An [`OpenLoopSpec`] instead wraps any inner [`WorkloadSpec`] with one or
//! more [`ArrivalSpec`] processes that place request arrivals on the
//! *simulated* clock. The simulator (the `palermo-sim` crate) samples the
//! processes with seeded RNG and admits requests through a bounded queue —
//! this module only describes the processes and owns their spec-name
//! grammar:
//!
//! ```text
//! open:poisson:0.8:mcf                  Poisson arrivals, 0.8 req/kcycle
//! open:bursty:2:50000:150000:redis      on/off bursts: 2 req/kcycle while
//!                                       on, mean on 50k / off 150k cycles
//! open:diurnal:0.2:1.5:4000000:llm      raised-cosine rate curve between
//!                                       0.2 and 1.5 req/kcycle, period 4M
//! open:poisson:0.5+poisson:1:mix:rr:redis+llm
//!                                       one arrival process per tenant
//! ```
//!
//! An arrival token is `kind:arg[:arg...]` with a fixed arity per kind;
//! `+` separates the per-tenant process list and the token after the final
//! arrival argument is the inner spec name (which may itself contain `:`
//! and `+`, e.g. a mix). All rates are **requests per kilocycle** of the
//! simulated clock — at the modelled 1.6 GHz a rate of 1.0 is one arrival
//! per 625 ns.
//!
//! Per-tenant arrival lists (more than one process) require a plain
//! [`WorkloadSpec::Mix`] inner whose tenant count matches: each process
//! then drives its own tenant's stream directly, replacing the mix's
//! WRR/Zipf selection. A single process over any inner keeps the inner's
//! own tenant routing and only gates *when* the next request forms.

use crate::spec::WorkloadSpec;
use palermo_oram::error::{OramError, OramResult};

/// One deterministic arrival process (rates in requests per kilocycle of
/// the simulated clock).
///
/// The spec is pure description: sampling lives in `palermo_sim::serving`,
/// seeded from the run seed so the same spec reproduces the same arrival
/// times bit for bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalSpec {
    /// Memoryless arrivals: exponential inter-arrival gaps with mean
    /// `1000 / rate` cycles.
    Poisson {
        /// Mean arrival rate, requests per kilocycle.
        rate_per_kcycle: f64,
    },
    /// Markov-modulated on/off bursts: while ON, arrivals are Poisson at
    /// `rate_per_kcycle`; while OFF, none. ON and OFF durations are
    /// exponentially distributed with the given means.
    Bursty {
        /// Arrival rate during ON periods, requests per kilocycle.
        rate_per_kcycle: f64,
        /// Mean ON-period duration, cycles.
        mean_on_cycles: u64,
        /// Mean OFF-period duration, cycles.
        mean_off_cycles: u64,
    },
    /// A raised-cosine rate curve between `base` and `peak`, period
    /// `period_cycles`: `rate(t) = base + (peak - base) * (1 - cos(2πt/T))/2`,
    /// so the run starts at the trough and crests mid-period (the diurnal
    /// day/night pattern of user-facing traffic).
    Diurnal {
        /// Trough arrival rate, requests per kilocycle (may be 0).
        base_per_kcycle: f64,
        /// Crest arrival rate, requests per kilocycle.
        peak_per_kcycle: f64,
        /// Period of the rate curve, cycles.
        period_cycles: u64,
    },
}

impl ArrivalSpec {
    /// Validates rates and durations.
    ///
    /// # Errors
    ///
    /// Rejects non-finite or non-positive rates, a diurnal peak below its
    /// base, and zero-length on/off/period durations.
    pub fn validate(&self) -> OramResult<()> {
        let bad = |reason: String| Err(OramError::InvalidParams { reason });
        match *self {
            ArrivalSpec::Poisson { rate_per_kcycle } => {
                if !(rate_per_kcycle.is_finite() && rate_per_kcycle > 0.0) {
                    return bad(format!(
                        "poisson arrival rate {rate_per_kcycle} must be finite and > 0"
                    ));
                }
            }
            ArrivalSpec::Bursty {
                rate_per_kcycle,
                mean_on_cycles,
                mean_off_cycles,
            } => {
                if !(rate_per_kcycle.is_finite() && rate_per_kcycle > 0.0) {
                    return bad(format!(
                        "bursty arrival rate {rate_per_kcycle} must be finite and > 0"
                    ));
                }
                if mean_on_cycles == 0 || mean_off_cycles == 0 {
                    return bad(format!(
                        "bursty on/off means ({mean_on_cycles}, {mean_off_cycles}) must be ≥ 1 cycle"
                    ));
                }
            }
            ArrivalSpec::Diurnal {
                base_per_kcycle,
                peak_per_kcycle,
                period_cycles,
            } => {
                if !(base_per_kcycle.is_finite() && base_per_kcycle >= 0.0) {
                    return bad(format!(
                        "diurnal base rate {base_per_kcycle} must be finite and ≥ 0"
                    ));
                }
                if !(peak_per_kcycle.is_finite() && peak_per_kcycle > 0.0) {
                    return bad(format!(
                        "diurnal peak rate {peak_per_kcycle} must be finite and > 0"
                    ));
                }
                if peak_per_kcycle < base_per_kcycle {
                    return bad(format!(
                        "diurnal peak rate {peak_per_kcycle} must be ≥ base rate {base_per_kcycle}"
                    ));
                }
                if period_cycles == 0 {
                    return bad("diurnal period must be ≥ 1 cycle".into());
                }
            }
        }
        Ok(())
    }

    /// The long-run mean arrival rate in requests per kilocycle — the
    /// *offered load* this process contributes (duty-cycle-weighted for
    /// bursty, curve-averaged for diurnal).
    pub fn offered_rate_per_kcycle(&self) -> f64 {
        match *self {
            ArrivalSpec::Poisson { rate_per_kcycle } => rate_per_kcycle,
            ArrivalSpec::Bursty {
                rate_per_kcycle,
                mean_on_cycles,
                mean_off_cycles,
            } => {
                let on = mean_on_cycles as f64;
                let off = mean_off_cycles as f64;
                rate_per_kcycle * on / (on + off)
            }
            // The raised cosine averages to the midpoint over a full period.
            ArrivalSpec::Diurnal {
                base_per_kcycle,
                peak_per_kcycle,
                ..
            } => (base_per_kcycle + peak_per_kcycle) / 2.0,
        }
    }

    /// The same process with its rate(s) scaled by `factor`, durations and
    /// period unchanged. The sharded system uses this to split one offered
    /// load across `K` shards (factor `1/K`): thinning a Poisson process is
    /// exact; for bursty and diurnal processes scaling the rate while
    /// keeping the on/off and period structure is the documented
    /// approximation (the per-shard burst *timing* stays in phase with the
    /// global process, only the intensity is divided).
    #[must_use]
    pub fn scaled(self, factor: f64) -> ArrivalSpec {
        match self {
            ArrivalSpec::Poisson { rate_per_kcycle } => ArrivalSpec::Poisson {
                rate_per_kcycle: rate_per_kcycle * factor,
            },
            ArrivalSpec::Bursty {
                rate_per_kcycle,
                mean_on_cycles,
                mean_off_cycles,
            } => ArrivalSpec::Bursty {
                rate_per_kcycle: rate_per_kcycle * factor,
                mean_on_cycles,
                mean_off_cycles,
            },
            ArrivalSpec::Diurnal {
                base_per_kcycle,
                peak_per_kcycle,
                period_cycles,
            } => ArrivalSpec::Diurnal {
                base_per_kcycle: base_per_kcycle * factor,
                peak_per_kcycle: peak_per_kcycle * factor,
                period_cycles,
            },
        }
    }

    /// Renders this process's token of the spec-name grammar
    /// (`poisson:<rate>`, `bursty:<rate>:<on>:<off>`,
    /// `diurnal:<base>:<peak>:<period>`).
    pub fn name(&self) -> String {
        match *self {
            ArrivalSpec::Poisson { rate_per_kcycle } => format!("poisson:{rate_per_kcycle}"),
            ArrivalSpec::Bursty {
                rate_per_kcycle,
                mean_on_cycles,
                mean_off_cycles,
            } => format!("bursty:{rate_per_kcycle}:{mean_on_cycles}:{mean_off_cycles}"),
            ArrivalSpec::Diurnal {
                base_per_kcycle,
                peak_per_kcycle,
                period_cycles,
            } => format!("diurnal:{base_per_kcycle}:{peak_per_kcycle}:{period_cycles}"),
        }
    }
}

impl std::fmt::Display for ArrivalSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

/// An open-loop serving description: arrival processes wrapped around an
/// inner workload.
///
/// With one process, arrivals gate *when* the next request forms and the
/// inner stream keeps its own tenant routing; with `N > 1` processes the
/// inner must be an `N`-tenant [`WorkloadSpec::Mix`] and process `i` drives
/// tenant `i`'s stream directly.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenLoopSpec {
    /// The arrival processes (length 1, or one per inner-mix tenant).
    pub arrivals: Vec<ArrivalSpec>,
    /// The workload the admitted requests draw their accesses from.
    pub inner: Box<WorkloadSpec>,
}

impl OpenLoopSpec {
    /// A single arrival process over any inner workload.
    pub fn new(arrival: ArrivalSpec, inner: WorkloadSpec) -> Self {
        OpenLoopSpec {
            arrivals: vec![arrival],
            inner: Box::new(inner),
        }
    }

    /// One arrival process per tenant of an inner mix.
    pub fn per_tenant(arrivals: Vec<ArrivalSpec>, inner: WorkloadSpec) -> Self {
        OpenLoopSpec {
            arrivals,
            inner: Box::new(inner),
        }
    }

    /// Total offered load across all processes, requests per kilocycle.
    pub fn offered_rate_per_kcycle(&self) -> f64 {
        self.arrivals
            .iter()
            .map(ArrivalSpec::offered_rate_per_kcycle)
            .sum()
    }

    /// Validates the processes, the inner workload, and their pairing.
    ///
    /// # Errors
    ///
    /// Rejects empty process lists, invalid processes, nested open-loop
    /// specs, a multi-process list whose length differs from the inner
    /// tenant count, and multi-process lists over anything but a plain
    /// [`WorkloadSpec::Mix`] (a phased mix's activity windows are indexed
    /// by the mix's own selection clock, which per-tenant arrival routing
    /// replaces).
    pub fn validate(&self) -> OramResult<()> {
        if self.arrivals.is_empty() {
            return Err(OramError::InvalidParams {
                reason: "an open-loop spec needs at least one arrival process".into(),
            });
        }
        for (i, a) in self.arrivals.iter().enumerate() {
            a.validate().map_err(|e| OramError::InvalidParams {
                reason: format!("arrival process {i}: {e}"),
            })?;
        }
        if matches!(*self.inner, WorkloadSpec::OpenLoop(_)) {
            return Err(OramError::InvalidParams {
                reason: "open-loop specs cannot nest".into(),
            });
        }
        self.inner.validate()?;
        if self.arrivals.len() > 1 {
            if !matches!(*self.inner, WorkloadSpec::Mix(_)) {
                return Err(OramError::InvalidParams {
                    reason: format!(
                        "per-tenant arrival processes require a plain mix inner \
(got `{}`); phased windows conflict with arrival-driven tenant routing",
                        self.inner.name()
                    ),
                });
            }
            let tenants = self.inner.tenant_count();
            if self.arrivals.len() != tenants {
                return Err(OramError::InvalidParams {
                    reason: format!(
                        "{} arrival processes over a {tenants}-tenant mix: \
the list must have exactly one process per tenant",
                        self.arrivals.len()
                    ),
                });
            }
        }
        Ok(())
    }

    /// Renders the `+`-joined arrival-process list of the spec name.
    pub fn arrivals_name(&self) -> String {
        let tokens: Vec<String> = self.arrivals.iter().map(ArrivalSpec::name).collect();
        tokens.join("+")
    }
}

/// Parses the part of an `open:` spec name after the prefix: a `+`-joined
/// arrival-process list followed by `:` and the inner spec name. Returns
/// `None` on any token [`ArrivalSpec::name`] cannot have produced.
pub(crate) fn parse_open(rest: &str) -> Option<OpenLoopSpec> {
    let mut arrivals = Vec::new();
    let mut cursor = rest;
    loop {
        let (spec, after) = parse_arrival(cursor)?;
        arrivals.push(spec);
        if let Some(more) = after.strip_prefix('+') {
            cursor = more;
        } else if let Some(inner) = after.strip_prefix(':') {
            let inner = WorkloadSpec::from_name(inner)?;
            let spec = OpenLoopSpec {
                arrivals,
                inner: Box::new(inner),
            };
            spec.validate().ok()?;
            return Some(spec);
        } else {
            // The grammar requires an inner spec name after the last
            // process token.
            return None;
        }
    }
}

/// Parses one arrival token at the head of `s`; returns the process and
/// the unconsumed remainder (starting at `+`, `:`, or empty).
fn parse_arrival(s: &str) -> Option<(ArrivalSpec, &str)> {
    let (kind, args) = s.split_once(':')?;
    match kind {
        "poisson" => {
            let ([rate], rest) = take_args::<1>(args)?;
            Some((
                ArrivalSpec::Poisson {
                    rate_per_kcycle: parse_rate(rate)?,
                },
                rest,
            ))
        }
        "bursty" => {
            let ([rate, on, off], rest) = take_args::<3>(args)?;
            Some((
                ArrivalSpec::Bursty {
                    rate_per_kcycle: parse_rate(rate)?,
                    mean_on_cycles: on.parse().ok()?,
                    mean_off_cycles: off.parse().ok()?,
                },
                rest,
            ))
        }
        "diurnal" => {
            let ([base, peak, period], rest) = take_args::<3>(args)?;
            Some((
                ArrivalSpec::Diurnal {
                    base_per_kcycle: parse_rate(base)?,
                    peak_per_kcycle: parse_rate(peak)?,
                    period_cycles: period.parse().ok()?,
                },
                rest,
            ))
        }
        _ => None,
    }
}

/// Takes exactly `N` colon-separated numeric tokens off the head of `s`;
/// tokens end at `:` or `+`, and the remainder starts at the delimiter
/// that follows the last token.
fn take_args<const N: usize>(mut s: &str) -> Option<([&str; N], &str)> {
    let mut out = [""; N];
    for (i, slot) in out.iter_mut().enumerate() {
        if i > 0 {
            s = s.strip_prefix(':')?;
        }
        let split = s.find([':', '+']).unwrap_or(s.len());
        let (token, rest) = s.split_at(split);
        if token.is_empty() {
            return None;
        }
        *slot = token;
        s = rest;
    }
    Some((out, s))
}

/// Parses a rate token, rejecting spellings [`ArrivalSpec::name`] never
/// emits (leading `+`, `inf`, `NaN` — validation would catch the latter
/// two anyway, but a parser should not accept what the renderer cannot
/// produce).
fn parse_rate(token: &str) -> Option<f64> {
    if !token.starts_with(|c: char| c.is_ascii_digit() || c == '.') {
        return None;
    }
    token.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix::MixSpec;
    use crate::workload::Workload;

    #[test]
    fn arrival_validation_rejects_degenerate_parameters() {
        let bad = [
            ArrivalSpec::Poisson {
                rate_per_kcycle: 0.0,
            },
            ArrivalSpec::Poisson {
                rate_per_kcycle: -1.0,
            },
            ArrivalSpec::Poisson {
                rate_per_kcycle: f64::INFINITY,
            },
            ArrivalSpec::Poisson {
                rate_per_kcycle: f64::NAN,
            },
            ArrivalSpec::Bursty {
                rate_per_kcycle: 1.0,
                mean_on_cycles: 0,
                mean_off_cycles: 10,
            },
            ArrivalSpec::Bursty {
                rate_per_kcycle: 1.0,
                mean_on_cycles: 10,
                mean_off_cycles: 0,
            },
            ArrivalSpec::Diurnal {
                base_per_kcycle: 2.0,
                peak_per_kcycle: 1.0,
                period_cycles: 100,
            },
            ArrivalSpec::Diurnal {
                base_per_kcycle: 0.0,
                peak_per_kcycle: 0.0,
                period_cycles: 100,
            },
            ArrivalSpec::Diurnal {
                base_per_kcycle: 0.1,
                peak_per_kcycle: 1.0,
                period_cycles: 0,
            },
        ];
        for spec in bad {
            assert!(spec.validate().is_err(), "{spec:?}");
        }
        assert!(ArrivalSpec::Poisson {
            rate_per_kcycle: 0.8
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn offered_rate_weights_duty_cycle_and_curve() {
        let p = ArrivalSpec::Poisson {
            rate_per_kcycle: 0.8,
        };
        assert_eq!(p.offered_rate_per_kcycle(), 0.8);
        let b = ArrivalSpec::Bursty {
            rate_per_kcycle: 2.0,
            mean_on_cycles: 50_000,
            mean_off_cycles: 150_000,
        };
        assert!((b.offered_rate_per_kcycle() - 0.5).abs() < 1e-12);
        let d = ArrivalSpec::Diurnal {
            base_per_kcycle: 0.2,
            peak_per_kcycle: 1.4,
            period_cycles: 1_000_000,
        };
        assert!((d.offered_rate_per_kcycle() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn scaling_divides_rates_but_keeps_the_time_structure() {
        let p = ArrivalSpec::Poisson {
            rate_per_kcycle: 0.8,
        };
        assert_eq!(p.scaled(0.25).offered_rate_per_kcycle(), 0.2);
        let b = ArrivalSpec::Bursty {
            rate_per_kcycle: 2.0,
            mean_on_cycles: 50_000,
            mean_off_cycles: 150_000,
        };
        match b.scaled(0.5) {
            ArrivalSpec::Bursty {
                rate_per_kcycle,
                mean_on_cycles,
                mean_off_cycles,
            } => {
                assert_eq!(rate_per_kcycle, 1.0);
                assert_eq!((mean_on_cycles, mean_off_cycles), (50_000, 150_000));
            }
            other => panic!("scaling changed the kind: {other:?}"),
        }
        let d = ArrivalSpec::Diurnal {
            base_per_kcycle: 0.2,
            peak_per_kcycle: 1.4,
            period_cycles: 1_000_000,
        };
        match d.scaled(0.5) {
            ArrivalSpec::Diurnal {
                base_per_kcycle,
                peak_per_kcycle,
                period_cycles,
            } => {
                assert_eq!((base_per_kcycle, peak_per_kcycle), (0.1, 0.7));
                assert_eq!(period_cycles, 1_000_000);
            }
            other => panic!("scaling changed the kind: {other:?}"),
        }
        assert!(d.scaled(0.5).validate().is_ok());
    }

    #[test]
    fn open_loop_validation_pairs_processes_with_tenants() {
        let poisson = ArrivalSpec::Poisson {
            rate_per_kcycle: 0.5,
        };
        // Single process over anything valid.
        assert!(OpenLoopSpec::new(poisson, Workload::Mcf.into())
            .validate()
            .is_ok());
        // Nesting is rejected.
        let nested = OpenLoopSpec::new(
            poisson,
            WorkloadSpec::OpenLoop(OpenLoopSpec::new(poisson, Workload::Mcf.into())),
        );
        assert!(nested.validate().is_err());
        // Per-tenant list over a matching mix is fine.
        let mix = WorkloadSpec::Mix(
            MixSpec::round_robin()
                .tenant(Workload::Redis.into(), 1)
                .tenant(Workload::Llm.into(), 1),
        );
        assert!(
            OpenLoopSpec::per_tenant(vec![poisson, poisson], mix.clone())
                .validate()
                .is_ok()
        );
        // Wrong arity.
        let err = OpenLoopSpec::per_tenant(vec![poisson, poisson, poisson], mix)
            .validate()
            .unwrap_err();
        assert!(err.to_string().contains("2-tenant"), "{err}");
        // Per-tenant list over a single-tenant inner.
        assert!(
            OpenLoopSpec::per_tenant(vec![poisson, poisson], Workload::Mcf.into())
                .validate()
                .is_err()
        );
        // Empty process list.
        assert!(OpenLoopSpec::per_tenant(vec![], Workload::Mcf.into())
            .validate()
            .is_err());
    }
}
