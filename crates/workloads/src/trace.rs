//! Access traces and the generator interface.

use palermo_oram::types::{OramOp, PhysAddr};

/// One memory access produced by a workload generator (post-L2, i.e. the
/// stream that is filtered by the LLC model before reaching the ORAM
/// controller).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Byte address within the workload's protected footprint.
    pub addr: PhysAddr,
    /// Read or write.
    pub op: OramOp,
}

impl TraceEntry {
    /// Convenience constructor for a read access.
    pub fn read(addr: u64) -> Self {
        TraceEntry {
            addr: PhysAddr::new(addr),
            op: OramOp::Read,
        }
    }

    /// Convenience constructor for a write access.
    pub fn write(addr: u64) -> Self {
        TraceEntry {
            addr: PhysAddr::new(addr),
            op: OramOp::Write,
        }
    }
}

/// A [`TraceEntry`] together with the id of the tenant that produced it.
///
/// Single-tenant streams (every Table II generator, trace replays) are
/// tenant 0; multi-tenant mixes tag each access with the index of the
/// originating tenant so the simulator can attribute per-tenant QoS metrics
/// (latency percentiles, DRAM demand share) at request granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaggedEntry {
    /// The access itself.
    pub entry: TraceEntry,
    /// Index of the originating tenant within the stream (0-based; always 0
    /// for single-tenant streams).
    pub tenant: u32,
}

/// An endless stream of memory accesses with a bounded footprint.
///
/// Generators are deterministic: the same seed yields the same stream, so
/// every experiment in the repository is reproducible.
pub trait AccessStream {
    /// Produces the next access.
    fn next_access(&mut self) -> TraceEntry;

    /// Produces the next access together with its originating tenant.
    ///
    /// The default implementation tags everything as tenant 0 (the correct
    /// answer for every single-tenant stream); multi-tenant streams override
    /// it — and route [`AccessStream::next_access`] through it — so the two
    /// entry points always observe the same underlying sequence.
    fn next_tagged(&mut self) -> TaggedEntry {
        TaggedEntry {
            entry: self.next_access(),
            tenant: 0,
        }
    }

    /// Produces the next access of a *specific* tenant, bypassing the
    /// stream's own tenant selection. Open-loop serving uses this when a
    /// per-tenant arrival process fires: the arrival decides *which*
    /// tenant's request forms next, so selection moves out of the stream.
    ///
    /// The default implementation ignores the requested tenant and
    /// delegates to [`AccessStream::next_tagged`] — correct for every
    /// single-tenant stream (there is nothing to select). Multi-tenant
    /// streams that support arrival-driven routing override it to pull
    /// from tenant `tenant`'s child stream.
    fn next_tagged_for(&mut self, tenant: u32) -> TaggedEntry {
        let _ = tenant;
        self.next_tagged()
    }

    /// Number of distinct tenants this stream multiplexes (1 for every
    /// single-tenant stream). Every [`TaggedEntry::tenant`] the stream emits
    /// is below this bound.
    fn tenant_count(&self) -> usize {
        1
    }

    /// The size of the address range the stream touches, in bytes. All
    /// generated addresses are below this bound.
    fn footprint_bytes(&self) -> u64;

    /// The contiguous byte partition `(base, size)` owned by tenant `i`,
    /// for streams that assign each tenant one contiguous slice of the
    /// footprint in ascending tenant order (the layout tenant-affine shard
    /// routing depends on).
    ///
    /// The default implementation answers for single-tenant streams only —
    /// tenant 0 owns the whole footprint — and returns `None` otherwise.
    /// Multi-tenant streams with contiguous partitions (mixes) override it;
    /// streams whose tenants interleave addresses leave the default, which
    /// correctly reports that no contiguous partition exists.
    fn tenant_partition(&self, i: usize) -> Option<(u64, u64)> {
        (i == 0 && self.tenant_count() == 1).then(|| (0, self.footprint_bytes()))
    }
}

/// Simple statistics over a finite prefix of a trace, used by tests and by
/// the workload-characterisation example.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TraceProfile {
    /// Number of accesses profiled.
    pub accesses: u64,
    /// Fraction of accesses that are writes.
    pub write_fraction: f64,
    /// Fraction of *transitions* whose cache line equals the previous
    /// access's line plus one (a crude spatial-locality indicator). The
    /// first access has no predecessor, so the denominator is `n - 1`: a
    /// perfectly sequential stream scores exactly 1.0.
    pub sequential_fraction: f64,
    /// Number of distinct 64-byte lines touched.
    pub distinct_lines: u64,
}

/// Profiles the next `n` accesses of a stream.
pub fn profile(stream: &mut dyn AccessStream, n: u64) -> TraceProfile {
    use std::collections::HashSet;
    let mut writes = 0u64;
    let mut sequential = 0u64;
    let mut lines = HashSet::new();
    let mut prev_line: Option<u64> = None;
    for _ in 0..n {
        let e = stream.next_access();
        let line = e.addr.0 / 64;
        if e.op == OramOp::Write {
            writes += 1;
        }
        // `checked_sub` (not `wrapping_sub`) so line 0 never matches a
        // predecessor; the explicit `is_some` guard keeps a leading line-0
        // access from comparing `None == None`.
        if prev_line.is_some() && prev_line == line.checked_sub(1) {
            sequential += 1;
        }
        prev_line = Some(line);
        lines.insert(line);
    }
    TraceProfile {
        accesses: n,
        write_fraction: if n == 0 {
            0.0
        } else {
            writes as f64 / n as f64
        },
        // The first access can never be sequential, so the denominator is
        // the number of transitions, not the number of accesses — dividing
        // by `n` capped a perfectly sequential stream at (n-1)/n.
        sequential_fraction: if n <= 1 {
            0.0
        } else {
            sequential as f64 / (n - 1) as f64
        },
        distinct_lines: lines.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter {
        next: u64,
    }
    impl AccessStream for Counter {
        fn next_access(&mut self) -> TraceEntry {
            let e = if self.next.is_multiple_of(4) {
                TraceEntry::write(self.next * 64)
            } else {
                TraceEntry::read(self.next * 64)
            };
            self.next += 1;
            e
        }
        fn footprint_bytes(&self) -> u64 {
            1 << 20
        }
    }

    #[test]
    fn default_tagging_is_tenant_zero_and_consumes_the_stream() {
        let mut s = Counter { next: 0 };
        assert_eq!(s.tenant_count(), 1);
        let first = s.next_tagged();
        assert_eq!(first.tenant, 0);
        assert_eq!(first.entry, TraceEntry::write(0));
        // The tagged pull advanced the same underlying sequence.
        assert_eq!(s.next_access(), TraceEntry::read(64));
    }

    #[test]
    fn entry_constructors() {
        assert_eq!(TraceEntry::read(64).op, OramOp::Read);
        assert_eq!(TraceEntry::write(64).op, OramOp::Write);
        assert_eq!(TraceEntry::read(64).addr, PhysAddr::new(64));
    }

    #[test]
    fn profile_of_sequential_stream() {
        let mut s = Counter { next: 0 };
        let p = profile(&mut s, 1000);
        assert_eq!(p.accesses, 1000);
        assert!((p.write_fraction - 0.25).abs() < 1e-9);
        // Regression: with `n` as the denominator a perfectly sequential
        // stream could only reach (n-1)/n.
        assert_eq!(p.sequential_fraction, 1.0);
        assert_eq!(p.distinct_lines, 1000);
    }

    #[test]
    fn empty_profile_is_zero() {
        let mut s = Counter { next: 0 };
        let p = profile(&mut s, 0);
        assert_eq!(p, TraceProfile::default());
    }

    #[test]
    fn single_access_has_no_sequential_transition() {
        let mut s = Counter { next: 0 };
        let p = profile(&mut s, 1);
        assert_eq!(p.accesses, 1);
        assert_eq!(p.sequential_fraction, 0.0);
    }

    #[test]
    fn leading_line_zero_access_is_not_sequential() {
        // Regression companion to the `wrapping_sub` fix: the first access
        // (line 0 included) has no predecessor and must not count, and a
        // jump *to* line 0 must not match via wrap-around.
        struct Fixed(Vec<u64>, usize);
        impl AccessStream for Fixed {
            fn next_access(&mut self) -> TraceEntry {
                let e = TraceEntry::read(self.0[self.1]);
                self.1 += 1;
                e
            }
            fn footprint_bytes(&self) -> u64 {
                1 << 30
            }
        }
        // Lines: 0, 1000, 0, 1 — exactly one sequential transition (0 -> 1).
        let mut s = Fixed(vec![0, 64_000, 0, 64], 0);
        let p = profile(&mut s, 4);
        assert!((p.sequential_fraction - 1.0 / 3.0).abs() < 1e-12);
    }
}
