//! Multi-tenant workload mixes.
//!
//! Cloud ORAM deployments do not serve one tenant at a time: the realistic
//! serving case is mixed traffic from many co-located services sharing one
//! protected memory. [`MixStream`] models that by composing N child
//! [`AccessStream`]s into a single stream:
//!
//! * **Address-space partitioning** — tenant `i`'s accesses are offset into
//!   its own contiguous slice of the mixed footprint (prefix sums of the
//!   child footprints), so tenants never alias each other's lines;
//! * **Tenant selection** — either *weighted round-robin* (a deterministic
//!   interleaved schedule where tenant `i` appears `weight_i` times per
//!   round) or *Zipf-weighted* (tenant popularity follows a Zipf
//!   distribution over the tenant list — first tenant hottest — the shape
//!   HPC workload-characterisation studies report for mixed cloud traffic);
//! * **Deterministic per-tenant seeding** — every child stream and the
//!   selection sampler get independent seeds expanded from the mix seed
//!   with SplitMix64, so the same seed reproduces the same mixed trace
//!   bit-for-bit regardless of tenant count.

use crate::spec::WorkloadSpec;
use crate::trace::{AccessStream, TraceEntry};
use crate::zipf::Zipf;
use palermo_oram::error::{OramError, OramResult};
use palermo_oram::rng::{OramRng, SplitMix64};
use palermo_oram::types::PhysAddr;

/// How the mix picks the tenant serving the next access.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TenantSelection {
    /// Deterministic interleaved weighted round-robin: per round, tenant
    /// `i` contributes `weight_i` accesses, interleaved rather than
    /// bursted.
    WeightedRoundRobin,
    /// Tenant popularity follows a Zipf distribution over the tenant list
    /// (first tenant hottest); per-tenant weights are ignored. `theta` is
    /// the skew in `[0, 1)` — 0 is uniform, 0.9 the usual hot-tenant case.
    Zipf {
        /// Skew of the tenant-popularity distribution.
        theta: f64,
    },
}

/// One tenant of a mix: a child workload spec and its round-robin weight.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// The child workload (Table II or trace replay; mixes cannot nest).
    pub workload: WorkloadSpec,
    /// Relative share under weighted round-robin (must be ≥ 1).
    pub weight: u32,
}

/// A declarative description of a multi-tenant mix.
#[derive(Debug, Clone, PartialEq)]
pub struct MixSpec {
    /// The tenants, in partition order (tenant 0 owns the lowest addresses
    /// and is the hottest under Zipf selection).
    pub tenants: Vec<TenantSpec>,
    /// The tenant-selection policy.
    pub selection: TenantSelection,
}

impl MixSpec {
    /// Starts an empty mix with the given selection policy.
    pub fn new(selection: TenantSelection) -> Self {
        MixSpec {
            tenants: Vec::new(),
            selection,
        }
    }

    /// Starts an empty weighted-round-robin mix.
    pub fn round_robin() -> Self {
        Self::new(TenantSelection::WeightedRoundRobin)
    }

    /// Starts an empty Zipf-weighted mix with skew `theta`.
    pub fn zipf(theta: f64) -> Self {
        Self::new(TenantSelection::Zipf { theta })
    }

    /// Appends a tenant.
    #[must_use]
    pub fn tenant(mut self, workload: WorkloadSpec, weight: u32) -> Self {
        self.tenants.push(TenantSpec { workload, weight });
        self
    }

    /// Validates the mix: at least one tenant, weights ≥ 1, a Zipf skew in
    /// `[0, 1)`, and children that are themselves valid and not mixes
    /// (nesting would break the flat partition map and the spec-name
    /// grammar).
    ///
    /// # Errors
    ///
    /// Names the offending tenant/parameter.
    pub fn validate(&self) -> OramResult<()> {
        if self.tenants.is_empty() {
            return Err(OramError::InvalidParams {
                reason: "a mix needs at least one tenant".into(),
            });
        }
        if let TenantSelection::Zipf { theta } = self.selection {
            if !(0.0..1.0).contains(&theta) {
                return Err(OramError::InvalidParams {
                    reason: format!("mix zipf skew {theta} must lie in [0, 1)"),
                });
            }
        }
        for (i, t) in self.tenants.iter().enumerate() {
            if t.weight == 0 {
                return Err(OramError::InvalidParams {
                    reason: format!("tenant {i} has weight 0 (must be ≥ 1)"),
                });
            }
            if matches!(t.workload, WorkloadSpec::Mix(_)) {
                return Err(OramError::InvalidParams {
                    reason: format!("tenant {i} is itself a mix; mixes cannot nest"),
                });
            }
            t.workload.validate()?;
        }
        Ok(())
    }
}

/// One instantiated tenant: its stream and its slice of the address space.
struct Tenant {
    stream: Box<dyn AccessStream>,
    base: u64,
    footprint: u64,
}

/// The tenant-selection engine.
enum Schedule {
    /// Interleaved weighted round-robin over a precomputed tenant order.
    Wrr { order: Vec<usize>, cursor: usize },
    /// Zipf-weighted random selection.
    Zipf { sampler: Zipf, rng: OramRng },
}

/// The composed multi-tenant access stream. Build one from a [`MixSpec`]
/// (usually via [`WorkloadSpec::build`]).
pub struct MixStream {
    tenants: Vec<Tenant>,
    schedule: Schedule,
    total_footprint: u64,
}

impl MixStream {
    /// Instantiates a mix: children are built with deterministic per-tenant
    /// seeds and an equal share of the footprint hint, then laid out
    /// side by side (prefix-sum partitioning).
    ///
    /// # Errors
    ///
    /// Propagates [`MixSpec::validate`] failures, child build errors (e.g.
    /// a missing trace file), and a combined footprint that overflows the
    /// address space.
    pub fn new(spec: &MixSpec, footprint_hint: u64, seed: u64) -> OramResult<Self> {
        spec.validate()?;
        let n = spec.tenants.len();
        // Independent seed expansion: the selection stream first, then one
        // seed per tenant, all derived from the mix seed alone.
        let mut sm = SplitMix64::new(seed);
        let selection_seed = sm.next_u64();
        let per_tenant_hint = (footprint_hint / n as u64).max(1);
        let mut tenants = Vec::with_capacity(n);
        let mut base = 0u64;
        for (i, t) in spec.tenants.iter().enumerate() {
            let stream = t.workload.build(per_tenant_hint, sm.next_u64())?;
            let footprint = stream.footprint_bytes();
            tenants.push(Tenant {
                stream,
                base,
                footprint,
            });
            base = base
                .checked_add(footprint)
                .ok_or_else(|| OramError::InvalidParams {
                    reason: format!(
                        "mix footprint overflows the address space at tenant {i} \
(combined footprint exceeds 2^64 bytes)"
                    ),
                })?;
        }
        let schedule = match spec.selection {
            TenantSelection::WeightedRoundRobin => {
                // Interleave: round r serves every tenant whose weight
                // exceeds r, so a 2:1:1 mix plays 0,1,2,0 — not 0,0,1,2.
                let max_weight = spec.tenants.iter().map(|t| t.weight).max().unwrap_or(1);
                let mut order = Vec::new();
                for round in 0..max_weight {
                    for (i, t) in spec.tenants.iter().enumerate() {
                        if t.weight > round {
                            order.push(i);
                        }
                    }
                }
                Schedule::Wrr { order, cursor: 0 }
            }
            TenantSelection::Zipf { theta } => Schedule::Zipf {
                sampler: Zipf::new(n as u64, theta),
                rng: OramRng::new(selection_seed),
            },
        };
        Ok(MixStream {
            tenants,
            schedule,
            total_footprint: base,
        })
    }

    /// Number of tenants in the mix.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// The `[base, base + footprint)` address slice owned by tenant `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn tenant_partition(&self, i: usize) -> (u64, u64) {
        let t = &self.tenants[i];
        (t.base, t.base + t.footprint)
    }
}

impl AccessStream for MixStream {
    fn next_access(&mut self) -> TraceEntry {
        let idx = match &mut self.schedule {
            Schedule::Wrr { order, cursor } => {
                let idx = order[*cursor];
                *cursor = (*cursor + 1) % order.len();
                idx
            }
            Schedule::Zipf { sampler, rng } => sampler.sample(rng) as usize,
        };
        let tenant = &mut self.tenants[idx];
        let entry = tenant.stream.next_access();
        debug_assert!(
            entry.addr.0 < tenant.footprint,
            "tenant {idx} violated its footprint bound"
        );
        TraceEntry {
            addr: PhysAddr::new(tenant.base + entry.addr.0),
            op: entry.op,
        }
    }

    fn footprint_bytes(&self) -> u64 {
        self.total_footprint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;

    fn three_tenant_spec() -> MixSpec {
        MixSpec::round_robin()
            .tenant(Workload::Redis.into(), 2)
            .tenant(Workload::Llm.into(), 1)
            .tenant(Workload::Streaming.into(), 1)
    }

    #[test]
    fn partitions_are_disjoint_and_cover_the_footprint() {
        let mix = MixStream::new(&three_tenant_spec(), 64 << 20, 7).unwrap();
        assert_eq!(mix.tenant_count(), 3);
        let mut expected_base = 0;
        for i in 0..3 {
            let (base, end) = mix.tenant_partition(i);
            assert_eq!(base, expected_base, "tenant {i} base");
            assert!(end > base);
            expected_base = end;
        }
        assert_eq!(expected_base, mix.footprint_bytes());
    }

    #[test]
    fn accesses_stay_inside_the_mixed_footprint() {
        let mut mix = MixStream::new(&three_tenant_spec(), 64 << 20, 7).unwrap();
        let fp = mix.footprint_bytes();
        for _ in 0..5000 {
            assert!(mix.next_access().addr.0 < fp);
        }
    }

    #[test]
    fn wrr_schedule_interleaves_by_weight() {
        // 2:1:1 → round 0 serves 0,1,2; round 1 serves only tenant 0.
        let mut mix = MixStream::new(&three_tenant_spec(), 64 << 20, 7).unwrap();
        let partition_of = |mix: &MixStream, addr: u64| {
            (0..mix.tenant_count())
                .find(|&i| {
                    let (base, end) = mix.tenant_partition(i);
                    (base..end).contains(&addr)
                })
                .expect("address inside some partition")
        };
        let picks: Vec<usize> = (0..8)
            .map(|_| {
                let addr = mix.next_access().addr.0;
                partition_of(&mix, addr)
            })
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 0, 1, 2, 0]);
    }

    #[test]
    fn zipf_selection_favours_the_first_tenant() {
        let spec = MixSpec::zipf(0.95)
            .tenant(Workload::Redis.into(), 1)
            .tenant(Workload::Random.into(), 1)
            .tenant(Workload::Llm.into(), 1)
            .tenant(Workload::Mcf.into(), 1);
        let mut mix = MixStream::new(&spec, 64 << 20, 11).unwrap();
        let (base0, end0) = mix.tenant_partition(0);
        let hot = (0..4000)
            .filter(|_| {
                let addr = mix.next_access().addr.0;
                (base0..end0).contains(&addr)
            })
            .count();
        assert!(hot > 1600, "first tenant served only {hot}/4000 accesses");
    }

    #[test]
    fn same_seed_reproduces_the_identical_stream() {
        for spec in [
            three_tenant_spec(),
            MixSpec::zipf(0.8)
                .tenant(Workload::Redis.into(), 1)
                .tenant(Workload::Random.into(), 1),
        ] {
            let mut a = MixStream::new(&spec, 32 << 20, 99).unwrap();
            let mut b = MixStream::new(&spec, 32 << 20, 99).unwrap();
            let mut c = MixStream::new(&spec, 32 << 20, 100).unwrap();
            let mut c_diverged = false;
            for _ in 0..2000 {
                let ea = a.next_access();
                assert_eq!(ea, b.next_access());
                c_diverged |= ea != c.next_access();
            }
            assert!(c_diverged, "a different seed should change the stream");
        }
    }

    #[test]
    fn single_tenant_zipf_mix_is_serviceable() {
        // Regression companion to the Zipf `n == 1` eta fix: a one-tenant
        // Zipf mix must not produce NaN-driven selection.
        let spec = MixSpec::zipf(0.9).tenant(Workload::Random.into(), 1);
        let mut mix = MixStream::new(&spec, 16 << 20, 5).unwrap();
        let fp = mix.footprint_bytes();
        for _ in 0..500 {
            assert!(mix.next_access().addr.0 < fp);
        }
    }

    #[test]
    fn invalid_specs_are_rejected() {
        assert!(MixSpec::round_robin().validate().is_err());
        assert!(MixSpec::round_robin()
            .tenant(Workload::Redis.into(), 0)
            .validate()
            .is_err());
        assert!(MixSpec::zipf(1.0)
            .tenant(Workload::Redis.into(), 1)
            .validate()
            .is_err());
        let nested = MixSpec::round_robin().tenant(
            WorkloadSpec::Mix(MixSpec::round_robin().tenant(Workload::Redis.into(), 1)),
            1,
        );
        assert!(nested.validate().is_err());
    }
}
