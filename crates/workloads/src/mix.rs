//! Multi-tenant workload mixes.
//!
//! Cloud ORAM deployments do not serve one tenant at a time: the realistic
//! serving case is mixed traffic from many co-located services sharing one
//! protected memory. [`MixStream`] models that by composing N child
//! [`AccessStream`]s into a single stream:
//!
//! * **Address-space partitioning** — tenant `i`'s accesses are offset into
//!   its own contiguous slice of the mixed footprint (prefix sums of the
//!   child footprints), so tenants never alias each other's lines;
//! * **Tenant selection** — either *weighted round-robin* (a deterministic
//!   interleaved schedule where tenant `i` appears `weight_i` times per
//!   round) or *Zipf-weighted* (tenant popularity follows a Zipf
//!   distribution over the tenant list — first tenant hottest — the shape
//!   HPC workload-characterisation studies report for mixed cloud traffic);
//! * **Deterministic per-tenant seeding** — every child stream and the
//!   selection sampler get independent seeds expanded from the mix seed
//!   with SplitMix64, so the same seed reproduces the same mixed trace
//!   bit-for-bit regardless of tenant count.

use crate::spec::WorkloadSpec;
use crate::trace::{AccessStream, TaggedEntry, TraceEntry};
use crate::zipf::Zipf;
use palermo_oram::error::{OramError, OramResult};
use palermo_oram::rng::{OramRng, SplitMix64};
use palermo_oram::types::PhysAddr;

/// How the mix picks the tenant serving the next access.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TenantSelection {
    /// Deterministic interleaved weighted round-robin: per round, tenant
    /// `i` contributes `weight_i` accesses, interleaved rather than
    /// bursted.
    WeightedRoundRobin,
    /// Tenant popularity follows a Zipf distribution over the tenant list
    /// (first tenant hottest); per-tenant weights are ignored. `theta` is
    /// the skew in `[0, 1)` — 0 is uniform, 0.9 the usual hot-tenant case.
    Zipf {
        /// Skew of the tenant-popularity distribution.
        theta: f64,
    },
}

/// One tenant of a mix: a child workload spec and its round-robin weight.
///
/// A weight of 0 is **rejected** by [`MixSpec::validate`] rather than
/// silently starving the tenant: a zero-weight tenant would never appear in
/// the interleaved schedule, yet it would still be allocated an address-
/// space partition and a seed, reporting metrics rows that can never fill.
/// Remove the tenant from the mix instead of zeroing its weight.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// The child workload (Table II or trace replay; mixes cannot nest).
    pub workload: WorkloadSpec,
    /// Relative share under weighted round-robin (must be ≥ 1).
    pub weight: u32,
}

/// A declarative description of a multi-tenant mix.
#[derive(Debug, Clone, PartialEq)]
pub struct MixSpec {
    /// The tenants, in partition order (tenant 0 owns the lowest addresses
    /// and is the hottest under Zipf selection).
    pub tenants: Vec<TenantSpec>,
    /// The tenant-selection policy.
    pub selection: TenantSelection,
}

impl MixSpec {
    /// Starts an empty mix with the given selection policy.
    pub fn new(selection: TenantSelection) -> Self {
        MixSpec {
            tenants: Vec::new(),
            selection,
        }
    }

    /// Starts an empty weighted-round-robin mix.
    pub fn round_robin() -> Self {
        Self::new(TenantSelection::WeightedRoundRobin)
    }

    /// Starts an empty Zipf-weighted mix with skew `theta`.
    pub fn zipf(theta: f64) -> Self {
        Self::new(TenantSelection::Zipf { theta })
    }

    /// Appends a tenant.
    #[must_use]
    pub fn tenant(mut self, workload: WorkloadSpec, weight: u32) -> Self {
        self.tenants.push(TenantSpec { workload, weight });
        self
    }

    /// Validates the mix: at least one tenant, weights ≥ 1, a Zipf skew in
    /// `[0, 1)`, and children that are themselves valid and not mixes
    /// (nesting would break the flat partition map and the spec-name
    /// grammar).
    ///
    /// # Errors
    ///
    /// Names the offending tenant/parameter.
    pub fn validate(&self) -> OramResult<()> {
        if self.tenants.is_empty() {
            return Err(OramError::InvalidParams {
                reason: "a mix needs at least one tenant".into(),
            });
        }
        if let TenantSelection::Zipf { theta } = self.selection {
            if !(0.0..1.0).contains(&theta) {
                return Err(OramError::InvalidParams {
                    reason: format!("mix zipf skew {theta} must lie in [0, 1)"),
                });
            }
        }
        for (i, t) in self.tenants.iter().enumerate() {
            if t.weight == 0 {
                return Err(OramError::InvalidParams {
                    reason: format!("tenant {i} has weight 0 (must be ≥ 1)"),
                });
            }
            if matches!(
                t.workload,
                WorkloadSpec::Mix(_) | WorkloadSpec::PhasedMix(_) | WorkloadSpec::Sharded(_)
            ) {
                return Err(OramError::InvalidParams {
                    reason: format!(
                        "tenant {i} is itself a mix or sharded spec; mixes cannot \
nest and sharding wraps a mix, never the other way around"
                    ),
                });
            }
            if matches!(t.workload, WorkloadSpec::OpenLoop(_)) {
                return Err(OramError::InvalidParams {
                    reason: format!(
                        "tenant {i} is an open-loop spec; arrival processes wrap a \
mix, never the other way around"
                    ),
                });
            }
            t.workload.validate()?;
        }
        Ok(())
    }
}

/// One instantiated tenant: its stream and its slice of the address space.
struct Tenant {
    stream: Box<dyn AccessStream>,
    base: u64,
    footprint: u64,
}

/// Builds the tenant streams with deterministic per-tenant seeds and lays
/// them out side by side (prefix-sum partitioning). Shared by [`MixStream`]
/// and [`PhasedMixStream`] so both spec kinds partition and seed
/// identically.
fn build_tenants<'a>(
    children: impl Iterator<Item = &'a WorkloadSpec>,
    n: usize,
    footprint_hint: u64,
    sm: &mut SplitMix64,
) -> OramResult<(Vec<Tenant>, u64)> {
    let per_tenant_hint = (footprint_hint / n as u64).max(1);
    let mut tenants = Vec::with_capacity(n);
    let mut base = 0u64;
    for (i, child) in children.enumerate() {
        let stream = child.build(per_tenant_hint, sm.next_u64())?;
        let footprint = stream.footprint_bytes();
        tenants.push(Tenant {
            stream,
            base,
            footprint,
        });
        base = base
            .checked_add(footprint)
            .ok_or_else(|| OramError::InvalidParams {
                reason: format!(
                    "mix footprint overflows the address space at tenant {i} \
(combined footprint exceeds 2^64 bytes)"
                ),
            })?;
    }
    Ok((tenants, base))
}

/// Builds the interleaved weighted-round-robin order: round `r` serves every
/// tenant whose weight exceeds `r`, so a 2:1:1 mix plays 0,1,2,0 — not
/// 0,0,1,2. One full cycle of the order (the *interleave period*, of length
/// `sum(weights)`) serves tenant `i` exactly `weight_i` times, so the
/// long-run share is exact for any weights; only a run cut mid-period can
/// deviate, by at most one access per tenant.
fn wrr_order(weights: impl Iterator<Item = u32> + Clone) -> Vec<usize> {
    let max_weight = weights.clone().max().unwrap_or(1);
    let mut order = Vec::new();
    for round in 0..max_weight {
        for (i, w) in weights.clone().enumerate() {
            if w > round {
                order.push(i);
            }
        }
    }
    order
}

/// The tenant-selection engine.
enum Schedule {
    /// Interleaved weighted round-robin over a precomputed tenant order.
    Wrr { order: Vec<usize>, cursor: usize },
    /// Zipf-weighted random selection.
    Zipf { sampler: Zipf, rng: OramRng },
}

/// The composed multi-tenant access stream. Build one from a [`MixSpec`]
/// (usually via [`WorkloadSpec::build`]).
pub struct MixStream {
    tenants: Vec<Tenant>,
    schedule: Schedule,
    total_footprint: u64,
}

impl MixStream {
    /// Instantiates a mix: children are built with deterministic per-tenant
    /// seeds and an equal share of the footprint hint, then laid out
    /// side by side (prefix-sum partitioning).
    ///
    /// # Errors
    ///
    /// Propagates [`MixSpec::validate`] failures, child build errors (e.g.
    /// a missing trace file), and a combined footprint that overflows the
    /// address space.
    pub fn new(spec: &MixSpec, footprint_hint: u64, seed: u64) -> OramResult<Self> {
        spec.validate()?;
        let n = spec.tenants.len();
        // Independent seed expansion: the selection stream first, then one
        // seed per tenant, all derived from the mix seed alone.
        let mut sm = SplitMix64::new(seed);
        let selection_seed = sm.next_u64();
        let (tenants, total) = build_tenants(
            spec.tenants.iter().map(|t| &t.workload),
            n,
            footprint_hint,
            &mut sm,
        )?;
        let schedule = match spec.selection {
            TenantSelection::WeightedRoundRobin => Schedule::Wrr {
                order: wrr_order(spec.tenants.iter().map(|t| t.weight)),
                cursor: 0,
            },
            TenantSelection::Zipf { theta } => Schedule::Zipf {
                sampler: Zipf::new(n as u64, theta),
                rng: OramRng::new(selection_seed),
            },
        };
        Ok(MixStream {
            tenants,
            schedule,
            total_footprint: total,
        })
    }

    /// The `[base, base + footprint)` address slice owned by tenant `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn tenant_partition(&self, i: usize) -> (u64, u64) {
        let t = &self.tenants[i];
        (t.base, t.base + t.footprint)
    }
}

impl MixStream {
    /// Pulls the next access from tenant `idx`'s child stream and offsets
    /// it into the tenant's partition — the shared tail of both the
    /// schedule-driven and the arrival-driven entry points.
    fn pull_from(&mut self, idx: usize) -> TaggedEntry {
        let tenant = &mut self.tenants[idx];
        let entry = tenant.stream.next_access();
        debug_assert!(
            entry.addr.0 < tenant.footprint,
            "tenant {idx} violated its footprint bound"
        );
        TaggedEntry {
            entry: TraceEntry {
                addr: PhysAddr::new(tenant.base + entry.addr.0),
                op: entry.op,
            },
            tenant: idx as u32,
        }
    }
}

impl AccessStream for MixStream {
    fn next_access(&mut self) -> TraceEntry {
        self.next_tagged().entry
    }

    fn next_tagged(&mut self) -> TaggedEntry {
        let idx = match &mut self.schedule {
            Schedule::Wrr { order, cursor } => {
                let idx = order[*cursor];
                *cursor = (*cursor + 1) % order.len();
                idx
            }
            Schedule::Zipf { sampler, rng } => sampler.sample(rng) as usize,
        };
        self.pull_from(idx)
    }

    fn next_tagged_for(&mut self, tenant: u32) -> TaggedEntry {
        assert!(
            (tenant as usize) < self.tenants.len(),
            "tenant {tenant} out of range for a {}-tenant mix",
            self.tenants.len()
        );
        self.pull_from(tenant as usize)
    }

    fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    fn footprint_bytes(&self) -> u64 {
        self.total_footprint
    }

    fn tenant_partition(&self, i: usize) -> Option<(u64, u64)> {
        self.tenants.get(i).map(|t| (t.base, t.footprint))
    }
}

/// A tenant activity window, in mix access indices: the tenant serves
/// accesses while the mix's access counter lies in `[start, end)`.
///
/// Windows are expressed over the *access budget* of the run (the mix
/// counts every access it emits), which is the natural unit for arrival/
/// departure scenarios: "tenant 3 joins a quarter of the way in" is
/// `[budget/4, MAX)` regardless of how wall-clock time stretches under
/// contention. `end == u64::MAX` means the tenant never departs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseWindow {
    /// First access index at which the tenant is active.
    pub start: u64,
    /// First access index at which the tenant is gone again (exclusive).
    pub end: u64,
}

impl PhaseWindow {
    /// The always-active window `[0, MAX)`.
    pub const ALWAYS: PhaseWindow = PhaseWindow {
        start: 0,
        end: u64::MAX,
    };

    /// A bounded window `[start, end)`.
    pub fn new(start: u64, end: u64) -> Self {
        PhaseWindow { start, end }
    }

    /// An arrival-only window `[start, MAX)`.
    pub fn from_start(start: u64) -> Self {
        PhaseWindow {
            start,
            end: u64::MAX,
        }
    }

    /// A departure-only window `[0, end)`.
    pub fn until(end: u64) -> Self {
        PhaseWindow { start: 0, end }
    }

    /// Whether access index `t` falls inside the window.
    pub fn contains(&self, t: u64) -> bool {
        self.start <= t && t < self.end
    }

    /// Whether this is the full `[0, MAX)` window.
    pub fn is_always(&self) -> bool {
        *self == Self::ALWAYS
    }
}

/// One tenant of a phased mix: a child workload, its round-robin weight and
/// its activity window.
#[derive(Debug, Clone, PartialEq)]
pub struct PhasedTenantSpec {
    /// The child workload (Table II or trace replay; mixes cannot nest).
    pub workload: WorkloadSpec,
    /// Relative share under weighted round-robin while active (must be ≥ 1).
    pub weight: u32,
    /// The `[start, end)` activity window in access indices.
    pub window: PhaseWindow,
}

/// A declarative multi-tenant mix with tenant arrival and departure.
///
/// Selection is interleaved weighted round-robin over the tenants *active*
/// at the current access index (the schedule position of inactive tenants
/// is skipped at zero cost, so active tenants keep their relative weights).
/// Address-space partitioning and per-tenant seeding are identical to
/// [`MixSpec`]: every tenant owns its slice for the whole run, so arrivals
/// and departures never remap anyone's addresses.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhasedMixSpec {
    /// The tenants, in partition order.
    pub tenants: Vec<PhasedTenantSpec>,
}

impl PhasedMixSpec {
    /// Starts an empty phased mix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a tenant with an activity window.
    #[must_use]
    pub fn tenant(mut self, workload: WorkloadSpec, weight: u32, window: PhaseWindow) -> Self {
        self.tenants.push(PhasedTenantSpec {
            workload,
            weight,
            window,
        });
        self
    }

    /// Validates the phased mix: at least one tenant, weights ≥ 1,
    /// non-empty windows, children that are valid non-mix specs, and
    /// activity windows whose union covers every access index — a gap would
    /// leave the stream with no tenant to serve and wedge the simulator.
    ///
    /// # Errors
    ///
    /// Names the offending tenant/parameter.
    pub fn validate(&self) -> OramResult<()> {
        if self.tenants.is_empty() {
            return Err(OramError::InvalidParams {
                reason: "a phased mix needs at least one tenant".into(),
            });
        }
        for (i, t) in self.tenants.iter().enumerate() {
            if t.weight == 0 {
                return Err(OramError::InvalidParams {
                    reason: format!("phased tenant {i} has weight 0 (must be ≥ 1)"),
                });
            }
            if t.window.start >= t.window.end {
                return Err(OramError::InvalidParams {
                    reason: format!(
                        "phased tenant {i} has an empty activity window [{}, {})",
                        t.window.start, t.window.end
                    ),
                });
            }
            if matches!(
                t.workload,
                WorkloadSpec::Mix(_)
                    | WorkloadSpec::PhasedMix(_)
                    | WorkloadSpec::OpenLoop(_)
                    | WorkloadSpec::Sharded(_)
            ) {
                return Err(OramError::InvalidParams {
                    reason: format!(
                        "phased tenant {i} is itself a mix, sharded, or open-loop \
spec; mixes cannot nest"
                    ),
                });
            }
            t.workload.validate()?;
        }
        // Coverage: merge the windows and require [0, MAX) without gaps.
        let mut windows: Vec<PhaseWindow> = self.tenants.iter().map(|t| t.window).collect();
        windows.sort_by_key(|w| w.start);
        let mut covered = 0u64;
        for w in &windows {
            if w.start > covered {
                return Err(OramError::InvalidParams {
                    reason: format!(
                        "phased mix leaves no tenant active for access indices \
[{covered}, {}): every access index needs at least one active tenant",
                        w.start
                    ),
                });
            }
            covered = covered.max(w.end);
        }
        if covered != u64::MAX {
            return Err(OramError::InvalidParams {
                reason: format!(
                    "phased mix leaves no tenant active from access index {covered} on: \
at least one tenant must have an open-ended window"
                ),
            });
        }
        Ok(())
    }
}

/// The composed phased multi-tenant stream. Build one from a
/// [`PhasedMixSpec`] (usually via [`WorkloadSpec::build`]).
pub struct PhasedMixStream {
    tenants: Vec<Tenant>,
    windows: Vec<PhaseWindow>,
    order: Vec<usize>,
    cursor: usize,
    /// Accesses emitted so far — the clock the activity windows are read
    /// against.
    clock: u64,
    total_footprint: u64,
}

impl PhasedMixStream {
    /// Instantiates a phased mix. Seeding and partitioning mirror
    /// [`MixStream::new`] exactly (one SplitMix64 expansion, selection slot
    /// first, then one seed per tenant), so a phased mix whose windows are
    /// all `[0, MAX)` emits the same per-tenant streams as the equivalent
    /// round-robin [`MixSpec`].
    ///
    /// # Errors
    ///
    /// Propagates [`PhasedMixSpec::validate`] failures, child build errors
    /// and footprint overflow.
    pub fn new(spec: &PhasedMixSpec, footprint_hint: u64, seed: u64) -> OramResult<Self> {
        spec.validate()?;
        let mut sm = SplitMix64::new(seed);
        let _selection_seed = sm.next_u64(); // reserved, as in MixStream
        let (tenants, total) = build_tenants(
            spec.tenants.iter().map(|t| &t.workload),
            spec.tenants.len(),
            footprint_hint,
            &mut sm,
        )?;
        Ok(PhasedMixStream {
            tenants,
            windows: spec.tenants.iter().map(|t| t.window).collect(),
            order: wrr_order(spec.tenants.iter().map(|t| t.weight)),
            cursor: 0,
            clock: 0,
            total_footprint: total,
        })
    }

    /// The `[base, base + footprint)` address slice owned by tenant `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn tenant_partition(&self, i: usize) -> (u64, u64) {
        let t = &self.tenants[i];
        (t.base, t.base + t.footprint)
    }

    /// Accesses emitted so far (the window clock).
    pub fn clock(&self) -> u64 {
        self.clock
    }
}

impl AccessStream for PhasedMixStream {
    fn next_access(&mut self) -> TraceEntry {
        self.next_tagged().entry
    }

    fn next_tagged(&mut self) -> TaggedEntry {
        // Walk the interleaved WRR order, skipping tenants outside their
        // activity window. Validation guarantees at least one tenant is
        // active at every access index and every tenant appears in the
        // order, so a full lap always finds a server.
        let mut picked = None;
        for _ in 0..self.order.len() {
            let cand = self.order[self.cursor];
            self.cursor = (self.cursor + 1) % self.order.len();
            if self.windows[cand].contains(self.clock) {
                picked = Some(cand);
                break;
            }
        }
        let idx = picked.expect("validated phase windows cover every access index");
        self.clock += 1;
        let tenant = &mut self.tenants[idx];
        let entry = tenant.stream.next_access();
        debug_assert!(
            entry.addr.0 < tenant.footprint,
            "phased tenant {idx} violated its footprint bound"
        );
        TaggedEntry {
            entry: TraceEntry {
                addr: PhysAddr::new(tenant.base + entry.addr.0),
                op: entry.op,
            },
            tenant: idx as u32,
        }
    }

    fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    fn footprint_bytes(&self) -> u64 {
        self.total_footprint
    }

    fn tenant_partition(&self, i: usize) -> Option<(u64, u64)> {
        self.tenants.get(i).map(|t| (t.base, t.footprint))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;

    fn three_tenant_spec() -> MixSpec {
        MixSpec::round_robin()
            .tenant(Workload::Redis.into(), 2)
            .tenant(Workload::Llm.into(), 1)
            .tenant(Workload::Streaming.into(), 1)
    }

    #[test]
    fn partitions_are_disjoint_and_cover_the_footprint() {
        let mix = MixStream::new(&three_tenant_spec(), 64 << 20, 7).unwrap();
        assert_eq!(mix.tenant_count(), 3);
        let mut expected_base = 0;
        for i in 0..3 {
            let (base, end) = mix.tenant_partition(i);
            assert_eq!(base, expected_base, "tenant {i} base");
            assert!(end > base);
            expected_base = end;
        }
        assert_eq!(expected_base, mix.footprint_bytes());
    }

    #[test]
    fn accesses_stay_inside_the_mixed_footprint() {
        let mut mix = MixStream::new(&three_tenant_spec(), 64 << 20, 7).unwrap();
        let fp = mix.footprint_bytes();
        for _ in 0..5000 {
            assert!(mix.next_access().addr.0 < fp);
        }
    }

    #[test]
    fn wrr_schedule_interleaves_by_weight() {
        // 2:1:1 → round 0 serves 0,1,2; round 1 serves only tenant 0.
        let mut mix = MixStream::new(&three_tenant_spec(), 64 << 20, 7).unwrap();
        let partition_of = |mix: &MixStream, addr: u64| {
            (0..mix.tenant_count())
                .find(|&i| {
                    let (base, end) = mix.tenant_partition(i);
                    (base..end).contains(&addr)
                })
                .expect("address inside some partition")
        };
        let picks: Vec<usize> = (0..8)
            .map(|_| {
                let addr = mix.next_access().addr.0;
                partition_of(&mix, addr)
            })
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 0, 1, 2, 0]);
    }

    #[test]
    fn zipf_selection_favours_the_first_tenant() {
        let spec = MixSpec::zipf(0.95)
            .tenant(Workload::Redis.into(), 1)
            .tenant(Workload::Random.into(), 1)
            .tenant(Workload::Llm.into(), 1)
            .tenant(Workload::Mcf.into(), 1);
        let mut mix = MixStream::new(&spec, 64 << 20, 11).unwrap();
        let (base0, end0) = mix.tenant_partition(0);
        let hot = (0..4000)
            .filter(|_| {
                let addr = mix.next_access().addr.0;
                (base0..end0).contains(&addr)
            })
            .count();
        assert!(hot > 1600, "first tenant served only {hot}/4000 accesses");
    }

    #[test]
    fn same_seed_reproduces_the_identical_stream() {
        for spec in [
            three_tenant_spec(),
            MixSpec::zipf(0.8)
                .tenant(Workload::Redis.into(), 1)
                .tenant(Workload::Random.into(), 1),
        ] {
            let mut a = MixStream::new(&spec, 32 << 20, 99).unwrap();
            let mut b = MixStream::new(&spec, 32 << 20, 99).unwrap();
            let mut c = MixStream::new(&spec, 32 << 20, 100).unwrap();
            let mut c_diverged = false;
            for _ in 0..2000 {
                let ea = a.next_access();
                assert_eq!(ea, b.next_access());
                c_diverged |= ea != c.next_access();
            }
            assert!(c_diverged, "a different seed should change the stream");
        }
    }

    #[test]
    fn single_tenant_zipf_mix_is_serviceable() {
        // Regression companion to the Zipf `n == 1` eta fix: a one-tenant
        // Zipf mix must not produce NaN-driven selection.
        let spec = MixSpec::zipf(0.9).tenant(Workload::Random.into(), 1);
        let mut mix = MixStream::new(&spec, 16 << 20, 5).unwrap();
        let fp = mix.footprint_bytes();
        for _ in 0..500 {
            assert!(mix.next_access().addr.0 < fp);
        }
    }

    #[test]
    fn tagged_accesses_name_the_partition_owner() {
        let mut mix = MixStream::new(&three_tenant_spec(), 64 << 20, 7).unwrap();
        assert_eq!(mix.tenant_count(), 3);
        for _ in 0..2000 {
            let tagged = mix.next_tagged();
            let (base, end) = mix.tenant_partition(tagged.tenant as usize);
            assert!(
                (base..end).contains(&tagged.entry.addr.0),
                "tenant tag {} does not own address {:#x}",
                tagged.tenant,
                tagged.entry.addr.0
            );
        }
    }

    #[test]
    fn next_access_and_next_tagged_share_one_sequence() {
        let spec = three_tenant_spec();
        let mut a = MixStream::new(&spec, 32 << 20, 42).unwrap();
        let mut b = MixStream::new(&spec, 32 << 20, 42).unwrap();
        for i in 0..1000 {
            // Alternate entry points on `a`; `b` uses only the tagged one.
            let ea = if i % 2 == 0 {
                a.next_access()
            } else {
                a.next_tagged().entry
            };
            assert_eq!(ea, b.next_tagged().entry, "diverged at access {i}");
        }
    }

    /// WRR audit (starvation): a zero-weight tenant would never be scheduled
    /// while still owning an address partition and a metrics row; the spec
    /// layer rejects it outright instead of starving it silently.
    #[test]
    fn zero_weight_tenant_is_rejected_not_starved() {
        let spec = MixSpec::round_robin()
            .tenant(Workload::Redis.into(), 1)
            .tenant(Workload::Llm.into(), 0);
        let err = spec.validate().unwrap_err();
        assert!(err.to_string().contains("weight 0"), "{err}");
        assert!(MixStream::new(&spec, 16 << 20, 1).is_err());
    }

    /// WRR audit (bias): weights that do not divide each other still get an
    /// exact share per interleave period — over any whole number of periods
    /// tenant `i` is served exactly `weight_i / sum(weights)` of the time.
    #[test]
    fn wrr_share_is_exact_per_period_for_non_dividing_weights() {
        for weights in [vec![3, 2], vec![5, 3, 1], vec![1, 4, 2, 7]] {
            let mut spec = MixSpec::round_robin();
            for &w in &weights {
                spec = spec.tenant(Workload::Random.into(), w);
            }
            let mut mix = MixStream::new(&spec, 64 << 20, 13).unwrap();
            let period: u32 = weights.iter().sum();
            let mut counts = vec![0u32; weights.len()];
            for _ in 0..period * 6 {
                counts[mix.next_tagged().tenant as usize] += 1;
            }
            let expected: Vec<u32> = weights.iter().map(|w| w * 6).collect();
            assert_eq!(counts, expected, "weights {weights:?} drifted");
        }
    }

    #[test]
    fn phased_mix_respects_activity_windows() {
        let spec = PhasedMixSpec::new()
            .tenant(Workload::Redis.into(), 2, PhaseWindow::ALWAYS)
            .tenant(Workload::Llm.into(), 1, PhaseWindow::from_start(100))
            .tenant(Workload::Streaming.into(), 1, PhaseWindow::until(200));
        let mut mix = PhasedMixStream::new(&spec, 64 << 20, 7).unwrap();
        assert_eq!(mix.tenant_count(), 3);
        let windows = [
            PhaseWindow::ALWAYS,
            PhaseWindow::from_start(100),
            PhaseWindow::until(200),
        ];
        let mut seen = [0u64; 3];
        for t in 0..1000u64 {
            assert_eq!(mix.clock(), t);
            let tagged = mix.next_tagged();
            let idx = tagged.tenant as usize;
            assert!(
                windows[idx].contains(t),
                "tenant {idx} served access {t} outside its window"
            );
            let (base, end) = mix.tenant_partition(idx);
            assert!((base..end).contains(&tagged.entry.addr.0));
            seen[idx] += 1;
        }
        assert!(seen[0] > 0 && seen[1] > 0 && seen[2] > 0);
    }

    #[test]
    fn phased_mix_with_full_windows_matches_the_flat_mix() {
        // Same children, same weights, all windows [0, MAX): the phased
        // stream must reproduce the flat WRR mix access for access.
        let flat = three_tenant_spec();
        let phased = PhasedMixSpec::new()
            .tenant(Workload::Redis.into(), 2, PhaseWindow::ALWAYS)
            .tenant(Workload::Llm.into(), 1, PhaseWindow::ALWAYS)
            .tenant(Workload::Streaming.into(), 1, PhaseWindow::ALWAYS);
        let mut a = MixStream::new(&flat, 48 << 20, 23).unwrap();
        let mut b = PhasedMixStream::new(&phased, 48 << 20, 23).unwrap();
        assert_eq!(a.footprint_bytes(), b.footprint_bytes());
        for _ in 0..2000 {
            assert_eq!(a.next_tagged(), b.next_tagged());
        }
    }

    #[test]
    fn phased_mix_rejects_gaps_and_degenerate_windows() {
        // No always-on coverage at the tail.
        let tail_gap =
            PhasedMixSpec::new().tenant(Workload::Redis.into(), 1, PhaseWindow::until(100));
        assert!(tail_gap.validate().is_err());
        // Gap in the middle: [0,100) + [200,MAX).
        let mid_gap = PhasedMixSpec::new()
            .tenant(Workload::Redis.into(), 1, PhaseWindow::until(100))
            .tenant(Workload::Llm.into(), 1, PhaseWindow::from_start(200));
        let err = mid_gap.validate().unwrap_err();
        assert!(err.to_string().contains("[100, 200)"), "{err}");
        // Empty window.
        let empty = PhasedMixSpec::new()
            .tenant(Workload::Redis.into(), 1, PhaseWindow::ALWAYS)
            .tenant(Workload::Llm.into(), 1, PhaseWindow::new(50, 50));
        assert!(empty.validate().is_err());
        // Zero weight, empty mix, nesting.
        assert!(PhasedMixSpec::new().validate().is_err());
        let zero_w = PhasedMixSpec::new().tenant(Workload::Redis.into(), 0, PhaseWindow::ALWAYS);
        assert!(zero_w.validate().is_err());
        let nested = PhasedMixSpec::new().tenant(
            WorkloadSpec::Mix(MixSpec::round_robin().tenant(Workload::Redis.into(), 1)),
            1,
            PhaseWindow::ALWAYS,
        );
        assert!(nested.validate().is_err());
    }

    #[test]
    fn departed_tenants_free_their_schedule_share() {
        // Tenant 1 departs at access 10; afterwards tenant 0 serves
        // everything even though the WRR order still names tenant 1.
        let spec = PhasedMixSpec::new()
            .tenant(Workload::Random.into(), 1, PhaseWindow::ALWAYS)
            .tenant(Workload::Redis.into(), 3, PhaseWindow::until(10));
        let mut mix = PhasedMixStream::new(&spec, 16 << 20, 3).unwrap();
        for _ in 0..10 {
            mix.next_tagged();
        }
        for t in 10..200 {
            let tagged = mix.next_tagged();
            assert_eq!(
                tagged.tenant, 0,
                "tenant 1 served access {t} after departing"
            );
        }
    }

    #[test]
    fn invalid_specs_are_rejected() {
        assert!(MixSpec::round_robin().validate().is_err());
        assert!(MixSpec::round_robin()
            .tenant(Workload::Redis.into(), 0)
            .validate()
            .is_err());
        assert!(MixSpec::zipf(1.0)
            .tenant(Workload::Redis.into(), 1)
            .validate()
            .is_err());
        let nested = MixSpec::round_robin().tenant(
            WorkloadSpec::Mix(MixSpec::round_robin().tenant(Workload::Redis.into(), 1)),
            1,
        );
        assert!(nested.validate().is_err());
    }
}
