//! [`WorkloadSpec`]: the open workload surface of the simulator.
//!
//! The Table II [`Workload`] enum is a closed set of ten generators — the
//! paper's evaluation grid. `WorkloadSpec` breaks that monopoly: a spec is
//! *any* buildable access stream, currently one of
//!
//! * [`WorkloadSpec::Table2`] — the unchanged fast path through the ten
//!   paper workloads;
//! * [`WorkloadSpec::TraceReplay`] — a looping replay of a recorded trace
//!   file (see [`crate::format`] for the on-disk encodings);
//! * [`WorkloadSpec::Mix`] — a multi-tenant interleaver composing N child
//!   streams with per-tenant address-space partitioning (see
//!   [`crate::mix`]);
//! * [`WorkloadSpec::PhasedMix`] — a mix whose tenants arrive and depart
//!   over the run via `[start, end)` activity windows in access indices;
//! * [`WorkloadSpec::Sharded`] — a closed-loop inner workload whose
//!   address space is partitioned across K independent ORAM shards by a
//!   pluggable router (see [`crate::shard`]);
//! * [`WorkloadSpec::OpenLoop`] — any of the above wrapped with open-loop
//!   arrival processes placing request arrivals on the simulated clock
//!   (see [`crate::arrival`]).
//!
//! Every spec has a canonical *name* — a short string that round-trips
//! through [`WorkloadSpec::from_name`] — so experiment results that embed a
//! spec survive CSV/JSON export and re-import, exactly as the bare
//! [`Workload`] short names always have:
//!
//! ```text
//! mcf                                Table II workload
//! replay:/tmp/capture.trace          trace replay from a file
//! mix:rr:redis*2+llm+stream          weighted-round-robin 3-tenant mix
//! mix:zipf0.9:redis+redis+llm        Zipf-weighted tenant selection
//! mix:phase:redis*2+llm@500..+kv@0..2000   phased mix: llm arrives at
//!                                    access 500, kv departs at access 2000
//! open:poisson:0.8:mcf               open-loop Poisson arrivals (req/kcycle)
//! open:poisson:0.5+bursty:2:5e4:15e4 is NOT valid — durations are plain
//!                                    integers: open:bursty:2:50000:150000:llm
//! shard:4:hash:mcf                   4 shards, Feistel-hash routed
//! shard:2:tenant:mix:rr:redis+llm    tenant-affine: tenant t on shard t%2
//! open:poisson:0.8:shard:4:range:mcf open-loop arrivals over a sharded run
//! ```
//!
//! A phased tenant is `child[*weight][@start..end]`: the window suffix is
//! omitted for always-active tenants, `end` is omitted for tenants that
//! never depart.
//!
//! Names never contain commas, so they embed directly into the CSV export
//! (paths containing reserved characters — `,`, `+`, `*`, `@` or control
//! characters — are rejected at validation time rather than silently
//! producing a name that cannot round-trip).

use crate::arrival::OpenLoopSpec;
use crate::mix::{MixSpec, PhaseWindow, PhasedMixSpec, TenantSelection};
use crate::replay::TraceReplay;
use crate::shard::{ShardRouterKind, ShardSpec};
use crate::trace::AccessStream;
use crate::workload::Workload;
use palermo_oram::error::{OramError, OramResult};

/// A file-backed trace replay description (the path the trace is loaded
/// from at build time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplaySpec {
    /// Path of the trace file (text or binary, auto-detected on load).
    pub path: String,
}

impl ReplaySpec {
    /// Creates a replay spec for the given trace file path.
    pub fn new(path: impl Into<String>) -> Self {
        ReplaySpec { path: path.into() }
    }

    /// Checks that the path can round-trip through the spec-name grammar.
    ///
    /// # Errors
    ///
    /// Rejects empty paths and paths containing the grammar's reserved
    /// characters (`,`, `+`, `*`, `@` — the last reserved by the phased-mix
    /// window suffix) or control characters.
    pub fn validate(&self) -> OramResult<()> {
        if self.path.is_empty() {
            return Err(OramError::InvalidParams {
                reason: "replay spec needs a non-empty trace path".into(),
            });
        }
        if self
            .path
            .chars()
            .any(|c| matches!(c, ',' | '+' | '*' | '@') || c.is_control())
        {
            return Err(OramError::InvalidParams {
                reason: format!(
                    "trace path {:?} contains characters reserved by the spec-name \
grammar (',', '+', '*', '@', control)",
                    self.path
                ),
            });
        }
        Ok(())
    }
}

/// A buildable description of the access stream driving one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// One of the ten Table II workloads (the unchanged fast path).
    Table2(Workload),
    /// A looping replay of a recorded trace file.
    TraceReplay(ReplaySpec),
    /// A multi-tenant mix of child streams.
    Mix(MixSpec),
    /// A multi-tenant mix with tenant arrival/departure windows.
    PhasedMix(PhasedMixSpec),
    /// A closed-loop inner workload partitioned across K ORAM shards.
    Sharded(ShardSpec),
    /// An inner workload wrapped with open-loop arrival processes.
    OpenLoop(OpenLoopSpec),
}

impl WorkloadSpec {
    /// Shorthand for a trace replay spec.
    pub fn replay(path: impl Into<String>) -> Self {
        WorkloadSpec::TraceReplay(ReplaySpec::new(path))
    }

    /// The canonical name of this spec; round-trips through
    /// [`WorkloadSpec::from_name`] for every valid spec.
    pub fn name(&self) -> String {
        match self {
            WorkloadSpec::Table2(w) => w.name().to_string(),
            WorkloadSpec::TraceReplay(r) => format!("replay:{}", r.path),
            WorkloadSpec::Mix(m) => {
                let sel = match m.selection {
                    TenantSelection::WeightedRoundRobin => "rr".to_string(),
                    TenantSelection::Zipf { theta } => format!("zipf{theta}"),
                };
                let tenants: Vec<String> = m
                    .tenants
                    .iter()
                    .map(|t| render_tenant(&t.workload, t.weight, None))
                    .collect();
                format!("mix:{sel}:{}", tenants.join("+"))
            }
            WorkloadSpec::PhasedMix(m) => {
                let tenants: Vec<String> = m
                    .tenants
                    .iter()
                    .map(|t| render_tenant(&t.workload, t.weight, Some(t.window)))
                    .collect();
                format!("mix:phase:{}", tenants.join("+"))
            }
            WorkloadSpec::Sharded(s) => s.name(),
            WorkloadSpec::OpenLoop(o) => {
                format!("open:{}:{}", o.arrivals_name(), o.inner.name())
            }
        }
    }

    /// Parses a canonical spec name back into a spec. Returns `None` for
    /// anything [`WorkloadSpec::name`] cannot have produced.
    pub fn from_name(name: &str) -> Option<WorkloadSpec> {
        if let Some(w) = Workload::from_name(name) {
            return Some(WorkloadSpec::Table2(w));
        }
        if let Some(path) = name.strip_prefix("replay:") {
            let spec = ReplaySpec::new(path);
            spec.validate().ok()?;
            return Some(WorkloadSpec::TraceReplay(spec));
        }
        if let Some(rest) = name.strip_prefix("mix:") {
            let (sel, tenants) = rest.split_once(':')?;
            if sel == "phase" {
                let mut mix = PhasedMixSpec::new();
                for tenant in tenants.split('+') {
                    let (child, weight, window) = parse_tenant(tenant)?;
                    mix = mix.tenant(WorkloadSpec::from_name(child)?, weight, window);
                }
                mix.validate().ok()?;
                return Some(WorkloadSpec::PhasedMix(mix));
            }
            let selection = if sel == "rr" {
                TenantSelection::WeightedRoundRobin
            } else {
                let theta: f64 = sel.strip_prefix("zipf")?.parse().ok()?;
                TenantSelection::Zipf { theta }
            };
            let mut mix = MixSpec::new(selection);
            for tenant in tenants.split('+') {
                let (child, weight, window) = parse_tenant(tenant)?;
                // Window suffixes only belong to phased mixes.
                if !window.is_always() || tenant.contains('@') {
                    return None;
                }
                mix = mix.tenant(WorkloadSpec::from_name(child)?, weight);
            }
            mix.validate().ok()?;
            return Some(WorkloadSpec::Mix(mix));
        }
        if let Some(rest) = name.strip_prefix("shard:") {
            let (k_str, rest) = rest.split_once(':')?;
            let shards: u32 = k_str.parse().ok()?;
            // Canonical names render K in plain decimal; reject leading
            // zeros (and `+K`) so parsing stays a strict inverse of `name`.
            if k_str != shards.to_string() {
                return None;
            }
            let (router, inner) = rest.split_once(':')?;
            let router = ShardRouterKind::from_name(router)?;
            let spec = ShardSpec::new(shards, router, WorkloadSpec::from_name(inner)?);
            spec.validate().ok()?;
            return Some(WorkloadSpec::Sharded(spec));
        }
        if let Some(rest) = name.strip_prefix("open:") {
            return crate::arrival::parse_open(rest).map(WorkloadSpec::OpenLoop);
        }
        None
    }

    /// The Table II workload, if this is the fast path.
    pub fn as_table2(&self) -> Option<Workload> {
        match self {
            WorkloadSpec::Table2(w) => Some(*w),
            _ => None,
        }
    }

    /// The open-loop serving description, if this spec has one. The
    /// simulator uses this to decide between closed-loop (pull on slot
    /// free) and open-loop (admit on arrival) request formation.
    pub fn open_loop(&self) -> Option<&OpenLoopSpec> {
        match self {
            WorkloadSpec::OpenLoop(o) => Some(o),
            _ => None,
        }
    }

    /// The sharding description, if this spec has one — looking through an
    /// open-loop wrapper (`open:…:shard:…`), the one composition the
    /// grammar permits. The simulator uses this to dispatch the run to the
    /// sharded system shape.
    pub fn sharded(&self) -> Option<&ShardSpec> {
        match self {
            WorkloadSpec::Sharded(s) => Some(s),
            WorkloadSpec::OpenLoop(o) => match o.inner.as_ref() {
                WorkloadSpec::Sharded(s) => Some(s),
                _ => None,
            },
            _ => None,
        }
    }

    /// Number of tenants a stream built from this spec multiplexes
    /// (single-tenant specs — Table II workloads and trace replays — are 1).
    /// Matches [`crate::trace::AccessStream::tenant_count`] of the built
    /// stream, but needs no build (and thus no file access).
    pub fn tenant_count(&self) -> usize {
        match self {
            WorkloadSpec::Table2(_) | WorkloadSpec::TraceReplay(_) => 1,
            WorkloadSpec::Mix(m) => m.tenants.len(),
            WorkloadSpec::PhasedMix(m) => m.tenants.len(),
            WorkloadSpec::Sharded(s) => s.inner.tenant_count(),
            WorkloadSpec::OpenLoop(o) => o.inner.tenant_count(),
        }
    }

    /// The canonical name of tenant `i`'s child workload — the spec's own
    /// name for single-tenant specs. `None` when `i` is out of range; used
    /// by the per-tenant metric exports to label tenant rows.
    pub fn tenant_workload_name(&self, i: usize) -> Option<String> {
        match self {
            WorkloadSpec::Table2(_) | WorkloadSpec::TraceReplay(_) => (i == 0).then(|| self.name()),
            WorkloadSpec::Mix(m) => m.tenants.get(i).map(|t| t.workload.name()),
            WorkloadSpec::PhasedMix(m) => m.tenants.get(i).map(|t| t.workload.name()),
            WorkloadSpec::Sharded(s) => s.inner.tenant_workload_name(i),
            WorkloadSpec::OpenLoop(o) => o.inner.tenant_workload_name(i),
        }
    }

    /// Validates the spec without building it (no file access: a replay
    /// spec's trace is only read at build time).
    ///
    /// # Errors
    ///
    /// Propagates the component validation failures.
    pub fn validate(&self) -> OramResult<()> {
        match self {
            WorkloadSpec::Table2(_) => Ok(()),
            WorkloadSpec::TraceReplay(r) => r.validate(),
            WorkloadSpec::Mix(m) => m.validate(),
            WorkloadSpec::PhasedMix(m) => m.validate(),
            WorkloadSpec::Sharded(s) => s.validate(),
            WorkloadSpec::OpenLoop(o) => o.validate(),
        }
    }

    /// The default prefetch length prefetch-capable schemes run this spec
    /// with. Table II workloads keep their paper-calibrated per-workload
    /// lengths; replayed traces and mixes default to 1 (no prefetch) —
    /// recorded traces carry no locality contract, and a mix interleaves
    /// tenants at access granularity, which breaks the cross-request
    /// sequentiality prefetching exploits.
    pub fn default_prefetch_length(&self) -> u32 {
        match self {
            WorkloadSpec::Table2(w) => w.default_prefetch_length(),
            WorkloadSpec::TraceReplay(_) | WorkloadSpec::Mix(_) | WorkloadSpec::PhasedMix(_) => 1,
            // Sharding remaps addresses but hash routing is the only
            // locality-destroying policy; keep the inner's calibration and
            // let callers override per run as they already can.
            WorkloadSpec::Sharded(s) => s.inner.default_prefetch_length(),
            // The arrival wrapper does not change access locality.
            WorkloadSpec::OpenLoop(o) => o.inner.default_prefetch_length(),
        }
    }

    /// Builds the access stream for this spec, scaled so that generator
    /// footprints stay within `footprint_hint` bytes (trace replays infer
    /// their footprint from the recording instead).
    ///
    /// # Errors
    ///
    /// Propagates validation failures and, for trace replays, file I/O and
    /// parse errors.
    pub fn build(&self, footprint_hint: u64, seed: u64) -> OramResult<Box<dyn AccessStream>> {
        match self {
            WorkloadSpec::Table2(w) => Ok(w.build(footprint_hint, seed)),
            WorkloadSpec::TraceReplay(r) => {
                r.validate()?;
                Ok(Box::new(TraceReplay::from_file(&r.path)?))
            }
            WorkloadSpec::Mix(m) => Ok(Box::new(crate::mix::MixStream::new(
                m,
                footprint_hint,
                seed,
            )?)),
            WorkloadSpec::PhasedMix(m) => Ok(Box::new(crate::mix::PhasedMixStream::new(
                m,
                footprint_hint,
                seed,
            )?)),
            // A sharded spec has no single-stream form: the simulator
            // builds one `ShardStream` per shard and drives each against
            // its own ORAM instance.
            WorkloadSpec::Sharded(_) => Err(OramError::InvalidParams {
                reason: "sharded specs build one stream per shard; run them through \
                         the simulator's sharded system, not a single stream"
                    .into(),
            }),
            // The arrival processes are the simulator's job (they live on
            // the simulated clock, not in the access stream); building an
            // open-loop spec yields the inner stream.
            WorkloadSpec::OpenLoop(o) => {
                o.validate()?;
                o.inner.build(footprint_hint, seed)
            }
        }
    }
}

/// Renders one mix-tenant token: `child[*weight][@start..end]`.
fn render_tenant(workload: &WorkloadSpec, weight: u32, window: Option<PhaseWindow>) -> String {
    let mut out = workload.name();
    if weight != 1 {
        out.push_str(&format!("*{weight}"));
    }
    if let Some(w) = window {
        if !w.is_always() {
            out.push_str(&format!("@{}..", w.start));
            if w.end != u64::MAX {
                out.push_str(&w.end.to_string());
            }
        }
    }
    out
}

/// Parses one mix-tenant token back into `(child name, weight, window)`.
/// Tokens without a `@` suffix get the always-active window; child names
/// can contain neither `@` nor `*` (`ReplaySpec::validate` rejects such
/// paths), so both suffixes split unambiguously.
fn parse_tenant(token: &str) -> Option<(&str, u32, PhaseWindow)> {
    let (rest, window) = match token.rsplit_once('@') {
        Some((rest, w)) => {
            let (start, end) = w.split_once("..")?;
            let start: u64 = start.parse().ok()?;
            let end: u64 = if end.is_empty() {
                u64::MAX
            } else {
                end.parse().ok()?
            };
            (rest, PhaseWindow::new(start, end))
        }
        None => (token, PhaseWindow::ALWAYS),
    };
    let (child, weight) = match rest.rsplit_once('*') {
        Some((child, w)) => (child, w.parse().ok()?),
        None => (rest, 1),
    };
    Some((child, weight, window))
}

impl From<Workload> for WorkloadSpec {
    fn from(w: Workload) -> Self {
        WorkloadSpec::Table2(w)
    }
}

impl std::fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix::MixSpec;

    #[test]
    fn table2_names_match_the_workload_registry() {
        for w in Workload::ALL {
            let spec = WorkloadSpec::from(w);
            assert_eq!(spec.name(), w.name());
            assert_eq!(WorkloadSpec::from_name(w.name()), Some(spec.clone()));
            assert_eq!(spec.as_table2(), Some(w));
            assert_eq!(spec.default_prefetch_length(), w.default_prefetch_length());
        }
    }

    #[test]
    fn replay_and_mix_names_round_trip() {
        use crate::mix::{PhaseWindow, PhasedMixSpec};
        let specs = [
            WorkloadSpec::replay("/tmp/capture.trace"),
            WorkloadSpec::Mix(
                MixSpec::round_robin()
                    .tenant(Workload::Redis.into(), 2)
                    .tenant(Workload::Llm.into(), 1)
                    .tenant(Workload::Streaming.into(), 5),
            ),
            WorkloadSpec::Mix(
                MixSpec::zipf(0.9)
                    .tenant(WorkloadSpec::replay("a.trace"), 1)
                    .tenant(Workload::Random.into(), 1),
            ),
            WorkloadSpec::PhasedMix(
                PhasedMixSpec::new()
                    .tenant(Workload::Redis.into(), 2, PhaseWindow::ALWAYS)
                    .tenant(Workload::Llm.into(), 1, PhaseWindow::from_start(500))
                    .tenant(
                        WorkloadSpec::replay("a.trace"),
                        3,
                        PhaseWindow::new(10, 2000),
                    ),
            ),
            WorkloadSpec::PhasedMix(PhasedMixSpec::new().tenant(
                Workload::Random.into(),
                1,
                PhaseWindow::ALWAYS,
            )),
        ];
        for spec in specs {
            let name = spec.name();
            assert!(!name.contains(','), "{name}");
            assert_eq!(WorkloadSpec::from_name(&name), Some(spec.clone()), "{name}");
            assert_eq!(format!("{spec}"), name);
        }
    }

    #[test]
    fn malformed_names_are_rejected() {
        for bad in [
            "nope",
            "replay:",
            "replay:a,b.trace",
            "mix:rr",
            "mix:rr:",
            "mix:rr:nope",
            "mix:zipfx:redis",
            "mix:zipf1.5:redis",
            "mix:rr:redis*zero",
            "mix:rr:redis*0",
            "mix:rr:mix:rr:redis",  // nested mixes are not a valid spec
            "mix:rr:redis@0..10",   // window suffixes belong to phased mixes
            "mix:phase:redis@0..0", // empty window
            "mix:phase:redis@5..",  // coverage gap at [0, 5)
            "mix:phase:redis@0..9", // nobody active from access 9 on
            "mix:phase:redis@zz..", // unparsable window
            "mix:phase:redis@1",    // window without the `..` separator
            "mix:phase:",
            "open:",
            "open:mcf",                          // no arrival process
            "open:poisson:mcf",                  // rate missing (mcf is not a rate)
            "open:poisson:0.8",                  // no inner spec
            "open:poisson:0:mcf",                // zero rate
            "open:poisson:-1:mcf",               // negative rate
            "open:poisson:inf:mcf",              // renderer never emits inf
            "open:bursty:2:50000:mcf",           // bursty takes three arguments
            "open:bursty:2:0:100:mcf",           // zero on-duration
            "open:diurnal:2:1:100:mcf",          // peak below base
            "open:poisson:1:open:poisson:1:mcf", // open-loop cannot nest
            "open:poisson:1+poisson:2:mcf",      // two processes, one tenant
            // two processes over a phased mix: windows conflict with
            // arrival-driven routing
            "open:poisson:1+poisson:2:mix:phase:redis+llm",
            // arity mismatch: three processes, two tenants
            "open:poisson:1+poisson:2+poisson:3:mix:rr:redis+llm",
            "shard:",
            "shard:2",
            "shard:2:hash",
            "shard:2:hash:",                   // no inner spec
            "shard:0:hash:mcf",                // zero shards
            "shard:65:hash:mcf",               // above MAX_SHARDS
            "shard:01:hash:mcf",               // non-canonical K rendering
            "shard:+2:hash:mcf",               // non-canonical K rendering
            "shard:2:nope:mcf",                // unknown router
            "shard:2:hash:nope",               // unknown inner
            "shard:2:tenant:mcf",              // tenant-affine over one tenant
            "shard:2:hash:shard:2:hash:mcf",   // sharding cannot nest
            "shard:2:hash:open:poisson:1:mcf", // open-loop goes outside
        ] {
            assert_eq!(WorkloadSpec::from_name(bad), None, "{bad}");
        }
    }

    #[test]
    fn sharded_names_round_trip() {
        use crate::shard::{ShardRouterKind, ShardSpec};
        let specs = [
            WorkloadSpec::Sharded(ShardSpec::new(
                4,
                ShardRouterKind::Hash,
                Workload::Mcf.into(),
            )),
            WorkloadSpec::Sharded(ShardSpec::new(
                1,
                ShardRouterKind::Range,
                WorkloadSpec::replay("a.trace"),
            )),
            WorkloadSpec::Sharded(ShardSpec::new(
                2,
                ShardRouterKind::TenantAffine,
                WorkloadSpec::Mix(
                    MixSpec::round_robin()
                        .tenant(Workload::Redis.into(), 2)
                        .tenant(Workload::Llm.into(), 1),
                ),
            )),
        ];
        for spec in specs {
            let name = spec.name();
            assert!(!name.contains(','), "{name}");
            assert_eq!(WorkloadSpec::from_name(&name), Some(spec.clone()), "{name}");
            assert_eq!(format!("{spec}"), name);
        }
        // The one permitted composition: open-loop over sharded.
        let open_over_shard = WorkloadSpec::from_name("open:poisson:0.5:shard:4:hash:mcf").unwrap();
        assert_eq!(open_over_shard.name(), "open:poisson:0.5:shard:4:hash:mcf");
        assert!(open_over_shard.sharded().is_some());
        assert_eq!(open_over_shard.sharded().unwrap().shards, 4);
    }

    #[test]
    fn sharded_specs_delegate_to_the_inner() {
        use crate::shard::{ShardRouterKind, ShardSpec};
        let spec = WorkloadSpec::Sharded(ShardSpec::new(
            2,
            ShardRouterKind::TenantAffine,
            WorkloadSpec::Mix(
                MixSpec::round_robin()
                    .tenant(Workload::Redis.into(), 2)
                    .tenant(Workload::Llm.into(), 1),
            ),
        ));
        assert_eq!(spec.name(), "shard:2:tenant:mix:rr:redis*2+llm");
        assert_eq!(spec.tenant_count(), 2);
        assert_eq!(spec.tenant_workload_name(0).as_deref(), Some("redis"));
        assert_eq!(spec.tenant_workload_name(2), None);
        assert_eq!(spec.as_table2(), None);
        assert!(spec.open_loop().is_none());
        assert!(spec.sharded().is_some());
        assert_eq!(spec.default_prefetch_length(), 1);
        let single = WorkloadSpec::Sharded(ShardSpec::new(
            4,
            ShardRouterKind::Hash,
            Workload::Mcf.into(),
        ));
        assert_eq!(
            single.default_prefetch_length(),
            Workload::Mcf.default_prefetch_length()
        );
        // No single-stream build: the simulator drives one stream per shard.
        assert!(single.build(1 << 20, 7).is_err());
        assert!(WorkloadSpec::Table2(Workload::Mcf).sharded().is_none());
    }

    #[test]
    fn open_loop_names_round_trip() {
        use crate::arrival::{ArrivalSpec, OpenLoopSpec};
        let specs = [
            WorkloadSpec::OpenLoop(OpenLoopSpec::new(
                ArrivalSpec::Poisson {
                    rate_per_kcycle: 0.8,
                },
                Workload::Mcf.into(),
            )),
            WorkloadSpec::OpenLoop(OpenLoopSpec::new(
                ArrivalSpec::Bursty {
                    rate_per_kcycle: 2.0,
                    mean_on_cycles: 50_000,
                    mean_off_cycles: 150_000,
                },
                WorkloadSpec::replay("a.trace"),
            )),
            WorkloadSpec::OpenLoop(OpenLoopSpec::new(
                ArrivalSpec::Diurnal {
                    base_per_kcycle: 0.25,
                    peak_per_kcycle: 1.5,
                    period_cycles: 4_000_000,
                },
                WorkloadSpec::Mix(
                    MixSpec::round_robin()
                        .tenant(Workload::Redis.into(), 2)
                        .tenant(Workload::Llm.into(), 1),
                ),
            )),
            WorkloadSpec::OpenLoop(OpenLoopSpec::per_tenant(
                vec![
                    ArrivalSpec::Poisson {
                        rate_per_kcycle: 0.5,
                    },
                    ArrivalSpec::Bursty {
                        rate_per_kcycle: 1.25,
                        mean_on_cycles: 10_000,
                        mean_off_cycles: 30_000,
                    },
                ],
                WorkloadSpec::Mix(
                    MixSpec::round_robin()
                        .tenant(Workload::Redis.into(), 1)
                        .tenant(Workload::Llm.into(), 1),
                ),
            )),
        ];
        for spec in specs {
            let name = spec.name();
            assert!(!name.contains(','), "{name}");
            assert_eq!(WorkloadSpec::from_name(&name), Some(spec.clone()), "{name}");
            assert_eq!(format!("{spec}"), name);
        }
    }

    #[test]
    fn open_loop_delegates_to_the_inner_spec() {
        use crate::arrival::{ArrivalSpec, OpenLoopSpec};
        let poisson = ArrivalSpec::Poisson {
            rate_per_kcycle: 0.5,
        };
        let spec = WorkloadSpec::OpenLoop(OpenLoopSpec::new(
            poisson,
            WorkloadSpec::Mix(
                MixSpec::round_robin()
                    .tenant(Workload::Redis.into(), 2)
                    .tenant(Workload::Llm.into(), 1),
            ),
        ));
        assert_eq!(spec.name(), "open:poisson:0.5:mix:rr:redis*2+llm");
        assert_eq!(spec.tenant_count(), 2);
        assert_eq!(spec.tenant_workload_name(0).as_deref(), Some("redis"));
        assert_eq!(spec.tenant_workload_name(2), None);
        assert_eq!(spec.as_table2(), None);
        assert_eq!(spec.default_prefetch_length(), 1);
        assert!(spec.open_loop().is_some());
        assert!(WorkloadSpec::Table2(Workload::Mcf).open_loop().is_none());
        // Building yields the inner stream (arrivals live in the simulator).
        let mut stream = spec.build(32 << 20, 7).unwrap();
        assert_eq!(stream.tenant_count(), 2);
        let fp = stream.footprint_bytes();
        for _ in 0..100 {
            assert!(stream.next_access().addr.0 < fp);
        }
        // Prefetch delegation keeps Table II defaults.
        let single = WorkloadSpec::OpenLoop(OpenLoopSpec::new(poisson, Workload::Mcf.into()));
        assert_eq!(
            single.default_prefetch_length(),
            Workload::Mcf.default_prefetch_length()
        );
    }

    #[test]
    fn mixes_reject_open_loop_children() {
        use crate::arrival::{ArrivalSpec, OpenLoopSpec};
        let open = WorkloadSpec::OpenLoop(OpenLoopSpec::new(
            ArrivalSpec::Poisson {
                rate_per_kcycle: 1.0,
            },
            Workload::Redis.into(),
        ));
        let mix = MixSpec::round_robin().tenant(open.clone(), 1);
        let err = mix.validate().unwrap_err();
        assert!(err.to_string().contains("open-loop"), "{err}");
        let phased = crate::mix::PhasedMixSpec::new().tenant(open, 1, PhaseWindow::ALWAYS);
        assert!(phased.validate().is_err());
    }

    #[test]
    fn phased_names_follow_the_documented_grammar() {
        use crate::mix::{PhaseWindow, PhasedMixSpec};
        let spec = WorkloadSpec::PhasedMix(
            PhasedMixSpec::new()
                .tenant(Workload::Redis.into(), 2, PhaseWindow::ALWAYS)
                .tenant(Workload::Llm.into(), 1, PhaseWindow::from_start(500))
                .tenant(Workload::Rm1.into(), 1, PhaseWindow::new(0, 2000)),
        );
        assert_eq!(spec.name(), "mix:phase:redis*2+llm@500..+rm1@0..2000");
        assert_eq!(WorkloadSpec::from_name(&spec.name()), Some(spec));
    }

    #[test]
    fn tenant_count_and_names_cover_every_spec_kind() {
        use crate::mix::{PhaseWindow, PhasedMixSpec};
        let single = WorkloadSpec::Table2(Workload::Mcf);
        assert_eq!(single.tenant_count(), 1);
        assert_eq!(single.tenant_workload_name(0).as_deref(), Some("mcf"));
        assert_eq!(single.tenant_workload_name(1), None);
        let replay = WorkloadSpec::replay("t.trace");
        assert_eq!(replay.tenant_count(), 1);
        assert_eq!(
            replay.tenant_workload_name(0).as_deref(),
            Some("replay:t.trace")
        );
        let mix = WorkloadSpec::Mix(
            MixSpec::round_robin()
                .tenant(Workload::Redis.into(), 2)
                .tenant(Workload::Llm.into(), 1),
        );
        assert_eq!(mix.tenant_count(), 2);
        assert_eq!(mix.tenant_workload_name(1).as_deref(), Some("llm"));
        assert_eq!(mix.tenant_workload_name(2), None);
        let phased = WorkloadSpec::PhasedMix(
            PhasedMixSpec::new()
                .tenant(Workload::Redis.into(), 1, PhaseWindow::ALWAYS)
                .tenant(Workload::Mcf.into(), 1, PhaseWindow::from_start(9)),
        );
        assert_eq!(phased.tenant_count(), 2);
        assert_eq!(phased.tenant_workload_name(1).as_deref(), Some("mcf"));
    }

    #[test]
    fn replay_paths_with_reserved_characters_fail_validation() {
        assert!(ReplaySpec::new("ok.trace").validate().is_ok());
        for bad in ["", "a,b", "a+b", "a*b", "a@b", "a\nb"] {
            assert!(ReplaySpec::new(bad).validate().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn replay_build_surfaces_file_errors() {
        let err = match WorkloadSpec::replay("/definitely/not/here.trace").build(1 << 20, 1) {
            Ok(_) => panic!("building a replay of a missing file must fail"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("not/here.trace"), "{err}");
    }
}
