//! A set-associative last-level cache model.
//!
//! The ORAM controller serves LLC *misses*; everything that hits in the LLC
//! never reaches the oblivious memory. The cache model is what makes the
//! prefetch-based schemes (PrORAM, LAORAM, Palermo+Prefetch) meaningful in
//! the simulator: lines they prefetch are inserted here, and subsequent
//! accesses to them are filtered out exactly as in the paper's evaluation.

use palermo_oram::types::PhysAddr;

/// LLC geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LlcConfig {
    /// Total capacity in bytes (Table III: 8 MB shared L3).
    pub capacity_bytes: u64,
    /// Associativity (Table III: 16 ways).
    pub ways: u32,
    /// Cache-line size in bytes.
    pub line_bytes: u32,
}

impl Default for LlcConfig {
    fn default() -> Self {
        LlcConfig {
            capacity_bytes: 8 << 20,
            ways: 16,
            line_bytes: 64,
        }
    }
}

impl LlcConfig {
    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> u64 {
        self.capacity_bytes / u64::from(self.ways) / u64::from(self.line_bytes)
    }

    /// Validates that the geometry is consistent: the capacity must divide
    /// exactly into `ways × line_bytes` rows and imply a power-of-two set
    /// count.
    pub fn validate(&self) -> Result<(), String> {
        if self.ways == 0 || self.line_bytes == 0 {
            return Err("ways and line size must be non-zero".into());
        }
        // A capacity that is not a multiple of ways x line size used to be
        // accepted silently: integer division rounded the set count down,
        // modelling a smaller cache than configured.
        let row_bytes = u64::from(self.ways) * u64::from(self.line_bytes);
        if !self.capacity_bytes.is_multiple_of(row_bytes) {
            return Err(format!(
                "capacity {} B is not a multiple of ways x line size ({row_bytes} B); \
the truncated geometry would silently model a smaller cache",
                self.capacity_bytes
            ));
        }
        let sets = self.sets();
        if sets == 0 || !sets.is_power_of_two() {
            return Err(format!("set count {sets} must be a non-zero power of two"));
        }
        Ok(())
    }
}

/// A set-associative LLC with true-LRU replacement.
#[derive(Debug, Clone)]
pub struct Llc {
    config: LlcConfig,
    /// Per set: lines ordered most-recently-used first.
    sets: Vec<Vec<u64>>,
    hits: u64,
    misses: u64,
}

impl Llc {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: LlcConfig) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid LLC configuration: {e}"));
        Llc {
            sets: vec![Vec::with_capacity(config.ways as usize); config.sets() as usize],
            hits: 0,
            misses: 0,
            config,
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> &LlcConfig {
        &self.config
    }

    fn line_of(&self, addr: PhysAddr) -> u64 {
        addr.0 / u64::from(self.config.line_bytes)
    }

    fn set_of(&self, line: u64) -> usize {
        (line % self.sets()) as usize
    }

    fn sets(&self) -> u64 {
        self.sets.len() as u64
    }

    /// Performs a demand access. Returns `true` on a hit. Misses allocate
    /// the line (the ORAM fill is modelled by the caller's miss handling).
    pub fn access(&mut self, addr: PhysAddr) -> bool {
        let line = self.line_of(addr);
        let set = self.set_of(line);
        let ways = self.config.ways as usize;
        let entries = &mut self.sets[set];
        if let Some(pos) = entries.iter().position(|&l| l == line) {
            let hit_line = entries.remove(pos);
            entries.insert(0, hit_line);
            self.hits += 1;
            true
        } else {
            entries.insert(0, line);
            entries.truncate(ways);
            self.misses += 1;
            false
        }
    }

    /// Inserts a line without counting a demand access (prefetch fill).
    pub fn fill_line(&mut self, line: u64) {
        let set = self.set_of(line);
        let ways = self.config.ways as usize;
        let entries = &mut self.sets[set];
        if let Some(pos) = entries.iter().position(|&l| l == line) {
            let l = entries.remove(pos);
            entries.insert(0, l);
        } else {
            entries.insert(0, line);
            entries.truncate(ways);
        }
    }

    /// Inserts a line given any byte address inside it.
    pub fn fill_addr(&mut self, addr: PhysAddr) {
        self.fill_line(self.line_of(addr));
    }

    /// Demand hits observed so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Demand misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Demand hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Llc {
        // 4 sets x 2 ways x 64 B = 512 B.
        Llc::new(LlcConfig {
            capacity_bytes: 512,
            ways: 2,
            line_bytes: 64,
        })
    }

    #[test]
    fn default_geometry_matches_table_iii() {
        let cfg = LlcConfig::default();
        assert_eq!(cfg.sets(), 8192);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn hit_after_miss() {
        let mut llc = tiny();
        assert!(!llc.access(PhysAddr::new(0)));
        assert!(llc.access(PhysAddr::new(0)));
        assert!(llc.access(PhysAddr::new(32)), "same line");
        assert_eq!(llc.misses(), 1);
        assert_eq!(llc.hits(), 2);
        assert!((llc.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_within_a_set() {
        let mut llc = tiny();
        // Lines 0, 4, 8 all map to set 0 (4 sets).
        assert!(!llc.access(PhysAddr::new(0)));
        assert!(!llc.access(PhysAddr::new(4 * 64)));
        assert!(!llc.access(PhysAddr::new(8 * 64))); // evicts line 0
        assert!(!llc.access(PhysAddr::new(0)), "line 0 was evicted");
        assert!(llc.access(PhysAddr::new(8 * 64)), "line 8 still resident");
    }

    #[test]
    fn prefetch_fill_avoids_future_miss() {
        let mut llc = tiny();
        llc.fill_addr(PhysAddr::new(128));
        assert!(llc.access(PhysAddr::new(128)));
        assert_eq!(llc.misses(), 0);
    }

    #[test]
    fn fill_does_not_duplicate() {
        let mut llc = tiny();
        llc.fill_line(3);
        llc.fill_line(3);
        assert!(llc.access(PhysAddr::new(3 * 64)));
        assert_eq!(llc.hits(), 1);
    }

    #[test]
    #[should_panic(expected = "invalid LLC configuration")]
    fn invalid_geometry_panics() {
        Llc::new(LlcConfig {
            capacity_bytes: 100,
            ways: 3,
            line_bytes: 64,
        });
    }

    #[test]
    #[should_panic(expected = "not a multiple of ways x line size")]
    fn truncating_capacity_is_rejected() {
        // Regression: 520 B over 2 ways of 64 B lines rounds down to 4 sets
        // (a power of two!), so the old validation accepted a geometry that
        // silently modelled a 512 B cache.
        Llc::new(LlcConfig {
            capacity_bytes: 520,
            ways: 2,
            line_bytes: 64,
        });
    }

    #[test]
    fn exact_geometry_still_validates() {
        assert!(LlcConfig {
            capacity_bytes: 512,
            ways: 2,
            line_bytes: 64,
        }
        .validate()
        .is_ok());
    }
}
