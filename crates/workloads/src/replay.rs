//! Trace replay: a file-backed [`AccessStream`].
//!
//! [`TraceReplay`] wraps a finite recorded trace (loaded through
//! [`crate::format`]) and replays it as the endless stream the simulator
//! expects by looping back to the first access after the last one. The
//! footprint is *inferred* from the trace itself: the smallest cache-line-
//! aligned bound covering every recorded address, so the replayed stream
//! honours the [`AccessStream`] contract (`addr < footprint_bytes()`)
//! without any sidecar metadata.

use crate::trace::{AccessStream, TraceEntry};
use palermo_oram::error::{OramError, OramResult};
use std::path::Path;

/// An endless, looping replay of a finite recorded trace.
#[derive(Debug, Clone)]
pub struct TraceReplay {
    entries: Vec<TraceEntry>,
    cursor: usize,
    footprint: u64,
}

impl TraceReplay {
    /// Wraps a recorded trace, inferring the footprint from the largest
    /// address (rounded up to the next 64-byte line boundary).
    ///
    /// # Errors
    ///
    /// Rejects an empty trace (a looping replay of nothing cannot produce
    /// accesses) and traces whose addresses leave no representable
    /// cache-line-aligned footprint bound.
    pub fn from_entries(entries: Vec<TraceEntry>) -> OramResult<Self> {
        if entries.is_empty() {
            return Err(OramError::InvalidParams {
                reason: "trace replay needs at least one access".into(),
            });
        }
        let max_addr = entries.iter().map(|e| e.addr.0).max().expect("non-empty");
        let footprint = (max_addr / 64)
            .checked_add(1)
            .and_then(|lines| lines.checked_mul(64))
            .ok_or_else(|| OramError::InvalidParams {
                reason: format!("trace address {max_addr:#x} leaves no representable footprint"),
            })?;
        Ok(TraceReplay {
            entries,
            cursor: 0,
            footprint,
        })
    }

    /// Loads a trace file (text or binary, auto-detected) and wraps it.
    ///
    /// # Errors
    ///
    /// I/O and parse failures are surfaced as
    /// [`OramError::InvalidParams`] with the decoder's message; an empty
    /// trace is rejected as in [`TraceReplay::from_entries`].
    pub fn from_file(path: impl AsRef<Path>) -> OramResult<Self> {
        let entries =
            crate::format::load(path).map_err(|reason| OramError::InvalidParams { reason })?;
        Self::from_entries(entries)
    }

    /// Number of accesses in one loop of the trace.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Always `false`: empty traces are rejected at construction.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl AccessStream for TraceReplay {
    fn next_access(&mut self) -> TraceEntry {
        let entry = self.entries[self.cursor];
        self.cursor = (self.cursor + 1) % self.entries.len();
        entry
    }

    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::profile;
    use palermo_oram::types::OramOp;

    #[test]
    fn replay_loops_over_the_trace() {
        let mut r = TraceReplay::from_entries(vec![
            TraceEntry::read(0),
            TraceEntry::write(64),
            TraceEntry::read(128),
        ])
        .unwrap();
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        let first_loop: Vec<TraceEntry> = (0..3).map(|_| r.next_access()).collect();
        let second_loop: Vec<TraceEntry> = (0..3).map(|_| r.next_access()).collect();
        assert_eq!(first_loop, second_loop);
        assert_eq!(first_loop[1].op, OramOp::Write);
    }

    #[test]
    fn footprint_is_inferred_and_line_aligned() {
        let r = TraceReplay::from_entries(vec![TraceEntry::read(130)]).unwrap();
        // Address 130 lives in line 2; the bound covers lines 0..=2.
        assert_eq!(r.footprint_bytes(), 192);
        let mut r =
            TraceReplay::from_entries(vec![TraceEntry::read(0), TraceEntry::read(64 * 1000 + 63)])
                .unwrap();
        let fp = r.footprint_bytes();
        assert_eq!(fp % 64, 0);
        for _ in 0..100 {
            assert!(r.next_access().addr.0 < fp);
        }
    }

    #[test]
    fn empty_and_overflowing_traces_are_rejected() {
        assert!(matches!(
            TraceReplay::from_entries(vec![]),
            Err(OramError::InvalidParams { .. })
        ));
        assert!(matches!(
            TraceReplay::from_entries(vec![TraceEntry::read(u64::MAX)]),
            Err(OramError::InvalidParams { .. })
        ));
    }

    #[test]
    fn file_backed_replay_profiles_like_the_recording() {
        let dir = std::env::temp_dir().join("palermo_replay_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seq.trace");
        let entries: Vec<TraceEntry> = (0..50u64).map(|i| TraceEntry::read(i * 64)).collect();
        crate::format::save_text(&path, &entries).unwrap();
        let mut r = TraceReplay::from_file(&path).unwrap();
        assert_eq!(r.len(), 50);
        let p = profile(&mut r, 49);
        assert_eq!(p.sequential_fraction, 1.0);
        assert!(matches!(
            TraceReplay::from_file(dir.join("missing.trace")),
            Err(OramError::InvalidParams { .. })
        ));
    }
}
