//! On-disk trace formats for [`TraceReplay`](crate::replay::TraceReplay).
//!
//! Two encodings are supported, auto-detected on load:
//!
//! * **Text** — one access per line, `R <addr>` or `W <addr>`, where the
//!   address is decimal or `0x`-prefixed hex. Blank lines and `#` comments
//!   are ignored. Human-editable; the natural interchange format for traces
//!   exported from other simulators (`perf mem`, DynamoRIO, champsim CSVs
//!   after a one-line awk pass).
//! * **Binary** — a `PTRC` magic, a format version byte, a little-endian
//!   `u64` entry count, then 9 bytes per access (1 op byte, 8 address
//!   bytes). Compact and O(1) to validate; the right choice for multi-
//!   million-access captures.
//!
//! Errors are reported as `String`s with enough position information to fix
//! the offending line/offset; callers that need a typed error wrap them
//! (see [`TraceReplay::from_file`](crate::replay::TraceReplay::from_file)).

use crate::trace::TraceEntry;
use palermo_oram::types::OramOp;
use std::path::Path;

/// Magic prefix of the binary trace encoding.
pub const BINARY_MAGIC: &[u8; 4] = b"PTRC";
/// Version byte of the binary trace encoding this module writes.
pub const BINARY_VERSION: u8 = 1;

/// Bytes per access record in the binary encoding (1 op + 8 address).
const BINARY_RECORD_BYTES: usize = 9;
/// Header length of the binary encoding (magic + version + count).
const BINARY_HEADER_BYTES: usize = 4 + 1 + 8;

/// Parses the text trace format.
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn parse_text(src: &str) -> Result<Vec<TraceEntry>, String> {
    let mut entries = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |what: &str| format!("line {}: {what}: {raw:?}", idx + 1);
        let mut parts = line.split_whitespace();
        let op = match parts.next() {
            Some(t) if t.eq_ignore_ascii_case("r") => OramOp::Read,
            Some(t) if t.eq_ignore_ascii_case("w") => OramOp::Write,
            _ => return Err(err("expected op 'R' or 'W'")),
        };
        let addr_token = parts.next().ok_or_else(|| err("missing address"))?;
        if parts.next().is_some() {
            return Err(err("trailing tokens after address"));
        }
        let addr = parse_addr(addr_token).ok_or_else(|| err("unparsable address"))?;
        entries.push(TraceEntry {
            addr: palermo_oram::types::PhysAddr::new(addr),
            op,
        });
    }
    Ok(entries)
}

fn parse_addr(token: &str) -> Option<u64> {
    if let Some(hex) = token
        .strip_prefix("0x")
        .or_else(|| token.strip_prefix("0X"))
    {
        u64::from_str_radix(hex, 16).ok()
    } else {
        token.parse().ok()
    }
}

/// Renders entries in the text trace format (hex addresses, one per line).
pub fn render_text(entries: &[TraceEntry]) -> String {
    let mut out = String::with_capacity(entries.len() * 12);
    for e in entries {
        let op = match e.op {
            OramOp::Read => 'R',
            OramOp::Write => 'W',
        };
        out.push(op);
        out.push_str(&format!(" {:#x}\n", e.addr.0));
    }
    out
}

/// Encodes entries in the binary trace format.
pub fn encode_binary(entries: &[TraceEntry]) -> Vec<u8> {
    let mut out = Vec::with_capacity(BINARY_HEADER_BYTES + entries.len() * BINARY_RECORD_BYTES);
    out.extend_from_slice(BINARY_MAGIC);
    out.push(BINARY_VERSION);
    out.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    for e in entries {
        out.push(match e.op {
            OramOp::Read => 0,
            OramOp::Write => 1,
        });
        out.extend_from_slice(&e.addr.0.to_le_bytes());
    }
    out
}

/// Decodes the binary trace format.
///
/// # Errors
///
/// Returns a message describing the structural defect (bad magic, truncated
/// header or body, unknown version or op byte).
pub fn decode_binary(bytes: &[u8]) -> Result<Vec<TraceEntry>, String> {
    if bytes.len() < BINARY_HEADER_BYTES {
        return Err(format!(
            "binary trace truncated: {} bytes is shorter than the {BINARY_HEADER_BYTES}-byte header",
            bytes.len()
        ));
    }
    if &bytes[..4] != BINARY_MAGIC {
        return Err("binary trace magic mismatch (expected \"PTRC\")".into());
    }
    if bytes[4] != BINARY_VERSION {
        return Err(format!(
            "unsupported binary trace version {} (this build reads version {BINARY_VERSION})",
            bytes[4]
        ));
    }
    let count = u64::from_le_bytes(bytes[5..13].try_into().expect("8 header bytes"));
    let body = &bytes[BINARY_HEADER_BYTES..];
    let expected = (count as usize).checked_mul(BINARY_RECORD_BYTES);
    if expected != Some(body.len()) {
        return Err(format!(
            "binary trace body is {} bytes but the header promises {count} records ({} bytes)",
            body.len(),
            expected.map_or("overflowing".to_string(), |n| n.to_string()),
        ));
    }
    let mut entries = Vec::with_capacity(count as usize);
    for (i, record) in body.chunks_exact(BINARY_RECORD_BYTES).enumerate() {
        let op = match record[0] {
            0 => OramOp::Read,
            1 => OramOp::Write,
            other => return Err(format!("record {i}: unknown op byte {other}")),
        };
        let addr = u64::from_le_bytes(record[1..].try_into().expect("8 address bytes"));
        entries.push(TraceEntry {
            addr: palermo_oram::types::PhysAddr::new(addr),
            op,
        });
    }
    Ok(entries)
}

/// Decodes a trace from raw bytes, auto-detecting the encoding: the binary
/// magic selects the binary reader, anything else must be UTF-8 text.
///
/// # Errors
///
/// Propagates the selected decoder's error; non-UTF-8 input without the
/// binary magic is reported as such.
pub fn decode(bytes: &[u8]) -> Result<Vec<TraceEntry>, String> {
    if bytes.len() >= 4 && &bytes[..4] == BINARY_MAGIC {
        decode_binary(bytes)
    } else {
        let text = std::str::from_utf8(bytes)
            .map_err(|e| format!("trace is neither binary (no PTRC magic) nor UTF-8 text: {e}"))?;
        parse_text(text)
    }
}

/// Loads a trace file, auto-detecting the encoding.
///
/// # Errors
///
/// Returns a message naming the path for I/O failures, or the decoder's
/// error for malformed content.
pub fn load(path: impl AsRef<Path>) -> Result<Vec<TraceEntry>, String> {
    let path = path.as_ref();
    let bytes =
        std::fs::read(path).map_err(|e| format!("cannot read trace {}: {e}", path.display()))?;
    decode(&bytes).map_err(|e| format!("{}: {e}", path.display()))
}

/// Writes a trace file in the text encoding.
///
/// # Errors
///
/// Returns a message naming the path on I/O failure.
pub fn save_text(path: impl AsRef<Path>, entries: &[TraceEntry]) -> Result<(), String> {
    let path = path.as_ref();
    std::fs::write(path, render_text(entries))
        .map_err(|e| format!("cannot write trace {}: {e}", path.display()))
}

/// Writes a trace file in the binary encoding.
///
/// # Errors
///
/// Returns a message naming the path on I/O failure.
pub fn save_binary(path: impl AsRef<Path>, entries: &[TraceEntry]) -> Result<(), String> {
    let path = path.as_ref();
    std::fs::write(path, encode_binary(entries))
        .map_err(|e| format!("cannot write trace {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TraceEntry> {
        vec![
            TraceEntry::read(0),
            TraceEntry::write(0x1a40),
            TraceEntry::read(64),
            TraceEntry::write(u64::MAX - 63),
        ]
    }

    #[test]
    fn text_round_trips() {
        let entries = sample();
        let text = render_text(&entries);
        assert_eq!(parse_text(&text).unwrap(), entries);
    }

    #[test]
    fn text_accepts_comments_decimal_and_case() {
        let src = "# header comment\n\nr 128 # inline comment\nW 0x40\n  R 0X10\n";
        let entries = parse_text(src).unwrap();
        assert_eq!(
            entries,
            vec![
                TraceEntry::read(128),
                TraceEntry::write(0x40),
                TraceEntry::read(0x10),
            ]
        );
    }

    #[test]
    fn text_rejects_malformed_lines() {
        for (src, what) in [
            ("X 128", "op"),
            ("R", "address"),
            ("R zzz", "address"),
            ("R 1 2", "trailing"),
        ] {
            let err = parse_text(src).unwrap_err();
            assert!(err.contains("line 1"), "{src}: {err}");
            assert!(err.contains(what), "{src}: {err}");
        }
    }

    #[test]
    fn binary_round_trips() {
        let entries = sample();
        let bytes = encode_binary(&entries);
        assert_eq!(decode_binary(&bytes).unwrap(), entries);
        // Auto-detection picks the right decoder for both encodings.
        assert_eq!(decode(&bytes).unwrap(), entries);
        assert_eq!(decode(render_text(&entries).as_bytes()).unwrap(), entries);
    }

    #[test]
    fn binary_rejects_corruption() {
        let entries = sample();
        let good = encode_binary(&entries);
        assert!(decode_binary(&good[..4]).unwrap_err().contains("truncated"));
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(decode_binary(&bad_magic).unwrap_err().contains("magic"));
        let mut bad_version = good.clone();
        bad_version[4] = 9;
        assert!(decode_binary(&bad_version).unwrap_err().contains("version"));
        let mut truncated_body = good.clone();
        truncated_body.pop();
        assert!(decode_binary(&truncated_body)
            .unwrap_err()
            .contains("promises"));
        let mut bad_op = good;
        bad_op[BINARY_HEADER_BYTES] = 7;
        assert!(decode_binary(&bad_op).unwrap_err().contains("op byte"));
    }

    #[test]
    fn file_round_trip_both_encodings() {
        let entries = sample();
        let dir = std::env::temp_dir().join("palermo_format_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let text_path = dir.join("t.trace");
        let bin_path = dir.join("t.ptrc");
        save_text(&text_path, &entries).unwrap();
        save_binary(&bin_path, &entries).unwrap();
        assert_eq!(load(&text_path).unwrap(), entries);
        assert_eq!(load(&bin_path).unwrap(), entries);
        assert!(load(dir.join("missing.trace"))
            .unwrap_err()
            .contains("read"));
    }
}
