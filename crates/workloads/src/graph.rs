//! Synthetic power-law graphs in CSR form.
//!
//! The paper evaluates PageRank on LiveJournal and motif mining on a
//! Wikipedia snapshot. Those datasets are not redistributable here, so the
//! graph workloads run on synthetic graphs with the property that matters
//! for memory behaviour: a heavy-tailed degree distribution, which makes
//! neighbour accesses hit a small set of hot vertices while the bulk of the
//! edge list is cold and effectively random.

use crate::zipf::{scramble, Zipf};
use palermo_oram::rng::OramRng;

/// A compressed-sparse-row graph.
#[derive(Debug, Clone)]
pub struct CsrGraph {
    /// Offsets into `edges`, one per vertex plus a trailing sentinel.
    pub offsets: Vec<u64>,
    /// Destination vertex of each edge.
    pub edges: Vec<u64>,
}

impl CsrGraph {
    /// Generates a synthetic power-law graph with `vertices` vertices and an
    /// average out-degree of `avg_degree`, with destination popularity
    /// following a Zipfian distribution of skew `skew`.
    ///
    /// # Panics
    ///
    /// Panics if `vertices` is zero.
    pub fn synthetic(vertices: u64, avg_degree: u32, skew: f64, seed: u64) -> Self {
        assert!(vertices > 0, "graph needs at least one vertex");
        let mut rng = OramRng::new(seed);
        let dest_sampler = Zipf::new(vertices, skew.clamp(0.0, 0.99));
        let mut offsets = Vec::with_capacity(vertices as usize + 1);
        let mut edges = Vec::with_capacity(vertices as usize * avg_degree as usize);
        offsets.push(0);
        for _ in 0..vertices {
            // Degrees vary between 0 and 2x the average.
            let degree = rng.gen_range(u64::from(avg_degree) * 2 + 1);
            for _ in 0..degree {
                let dest = scramble(dest_sampler.sample(&mut rng), vertices);
                edges.push(dest);
            }
            offsets.push(edges.len() as u64);
        }
        CsrGraph { offsets, edges }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> u64 {
        (self.offsets.len() - 1) as u64
    }

    /// Number of edges.
    pub fn num_edges(&self) -> u64 {
        self.edges.len() as u64
    }

    /// The out-neighbours of `v`.
    pub fn neighbours(&self, v: u64) -> &[u64] {
        let start = self.offsets[v as usize] as usize;
        let end = self.offsets[v as usize + 1] as usize;
        &self.edges[start..end]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_size() {
        let g = CsrGraph::synthetic(1000, 8, 0.8, 1);
        assert_eq!(g.num_vertices(), 1000);
        assert!(
            g.num_edges() > 4000 && g.num_edges() < 12_000,
            "{}",
            g.num_edges()
        );
        assert_eq!(*g.offsets.last().unwrap(), g.num_edges());
    }

    #[test]
    fn neighbours_are_valid_vertices() {
        let g = CsrGraph::synthetic(500, 4, 0.9, 2);
        for v in 0..g.num_vertices() {
            for &n in g.neighbours(v) {
                assert!(n < 500);
            }
        }
    }

    #[test]
    fn degree_distribution_is_skewed_in_popularity() {
        // In-degree (popularity) should be heavy tailed: the hottest vertex
        // should receive far more than the average number of edges.
        let g = CsrGraph::synthetic(2000, 8, 0.9, 3);
        let mut indeg = vec![0u64; 2000];
        for &e in &g.edges {
            indeg[e as usize] += 1;
        }
        let max = *indeg.iter().max().unwrap();
        let avg = g.num_edges() / 2000;
        assert!(max > avg * 5, "max {max}, avg {avg}");
    }

    #[test]
    fn deterministic_under_seed() {
        let a = CsrGraph::synthetic(100, 4, 0.8, 7);
        let b = CsrGraph::synthetic(100, 4, 0.8, 7);
        assert_eq!(a.edges, b.edges);
        assert_eq!(a.offsets, b.offsets);
    }
}
