//! Property tests for shard-routing soundness: every router must be a
//! *total, collision-free partition* of the workload footprint — no
//! address maps to two shards, no shard receives an address outside its
//! own partition, and the per-shard footprints tile the global one — for
//! arbitrary footprints and shard counts, not just the unit-test points.

use palermo_workloads::trace::{AccessStream, TraceEntry};
use palermo_workloads::{ShardRouter, ShardRouterKind, WorkloadSpec};
use proptest::prelude::*;

/// A stream stub with a configurable footprint: hash/range routers only
/// consult the footprint, so this gives the properties precise control
/// over the partition size.
struct FixedFootprint {
    bytes: u64,
}

impl AccessStream for FixedFootprint {
    fn next_access(&mut self) -> TraceEntry {
        TraceEntry::read(0)
    }

    fn footprint_bytes(&self) -> u64 {
        self.bytes
    }
}

/// Walks every cache line of the footprint through the router and checks
/// the partition properties exhaustively.
fn assert_total_collision_free_partition(router: &ShardRouter, footprint: u64) {
    let k = router.shards();
    let lines = footprint.div_ceil(64);
    let shard_lines: Vec<u64> = (0..k)
        .map(|s| router.shard_footprint_bytes(s) / 64)
        .collect();
    // The per-shard footprints tile the global one exactly.
    assert_eq!(shard_lines.iter().sum::<u64>(), lines);
    assert!(shard_lines.iter().all(|&n| n > 0), "a shard owns no lines");

    let mut seen: Vec<Vec<bool>> = shard_lines
        .iter()
        .map(|&n| vec![false; n as usize])
        .collect();
    for line in 0..lines {
        let addr = line * 64;
        let (shard, local) = router.route(addr);
        // Total: every address lands on a real shard, inside its partition.
        assert!(
            shard < k,
            "address {addr} routed to out-of-range shard {shard}"
        );
        assert_eq!(local % 64, 0, "line base lost its offset");
        let local_line = (local / 64) as usize;
        assert!(
            local_line < seen[shard as usize].len(),
            "address {addr} mapped outside shard {shard}'s partition"
        );
        // Collision-free: no two global lines share a (shard, local) slot.
        assert!(
            !seen[shard as usize][local_line],
            "two lines collided at shard {shard} local line {local_line}"
        );
        seen[shard as usize][local_line] = true;
        // Sub-line offsets ride along unchanged.
        for off in [1u64, 33, 63] {
            assert_eq!(router.route(addr + off), (shard, local + off));
        }
    }
    // Exhaustive totality + collision-freedom over L lines into exactly L
    // slots means every slot was hit: the map is a bijection.
    assert!(seen.iter().all(|s| s.iter().all(|&b| b)));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Hash and range routers partition any footprint with at least K
    /// cache lines, for any K.
    #[test]
    fn hash_and_range_routers_partition_arbitrary_footprints(
        lines in 1u64..2048,
        k in 1u32..17,
        tail in 0u64..64,
        kind_idx in 0usize..2,
    ) {
        // The vendored proptest shim has no prop_assume; clamp K into the
        // valid range (a router needs at least one line per shard).
        let k = k.min(u32::try_from(lines).unwrap_or(u32::MAX));
        let kind = [ShardRouterKind::Hash, ShardRouterKind::Range][kind_idx];
        // A ragged tail exercises the partial-last-line rounding.
        let footprint = (lines - 1) * 64 + tail.max(1);
        let stream = FixedFootprint { bytes: footprint };
        let router = ShardRouter::new(kind, k, &stream).unwrap();
        assert_total_collision_free_partition(&router, footprint);
    }

    /// Footprints with fewer lines than shards are rejected instead of
    /// silently producing empty shards (an empty shard would starve its
    /// stream filter forever).
    #[test]
    fn undersized_footprints_are_rejected(
        lines in 1u64..16,
        extra in 1u32..16,
        kind_idx in 0usize..2,
    ) {
        let kind = [ShardRouterKind::Hash, ShardRouterKind::Range][kind_idx];
        let k = u32::try_from(lines).unwrap() + extra;
        let stream = FixedFootprint { bytes: lines * 64 };
        prop_assert!(ShardRouter::new(kind, k, &stream).is_err());
    }

    /// The tenant-affine router pins every tenant's whole contiguous
    /// partition to one shard (tenant t -> shard t mod K) and is a total,
    /// collision-free partition of the mix footprint at *byte* granularity
    /// (tenant partitions need not be cache-line aligned).
    #[test]
    fn tenant_affine_router_partitions_real_mixes(
        k in 1u32..4,
        hint_mib in 1u64..5,
        seed in any::<u64>(),
    ) {
        let spec = WorkloadSpec::from_name("mix:rr:mcf+random+redis").unwrap();
        let stream = spec.build(hint_mib << 20, seed).unwrap();
        let router = ShardRouter::new(ShardRouterKind::TenantAffine, k, stream.as_ref()).unwrap();
        let footprint = stream.footprint_bytes();
        // Byte tiling: per-shard footprints sum to the global one.
        let shard_bytes: Vec<u64> =
            (0..k).map(|s| router.shard_footprint_bytes(s)).collect();
        prop_assert_eq!(shard_bytes.iter().sum::<u64>(), footprint);
        // Each tenant's whole partition maps affinely onto one shard, and
        // the per-shard local bases tile [0, shard_footprint) exactly —
        // which makes the byte-level map a bijection.
        let mut next_local = vec![0u64; k as usize];
        for t in 0..stream.tenant_count() {
            let (base, size) = stream.tenant_partition(t).unwrap();
            let expected = u32::try_from(t).unwrap() % k;
            let local_base = next_local[expected as usize];
            for off in [0, 1, size / 2, size - 1] {
                let (shard, local) = router.route(base + off);
                prop_assert_eq!(shard, expected, "tenant {} split across shards", t);
                prop_assert_eq!(local, local_base + off, "tenant {} not affine", t);
                prop_assert!(local < shard_bytes[shard as usize]);
            }
            next_local[expected as usize] += size;
        }
        prop_assert_eq!(next_local, shard_bytes);
    }
}
