//! Property tests for phased mixes: arbitrary valid `PhasedMix` specs must
//! round-trip through the spec-name grammar, and the built stream must
//! never emit an access from a tenant outside its activity window.

use palermo_workloads::{PhaseWindow, PhasedMixSpec, Workload, WorkloadSpec};
use proptest::prelude::*;

/// The child pool the random specs draw from.
const CHILDREN: [Workload; 4] = [
    Workload::Redis,
    Workload::Llm,
    Workload::Streaming,
    Workload::Mcf,
];

/// Builds a valid random phased spec: tenant 0 is always on (guaranteeing
/// window coverage of every access index), and up to two more tenants get
/// arbitrary bounded or open windows.
#[allow(clippy::too_many_arguments)]
fn build_spec(
    w0: u32,
    c0: usize,
    extra: usize,
    starts: (u64, u64),
    lens: (u64, u64),
    weights: (u32, u32),
    children: (usize, usize),
    open_ended: (bool, bool),
) -> PhasedMixSpec {
    let mut spec = PhasedMixSpec::new().tenant(
        CHILDREN[c0 % CHILDREN.len()].into(),
        w0,
        PhaseWindow::ALWAYS,
    );
    let params = [
        (starts.0, lens.0, weights.0, children.0, open_ended.0),
        (starts.1, lens.1, weights.1, children.1, open_ended.1),
    ];
    for &(start, len, weight, child, open) in params.iter().take(extra) {
        let window = if open {
            PhaseWindow::from_start(start)
        } else {
            PhaseWindow::new(start, start + len)
        };
        spec = spec.tenant(CHILDREN[child % CHILDREN.len()].into(), weight, window);
    }
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_phased_specs_round_trip_and_respect_windows(
        w0 in 1u32..4,
        c0 in 0usize..CHILDREN.len(),
        extra in 0usize..3,
        starts in (0u64..2500, 0u64..2500),
        lens in (1u64..2500, 1u64..2500),
        weights in (1u32..4, 1u32..4),
        children in (0usize..CHILDREN.len(), 0usize..CHILDREN.len()),
        open_ended in (any::<bool>(), any::<bool>()),
        seed in any::<u64>(),
    ) {
        let spec = build_spec(w0, c0, extra, starts, lens, weights, children, open_ended);
        prop_assert!(spec.validate().is_ok());
        let spec = WorkloadSpec::PhasedMix(spec);

        // Round trip: the canonical name parses back to the same spec.
        let name = spec.name();
        prop_assert!(!name.contains(','), "{}", name);
        prop_assert_eq!(WorkloadSpec::from_name(&name).as_ref(), Some(&spec));

        // Window property: every emitted access belongs to a tenant whose
        // window contains the access index, and the tag names the partition
        // that owns the address.
        let windows: Vec<PhaseWindow> = match &spec {
            WorkloadSpec::PhasedMix(m) => m.tenants.iter().map(|t| t.window).collect(),
            _ => unreachable!(),
        };
        let mut stream = spec.build(16 << 20, seed).expect("valid spec builds");
        prop_assert_eq!(stream.tenant_count(), windows.len());
        let fp = stream.footprint_bytes();
        for t in 0..6000u64 {
            let tagged = stream.next_tagged();
            let idx = tagged.tenant as usize;
            prop_assert!(idx < windows.len());
            prop_assert!(
                windows[idx].contains(t),
                "tenant {} served access {} outside its window [{}, {})",
                idx, t, windows[idx].start, windows[idx].end
            );
            prop_assert!(tagged.entry.addr.0 < fp);
        }
    }
}
