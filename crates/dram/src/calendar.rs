//! A calendar queue over per-source next-event cycles.
//!
//! The event-driven core needs one query answered cheaply and often: *which
//! event source fires next, and when?* With a handful of channels a linear
//! scan is fine, but sharded runs multiply event sources (K shards × C
//! channels), and every source reschedules on every command it issues. A
//! calendar queue — the classic bucketed time wheel from discrete-event
//! simulation — keeps both operations cheap: scheduling drops the source
//! into the bucket its cycle hashes to (O(1)), and peeking scans forward
//! from the current cycle's bucket, which in steady state inspects O(1)
//! buckets because DRAM events cluster tightly (tBL/tCCD/tRCD apart).
//!
//! Reschedules use lazy deletion: the authoritative key lives in a dense
//! per-source table, and bucket entries whose key no longer matches are
//! dropped when a scan meets them (with periodic compaction so abandoned
//! entries cannot accumulate). Keys are absolute cycles; callers maintain
//! the invariant that no live key lies in the past, which lets the scan
//! start at `now`'s bucket. A scan that completes one full lap without
//! finding a key inside its lap falls back to a direct minimum over the
//! source table, bounding the worst case at O(sources) regardless of how
//! far in the future the next event lies.

/// Bucket count; power of two so the bucket index is a mask.
const BUCKETS: usize = 64;
/// Cycles per bucket (log2); 16-cycle buckets cover the common DDR4 command
/// gaps (tBL=4 … tRCD/tCL≈22) with at most a couple of buckets scanned.
const WIDTH_LOG2: u32 = 4;

#[derive(Debug, Clone, Copy)]
struct Entry {
    key: u64,
    src: u32,
}

/// A bucketed time wheel mapping event sources to their next event cycle.
///
/// `u64::MAX` means "no pending event" and is never stored in a bucket.
#[derive(Debug, Clone)]
pub struct CalendarQueue {
    buckets: Vec<Vec<Entry>>,
    /// Authoritative key per source (`u64::MAX` = idle). Bucket entries
    /// disagreeing with this table are stale and dropped on contact.
    key_of: Vec<u64>,
    /// Sources with a live key — lets an all-idle peek answer in O(1).
    live: usize,
    /// Total bucket entries, live or stale, for compaction scheduling.
    entries: usize,
    /// The exact `(key, src)` minimum over the table, or `None` when it
    /// must be recomputed. [`CalendarQueue::schedule`] keeps it current
    /// incrementally (an earlier key replaces it; rescheduling the cached
    /// source invalidates it), so the steady-state peek — many peeks per
    /// reschedule of a non-minimal source — is a field read.
    cached_min: Option<(u64, u32)>,
}

/// Below this source count a peek that misses the cache answers with a
/// direct scan of the key table instead of walking the wheel: for a
/// handful of sources (one per DRAM channel) four compares beat touching
/// bucket memory. The wheel still absorbs `schedule` churn either way and
/// carries the scan for the many-source sharded configurations it exists
/// for.
const DIRECT_SCAN_MAX_SOURCES: usize = 16;

impl CalendarQueue {
    /// Creates a calendar with `sources` idle event sources.
    pub fn new(sources: usize) -> Self {
        CalendarQueue {
            buckets: vec![Vec::new(); BUCKETS],
            key_of: vec![u64::MAX; sources],
            live: 0,
            entries: 0,
            cached_min: None,
        }
    }

    /// Number of event sources.
    pub fn sources(&self) -> usize {
        self.key_of.len()
    }

    /// The authoritative key of `src` (`u64::MAX` when idle).
    pub fn key(&self, src: usize) -> u64 {
        self.key_of[src]
    }

    fn bucket_of(key: u64) -> usize {
        ((key >> WIDTH_LOG2) as usize) & (BUCKETS - 1)
    }

    /// (Re)schedules `src` at absolute cycle `key`; `u64::MAX` cancels.
    /// The previous bucket entry, if any, is abandoned in place and cleaned
    /// up lazily.
    pub fn schedule(&mut self, src: usize, key: u64) {
        let old = self.key_of[src];
        if old == key {
            return;
        }
        match (old == u64::MAX, key == u64::MAX) {
            (true, false) => self.live += 1,
            (false, true) => self.live -= 1,
            _ => {}
        }
        self.key_of[src] = key;
        // Keep the cached minimum exact: a strictly-smaller (key, src) pair
        // takes it over; moving the cached source itself leaves the true
        // minimum unknown until the next peek recomputes it.
        match self.cached_min {
            Some((_, s)) if s as usize == src => self.cached_min = None,
            Some(m) if key != u64::MAX && (key, src as u32) < m => {
                self.cached_min = Some((key, src as u32));
            }
            _ => {}
        }
        if key != u64::MAX {
            self.buckets[Self::bucket_of(key)].push(Entry {
                key,
                src: src as u32,
            });
            self.entries += 1;
        }
        // Lazy deletion can pile up abandoned entries faster than scans
        // retire them (reschedules target future buckets the scan may never
        // revisit). Rebuild from the authoritative table once the overhang
        // exceeds a few entries per source.
        if self.entries > self.key_of.len() * 4 + 8 {
            self.compact();
        }
    }

    fn compact(&mut self) {
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.entries = 0;
        for (src, &key) in self.key_of.iter().enumerate() {
            if key != u64::MAX {
                self.buckets[Self::bucket_of(key)].push(Entry {
                    key,
                    src: src as u32,
                });
                self.entries += 1;
            }
        }
    }

    /// The earliest pending event at or after `now`: `(cycle, source)`, or
    /// `None` when every source is idle.
    ///
    /// Requires the caller's invariant that no live key is below `now`
    /// (debug-asserted); the scan then starts at `now`'s bucket and walks
    /// forward one lap, falling back to a direct table scan for events more
    /// than `BUCKETS` buckets ahead.
    pub fn peek_min(&mut self, now: u64) -> Option<(u64, usize)> {
        if self.live == 0 {
            return None;
        }
        if let Some((key, src)) = self.cached_min {
            debug_assert_eq!(self.key_of[src as usize], key, "stale cached min");
            debug_assert!(key >= now, "live key {key} below now {now}");
            return Some((key, src as usize));
        }
        let found = if self.key_of.len() <= DIRECT_SCAN_MAX_SOURCES {
            // Few sources: the table scan is a handful of compares, cheaper
            // than touching wheel buckets.
            self.key_of
                .iter()
                .enumerate()
                .filter(|(_, &k)| k != u64::MAX)
                .map(|(src, &k)| (k, src))
                .min()
        } else {
            self.scan_wheel(now)
        };
        self.cached_min = found.map(|(k, s)| (k, s as u32));
        found
    }

    /// The wheel walk behind a cache-missing [`CalendarQueue::peek_min`] at
    /// many-source scale: scan forward from `now`'s bucket for one lap,
    /// dropping stale entries on contact, then fall back to a direct table
    /// minimum for events beyond the lap horizon.
    fn scan_wheel(&mut self, now: u64) -> Option<(u64, usize)> {
        let first = now >> WIDTH_LOG2;
        for lap_bucket in first..first + BUCKETS as u64 {
            let idx = (lap_bucket as usize) & (BUCKETS - 1);
            // Lap horizon: keys mapping to this bucket on a *later* lap stay.
            let lap_end = (lap_bucket + 1) << WIDTH_LOG2;
            let mut best: Option<(u64, usize)> = None;
            let bucket = &mut self.buckets[idx];
            let before = bucket.len();
            bucket.retain(|e| {
                if self.key_of[e.src as usize] != e.key {
                    return false; // stale: rescheduled or cancelled
                }
                debug_assert!(e.key >= now, "live key {} below now {now}", e.key);
                let candidate = (e.key, e.src as usize);
                if e.key < lap_end && best.is_none_or(|b| candidate < b) {
                    best = Some(candidate);
                }
                true
            });
            self.entries -= before - bucket.len();
            if let Some(found) = best {
                return Some(found);
            }
        }
        // Nothing within one lap: the next event is far out. Answer from
        // the authoritative table directly.
        self.key_of
            .iter()
            .enumerate()
            .filter(|(_, &k)| k != u64::MAX)
            .map(|(src, &k)| (k, src))
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_calendar_peeks_none() {
        let mut c = CalendarQueue::new(4);
        assert_eq!(c.peek_min(0), None);
        assert_eq!(c.sources(), 4);
        assert_eq!(c.key(2), u64::MAX);
    }

    #[test]
    fn returns_earliest_across_sources() {
        let mut c = CalendarQueue::new(4);
        c.schedule(0, 100);
        c.schedule(1, 40);
        c.schedule(2, 70);
        assert_eq!(c.peek_min(0), Some((40, 1)));
        assert_eq!(c.peek_min(40), Some((40, 1)));
    }

    #[test]
    fn reschedule_supersedes_stale_entries() {
        let mut c = CalendarQueue::new(2);
        c.schedule(0, 50);
        c.schedule(0, 200); // moves later: old entry is stale
        assert_eq!(c.peek_min(0), Some((200, 0)));
        c.schedule(0, 90); // moves earlier again
        assert_eq!(c.peek_min(60), Some((90, 0)));
        c.schedule(0, u64::MAX); // cancel
        assert_eq!(c.peek_min(60), None);
    }

    #[test]
    fn far_future_events_fall_back_to_table_scan() {
        let mut c = CalendarQueue::new(3);
        // More than BUCKETS << WIDTH_LOG2 cycles ahead: outside the wheel's
        // one-lap horizon from now=0.
        let far = (BUCKETS as u64) << (WIDTH_LOG2 + 3);
        c.schedule(1, far);
        c.schedule(2, far + 5);
        assert_eq!(c.peek_min(0), Some((far, 1)));
    }

    #[test]
    fn wraparound_laps_do_not_alias() {
        let mut c = CalendarQueue::new(2);
        let lap = (BUCKETS as u64) << WIDTH_LOG2;
        // Two keys in the same bucket, one lap apart: the near one wins, and
        // after it is cancelled the far one is still found from a later now.
        c.schedule(0, 10);
        c.schedule(1, 10 + lap);
        assert_eq!(c.peek_min(0), Some((10, 0)));
        c.schedule(0, u64::MAX);
        assert_eq!(c.peek_min(12), Some((10 + lap, 1)));
    }

    #[test]
    fn heavy_rescheduling_stays_consistent_with_naive_min() {
        // Pseudo-random churn across 16 sources; after every operation the
        // calendar's answer must match a naive min over the key table, and
        // compaction must keep total entries bounded.
        let sources = 16;
        let mut c = CalendarQueue::new(sources);
        let mut keys = vec![u64::MAX; sources];
        let mut state: u64 = 0xDEAD_BEEF;
        let mut now = 0u64;
        for _ in 0..2000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let src = (state >> 33) as usize % sources;
            let key = if state.is_multiple_of(11) {
                u64::MAX
            } else {
                now + (state >> 48) % 500
            };
            c.schedule(src, key);
            keys[src] = key;
            let naive = keys
                .iter()
                .enumerate()
                .filter(|(_, &k)| k != u64::MAX)
                .map(|(s, &k)| (k, s))
                .min();
            assert_eq!(c.peek_min(now), naive);
            // Advance "time" to the min occasionally, keeping the no-key-
            // below-now invariant by bumping stragglers forward first.
            if state.is_multiple_of(7) {
                if let Some((k, _)) = naive {
                    now = k;
                }
            }
            assert!(c.entries <= sources * 4 + 8 + 1, "compaction fell behind");
        }
    }
}
