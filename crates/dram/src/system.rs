//! The multi-channel DRAM system presented to the ORAM controller.

use crate::address::AddressMapper;
use crate::calendar::CalendarQueue;
use crate::channel::{Channel, ChannelTickResult};
use crate::config::DramConfig;
use crate::request::{MemCompletion, MemRequest};
use crate::stats::DramStats;

/// A complete DRAM subsystem: address mapper plus one [`Channel`] per
/// configured channel, advanced in lock step by [`DramSystem::tick`].
///
/// ```
/// use palermo_dram::config::DramConfig;
/// use palermo_dram::request::MemRequest;
/// use palermo_dram::system::DramSystem;
///
/// let mut dram = DramSystem::new(DramConfig::ddr4_3200_quad_channel());
/// assert!(dram.try_enqueue(MemRequest::read(1, 0x1000)));
/// let mut completions = Vec::new();
/// while completions.is_empty() {
///     dram.tick();
///     completions.extend(dram.drain_completed());
/// }
/// assert_eq!(completions[0].id.0, 1);
/// ```
#[derive(Debug, Clone)]
pub struct DramSystem {
    config: DramConfig,
    mapper: AddressMapper,
    channels: Vec<Channel>,
    /// Calendar queue over per-channel next-event cycles: each channel is
    /// one event source, refreshed only when that channel's state changes
    /// (a command issue, a data return, or an enqueue), so
    /// [`DramSystem::next_event_cycle`] answers from the wheel instead of
    /// re-querying every channel — the structure that keeps the query cheap
    /// when sharded runs multiply event sources.
    calendar: CalendarQueue,
    cycle: u64,
}

impl DramSystem {
    /// Creates an idle DRAM system.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation; construct configs with
    /// the provided presets or check [`DramConfig::validate`] first.
    pub fn new(config: DramConfig) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid DRAM configuration: {e}"));
        DramSystem {
            mapper: AddressMapper::new(config),
            channels: (0..config.channels).map(|_| Channel::new(config)).collect(),
            calendar: CalendarQueue::new(config.channels as usize),
            cycle: 0,
            config,
        }
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Current memory-clock cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Returns `true` if the target channel's queue can accept `addr`.
    pub fn can_accept(&self, addr: u64) -> bool {
        let coord = self.mapper.map(addr);
        self.channels[coord.channel as usize].can_accept()
    }

    /// Attempts to enqueue a request; returns `false` if the target
    /// channel's queue is full (the caller retries on a later cycle).
    pub fn try_enqueue(&mut self, req: MemRequest) -> bool {
        let coord = self.mapper.map(req.addr);
        let ch = coord.channel as usize;
        if !self.channels[ch].enqueue(req, coord, self.cycle) {
            return false;
        }
        // The new request can only pull this channel's next event earlier;
        // refresh its calendar key (O(1): the channel min-updates its own
        // cache on enqueue).
        let key = self.channels[ch]
            .next_event_cycle(self.cycle)
            .unwrap_or(u64::MAX);
        self.calendar.schedule(ch, key);
        true
    }

    /// Advances all channels by one memory-clock cycle, reporting what the
    /// tick observably did across channels — the event-driven runner derives
    /// its time-skipping preconditions from the result.
    pub fn tick(&mut self) -> ChannelTickResult {
        self.skip_to_and_tick(self.cycle)
    }

    /// Skips to `event_cycle` (which must be provably quiet for every
    /// channel, i.e. strictly before [`DramSystem::next_event_cycle`] unless
    /// equal to the current cycle) and executes the tick of that cycle, in a
    /// single pass over the channels. Channels whose calendar key lies
    /// beyond `event_cycle` are *not due*: their per-cycle tick would take
    /// its O(1) fast path for every cycle through the event, so the whole
    /// stretch folds into one bulk [`Channel::skip_cycles`] without entering
    /// the channel's tick at all. Ends with the clock at `event_cycle + 1`.
    pub fn skip_to_and_tick(&mut self, event_cycle: u64) -> ChannelTickResult {
        debug_assert!(event_cycle >= self.cycle);
        let gap = event_cycle - self.cycle;
        let mut result = ChannelTickResult::default();
        for (i, channel) in self.channels.iter_mut().enumerate() {
            // The calendar key is the channel's exact next-event prediction
            // (refreshed on enqueue and whenever a tick can move it), so a
            // key beyond the event cycle proves the fast path for the whole
            // stretch including the tick itself.
            if self.calendar.key(i) > event_cycle {
                channel.skip_cycles(gap + 1);
                continue;
            }
            channel.skip_cycles(gap);
            let r = channel.tick(event_cycle);
            result.issued |= r.issued;
            result.completions |= r.completions;
            // The key came due (or the tick acted): refresh the prediction.
            let key = channel
                .next_event_cycle(event_cycle + 1)
                .unwrap_or(u64::MAX);
            self.calendar.schedule(i, key);
        }
        self.cycle = event_cycle + 1;
        result
    }

    /// The earliest cycle `>=` the current cycle at which any channel could
    /// do observable work, or `None` if the whole system is idle. Answered
    /// from the calendar queue (see [`CalendarQueue`]); see
    /// [`Channel::next_event_cycle`] for the exactness argument.
    pub fn next_event_cycle(&mut self) -> Option<u64> {
        let now = self.cycle;
        self.calendar.peek_min(now).map(|(key, _)| key.max(now))
    }

    /// Advances the clock by `skipped` provably-idle cycles, performing the
    /// same per-cycle statistics accounting the reference loop would have.
    /// Callers must only skip cycles strictly before
    /// [`DramSystem::next_event_cycle`].
    pub fn skip_cycles(&mut self, skipped: u64) {
        for channel in &mut self.channels {
            channel.skip_cycles(skipped);
        }
        self.cycle += skipped;
    }

    /// Returns `true` if any channel holds completions not yet drained.
    pub fn has_pending_completions(&self) -> bool {
        self.channels.iter().any(|c| c.has_pending_completions())
    }

    /// Collects all completions produced since the previous call.
    pub fn drain_completed(&mut self) -> Vec<MemCompletion> {
        let mut out = Vec::new();
        self.drain_completed_into(&mut out);
        out
    }

    /// Appends all completions produced since the previous call to `out`
    /// without allocating (the hot-loop variant of
    /// [`DramSystem::drain_completed`]).
    pub fn drain_completed_into(&mut self, out: &mut Vec<MemCompletion>) {
        for channel in &mut self.channels {
            channel.drain_completed_into(out);
        }
    }

    /// Requests currently queued or in flight across all channels.
    pub fn outstanding(&self) -> usize {
        self.channels.iter().map(|c| c.outstanding()).sum()
    }

    /// Requests currently sitting in controller queues.
    pub fn queued(&self) -> usize {
        self.channels.iter().map(|c| c.queue_len()).sum()
    }

    /// Aggregated statistics snapshot.
    pub fn stats(&self) -> DramStats {
        let per_channel: Vec<_> = self.channels.iter().map(|c| c.stats()).collect();
        DramStats::aggregate(self.cycle, &per_channel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::MemOpKind;

    #[test]
    fn read_write_round_trip_all_channels() {
        let mut dram = DramSystem::new(DramConfig::ddr4_3200_quad_channel());
        for i in 0..16u64 {
            assert!(dram.try_enqueue(MemRequest::read(i, i * 64)));
        }
        let mut done = Vec::new();
        for _ in 0..2000 {
            dram.tick();
            done.extend(dram.drain_completed());
            if done.len() == 16 {
                break;
            }
        }
        assert_eq!(done.len(), 16);
        assert!(done.iter().all(|c| c.kind == MemOpKind::Read));
        let stats = dram.stats();
        assert_eq!(stats.reads, 16);
        assert!(stats.bandwidth_utilization() > 0.0);
    }

    #[test]
    fn backpressure_when_queues_full() {
        let mut dram = DramSystem::new(DramConfig::ddr4_3200_single_channel());
        let cap = dram.config().queue_capacity;
        let mut accepted = 0;
        for i in 0..(cap * 2) as u64 {
            if dram.try_enqueue(MemRequest::write(i, i * 64)) {
                accepted += 1;
            }
        }
        assert_eq!(accepted, cap);
        assert!(!dram.can_accept(0));
        assert_eq!(dram.queued(), cap);
    }

    #[test]
    fn more_parallelism_gives_more_bandwidth() {
        // Saturating all four channels must beat trickling one request at a
        // time: the mechanism behind Palermo's speedup, reproduced at the
        // substrate level.
        let run = |max_outstanding: usize| {
            let mut dram = DramSystem::new(DramConfig::ddr4_3200_quad_channel());
            let total = 400u64;
            let mut issued = 0u64;
            let mut completed = 0usize;
            let mut rng: u64 = 0x1234_5678;
            while completed < total as usize {
                while issued < total && dram.outstanding() < max_outstanding {
                    // Pseudo-random addresses spread over banks.
                    rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let addr = (rng >> 16) % (1 << 28) / 64 * 64;
                    if !dram.try_enqueue(MemRequest::read(issued, addr)) {
                        break;
                    }
                    issued += 1;
                }
                dram.tick();
                completed += dram.drain_completed().len();
                assert!(dram.cycle() < 1_000_000, "stalled");
            }
            dram.cycle()
        };
        let serial_cycles = run(1);
        let parallel_cycles = run(64);
        assert!(
            parallel_cycles * 4 < serial_cycles,
            "parallel {parallel_cycles} vs serial {serial_cycles}"
        );
    }

    #[test]
    fn skip_cycles_matches_ticked_idle_cycles() {
        // Drive the system to a quiet point, then advance one clone tick by
        // tick and the other with a single bulk skip: every statistic and
        // all subsequent behaviour must be identical.
        let mut dram = DramSystem::new(DramConfig::ddr4_3200_quad_channel());
        for i in 0..8u64 {
            assert!(dram.try_enqueue(MemRequest::read(i, i * 4096)));
        }
        let mut drained = Vec::new();
        // Tick until a quiet cycle with a future event.
        let (mut ticked, mut skipped) = loop {
            let result = dram.tick();
            drained.extend(dram.drain_completed());
            let next = dram.next_event_cycle();
            if !result.any() {
                if let Some(next) = next {
                    if next > dram.cycle() {
                        break (dram.clone(), dram.clone());
                    }
                } else {
                    panic!("system went idle with {} completions", drained.len());
                }
            }
            assert!(dram.cycle() < 10_000, "no quiet window found");
        };
        let next = ticked.next_event_cycle().unwrap();
        let gap = next - ticked.cycle();
        assert!(gap > 0);
        for _ in 0..gap {
            let r = ticked.tick();
            assert!(!r.any(), "reference tick acted inside the skip window");
        }
        skipped.skip_cycles(gap);
        assert_eq!(ticked.cycle(), skipped.cycle());
        assert_eq!(ticked.stats(), skipped.stats());
        // Subsequent behaviour stays in lock step until fully drained.
        for _ in 0..5_000 {
            let a = ticked.tick();
            let b = skipped.tick();
            assert_eq!(a, b);
            assert_eq!(ticked.drain_completed(), skipped.drain_completed());
            if ticked.outstanding() == 0 {
                break;
            }
        }
        assert_eq!(ticked.outstanding(), 0);
        assert_eq!(ticked.stats(), skipped.stats());
    }

    #[test]
    #[should_panic(expected = "invalid DRAM configuration")]
    fn invalid_config_panics() {
        let cfg = DramConfig {
            channels: 5,
            ..DramConfig::default()
        };
        DramSystem::new(cfg);
    }

    #[test]
    fn stats_track_row_behaviour() {
        let mut dram = DramSystem::new(DramConfig::ddr4_3200_quad_channel());
        // Stream sequentially: should be overwhelmingly row hits.
        for i in 0..256u64 {
            while !dram.try_enqueue(MemRequest::read(i, i * 64)) {
                dram.tick();
            }
        }
        let mut completed = 0usize;
        for _ in 0..20_000 {
            dram.tick();
            completed += dram.drain_completed().len();
            if completed == 256 {
                break;
            }
        }
        let stats = dram.stats();
        assert_eq!(completed, 256);
        assert_eq!(stats.reads, 256);
        assert_eq!(dram.outstanding(), 0);
        assert!(
            stats.row_hit_rate() > 0.8,
            "hit rate {}",
            stats.row_hit_rate()
        );
    }
}
