//! # palermo-dram
//!
//! A cycle-level DDR4 DRAM and memory-controller model, standing in for the
//! Ramulator substrate the Palermo paper evaluates on. The model captures
//! the mechanisms that matter for the paper's results:
//!
//! * per-bank row-buffer state with full ACT/PRE/RD/WR timing
//!   (tCL/tRCD/tRP/tRAS/tCCD/tRRD/tFAW/tWR/tWTR/tRTP);
//! * FR-FCFS scheduling with bounded per-channel queues, so memory-level
//!   parallelism — the resource Palermo unlocks — is faithfully rewarded;
//! * channel/bank-group/bank address interleaving;
//! * the statistics the evaluation plots: bandwidth utilisation, row-hit and
//!   bank-conflict rates, queue occupancy and request latency.
//!
//! The crate is independent of ORAM: it accepts plain 64-byte read/write
//! bursts through [`system::DramSystem::try_enqueue`] and reports
//! completions through [`system::DramSystem::drain_completed`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod address;
pub mod calendar;
pub mod channel;
pub mod config;
pub mod mintree;
pub mod profile;
pub mod request;
pub mod stats;
pub mod system;

pub use channel::ChannelTickResult;
pub use config::{DramConfig, DramConfigError};
pub use profile::{EnergyCoefficients, HardwareProfile, ProfileError, ProvisioningOverrides};
pub use request::{MemCompletion, MemOpKind, MemRequest, RequestId, RowBufferResult};
pub use stats::DramStats;
pub use system::DramSystem;
