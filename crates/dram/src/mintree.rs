//! A flat tournament tree maintaining running minima over a fixed set of
//! slots — the O(log B) min structure the per-bank scheduler caches hang off.
//!
//! Each DRAM channel keeps one tree per FR-FCFS pass (column / activate /
//! precharge), with one leaf per bank holding that bank's *bank-local*
//! earliest-ready cycle for the pass (`u64::MAX` when the bank has no
//! candidate). Bank-local values only change when a command issues to that
//! bank or its queue membership changes, so a single O(log B) [`MinTree::set`]
//! keeps the structure current while cold banks are never rescanned. The
//! channel-global constraints (command-bus spacing, tCCD_L, tRRD, tFAW) are
//! applied at query time per bank group, which is why [`MinTree::range_min`]
//! exposes contiguous-range minima: banks are laid out bank-group-major, so
//! one range query per group yields the group's local minimum to combine
//! with the group's global floor.

/// Fixed-size tournament (segment) tree over `u64` values with `min` as the
/// combining operation. Missing values are represented as `u64::MAX`.
#[derive(Debug, Clone)]
pub struct MinTree {
    /// Power-of-two leaf span; leaves live at `vals[n..n + leaves]`.
    n: usize,
    leaves: usize,
    vals: Vec<u64>,
}

impl MinTree {
    /// Creates a tree over `leaves` slots, all initialised to `u64::MAX`.
    pub fn new(leaves: usize) -> Self {
        let n = leaves.next_power_of_two().max(1);
        MinTree {
            n,
            leaves,
            vals: vec![u64::MAX; 2 * n],
        }
    }

    /// Number of slots the tree was built over.
    pub fn len(&self) -> usize {
        self.leaves
    }

    /// Returns `true` if the tree has no slots.
    pub fn is_empty(&self) -> bool {
        self.leaves == 0
    }

    /// Current value of slot `i`.
    pub fn get(&self, i: usize) -> u64 {
        self.vals[self.n + i]
    }

    /// Sets slot `i` to `v` and rebuilds the O(log B) path to the root.
    pub fn set(&mut self, i: usize, v: u64) {
        let mut node = self.n + i;
        if self.vals[node] == v {
            return;
        }
        self.vals[node] = v;
        while node > 1 {
            node /= 2;
            let combined = self.vals[2 * node].min(self.vals[2 * node + 1]);
            if self.vals[node] == combined {
                break;
            }
            self.vals[node] = combined;
        }
    }

    /// Minimum over all slots (`u64::MAX` when every slot is empty).
    pub fn min(&self) -> u64 {
        self.vals[1]
    }

    /// Minimum over the aligned power-of-two block `[lo, lo + len)` as a
    /// single internal-node lookup: the block is exactly one subtree of the
    /// padded span, so its running minimum is already materialised. O(1).
    pub fn subtree_min(&self, lo: usize, len: usize) -> u64 {
        debug_assert!(len.is_power_of_two() && lo.is_multiple_of(len) && lo + len <= self.n);
        self.vals[(self.n + lo) / len]
    }

    /// Minimum over the half-open slot range `[lo, hi)`.
    pub fn range_min(&self, lo: usize, hi: usize) -> u64 {
        debug_assert!(lo <= hi && hi <= self.leaves);
        let mut best = u64::MAX;
        let (mut l, mut r) = (self.n + lo, self.n + hi);
        while l < r {
            if l % 2 == 1 {
                best = best.min(self.vals[l]);
                l += 1;
            }
            if r % 2 == 1 {
                r -= 1;
                best = best.min(self.vals[r]);
            }
            l /= 2;
            r /= 2;
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty() {
        let t = MinTree::new(16);
        assert_eq!(t.min(), u64::MAX);
        assert_eq!(t.range_min(0, 16), u64::MAX);
        assert_eq!(t.len(), 16);
        assert!(!t.is_empty());
    }

    #[test]
    fn tracks_global_min_through_updates() {
        let mut t = MinTree::new(16);
        t.set(3, 100);
        t.set(9, 40);
        t.set(15, 70);
        assert_eq!(t.min(), 40);
        t.set(9, u64::MAX); // candidate disappears
        assert_eq!(t.min(), 70);
        t.set(0, 5);
        assert_eq!(t.min(), 5);
        assert_eq!(t.get(0), 5);
    }

    #[test]
    fn range_min_matches_naive_scan() {
        // Non-power-of-two slot count plus exhaustive range checks against a
        // reference array.
        let slots = 13;
        let mut t = MinTree::new(slots);
        let mut vals = vec![u64::MAX; slots];
        let mut state: u64 = 0x9E37_79B9;
        for step in 0..200 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let i = (state >> 33) as usize % slots;
            let v = if step % 7 == 0 { u64::MAX } else { state >> 40 };
            vals[i] = v;
            t.set(i, v);
            for lo in 0..=slots {
                for hi in lo..=slots {
                    let naive = vals[lo..hi].iter().copied().min().unwrap_or(u64::MAX);
                    assert_eq!(t.range_min(lo, hi), naive, "range [{lo}, {hi})");
                }
            }
        }
        assert_eq!(t.min(), vals.iter().copied().min().unwrap());
    }

    #[test]
    fn subtree_min_matches_range_min_on_aligned_blocks() {
        let slots = 16;
        let mut t = MinTree::new(slots);
        let mut state: u64 = 0xDEAD_BEEF;
        for _ in 0..100 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            t.set((state >> 33) as usize % slots, state >> 40);
            for len in [1usize, 2, 4, 8, 16] {
                for g in 0..slots / len {
                    let lo = g * len;
                    assert_eq!(
                        t.subtree_min(lo, len),
                        t.range_min(lo, lo + len),
                        "block [{lo}, {})",
                        lo + len
                    );
                }
            }
        }
    }

    #[test]
    fn single_slot_tree() {
        let mut t = MinTree::new(1);
        assert_eq!(t.min(), u64::MAX);
        t.set(0, 42);
        assert_eq!(t.min(), 42);
        assert_eq!(t.range_min(0, 1), 42);
        assert_eq!(t.range_min(0, 0), u64::MAX);
    }
}
