//! Physical-address to DRAM-coordinate mapping.
//!
//! The mapping interleaves consecutive 64-byte bursts across channels first,
//! then across columns within a row, then bank groups and banks, with the
//! row index in the most significant bits:
//!
//! ```text
//!   | row | bank | bank group | column | channel | 6-bit offset |
//! ```
//!
//! Consecutive blocks of an ORAM bucket therefore spread across channels
//! (memory-level parallelism within a bucket read) while staying within one
//! DRAM row per channel (row-buffer locality for reshuffles and evictions),
//! matching the locality structure the paper's row-hit statistics imply.

use crate::config::DramConfig;

/// Decomposed DRAM coordinates of one 64-byte burst.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramCoord {
    /// Channel index.
    pub channel: u32,
    /// Bank group index within the rank.
    pub bank_group: u32,
    /// Bank index within the bank group.
    pub bank: u32,
    /// Row index within the bank.
    pub row: u64,
    /// Column (burst) index within the row.
    pub column: u64,
}

impl DramCoord {
    /// Flat bank index within the channel (bank group major).
    pub fn flat_bank(&self, config: &DramConfig) -> usize {
        (self.bank_group * config.banks_per_group + self.bank) as usize
    }
}

/// Precomputed shift widths for an all-power-of-two geometry, letting
/// [`AddressMapper::map`] run as shifts and masks instead of a chain of
/// runtime divisions. The mapper sits on every enqueue and every
/// queue-admission check, so the division chain is measurable in the
/// end-to-end tick loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Pow2Map {
    burst: u32,
    channels: u32,
    columns: u32,
    bank_groups: u32,
    banks_per_group: u32,
    rows: u32,
}

/// The address-mapping function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressMapper {
    config: DramConfig,
    /// Present when every divisor in the mapping chain is a power of two
    /// (true of all shipped DDR4 geometries); `None` falls back to the
    /// general division path.
    pow2: Option<Pow2Map>,
}

impl AddressMapper {
    /// Creates a mapper for the given configuration.
    pub fn new(config: DramConfig) -> Self {
        let dims = [
            config.burst_bytes,
            u64::from(config.channels),
            config.columns_per_row(),
            u64::from(config.bank_groups),
            u64::from(config.banks_per_group),
            config.rows,
        ];
        let pow2 = dims.iter().all(|d| d.is_power_of_two()).then(|| Pow2Map {
            burst: config.burst_bytes.trailing_zeros(),
            channels: config.channels.trailing_zeros(),
            columns: config.columns_per_row().trailing_zeros(),
            bank_groups: config.bank_groups.trailing_zeros(),
            banks_per_group: config.banks_per_group.trailing_zeros(),
            rows: config.rows.trailing_zeros(),
        });
        AddressMapper { config, pow2 }
    }

    /// Maps a byte address to DRAM coordinates.
    pub fn map(&self, addr: u64) -> DramCoord {
        if let Some(p) = &self.pow2 {
            let mut a = addr >> p.burst;
            let channel = (a & ((1 << p.channels) - 1)) as u32;
            a >>= p.channels;
            let column = a & ((1 << p.columns) - 1);
            a >>= p.columns;
            let bank_group = (a & ((1 << p.bank_groups) - 1)) as u32;
            a >>= p.bank_groups;
            let bank = (a & ((1 << p.banks_per_group) - 1)) as u32;
            a >>= p.banks_per_group;
            let row = a & ((1u64 << p.rows) - 1);
            return DramCoord {
                channel,
                bank_group,
                bank,
                row,
                column,
            };
        }
        let cfg = &self.config;
        let mut a = addr / cfg.burst_bytes;
        let channel = (a % u64::from(cfg.channels)) as u32;
        a /= u64::from(cfg.channels);
        let column = a % cfg.columns_per_row();
        a /= cfg.columns_per_row();
        let bank_group = (a % u64::from(cfg.bank_groups)) as u32;
        a /= u64::from(cfg.bank_groups);
        let bank = (a % u64::from(cfg.banks_per_group)) as u32;
        a /= u64::from(cfg.banks_per_group);
        let row = a % cfg.rows;
        DramCoord {
            channel,
            bank_group,
            bank,
            row,
            column,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapper() -> AddressMapper {
        AddressMapper::new(DramConfig::default())
    }

    #[test]
    fn consecutive_blocks_interleave_channels() {
        let m = mapper();
        let coords: Vec<u32> = (0..8).map(|i| m.map(i * 64).channel).collect();
        assert_eq!(coords, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn blocks_within_a_row_share_row_and_bank() {
        let m = mapper();
        // Blocks 0, 4, 8, ... land in channel 0 and walk the columns of one row.
        let a = m.map(0);
        let b = m.map(4 * 64);
        assert_eq!(a.channel, b.channel);
        assert_eq!(a.row, b.row);
        assert_eq!(a.bank_group, b.bank_group);
        assert_eq!(a.bank, b.bank);
        assert_eq!(b.column, a.column + 1);
    }

    #[test]
    fn row_change_after_row_bytes_times_channels() {
        let m = mapper();
        let cfg = DramConfig::default();
        let span = cfg.row_bytes * u64::from(cfg.channels);
        let a = m.map(0);
        let b = m.map(span);
        assert_eq!(a.channel, b.channel);
        assert!(a.bank_group != b.bank_group || a.bank != b.bank || a.row != b.row);
    }

    #[test]
    fn sub_block_offsets_map_to_same_burst() {
        let m = mapper();
        assert_eq!(m.map(0), m.map(63));
        assert_ne!(m.map(0), m.map(64));
    }

    #[test]
    fn pow2_fast_path_matches_division_chain() {
        // The default geometry takes the shift/mask path; force the general
        // division path by clearing the precomputed shifts and compare.
        let fast = mapper();
        assert!(fast.pow2.is_some(), "default geometry should be pow2");
        let slow = AddressMapper { pow2: None, ..fast };
        let mut a: u64 = 0x0123_4567_89AB_CDEF;
        for _ in 0..10_000 {
            a = a.wrapping_mul(6364136223846793005).wrapping_add(1);
            let addr = a >> 20; // keep within a plausible physical range
            assert_eq!(fast.map(addr), slow.map(addr), "addr {addr:#x}");
        }
    }

    #[test]
    fn coordinates_within_bounds() {
        let m = mapper();
        let cfg = DramConfig::default();
        for i in 0..10_000u64 {
            let c = m.map(i * 64 * 977);
            assert!(c.channel < cfg.channels);
            assert!(c.bank_group < cfg.bank_groups);
            assert!(c.bank < cfg.banks_per_group);
            assert!(c.row < cfg.rows);
            assert!(c.column < cfg.columns_per_row());
            assert!(c.flat_bank(&cfg) < cfg.banks_per_channel() as usize);
        }
    }
}
