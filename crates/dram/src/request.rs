//! Memory requests and completions exchanged with the DRAM model.

/// Identifier the issuer attaches to a request so completions can be matched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub u64);

/// Kind of memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemOpKind {
    /// A 64-byte read burst.
    Read,
    /// A 64-byte write burst.
    Write,
}

/// A request presented to the memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Issuer-assigned identifier.
    pub id: RequestId,
    /// Byte address of the burst.
    pub addr: u64,
    /// Read or write.
    pub kind: MemOpKind,
}

impl MemRequest {
    /// Convenience constructor for a read.
    pub fn read(id: u64, addr: u64) -> Self {
        MemRequest {
            id: RequestId(id),
            addr,
            kind: MemOpKind::Read,
        }
    }

    /// Convenience constructor for a write.
    pub fn write(id: u64, addr: u64) -> Self {
        MemRequest {
            id: RequestId(id),
            addr,
            kind: MemOpKind::Write,
        }
    }

    /// Returns `true` for write requests.
    pub fn is_write(&self) -> bool {
        self.kind == MemOpKind::Write
    }
}

/// How a request's column access interacted with the row buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowBufferResult {
    /// The target row was already open.
    Hit,
    /// The bank was precharged; only an activate was needed.
    Miss,
    /// A different row was open and had to be precharged first.
    Conflict,
}

/// A completed request handed back to the issuer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemCompletion {
    /// The identifier the issuer supplied.
    pub id: RequestId,
    /// Byte address of the burst.
    pub addr: u64,
    /// Read or write.
    pub kind: MemOpKind,
    /// Cycle at which the request entered the controller queue.
    pub enqueued_at: u64,
    /// Cycle at which the data transfer finished (reads) or the write was
    /// issued to the bank (writes, which are posted).
    pub completed_at: u64,
    /// Row-buffer outcome of the access.
    pub row_result: RowBufferResult,
}

impl MemCompletion {
    /// Queueing plus service latency in memory-clock cycles.
    pub fn latency(&self) -> u64 {
        self.completed_at.saturating_sub(self.enqueued_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        assert!(!MemRequest::read(1, 0x40).is_write());
        assert!(MemRequest::write(2, 0x80).is_write());
        assert_eq!(MemRequest::read(1, 0x40).id, RequestId(1));
    }

    #[test]
    fn completion_latency() {
        let c = MemCompletion {
            id: RequestId(0),
            addr: 0,
            kind: MemOpKind::Read,
            enqueued_at: 100,
            completed_at: 146,
            row_result: RowBufferResult::Hit,
        };
        assert_eq!(c.latency(), 46);
    }
}
