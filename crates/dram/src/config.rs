//! DRAM organisation and timing configuration.
//!
//! Defaults model the paper's outsourced memory: 4 channels of DDR4-3200
//! (Table III), 102.4 GB/s aggregate peak bandwidth. All timing parameters
//! are expressed in memory-clock cycles at 1600 MHz (0.625 ns per cycle),
//! which is also the clock the Palermo controller runs at, so the two sides
//! of the co-design share a clock domain in the simulator exactly as they do
//! in the paper's evaluation.

use std::fmt;

/// A structural inconsistency in a [`DramConfig`].
///
/// Every reject names the offending field(s) so profile files
/// ([`crate::profile`]) can report precisely what to fix, and so callers
/// can match on the failure class instead of scraping strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DramConfigError {
    /// An interleaving field must be a non-zero power of two
    /// (the address mapper decomposes addresses by bit slicing).
    NotPowerOfTwo {
        /// Field name.
        field: &'static str,
        /// The rejected value.
        value: u64,
    },
    /// A count or timing field that must be non-zero was zero (a zero
    /// queue capacity can accept nothing; a zero burst length would make
    /// bandwidth infinite and scheduling degenerate).
    ZeroField {
        /// Field name.
        field: &'static str,
    },
    /// The row buffer must hold at least one burst.
    RowSmallerThanBurst {
        /// Configured row size in bytes.
        row_bytes: u64,
        /// Configured burst size in bytes.
        burst_bytes: u64,
    },
    /// A timing cross-constraint is violated (e.g. `t_faw < 4 * t_rrd_s`
    /// would make the four-activate window weaker than plain
    /// activate-to-activate spacing — no real part is specified that way).
    TimingInconsistent {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
}

impl fmt::Display for DramConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramConfigError::NotPowerOfTwo { field, value } => {
                write!(f, "{field} must be a non-zero power of two, got {value}")
            }
            DramConfigError::ZeroField { field } => write!(f, "{field} must be non-zero"),
            DramConfigError::RowSmallerThanBurst {
                row_bytes,
                burst_bytes,
            } => write!(
                f,
                "row_bytes ({row_bytes}) must be at least burst_bytes ({burst_bytes})"
            ),
            DramConfigError::TimingInconsistent { reason } => {
                write!(f, "inconsistent timing: {reason}")
            }
        }
    }
}

impl std::error::Error for DramConfigError {}

/// Organisation and timing of the modelled DRAM subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of independent channels.
    pub channels: u32,
    /// Ranks per channel (the model folds rank effects into bank timing).
    pub ranks: u32,
    /// Bank groups per rank.
    pub bank_groups: u32,
    /// Banks per bank group.
    pub banks_per_group: u32,
    /// Rows per bank.
    pub rows: u64,
    /// Row size in bytes (the row-buffer / DRAM page size).
    pub row_bytes: u64,
    /// Burst granularity in bytes (one 64-byte cache line per burst).
    pub burst_bytes: u64,
    /// Read/write queue capacity per channel.
    pub queue_capacity: usize,

    /// CAS latency (column read to first data), cycles.
    pub t_cl: u64,
    /// CAS write latency, cycles.
    pub t_cwl: u64,
    /// RAS-to-CAS delay (activate to column command), cycles.
    pub t_rcd: u64,
    /// Row precharge time, cycles.
    pub t_rp: u64,
    /// Minimum row-open time (activate to precharge), cycles.
    pub t_ras: u64,
    /// Activate-to-activate delay, same bank, cycles.
    pub t_rc: u64,
    /// Column-to-column delay, different bank group, cycles.
    pub t_ccd_s: u64,
    /// Column-to-column delay, same bank group, cycles.
    pub t_ccd_l: u64,
    /// Activate-to-activate delay across banks (short), cycles.
    pub t_rrd_s: u64,
    /// Activate-to-activate delay across banks (long / same group), cycles.
    pub t_rrd_l: u64,
    /// Four-activate window, cycles.
    pub t_faw: u64,
    /// Write recovery time (end of write burst to precharge), cycles.
    pub t_wr: u64,
    /// Write-to-read turnaround, cycles.
    pub t_wtr: u64,
    /// Read-to-precharge delay, cycles.
    pub t_rtp: u64,
    /// Burst length in bus cycles (BL8 on a DDR bus occupies 4 clock cycles).
    pub t_bl: u64,
}

impl DramConfig {
    /// DDR4-3200 with 4 channels: the Table III configuration.
    pub fn ddr4_3200_quad_channel() -> Self {
        DramConfig {
            channels: 4,
            ranks: 1,
            bank_groups: 4,
            banks_per_group: 4,
            rows: 1 << 16,
            row_bytes: 8 * 1024,
            burst_bytes: 64,
            queue_capacity: 32,
            t_cl: 22,
            t_cwl: 16,
            t_rcd: 22,
            t_rp: 22,
            t_ras: 52,
            t_rc: 74,
            t_ccd_s: 4,
            t_ccd_l: 8,
            t_rrd_s: 4,
            t_rrd_l: 8,
            t_faw: 26,
            t_wr: 24,
            t_wtr: 8,
            t_rtp: 12,
            t_bl: 4,
        }
    }

    /// A single-channel variant used by scaling studies and unit tests.
    pub fn ddr4_3200_single_channel() -> Self {
        DramConfig {
            channels: 1,
            ..Self::ddr4_3200_quad_channel()
        }
    }

    /// Total number of banks per channel.
    pub fn banks_per_channel(&self) -> u32 {
        self.ranks * self.bank_groups * self.banks_per_group
    }

    /// Number of 64-byte bursts per row.
    pub fn columns_per_row(&self) -> u64 {
        self.row_bytes / self.burst_bytes
    }

    /// Peak data-bus bandwidth in bytes per memory-clock cycle, aggregated
    /// over all channels (one burst every `t_bl` cycles per channel).
    pub fn peak_bytes_per_cycle(&self) -> f64 {
        self.channels as f64 * self.burst_bytes as f64 / self.t_bl as f64
    }

    /// Peak bandwidth in GB/s at the nominal 1600 MHz clock.
    pub fn peak_gbps(&self) -> f64 {
        self.peak_bytes_per_cycle() * 1.6
    }

    /// The DRAM organisation a hardware profile describes (see
    /// [`crate::profile::HardwareProfile`]). The profile's embedded config
    /// is already validated at parse time, so this is a plain projection.
    pub fn from_profile(profile: &crate::profile::HardwareProfile) -> Self {
        profile.dram
    }

    /// Validates internal consistency: non-zero geometry, power-of-two
    /// interleaving fields, and timing cross-constraints (a four-activate
    /// window weaker than plain activate spacing, a row cycle shorter than
    /// open-plus-precharge, or long column/activate delays below their
    /// short variants are all nonsense no real part is specified with).
    ///
    /// # Errors
    ///
    /// Returns the first [`DramConfigError`] found, checking shape before
    /// timing.
    pub fn validate(&self) -> Result<(), DramConfigError> {
        let pow2 = [
            ("channels", u64::from(self.channels)),
            ("bank_groups", u64::from(self.bank_groups)),
            ("banks_per_group", u64::from(self.banks_per_group)),
            ("rows", self.rows),
            ("row_bytes", self.row_bytes),
            ("burst_bytes", self.burst_bytes),
        ];
        for (field, value) in pow2 {
            if value == 0 || !value.is_power_of_two() {
                return Err(DramConfigError::NotPowerOfTwo { field, value });
            }
        }
        let non_zero = [
            ("ranks", u64::from(self.ranks)),
            ("queue_capacity", self.queue_capacity as u64),
            ("t_cl", self.t_cl),
            ("t_cwl", self.t_cwl),
            ("t_rcd", self.t_rcd),
            ("t_rp", self.t_rp),
            ("t_ras", self.t_ras),
            ("t_rc", self.t_rc),
            ("t_ccd_s", self.t_ccd_s),
            ("t_rrd_s", self.t_rrd_s),
            ("t_faw", self.t_faw),
            ("t_wr", self.t_wr),
            ("t_wtr", self.t_wtr),
            ("t_rtp", self.t_rtp),
            ("t_bl", self.t_bl),
        ];
        for (field, value) in non_zero {
            if value == 0 {
                return Err(DramConfigError::ZeroField { field });
            }
        }
        if self.row_bytes < self.burst_bytes {
            return Err(DramConfigError::RowSmallerThanBurst {
                row_bytes: self.row_bytes,
                burst_bytes: self.burst_bytes,
            });
        }
        let timing = [
            (
                self.t_faw >= 4 * self.t_rrd_s,
                format!(
                    "t_faw ({}) < 4 * t_rrd_s ({})",
                    self.t_faw,
                    4 * self.t_rrd_s
                ),
            ),
            (
                self.t_ras >= self.t_rcd,
                format!("t_ras ({}) < t_rcd ({})", self.t_ras, self.t_rcd),
            ),
            (
                self.t_rc >= self.t_ras + self.t_rp,
                format!(
                    "t_rc ({}) < t_ras + t_rp ({})",
                    self.t_rc,
                    self.t_ras + self.t_rp
                ),
            ),
            (
                self.t_ccd_l >= self.t_ccd_s,
                format!("t_ccd_l ({}) < t_ccd_s ({})", self.t_ccd_l, self.t_ccd_s),
            ),
            (
                self.t_rrd_l >= self.t_rrd_s,
                format!("t_rrd_l ({}) < t_rrd_s ({})", self.t_rrd_l, self.t_rrd_s),
            ),
        ];
        for (ok, reason) in timing {
            if !ok {
                return Err(DramConfigError::TimingInconsistent { reason });
            }
        }
        Ok(())
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::ddr4_3200_quad_channel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table_iii() {
        let cfg = DramConfig::default();
        assert_eq!(cfg.channels, 4);
        assert!((cfg.peak_gbps() - 102.4).abs() < 0.1, "{}", cfg.peak_gbps());
        assert_eq!(cfg.banks_per_channel(), 16);
        assert_eq!(cfg.columns_per_row(), 128);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn single_channel_quarter_bandwidth() {
        let cfg = DramConfig::ddr4_3200_single_channel();
        assert!((cfg.peak_gbps() - 25.6).abs() < 0.1);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_fields() {
        assert_eq!(
            DramConfig {
                channels: 3,
                ..DramConfig::default()
            }
            .validate(),
            Err(DramConfigError::NotPowerOfTwo {
                field: "channels",
                value: 3
            })
        );
        assert_eq!(
            DramConfig {
                queue_capacity: 0,
                ..DramConfig::default()
            }
            .validate(),
            Err(DramConfigError::ZeroField {
                field: "queue_capacity"
            })
        );
        assert_eq!(
            DramConfig {
                row_bytes: 32,
                ..DramConfig::default()
            }
            .validate(),
            Err(DramConfigError::RowSmallerThanBurst {
                row_bytes: 32,
                burst_bytes: 64
            })
        );
    }

    #[test]
    fn validation_rejects_zero_geometry_and_timing() {
        // Each reject the satellite bugfix names: zero channels, zero
        // banks, zero queue capacity, zero burst length.
        for cfg in [
            DramConfig {
                channels: 0,
                ..DramConfig::default()
            },
            DramConfig {
                banks_per_group: 0,
                ..DramConfig::default()
            },
            DramConfig {
                bank_groups: 0,
                ..DramConfig::default()
            },
            DramConfig {
                queue_capacity: 0,
                ..DramConfig::default()
            },
            DramConfig {
                burst_bytes: 0,
                ..DramConfig::default()
            },
            DramConfig {
                t_bl: 0,
                ..DramConfig::default()
            },
            DramConfig {
                ranks: 0,
                ..DramConfig::default()
            },
        ] {
            assert!(cfg.validate().is_err(), "{cfg:?} should not validate");
        }
    }

    #[test]
    fn validation_rejects_inconsistent_timing() {
        let cfg = DramConfig {
            t_faw: 10, // < 4 * t_rrd_s = 16
            ..DramConfig::default()
        };
        match cfg.validate() {
            Err(DramConfigError::TimingInconsistent { reason }) => {
                assert!(reason.contains("t_faw"), "{reason}");
            }
            other => panic!("expected TimingInconsistent, got {other:?}"),
        }
        let cfg = DramConfig {
            t_rc: 50, // < t_ras + t_rp = 74
            ..DramConfig::default()
        };
        assert!(matches!(
            cfg.validate(),
            Err(DramConfigError::TimingInconsistent { .. })
        ));
        let cfg = DramConfig {
            t_ccd_l: 2, // < t_ccd_s = 4
            ..DramConfig::default()
        };
        assert!(matches!(
            cfg.validate(),
            Err(DramConfigError::TimingInconsistent { .. })
        ));
    }

    #[test]
    fn errors_render_readable_messages() {
        let err = DramConfig {
            channels: 3,
            ..DramConfig::default()
        }
        .validate()
        .unwrap_err();
        assert_eq!(
            err.to_string(),
            "channels must be a non-zero power of two, got 3"
        );
        let err = DramConfig {
            t_bl: 0,
            ..DramConfig::default()
        }
        .validate()
        .unwrap_err();
        assert_eq!(err.to_string(), "t_bl must be non-zero");
    }

    #[test]
    fn from_profile_projects_the_embedded_config() {
        let profile = crate::profile::HardwareProfile::ddr4_3200();
        assert_eq!(
            DramConfig::from_profile(&profile),
            DramConfig::ddr4_3200_quad_channel()
        );
    }
}
