//! Declarative hardware profiles: a memory part as a `key = value` file.
//!
//! A [`HardwareProfile`] bundles everything the simulator needs to model a
//! memory technology — the full [`DramConfig`] organisation and timing set,
//! the energy coefficients that turn the DRAM counters into joules
//! ([`EnergyCoefficients`]), and optional controller provisioning overrides
//! ([`ProvisioningOverrides`]). Profiles exist so "same workload, different
//! memory part" is a data change, not a code change: the named profiles
//! checked in under `profiles/` span DDR4-3200 (byte-identical to the
//! hardcoded Table III default — pinned by test), a DDR5-class part and an
//! HBM2e-class part, and `Experiment::sweep_hardware` turns them into a
//! grid axis.
//!
//! # File format
//!
//! The parser is hand-rolled and dependency-free (same constraint as the
//! vendored criterion/proptest shims: no registry access). One `key =
//! value` pair per line; `#` starts a comment line; blank lines are
//! ignored. There are no inline comments, no sections, and **no
//! defaults**: every non-optional key must appear exactly once, unknown or
//! duplicate keys are typed errors, and the embedded [`DramConfig`] must
//! pass [`DramConfig::validate`] (so e.g. `t_faw < 4 * t_rrd_s` is
//! rejected at parse time). [`HardwareProfile::to_file_string`] renders
//! the canonical form; serialize → parse → serialize is byte-identical
//! (property-tested in `tests/profile_roundtrip.rs`).
//!
//! File I/O happens in [`HardwareProfile::load`] only — profiles are
//! resolved before a simulation starts, never inside the loop, keeping the
//! determinism contract ambient-state-free (the `palermo-audit` D02 lint
//! covers this module).

use crate::config::{DramConfig, DramConfigError};
use std::fmt;
use std::path::Path;

/// Energy coefficients of a memory part, calibrated at class level against
/// published numbers (DRAMPower-style models and vendor power calculators).
/// All dynamic coefficients are per-event picojoules; background power is
/// milliwatts per bank, integrated over the measured window at the nominal
/// 1600 MHz clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyCoefficients {
    /// Energy per row activation (ACT + implied precharge), picojoules.
    pub pj_per_act: f64,
    /// Energy per 64-byte read burst, picojoules.
    pub pj_per_rd_burst: f64,
    /// Energy per 64-byte write burst, picojoules.
    pub pj_per_wr_burst: f64,
    /// Background (standby + refresh) power per bank, milliwatts.
    pub background_mw_per_bank: f64,
}

impl EnergyCoefficients {
    /// DDR4-3200 class coefficients (the Table III part).
    pub fn ddr4_3200() -> Self {
        EnergyCoefficients {
            pj_per_act: 1700.0,
            pj_per_rd_burst: 4600.0,
            pj_per_wr_burst: 4800.0,
            background_mw_per_bank: 9.0,
        }
    }
}

impl Default for EnergyCoefficients {
    fn default() -> Self {
        Self::ddr4_3200()
    }
}

/// Optional controller provisioning overrides a profile may carry: a
/// memory part can imply a different controller build-out (e.g. an
/// on-package HBM part affording a larger tree-top cache). `None` means
/// "keep the system's default". Applied by
/// `SystemConfig::apply_hardware` in `palermo-sim`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProvisioningOverrides {
    /// PE mesh rows.
    pub pe_rows: Option<u32>,
    /// PE mesh columns (concurrent ORAM requests).
    pub pe_columns: Option<u32>,
    /// Total tree-top cache capacity in bytes.
    pub treetop_bytes: Option<u64>,
    /// On-chip PosMap3 capacity in bytes.
    pub posmap3_bytes: Option<u64>,
    /// Total stash capacity in bytes.
    pub stash_bytes: Option<u64>,
}

impl ProvisioningOverrides {
    /// Returns `true` when no override is set.
    pub fn is_empty(&self) -> bool {
        *self == ProvisioningOverrides::default()
    }
}

/// A complete declarative description of a memory part.
#[derive(Debug, Clone, PartialEq)]
pub struct HardwareProfile {
    /// Profile name: ASCII letters/digits plus `-`, `_` and `.` (so names
    /// survive CSV cells and run labels unescaped), at most 64 bytes.
    pub name: String,
    /// DRAM organisation and timing.
    pub dram: DramConfig,
    /// Energy coefficients.
    pub energy: EnergyCoefficients,
    /// Controller provisioning overrides (all `None` when the profile
    /// keeps the system defaults).
    pub provisioning: ProvisioningOverrides,
}

/// A typed parse/validation failure for a profile file. Line numbers are
/// 1-based.
#[derive(Debug, Clone, PartialEq)]
pub enum ProfileError {
    /// The file could not be read (the I/O error is flattened to its
    /// message so the error stays comparable).
    Io {
        /// Path that failed to load.
        path: String,
        /// The underlying I/O error message.
        message: String,
    },
    /// A non-comment line is not a `key = value` pair.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// The offending line content (trimmed).
        content: String,
    },
    /// A key this format does not define. Unknown keys are never ignored:
    /// a typo would otherwise silently fall back to a default.
    UnknownKey {
        /// 1-based line number.
        line: usize,
        /// The unknown key.
        key: String,
    },
    /// A key appeared more than once. Duplicates are never
    /// last-writer-wins: the file is ambiguous, so it is rejected.
    DuplicateKey {
        /// 1-based line number of the second occurrence.
        line: usize,
        /// The duplicated key.
        key: String,
    },
    /// A value failed to parse as its key's type (or an energy
    /// coefficient was negative/non-finite).
    InvalidValue {
        /// 1-based line number.
        line: usize,
        /// The key whose value was rejected.
        key: String,
        /// The rejected value text.
        value: String,
    },
    /// A required key is missing. Missing keys are never defaulted.
    MissingKey {
        /// The missing key.
        key: String,
    },
    /// The profile name is empty, too long, or contains characters that
    /// would not survive run labels and CSV cells.
    InvalidName {
        /// The rejected name.
        name: String,
    },
    /// The assembled [`DramConfig`] failed structural validation.
    Config(DramConfigError),
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::Io { path, message } => {
                write!(f, "cannot read profile '{path}': {message}")
            }
            ProfileError::Syntax { line, content } => {
                write!(f, "line {line}: expected `key = value`, got '{content}'")
            }
            ProfileError::UnknownKey { line, key } => {
                write!(f, "line {line}: unknown key '{key}'")
            }
            ProfileError::DuplicateKey { line, key } => {
                write!(f, "line {line}: duplicate key '{key}'")
            }
            ProfileError::InvalidValue { line, key, value } => {
                write!(f, "line {line}: invalid value '{value}' for key '{key}'")
            }
            ProfileError::MissingKey { key } => write!(f, "missing required key '{key}'"),
            ProfileError::InvalidName { name } => write!(
                f,
                "invalid profile name '{name}' (ASCII alphanumerics, '-', '_', '.'; \
                 1-64 bytes)"
            ),
            ProfileError::Config(e) => write!(f, "invalid DRAM configuration: {e}"),
        }
    }
}

impl std::error::Error for ProfileError {}

impl From<DramConfigError> for ProfileError {
    fn from(e: DramConfigError) -> Self {
        ProfileError::Config(e)
    }
}

/// Returns `true` when `name` is a legal profile name.
fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.')
}

/// The required keys, in canonical serialization order.
const REQUIRED_KEYS: &[&str] = &[
    "name",
    "channels",
    "ranks",
    "bank_groups",
    "banks_per_group",
    "rows",
    "row_bytes",
    "burst_bytes",
    "queue_capacity",
    "t_cl",
    "t_cwl",
    "t_rcd",
    "t_rp",
    "t_ras",
    "t_rc",
    "t_ccd_s",
    "t_ccd_l",
    "t_rrd_s",
    "t_rrd_l",
    "t_faw",
    "t_wr",
    "t_wtr",
    "t_rtp",
    "t_bl",
    "pj_per_act",
    "pj_per_rd_burst",
    "pj_per_wr_burst",
    "background_mw_per_bank",
];

/// The optional controller-override keys, in canonical order.
const OPTIONAL_KEYS: &[&str] = &[
    "pe_rows",
    "pe_columns",
    "treetop_bytes",
    "posmap3_bytes",
    "stash_bytes",
];

/// Accumulates parsed keys; every field starts `None` and may be set once.
#[derive(Default)]
struct PartialProfile {
    name: Option<String>,
    u64s: Vec<(&'static str, u64)>,
    f64s: Vec<(&'static str, f64)>,
}

impl PartialProfile {
    fn seen(&self, key: &str) -> bool {
        match key {
            "name" => self.name.is_some(),
            _ => {
                self.u64s.iter().any(|(k, _)| *k == key) || self.f64s.iter().any(|(k, _)| *k == key)
            }
        }
    }

    fn u64_field(&self, key: &str) -> Option<u64> {
        self.u64s.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }

    fn f64_field(&self, key: &str) -> Option<f64> {
        self.f64s.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }
}

/// Keys holding floating-point energy coefficients.
const F64_KEYS: &[&str] = &[
    "pj_per_act",
    "pj_per_rd_burst",
    "pj_per_wr_burst",
    "background_mw_per_bank",
];

/// Canonical static name for a key (so the accumulator can store
/// `&'static str` without leaking the caller's buffer).
fn canonical_key(key: &str) -> Option<&'static str> {
    REQUIRED_KEYS
        .iter()
        .chain(OPTIONAL_KEYS.iter())
        .find(|k| **k == key)
        .copied()
}

impl HardwareProfile {
    /// Parses the `key = value` profile format. Strict by design: unknown
    /// keys, duplicate keys, missing keys, malformed values and
    /// structurally invalid configurations are all typed errors — nothing
    /// is ever defaulted or ignored.
    ///
    /// # Errors
    ///
    /// Returns the first [`ProfileError`] encountered, scanning top to
    /// bottom and validating the assembled configuration last.
    pub fn parse(text: &str) -> Result<HardwareProfile, ProfileError> {
        let mut partial = PartialProfile::default();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let content = raw.trim();
            if content.is_empty() || content.starts_with('#') {
                continue;
            }
            let Some((key, value)) = content.split_once('=') else {
                return Err(ProfileError::Syntax {
                    line,
                    content: content.to_string(),
                });
            };
            let (key, value) = (key.trim(), value.trim());
            let Some(key) = canonical_key(key) else {
                return Err(ProfileError::UnknownKey {
                    line,
                    key: key.to_string(),
                });
            };
            if partial.seen(key) {
                return Err(ProfileError::DuplicateKey {
                    line,
                    key: key.to_string(),
                });
            }
            let invalid = || ProfileError::InvalidValue {
                line,
                key: key.to_string(),
                value: value.to_string(),
            };
            if key == "name" {
                if !valid_name(value) {
                    return Err(ProfileError::InvalidName {
                        name: value.to_string(),
                    });
                }
                partial.name = Some(value.to_string());
            } else if F64_KEYS.contains(&key) {
                let v: f64 = value.parse().map_err(|_| invalid())?;
                if !v.is_finite() || v < 0.0 {
                    return Err(invalid());
                }
                partial.f64s.push((key, v));
            } else {
                let v: u64 = value.parse().map_err(|_| invalid())?;
                partial.u64s.push((key, v));
            }
        }
        Self::assemble(&partial)
    }

    /// Builds the profile from a fully-parsed accumulator, rejecting
    /// missing keys and delegating structural checks to
    /// [`DramConfig::validate`].
    fn assemble(partial: &PartialProfile) -> Result<HardwareProfile, ProfileError> {
        let missing = |key: &&str| ProfileError::MissingKey {
            key: (*key).to_string(),
        };
        let name = partial.name.clone().ok_or_else(|| missing(&"name"))?;
        let u = |key: &'static str| partial.u64_field(key).ok_or_else(|| missing(&key));
        let e = |key: &'static str| partial.f64_field(key).ok_or_else(|| missing(&key));
        let narrow = |key: &'static str, v: u64| -> Result<u32, ProfileError> {
            u32::try_from(v).map_err(|_| ProfileError::InvalidValue {
                line: 0,
                key: key.to_string(),
                value: v.to_string(),
            })
        };
        let dram = DramConfig {
            channels: narrow("channels", u("channels")?)?,
            ranks: narrow("ranks", u("ranks")?)?,
            bank_groups: narrow("bank_groups", u("bank_groups")?)?,
            banks_per_group: narrow("banks_per_group", u("banks_per_group")?)?,
            rows: u("rows")?,
            row_bytes: u("row_bytes")?,
            burst_bytes: u("burst_bytes")?,
            queue_capacity: u("queue_capacity")? as usize,
            t_cl: u("t_cl")?,
            t_cwl: u("t_cwl")?,
            t_rcd: u("t_rcd")?,
            t_rp: u("t_rp")?,
            t_ras: u("t_ras")?,
            t_rc: u("t_rc")?,
            t_ccd_s: u("t_ccd_s")?,
            t_ccd_l: u("t_ccd_l")?,
            t_rrd_s: u("t_rrd_s")?,
            t_rrd_l: u("t_rrd_l")?,
            t_faw: u("t_faw")?,
            t_wr: u("t_wr")?,
            t_wtr: u("t_wtr")?,
            t_rtp: u("t_rtp")?,
            t_bl: u("t_bl")?,
        };
        dram.validate()?;
        let energy = EnergyCoefficients {
            pj_per_act: e("pj_per_act")?,
            pj_per_rd_burst: e("pj_per_rd_burst")?,
            pj_per_wr_burst: e("pj_per_wr_burst")?,
            background_mw_per_bank: e("background_mw_per_bank")?,
        };
        let opt32 = |key: &'static str| -> Result<Option<u32>, ProfileError> {
            partial.u64_field(key).map(|v| narrow(key, v)).transpose()
        };
        let provisioning = ProvisioningOverrides {
            pe_rows: opt32("pe_rows")?,
            pe_columns: opt32("pe_columns")?,
            treetop_bytes: partial.u64_field("treetop_bytes"),
            posmap3_bytes: partial.u64_field("posmap3_bytes"),
            stash_bytes: partial.u64_field("stash_bytes"),
        };
        Ok(HardwareProfile {
            name,
            dram,
            energy,
            provisioning,
        })
    }

    /// Reads and parses a profile file. This is the only place the profile
    /// layer touches the filesystem; call it before the simulation starts.
    ///
    /// # Errors
    ///
    /// [`ProfileError::Io`] when the file cannot be read, otherwise
    /// whatever [`HardwareProfile::parse`] rejects.
    pub fn load(path: impl AsRef<Path>) -> Result<HardwareProfile, ProfileError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| ProfileError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        Self::parse(&text)
    }

    /// Renders the canonical file form. Parsing the result reproduces this
    /// profile exactly, and re-serializing that reproduces the text byte
    /// for byte — the checked-in `profiles/*.profile` files are exactly
    /// this rendering of the built-in profiles (pinned by test).
    pub fn to_file_string(&self) -> String {
        use std::fmt::Write as _;
        let d = &self.dram;
        let e = &self.energy;
        let mut out = String::new();
        let _ = writeln!(out, "# Palermo hardware profile: {}", self.name);
        let _ = writeln!(
            out,
            "# One `key = value` per line; '#' starts a comment line; timings are"
        );
        let _ = writeln!(
            out,
            "# 1600 MHz memory-clock cycles. No key is optional unless"
        );
        let _ = writeln!(out, "# marked so; unknown or duplicate keys are errors.");
        let _ = writeln!(out, "name = {}", self.name);
        let _ = writeln!(out);
        let _ = writeln!(out, "# DRAM organisation");
        let _ = writeln!(out, "channels = {}", d.channels);
        let _ = writeln!(out, "ranks = {}", d.ranks);
        let _ = writeln!(out, "bank_groups = {}", d.bank_groups);
        let _ = writeln!(out, "banks_per_group = {}", d.banks_per_group);
        let _ = writeln!(out, "rows = {}", d.rows);
        let _ = writeln!(out, "row_bytes = {}", d.row_bytes);
        let _ = writeln!(out, "burst_bytes = {}", d.burst_bytes);
        let _ = writeln!(out, "queue_capacity = {}", d.queue_capacity);
        let _ = writeln!(out);
        let _ = writeln!(out, "# DRAM timing (cycles)");
        let _ = writeln!(out, "t_cl = {}", d.t_cl);
        let _ = writeln!(out, "t_cwl = {}", d.t_cwl);
        let _ = writeln!(out, "t_rcd = {}", d.t_rcd);
        let _ = writeln!(out, "t_rp = {}", d.t_rp);
        let _ = writeln!(out, "t_ras = {}", d.t_ras);
        let _ = writeln!(out, "t_rc = {}", d.t_rc);
        let _ = writeln!(out, "t_ccd_s = {}", d.t_ccd_s);
        let _ = writeln!(out, "t_ccd_l = {}", d.t_ccd_l);
        let _ = writeln!(out, "t_rrd_s = {}", d.t_rrd_s);
        let _ = writeln!(out, "t_rrd_l = {}", d.t_rrd_l);
        let _ = writeln!(out, "t_faw = {}", d.t_faw);
        let _ = writeln!(out, "t_wr = {}", d.t_wr);
        let _ = writeln!(out, "t_wtr = {}", d.t_wtr);
        let _ = writeln!(out, "t_rtp = {}", d.t_rtp);
        let _ = writeln!(out, "t_bl = {}", d.t_bl);
        let _ = writeln!(out);
        let _ = writeln!(out, "# Energy coefficients");
        let _ = writeln!(out, "pj_per_act = {}", e.pj_per_act);
        let _ = writeln!(out, "pj_per_rd_burst = {}", e.pj_per_rd_burst);
        let _ = writeln!(out, "pj_per_wr_burst = {}", e.pj_per_wr_burst);
        let _ = writeln!(out, "background_mw_per_bank = {}", e.background_mw_per_bank);
        if !self.provisioning.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(out, "# Controller provisioning overrides (optional)");
            let p = &self.provisioning;
            if let Some(v) = p.pe_rows {
                let _ = writeln!(out, "pe_rows = {v}");
            }
            if let Some(v) = p.pe_columns {
                let _ = writeln!(out, "pe_columns = {v}");
            }
            if let Some(v) = p.treetop_bytes {
                let _ = writeln!(out, "treetop_bytes = {v}");
            }
            if let Some(v) = p.posmap3_bytes {
                let _ = writeln!(out, "posmap3_bytes = {v}");
            }
            if let Some(v) = p.stash_bytes {
                let _ = writeln!(out, "stash_bytes = {v}");
            }
        }
        out
    }

    /// The Table III part: 4 channels of DDR4-3200. Byte-identical in
    /// effect to [`DramConfig::ddr4_3200_quad_channel`] — the
    /// profile-threading refactor must not move a single result, which
    /// `tests/hardware_profiles.rs` pins.
    pub fn ddr4_3200() -> Self {
        HardwareProfile {
            name: "ddr4-3200".to_string(),
            dram: DramConfig::ddr4_3200_quad_channel(),
            energy: EnergyCoefficients::ddr4_3200(),
            provisioning: ProvisioningOverrides::default(),
        }
    }

    /// A DDR5-6400-class part: eight 32-bit sub-channels (204.8 GB/s
    /// aggregate peak at the shared 1600 MHz model clock), smaller pages,
    /// deeper queues, and lower per-burst energy than DDR4.
    pub fn ddr5_6400() -> Self {
        HardwareProfile {
            name: "ddr5-6400".to_string(),
            dram: DramConfig {
                channels: 8,
                ranks: 1,
                bank_groups: 8,
                banks_per_group: 4,
                rows: 1 << 16,
                row_bytes: 4 * 1024,
                burst_bytes: 64,
                queue_capacity: 48,
                t_cl: 23,
                t_cwl: 21,
                t_rcd: 23,
                t_rp: 23,
                t_ras: 51,
                t_rc: 74,
                t_ccd_s: 4,
                t_ccd_l: 8,
                t_rrd_s: 4,
                t_rrd_l: 8,
                t_faw: 21,
                t_wr: 48,
                t_wtr: 8,
                t_rtp: 12,
                t_bl: 4,
            },
            energy: EnergyCoefficients {
                pj_per_act: 1300.0,
                pj_per_rd_burst: 3600.0,
                pj_per_wr_burst: 3900.0,
                background_mw_per_bank: 4.5,
            },
            provisioning: ProvisioningOverrides::default(),
        }
    }

    /// An HBM2e-class part: sixteen pseudo-channels (409.6 GB/s aggregate
    /// peak), narrow 1 KiB rows, a relaxed four-activate window, and
    /// roughly 2.5x lower per-bit energy than DDR4. On-package
    /// integration affords a doubled tree-top cache, expressed as a
    /// provisioning override.
    pub fn hbm2e() -> Self {
        HardwareProfile {
            name: "hbm2e".to_string(),
            dram: DramConfig {
                channels: 16,
                ranks: 1,
                bank_groups: 4,
                banks_per_group: 4,
                rows: 1 << 14,
                row_bytes: 1024,
                burst_bytes: 64,
                queue_capacity: 64,
                t_cl: 23,
                t_cwl: 12,
                t_rcd: 23,
                t_rp: 23,
                t_ras: 45,
                t_rc: 68,
                t_ccd_s: 4,
                t_ccd_l: 6,
                t_rrd_s: 3,
                t_rrd_l: 5,
                t_faw: 13,
                t_wr: 26,
                t_wtr: 6,
                t_rtp: 6,
                t_bl: 4,
            },
            energy: EnergyCoefficients {
                pj_per_act: 650.0,
                pj_per_rd_burst: 1900.0,
                pj_per_wr_burst: 2000.0,
                background_mw_per_bank: 1.8,
            },
            provisioning: ProvisioningOverrides {
                treetop_bytes: Some(2 * 3 * 256 * 1024),
                ..ProvisioningOverrides::default()
            },
        }
    }

    /// Names of the built-in profiles, in [`HardwareProfile::builtins`]
    /// order (also the order `profiles/` is checked in).
    pub const BUILTIN_NAMES: [&'static str; 3] = ["ddr4-3200", "ddr5-6400", "hbm2e"];

    /// The built-in profiles, DDR4 first.
    pub fn builtins() -> Vec<HardwareProfile> {
        vec![Self::ddr4_3200(), Self::ddr5_6400(), Self::hbm2e()]
    }

    /// Looks up a built-in profile by name.
    pub fn named(name: &str) -> Option<HardwareProfile> {
        match name {
            "ddr4-3200" => Some(Self::ddr4_3200()),
            "ddr5-6400" => Some(Self::ddr5_6400()),
            "hbm2e" => Some(Self::hbm2e()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_are_valid_and_named_consistently() {
        for profile in HardwareProfile::builtins() {
            assert!(profile.dram.validate().is_ok(), "{}", profile.name);
            assert!(valid_name(&profile.name));
            assert_eq!(HardwareProfile::named(&profile.name), Some(profile.clone()));
        }
        assert_eq!(HardwareProfile::named("nope"), None);
        assert_eq!(
            HardwareProfile::BUILTIN_NAMES.len(),
            HardwareProfile::builtins().len()
        );
    }

    #[test]
    fn ddr4_profile_matches_the_hardcoded_default() {
        assert_eq!(
            HardwareProfile::ddr4_3200().dram,
            DramConfig::ddr4_3200_quad_channel()
        );
    }

    #[test]
    fn serialize_parse_round_trips_every_builtin() {
        for profile in HardwareProfile::builtins() {
            let text = profile.to_file_string();
            let parsed = HardwareProfile::parse(&text).unwrap_or_else(|e| {
                panic!("{}: {e}", profile.name);
            });
            assert_eq!(parsed, profile);
            assert_eq!(parsed.to_file_string(), text, "{}", profile.name);
        }
    }

    #[test]
    fn bandwidth_ordering_matches_the_technology_classes() {
        let ddr4 = HardwareProfile::ddr4_3200().dram.peak_gbps();
        let ddr5 = HardwareProfile::ddr5_6400().dram.peak_gbps();
        let hbm = HardwareProfile::hbm2e().dram.peak_gbps();
        assert!((ddr4 - 102.4).abs() < 0.1, "{ddr4}");
        assert!((ddr5 - 204.8).abs() < 0.1, "{ddr5}");
        assert!((hbm - 409.6).abs() < 0.1, "{hbm}");
    }

    #[test]
    fn per_burst_energy_ordering_matches_the_technology_classes() {
        let ddr4 = HardwareProfile::ddr4_3200().energy;
        let ddr5 = HardwareProfile::ddr5_6400().energy;
        let hbm = HardwareProfile::hbm2e().energy;
        assert!(ddr5.pj_per_rd_burst < ddr4.pj_per_rd_burst);
        assert!(hbm.pj_per_rd_burst < ddr5.pj_per_rd_burst);
    }

    #[test]
    fn unknown_missing_and_duplicate_keys_are_typed_errors() {
        let base = HardwareProfile::ddr4_3200().to_file_string();
        let unknown = format!("{base}bogus_key = 3\n");
        assert_eq!(
            HardwareProfile::parse(&unknown),
            Err(ProfileError::UnknownKey {
                line: base.lines().count() + 1,
                key: "bogus_key".to_string(),
            })
        );
        let duplicate = format!("{base}channels = 4\n");
        assert!(matches!(
            HardwareProfile::parse(&duplicate),
            Err(ProfileError::DuplicateKey { key, .. }) if key == "channels"
        ));
        let missing = base.replace("t_faw = 26\n", "");
        assert_eq!(
            HardwareProfile::parse(&missing),
            Err(ProfileError::MissingKey {
                key: "t_faw".to_string(),
            })
        );
    }

    #[test]
    fn junk_lines_and_bad_values_are_rejected() {
        assert!(matches!(
            HardwareProfile::parse("name ddr4\n"),
            Err(ProfileError::Syntax { line: 1, .. })
        ));
        let base = HardwareProfile::ddr4_3200().to_file_string();
        let bad = base.replace("channels = 4", "channels = four");
        assert!(matches!(
            HardwareProfile::parse(&bad),
            Err(ProfileError::InvalidValue { key, .. }) if key == "channels"
        ));
        let negative = base.replace("pj_per_act = 1700", "pj_per_act = -1");
        assert!(matches!(
            HardwareProfile::parse(&negative),
            Err(ProfileError::InvalidValue { key, .. }) if key == "pj_per_act"
        ));
        let nan = base.replace("pj_per_act = 1700", "pj_per_act = NaN");
        assert!(matches!(
            HardwareProfile::parse(&nan),
            Err(ProfileError::InvalidValue { .. })
        ));
    }

    #[test]
    fn inconsistent_timing_is_rejected_at_parse_time() {
        let base = HardwareProfile::ddr4_3200().to_file_string();
        // t_faw (26) below 4 * t_rrd_s after raising t_rrd_s to 8.
        let bad = base.replace("t_rrd_s = 4", "t_rrd_s = 8");
        match HardwareProfile::parse(&bad) {
            Err(ProfileError::Config(DramConfigError::TimingInconsistent { reason })) => {
                assert!(reason.contains("t_faw"), "{reason}");
            }
            other => panic!("expected timing error, got {other:?}"),
        }
    }

    #[test]
    fn invalid_names_are_rejected() {
        let base = HardwareProfile::ddr4_3200().to_file_string();
        for bad in ["", "has space", "comma,name", "non-ascii-é"] {
            let text = base.replace("name = ddr4-3200", &format!("name = {bad}"));
            assert!(
                matches!(
                    HardwareProfile::parse(&text),
                    Err(ProfileError::InvalidName { .. } | ProfileError::Syntax { .. })
                ),
                "name '{bad}' should be rejected"
            );
        }
    }

    #[test]
    fn load_reports_missing_files_as_typed_io_errors() {
        let err = HardwareProfile::load("/nonexistent/nope.profile").unwrap_err();
        assert!(matches!(err, ProfileError::Io { .. }));
        assert!(err.to_string().contains("nope.profile"));
    }
}
