//! One DRAM channel: bank state machines plus an FR-FCFS scheduler.
//!
//! Every cycle the channel may issue at most one command on its command bus.
//! The scheduler follows the standard FR-FCFS policy: column commands to
//! already-open rows first (oldest first), then activates, then precharges
//! for conflicting rows. Data-bus occupancy is enforced by spacing column
//! commands at least a burst apart, which bounds the achievable bandwidth at
//! the DDR4 peak and makes the bandwidth-utilisation statistics meaningful.

use crate::address::DramCoord;
use crate::config::DramConfig;
use crate::request::{MemCompletion, MemOpKind, MemRequest, RowBufferResult};
use std::collections::VecDeque;

#[derive(Debug, Clone, Copy, Default)]
struct BankState {
    open_row: Option<u64>,
    next_activate: u64,
    next_precharge: u64,
    next_column: u64,
}

#[derive(Debug, Clone)]
struct QueuedRequest {
    req: MemRequest,
    coord: DramCoord,
    enqueued_at: u64,
    row_result: Option<RowBufferResult>,
}

/// Per-channel statistics counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Read bursts completed.
    pub reads: u64,
    /// Write bursts issued.
    pub writes: u64,
    /// Column accesses that found their row open.
    pub row_hits: u64,
    /// Column accesses that only needed an activate.
    pub row_misses: u64,
    /// Column accesses that had to close another row first.
    pub row_conflicts: u64,
    /// Cycles the data bus was transferring data.
    pub data_bus_busy_cycles: u64,
    /// Sum over cycles of the number of queued requests.
    pub queue_occupancy_sum: u64,
    /// Sum of read latencies (enqueue to data return), cycles.
    pub read_latency_sum: u64,
    /// ACT commands issued.
    pub activates: u64,
    /// PRE commands issued.
    pub precharges: u64,
}

/// A single DRAM channel with its banks, queue and scheduler.
#[derive(Debug, Clone)]
pub struct Channel {
    config: DramConfig,
    banks: Vec<BankState>,
    queue: VecDeque<QueuedRequest>,
    /// Earliest cycle the next column command may issue (data-bus spacing).
    next_column_cmd: u64,
    /// Cycle and bank group of the last column command (tCCD_L).
    last_column: Option<(u64, u32)>,
    /// Cycle and bank group of the last activate (tRRD).
    last_activate: Option<(u64, u32)>,
    /// Recent activate cycles for the tFAW window.
    recent_activates: VecDeque<u64>,
    /// Reads waiting for their data to come back.
    in_flight_reads: Vec<(u64, MemCompletion)>,
    completed: Vec<MemCompletion>,
    stats: ChannelStats,
}

impl Channel {
    /// Creates an idle channel.
    pub fn new(config: DramConfig) -> Self {
        Channel {
            banks: vec![BankState::default(); config.banks_per_channel() as usize],
            queue: VecDeque::with_capacity(config.queue_capacity),
            next_column_cmd: 0,
            last_column: None,
            last_activate: None,
            recent_activates: VecDeque::with_capacity(4),
            in_flight_reads: Vec::new(),
            completed: Vec::new(),
            stats: ChannelStats::default(),
            config,
        }
    }

    /// Returns `true` if the queue has space for another request.
    pub fn can_accept(&self) -> bool {
        self.queue.len() < self.config.queue_capacity
    }

    /// Number of requests currently queued (not yet issued to a bank).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Number of requests queued or waiting for data return.
    pub fn outstanding(&self) -> usize {
        self.queue.len() + self.in_flight_reads.len()
    }

    /// Per-channel statistics.
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }

    /// Enqueues a request. Returns `false` (and drops nothing) if the queue
    /// is full; the caller must retry later.
    pub fn enqueue(&mut self, req: MemRequest, coord: DramCoord, cycle: u64) -> bool {
        if !self.can_accept() {
            return false;
        }
        self.queue.push_back(QueuedRequest {
            req,
            coord,
            enqueued_at: cycle,
            row_result: None,
        });
        true
    }

    /// Drains completions accumulated since the last call.
    pub fn drain_completed(&mut self) -> Vec<MemCompletion> {
        std::mem::take(&mut self.completed)
    }

    fn faw_allows(&self, cycle: u64) -> bool {
        if self.recent_activates.len() < 4 {
            return true;
        }
        let oldest = self.recent_activates[self.recent_activates.len() - 4];
        cycle >= oldest + self.config.t_faw
    }

    fn rrd_allows(&self, cycle: u64, bank_group: u32) -> bool {
        match self.last_activate {
            Some((when, group)) => {
                let gap = if group == bank_group {
                    self.config.t_rrd_l
                } else {
                    self.config.t_rrd_s
                };
                cycle >= when + gap
            }
            None => true,
        }
    }

    fn ccd_allows(&self, cycle: u64, bank_group: u32) -> bool {
        if cycle < self.next_column_cmd {
            return false;
        }
        match self.last_column {
            Some((when, group)) if group == bank_group => cycle >= when + self.config.t_ccd_l,
            _ => true,
        }
    }

    /// Advances the channel by one cycle.
    pub fn tick(&mut self, cycle: u64) {
        // Retire reads whose data has returned.
        let mut i = 0;
        while i < self.in_flight_reads.len() {
            if self.in_flight_reads[i].0 <= cycle {
                let (_, completion) = self.in_flight_reads.swap_remove(i);
                self.stats.read_latency_sum += completion.latency();
                self.completed.push(completion);
            } else {
                i += 1;
            }
        }

        self.stats.queue_occupancy_sum += self.queue.len() as u64;
        if self.queue.is_empty() {
            return;
        }

        // Pass 1 (FR): oldest request whose row is open and column timing allows.
        if let Some(idx) = self.find_column_ready(cycle) {
            self.issue_column(idx, cycle);
            return;
        }
        // Pass 2 (FCFS): oldest request needing an activate on a closed bank.
        if let Some(idx) = self.find_activate_ready(cycle) {
            self.issue_activate(idx, cycle);
            return;
        }
        // Pass 3: oldest request blocked behind a conflicting open row.
        if let Some(idx) = self.find_precharge_ready(cycle) {
            self.issue_precharge(idx, cycle);
        }
    }

    fn find_column_ready(&self, cycle: u64) -> Option<usize> {
        self.queue.iter().position(|q| {
            let bank = &self.banks[q.coord.flat_bank(&self.config)];
            bank.open_row == Some(q.coord.row)
                && cycle >= bank.next_column
                && self.ccd_allows(cycle, q.coord.bank_group)
        })
    }

    fn find_activate_ready(&self, cycle: u64) -> Option<usize> {
        if !self.faw_allows(cycle) {
            return None;
        }
        self.queue.iter().position(|q| {
            let bank = &self.banks[q.coord.flat_bank(&self.config)];
            bank.open_row.is_none()
                && cycle >= bank.next_activate
                && self.rrd_allows(cycle, q.coord.bank_group)
        })
    }

    fn find_precharge_ready(&self, cycle: u64) -> Option<usize> {
        self.queue.iter().position(|q| {
            let bank = &self.banks[q.coord.flat_bank(&self.config)];
            matches!(bank.open_row, Some(row) if row != q.coord.row) && cycle >= bank.next_precharge
        })
    }

    fn issue_column(&mut self, idx: usize, cycle: u64) {
        let q = self.queue.remove(idx).expect("index from position()");
        let cfg = self.config;
        let bank = &mut self.banks[q.coord.flat_bank(&cfg)];
        let row_result = q.row_result.unwrap_or(RowBufferResult::Hit);
        match row_result {
            RowBufferResult::Hit => self.stats.row_hits += 1,
            RowBufferResult::Miss => self.stats.row_misses += 1,
            RowBufferResult::Conflict => self.stats.row_conflicts += 1,
        }

        self.next_column_cmd = cycle + cfg.t_ccd_s.max(cfg.t_bl);
        self.last_column = Some((cycle, q.coord.bank_group));
        self.stats.data_bus_busy_cycles += cfg.t_bl;

        match q.req.kind {
            MemOpKind::Read => {
                let data_ready = cycle + cfg.t_cl + cfg.t_bl;
                bank.next_precharge = bank.next_precharge.max(cycle + cfg.t_rtp);
                bank.next_column = bank.next_column.max(cycle + cfg.t_ccd_l);
                self.stats.reads += 1;
                self.in_flight_reads.push((
                    data_ready,
                    MemCompletion {
                        id: q.req.id,
                        addr: q.req.addr,
                        kind: MemOpKind::Read,
                        enqueued_at: q.enqueued_at,
                        completed_at: data_ready,
                        row_result,
                    },
                ));
            }
            MemOpKind::Write => {
                let burst_end = cycle + cfg.t_cwl + cfg.t_bl;
                bank.next_precharge = bank.next_precharge.max(burst_end + cfg.t_wr);
                bank.next_column = bank.next_column.max(burst_end + cfg.t_wtr);
                self.stats.writes += 1;
                self.completed.push(MemCompletion {
                    id: q.req.id,
                    addr: q.req.addr,
                    kind: MemOpKind::Write,
                    enqueued_at: q.enqueued_at,
                    completed_at: cycle,
                    row_result,
                });
            }
        }
    }

    fn issue_activate(&mut self, idx: usize, cycle: u64) {
        let cfg = self.config;
        let (flat_bank, row, bank_group) = {
            let q = &mut self.queue[idx];
            if q.row_result.is_none() {
                q.row_result = Some(RowBufferResult::Miss);
            }
            (q.coord.flat_bank(&cfg), q.coord.row, q.coord.bank_group)
        };
        let bank = &mut self.banks[flat_bank];
        bank.open_row = Some(row);
        bank.next_column = cycle + cfg.t_rcd;
        bank.next_precharge = cycle + cfg.t_ras;
        bank.next_activate = cycle + cfg.t_rc;
        self.last_activate = Some((cycle, bank_group));
        self.recent_activates.push_back(cycle);
        while self.recent_activates.len() > 8 {
            self.recent_activates.pop_front();
        }
        self.stats.activates += 1;
    }

    fn issue_precharge(&mut self, idx: usize, cycle: u64) {
        let cfg = self.config;
        let flat_bank = {
            let q = &mut self.queue[idx];
            q.row_result = Some(RowBufferResult::Conflict);
            q.coord.flat_bank(&cfg)
        };
        let bank = &mut self.banks[flat_bank];
        bank.open_row = None;
        bank.next_activate = bank.next_activate.max(cycle + cfg.t_rp);
        self.stats.precharges += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::AddressMapper;

    fn channel_and_mapper() -> (Channel, AddressMapper) {
        let cfg = DramConfig::ddr4_3200_single_channel();
        (Channel::new(cfg), AddressMapper::new(cfg))
    }

    fn run_until_complete(ch: &mut Channel, expected: usize, limit: u64) -> Vec<MemCompletion> {
        let mut done = Vec::new();
        let mut cycle = 0;
        while done.len() < expected && cycle < limit {
            ch.tick(cycle);
            done.extend(ch.drain_completed());
            cycle += 1;
        }
        done
    }

    #[test]
    fn single_read_latency_matches_act_rcd_cl() {
        let (mut ch, m) = channel_and_mapper();
        let addr = 0x10_000;
        assert!(ch.enqueue(MemRequest::read(1, addr), m.map(addr), 0));
        let done = run_until_complete(&mut ch, 1, 1000);
        assert_eq!(done.len(), 1);
        let cfg = DramConfig::ddr4_3200_single_channel();
        // ACT at cycle 0, column at tRCD, data at tRCD + tCL + tBL.
        assert_eq!(done[0].completed_at, cfg.t_rcd + cfg.t_cl + cfg.t_bl);
        assert_eq!(done[0].row_result, RowBufferResult::Miss);
    }

    #[test]
    fn second_read_same_row_is_a_hit() {
        let (mut ch, m) = channel_and_mapper();
        let a = 0x10_000;
        let b = a + 64; // single channel: next burst, same row
        assert!(ch.enqueue(MemRequest::read(1, a), m.map(a), 0));
        assert!(ch.enqueue(MemRequest::read(2, b), m.map(b), 0));
        let done = run_until_complete(&mut ch, 2, 2000);
        assert_eq!(done.len(), 2);
        let second = done.iter().find(|c| c.id.0 == 2).unwrap();
        assert_eq!(second.row_result, RowBufferResult::Hit);
        assert_eq!(ch.stats().row_hits, 1);
        assert_eq!(ch.stats().row_misses, 1);
    }

    #[test]
    fn row_conflict_requires_precharge() {
        let (mut ch, m) = channel_and_mapper();
        let cfg = DramConfig::ddr4_3200_single_channel();
        let a = 0;
        // Same bank, different row: one full row's worth of bursts away
        // times bank interleaving span.
        let b = cfg.row_bytes
            * u64::from(cfg.channels)
            * u64::from(cfg.bank_groups)
            * u64::from(cfg.banks_per_group);
        let (ca, cb) = (m.map(a), m.map(b));
        assert_eq!(ca.flat_bank(&cfg), cb.flat_bank(&cfg));
        assert_ne!(ca.row, cb.row);
        assert!(ch.enqueue(MemRequest::read(1, a), ca, 0));
        assert!(ch.enqueue(MemRequest::read(2, b), cb, 0));
        let done = run_until_complete(&mut ch, 2, 5000);
        let second = done.iter().find(|c| c.id.0 == 2).unwrap();
        assert_eq!(second.row_result, RowBufferResult::Conflict);
        assert!(second.completed_at > done[0].completed_at);
        assert!(ch.stats().precharges >= 1);
    }

    #[test]
    fn writes_complete_as_posted() {
        let (mut ch, m) = channel_and_mapper();
        let addr = 0x40_000;
        assert!(ch.enqueue(MemRequest::write(7, addr), m.map(addr), 0));
        let done = run_until_complete(&mut ch, 1, 1000);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].kind, MemOpKind::Write);
        assert_eq!(ch.stats().writes, 1);
    }

    #[test]
    fn queue_capacity_is_enforced() {
        let (mut ch, m) = channel_and_mapper();
        let cap = DramConfig::ddr4_3200_single_channel().queue_capacity;
        for i in 0..cap {
            assert!(ch.enqueue(
                MemRequest::read(i as u64, i as u64 * 64),
                m.map(i as u64 * 64),
                0
            ));
        }
        assert!(!ch.can_accept());
        assert!(!ch.enqueue(MemRequest::read(999, 0), m.map(0), 0));
        assert_eq!(ch.queue_len(), cap);
    }

    #[test]
    fn independent_banks_overlap() {
        // Requests to different banks should take far less than the sum of
        // their isolated latencies.
        let (mut ch, m) = channel_and_mapper();
        let cfg = DramConfig::ddr4_3200_single_channel();
        let bank_stride = cfg.row_bytes * u64::from(cfg.channels);
        for i in 0..8u64 {
            let addr = i * bank_stride;
            assert!(ch.enqueue(MemRequest::read(i, addr), m.map(addr), 0));
        }
        let done = run_until_complete(&mut ch, 8, 10_000);
        let last = done.iter().map(|c| c.completed_at).max().unwrap();
        let isolated = cfg.t_rcd + cfg.t_cl + cfg.t_bl;
        assert!(
            last < isolated * 8 / 2,
            "bank-level parallelism missing: {last} cycles for 8 requests"
        );
    }

    #[test]
    fn throughput_respects_data_bus_limit() {
        // A long stream of row hits cannot exceed one burst per tBL cycles.
        let (mut ch, m) = channel_and_mapper();
        let mut issued = 0u64;
        let mut completed = 0usize;
        let mut cycle = 0u64;
        let total = 200u64;
        while completed < total as usize {
            while issued < total && ch.can_accept() {
                let addr = issued * 64;
                ch.enqueue(MemRequest::read(issued, addr), m.map(addr), cycle);
                issued += 1;
            }
            ch.tick(cycle);
            completed += ch.drain_completed().len();
            cycle += 1;
            assert!(cycle < 100_000, "stalled");
        }
        let cfg = DramConfig::ddr4_3200_single_channel();
        let min_cycles = total * cfg.t_bl;
        assert!(
            cycle >= min_cycles,
            "exceeded peak bandwidth: {cycle} < {min_cycles}"
        );
        // ...but should stay within ~2x of peak for a pure streaming pattern.
        assert!(
            cycle < min_cycles * 3,
            "streaming far below peak: {cycle} vs {min_cycles}"
        );
    }
}
