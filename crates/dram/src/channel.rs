//! One DRAM channel: bank state machines plus an FR-FCFS scheduler.
//!
//! Every cycle the channel may issue at most one command on its command bus.
//! The scheduler follows the standard FR-FCFS policy: column commands to
//! already-open rows first (oldest first), then activates, then precharges
//! for conflicting rows. Data-bus occupancy is enforced by spacing column
//! commands at least a burst apart, which bounds the achievable bandwidth at
//! the DDR4 peak and makes the bandwidth-utilisation statistics meaningful.
//!
//! # Per-bank command queues
//!
//! Requests are queued per bank rather than in one channel-wide list. Within
//! a bank, every queued request of the same scheduling class (column to the
//! open row / activate / precharge of a conflicting row) shares one
//! bank-local ready cycle, so each bank caches just its oldest candidate per
//! class (`BankCand`) and publishes the class's bank-local ready cycle into
//! an O(log B) [`MinTree`] (one per class). Channel-global constraints —
//! command-bus spacing, tCCD_L, tRRD, tFAW — are applied at decision time as
//! per-bank-group floors, so issuing on one bank never invalidates another
//! bank's cache: cold banks are written once when touched and never
//! rescanned. Global age ordering across banks uses a monotone per-channel
//! sequence number stamped at enqueue, which makes "oldest ready first"
//! a min-seq reduction over at most B cached candidates instead of a scan
//! over every queued request.
//!
//! For the event-driven simulation core the channel additionally predicts
//! [`Channel::next_event_cycle`] — the earliest future cycle at which a tick
//! could do anything (issue a command or return read data). Between now and
//! that cycle every tick is a provable no-op, so the caller may replace the
//! intervening ticks with one [`Channel::skip_cycles`] call that performs the
//! identical per-cycle statistics accounting in bulk.

use crate::address::DramCoord;
use crate::config::DramConfig;
use crate::mintree::MinTree;
use crate::request::{MemCompletion, MemOpKind, MemRequest, RowBufferResult};
use std::collections::VecDeque;

#[derive(Debug, Clone, Copy, Default)]
struct BankState {
    open_row: Option<u64>,
    next_activate: u64,
    next_precharge: u64,
    next_column: u64,
}

#[derive(Debug, Clone)]
struct QueuedRequest {
    req: MemRequest,
    coord: DramCoord,
    /// Flat bank index, precomputed at enqueue for the scan hot path.
    flat_bank: usize,
    /// Channel-wide arrival sequence number: the FR-FCFS age order across
    /// banks (bank queues are FIFO, so within a bank the front is oldest).
    seq: u64,
    enqueued_at: u64,
    row_result: Option<RowBufferResult>,
}

/// Cached oldest candidate per scheduling class for one bank: `(seq, pos)`
/// of the oldest queued request that is a column hit / a precharge cause.
/// The activate candidate needs no cache — with no open row every queued
/// request wants an activate and the front of the FIFO is the oldest.
/// Refreshed whenever the bank's queue membership or open row changes.
#[derive(Debug, Clone, Copy, Default)]
struct BankCand {
    col: Option<(u64, u32)>,
    pre: Option<(u64, u32)>,
}

/// Per-channel statistics counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Read bursts completed.
    pub reads: u64,
    /// Write bursts issued.
    pub writes: u64,
    /// Column accesses that found their row open.
    pub row_hits: u64,
    /// Column accesses that only needed an activate.
    pub row_misses: u64,
    /// Column accesses that had to close another row first.
    pub row_conflicts: u64,
    /// Cycles the data bus was transferring data.
    pub data_bus_busy_cycles: u64,
    /// Sum over cycles of the number of queued requests.
    pub queue_occupancy_sum: u64,
    /// Sum of read latencies (enqueue to data return), cycles.
    pub read_latency_sum: u64,
    /// ACT commands issued.
    pub activates: u64,
    /// PRE commands issued.
    pub precharges: u64,
}

/// What one [`Channel::tick`] observably did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelTickResult {
    /// A command (column, activate or precharge) was issued.
    pub issued: bool,
    /// Completions were produced (read data returned or a write posted).
    pub completions: bool,
}

impl ChannelTickResult {
    /// `true` if the tick changed any channel state.
    pub fn any(&self) -> bool {
        self.issued || self.completions
    }
}

/// A single DRAM channel with its banks, per-bank queues and scheduler.
#[derive(Debug, Clone)]
pub struct Channel {
    config: DramConfig,
    banks: Vec<BankState>,
    /// Per-bank FIFO command queues (seq-ascending by construction).
    bank_queues: Vec<VecDeque<QueuedRequest>>,
    /// Per-bank cached oldest candidate per scheduling class.
    cand: Vec<BankCand>,
    /// Bank-local ready cycle of each bank's column candidate
    /// (`bank.next_column`, or `u64::MAX` with no candidate).
    col_tree: MinTree,
    /// Bank-local ready cycle of each bank's activate candidate
    /// (`bank.next_activate`, or `u64::MAX` with no candidate).
    act_tree: MinTree,
    /// Bank-local ready cycle of each bank's precharge candidate
    /// (`bank.next_precharge`, or `u64::MAX` with no candidate).
    pre_tree: MinTree,
    /// Total queued requests across all bank queues.
    queue_len: usize,
    /// Next arrival sequence number.
    next_seq: u64,
    /// Earliest cycle the next column command may issue (data-bus spacing).
    next_column_cmd: u64,
    /// Cycle and bank group of the last column command (tCCD_L).
    last_column: Option<(u64, u32)>,
    /// Cycle and bank group of the last activate (tRRD).
    last_activate: Option<(u64, u32)>,
    /// Recent activate cycles for the tFAW window.
    recent_activates: VecDeque<u64>,
    /// Reads waiting for their data to come back.
    in_flight_reads: Vec<(u64, MemCompletion)>,
    completed: Vec<MemCompletion>,
    stats: ChannelStats,
    /// Cached earliest cycle at which any *queued* request becomes
    /// actionable. Invalidated (None) by command issues, min-updated in
    /// O(1) by enqueues, and — deliberately — left untouched by read
    /// retirements, which change no bank or bus state.
    queue_next: Option<u64>,
    /// Earliest data-return cycle among in-flight reads (`u64::MAX` when
    /// none). Min-updated on read issue, recomputed on retirement.
    inflight_next: u64,
}

impl Channel {
    /// Creates an idle channel.
    pub fn new(config: DramConfig) -> Self {
        let banks = config.banks_per_channel() as usize;
        Channel {
            banks: vec![BankState::default(); banks],
            bank_queues: vec![VecDeque::new(); banks],
            cand: vec![BankCand::default(); banks],
            col_tree: MinTree::new(banks),
            act_tree: MinTree::new(banks),
            pre_tree: MinTree::new(banks),
            queue_len: 0,
            next_seq: 0,
            next_column_cmd: 0,
            last_column: None,
            last_activate: None,
            recent_activates: VecDeque::with_capacity(4),
            in_flight_reads: Vec::new(),
            completed: Vec::new(),
            stats: ChannelStats::default(),
            queue_next: Some(u64::MAX),
            inflight_next: u64::MAX,
            config,
        }
    }

    /// Returns `true` if the queue has space for another request.
    pub fn can_accept(&self) -> bool {
        self.queue_len < self.config.queue_capacity
    }

    /// Number of requests currently queued (not yet issued to a bank).
    pub fn queue_len(&self) -> usize {
        self.queue_len
    }

    /// Number of requests queued or waiting for data return.
    pub fn outstanding(&self) -> usize {
        self.queue_len + self.in_flight_reads.len()
    }

    /// Per-channel statistics.
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }

    /// Enqueues a request. Returns `false` (and drops nothing) if the queue
    /// is full; the caller must retry later.
    pub fn enqueue(&mut self, req: MemRequest, coord: DramCoord, cycle: u64) -> bool {
        if !self.can_accept() {
            return false;
        }
        let entry = QueuedRequest {
            req,
            coord,
            flat_bank: coord.flat_bank(&self.config),
            seq: self.next_seq,
            enqueued_at: cycle,
            row_result: None,
        };
        self.next_seq += 1;
        // Enqueueing changes no bank or bus state, so cached predictions for
        // existing entries stay valid; the new entry can only pull the next
        // event earlier. An O(1) min-update keeps issue bursts from forcing
        // a full rescan every cycle.
        if let Some(cached) = self.queue_next {
            let at = self.entry_earliest(&entry);
            self.queue_next = Some(cached.min(at));
        }
        // The newest request only becomes a class candidate when its bank
        // slot was empty (it is the youngest by construction), so the bank
        // cache updates in O(1) without a rescan.
        let b = entry.flat_bank;
        let pos = self.bank_queues[b].len() as u32;
        match self.banks[b].open_row {
            None => {
                if pos == 0 {
                    self.act_tree.set(b, self.banks[b].next_activate);
                }
            }
            Some(row) if row == entry.coord.row => {
                if self.cand[b].col.is_none() {
                    self.cand[b].col = Some((entry.seq, pos));
                    self.col_tree.set(b, self.banks[b].next_column);
                }
            }
            Some(_) => {
                if self.cand[b].pre.is_none() {
                    self.cand[b].pre = Some((entry.seq, pos));
                    self.pre_tree.set(b, self.banks[b].next_precharge);
                }
            }
        }
        self.bank_queues[b].push_back(entry);
        self.queue_len += 1;
        true
    }

    /// Bank group of a flat bank index (banks are bank-group-major).
    /// Channel-global earliest-issue floor for a column command targeting
    /// `group`: command/data-bus spacing plus same-group tCCD_L.
    fn col_floor(&self, group: u32) -> u64 {
        let mut at = self.next_column_cmd;
        if let Some((when, g)) = self.last_column {
            if g == group {
                at = at.max(when + self.config.t_ccd_l);
            }
        }
        at
    }

    /// Channel-global earliest-issue floor for an activate targeting
    /// `group`: the tFAW window plus same/cross-group tRRD.
    fn act_floor(&self, group: u32) -> u64 {
        let mut at = 0;
        if self.recent_activates.len() >= 4 {
            at = self.recent_activates[self.recent_activates.len() - 4] + self.config.t_faw;
        }
        if let Some((when, g)) = self.last_activate {
            let gap = if g == group {
                self.config.t_rrd_l
            } else {
                self.config.t_rrd_s
            };
            at = at.max(when + gap);
        }
        at
    }

    /// The earliest cycle at which `q` could become actionable given the
    /// current (frozen) bank and bus state — the per-entry term of
    /// [`Channel::next_event_cycle`]'s prediction.
    fn entry_earliest(&self, q: &QueuedRequest) -> u64 {
        let bank = &self.banks[q.flat_bank];
        match bank.open_row {
            Some(row) if row == q.coord.row => {
                bank.next_column.max(self.col_floor(q.coord.bank_group))
            }
            Some(_) => bank.next_precharge,
            None => bank.next_activate.max(self.act_floor(q.coord.bank_group)),
        }
    }

    /// Rebuilds bank `b`'s candidate cache and its three tree leaves from
    /// the bank's queue and open row. O(bank queue length + log B); called
    /// only when the bank itself is touched (issue to it, or its open row
    /// changes), never for cold banks.
    fn refresh_bank(&mut self, b: usize) {
        let bank = self.banks[b];
        let queue = &self.bank_queues[b];
        let mut cand = BankCand::default();
        let (col_local, act_local, pre_local) = match bank.open_row {
            None => {
                let act = if queue.is_empty() {
                    u64::MAX
                } else {
                    bank.next_activate
                };
                (u64::MAX, act, u64::MAX)
            }
            Some(row) => {
                for (i, e) in queue.iter().enumerate() {
                    if e.coord.row == row {
                        if cand.col.is_none() {
                            cand.col = Some((e.seq, i as u32));
                        }
                    } else if cand.pre.is_none() {
                        cand.pre = Some((e.seq, i as u32));
                    }
                    if cand.col.is_some() && cand.pre.is_some() {
                        break;
                    }
                }
                let col = if cand.col.is_some() {
                    bank.next_column
                } else {
                    u64::MAX
                };
                let pre = if cand.pre.is_some() {
                    bank.next_precharge
                } else {
                    u64::MAX
                };
                (col, u64::MAX, pre)
            }
        };
        self.cand[b] = cand;
        self.col_tree.set(b, col_local);
        self.act_tree.set(b, act_local);
        self.pre_tree.set(b, pre_local);
    }

    /// Oldest bank candidate whose column command is ready at `cycle`
    /// (FR-FCFS pass 1). Returns the bank and queue position.
    fn pick_column(&self, cycle: u64) -> Option<(usize, u32)> {
        // The tree leaves mirror exactly the per-bank ready test below
        // (`next_column` when a same-row candidate exists, else MAX), so the
        // running minima prune the pass in O(1) and dead groups in O(1) each.
        if self.col_tree.min() > cycle {
            return None;
        }
        let mut best: Option<(u64, usize, u32)> = None;
        let bpg = self.config.banks_per_group as usize;
        let aligned = bpg.is_power_of_two();
        for g in 0..self.config.bank_groups as usize {
            if aligned && self.col_tree.subtree_min(g * bpg, bpg) > cycle {
                continue;
            }
            // The floor is a per-group constant for this cycle: hoist it out
            // of the bank scan (it is also the only group-dependent term,
            // which keeps the inner loop free of bank→group arithmetic).
            let floor = self.col_floor(g as u32);
            if floor > cycle {
                continue;
            }
            for b in g * bpg..(g + 1) * bpg {
                if let Some((seq, pos)) = self.cand[b].col {
                    if self.banks[b].next_column <= cycle && best.is_none_or(|(s, _, _)| seq < s) {
                        best = Some((seq, b, pos));
                    }
                }
            }
        }
        best.map(|(_, b, pos)| (b, pos))
    }

    /// Oldest bank whose activate is ready at `cycle` (FR-FCFS pass 2).
    fn pick_activate(&self, cycle: u64) -> Option<usize> {
        if self.act_tree.min() > cycle {
            return None;
        }
        let mut best: Option<(u64, usize)> = None;
        let bpg = self.config.banks_per_group as usize;
        let aligned = bpg.is_power_of_two();
        for g in 0..self.config.bank_groups as usize {
            if aligned && self.act_tree.subtree_min(g * bpg, bpg) > cycle {
                continue;
            }
            let floor = self.act_floor(g as u32);
            if floor > cycle {
                continue;
            }
            for b in g * bpg..(g + 1) * bpg {
                if self.banks[b].open_row.is_some() {
                    continue;
                }
                let seq = match self.bank_queues[b].front() {
                    Some(front) => front.seq,
                    None => continue,
                };
                if self.banks[b].next_activate <= cycle && best.is_none_or(|(s, _)| seq < s) {
                    best = Some((seq, b));
                }
            }
        }
        best.map(|(_, b)| b)
    }

    /// Oldest bank candidate whose precharge is ready at `cycle`
    /// (FR-FCFS pass 3). Returns the bank and queue position.
    fn pick_precharge(&self, cycle: u64) -> Option<(usize, u32)> {
        if self.pre_tree.min() > cycle {
            return None;
        }
        let mut best: Option<(u64, usize, u32)> = None;
        for b in 0..self.banks.len() {
            if let Some((seq, pos)) = self.cand[b].pre {
                let at = self.banks[b].next_precharge;
                if at <= cycle && best.is_none_or(|(s, _, _)| seq < s) {
                    best = Some((seq, b, pos));
                }
            }
        }
        best.map(|(_, b, pos)| (b, pos))
    }

    /// Earliest cycle at which any queued request becomes actionable: the
    /// per-class tree minima per bank group combined with that group's
    /// channel-global floor. O(groups × log B) — no per-request scan.
    fn compute_next_actionable(&self) -> u64 {
        let mut next = self.pre_tree.min();
        let bpg = self.config.banks_per_group as usize;
        // Bank-group-major layout makes each group an aligned block; when
        // the group width is a power of two (all shipped geometries) the
        // block is one subtree and its minimum one O(1) node lookup.
        let aligned = bpg.is_power_of_two();
        for g in 0..self.config.bank_groups as usize {
            let (lo, hi) = (g * bpg, (g + 1) * bpg);
            let col = if aligned {
                self.col_tree.subtree_min(lo, bpg)
            } else {
                self.col_tree.range_min(lo, hi)
            };
            if col != u64::MAX {
                next = next.min(col.max(self.col_floor(g as u32)));
            }
            let act = if aligned {
                self.act_tree.subtree_min(lo, bpg)
            } else {
                self.act_tree.range_min(lo, hi)
            };
            if act != u64::MAX {
                next = next.min(act.max(self.act_floor(g as u32)));
            }
        }
        next
    }

    /// Returns `true` if completions are waiting to be drained.
    pub fn has_pending_completions(&self) -> bool {
        !self.completed.is_empty()
    }

    /// Drains completions accumulated since the last call.
    pub fn drain_completed(&mut self) -> Vec<MemCompletion> {
        std::mem::take(&mut self.completed)
    }

    /// Appends and clears accumulated completions without allocating.
    pub fn drain_completed_into(&mut self, out: &mut Vec<MemCompletion>) {
        out.append(&mut self.completed);
    }

    /// Advances the channel by one cycle, reporting what the tick did.
    ///
    /// When the cached [`Channel::next_event_cycle`] lies in the future the
    /// tick takes an O(1) fast path: the scheduler provably cannot act, so
    /// only the per-cycle queue-occupancy accounting runs — making ticks in
    /// which *other* channels are busy nearly free for this one.
    pub fn tick(&mut self, cycle: u64) -> ChannelTickResult {
        // Fast path: no read data due and no queued request actionable.
        if self.inflight_next > cycle && self.queue_next.is_some_and(|qn| qn > cycle) {
            self.stats.queue_occupancy_sum += self.queue_len as u64;
            return ChannelTickResult::default();
        }
        let mut result = ChannelTickResult::default();
        // Retire reads whose data has returned. Retirement changes no bank
        // or bus state, so the queue-side prediction survives it.
        if self.inflight_next <= cycle {
            let mut i = 0;
            while i < self.in_flight_reads.len() {
                if self.in_flight_reads[i].0 <= cycle {
                    let (_, completion) = self.in_flight_reads.swap_remove(i);
                    self.stats.read_latency_sum += completion.latency();
                    self.completed.push(completion);
                    result.completions = true;
                } else {
                    i += 1;
                }
            }
            self.inflight_next = self
                .in_flight_reads
                .iter()
                .map(|r| r.0)
                .min()
                .unwrap_or(u64::MAX);
        }

        self.stats.queue_occupancy_sum += self.queue_len as u64;
        if self.queue_len == 0 {
            // Re-arm the fast path once the last queued request has issued.
            self.queue_next = Some(u64::MAX);
        } else if self.queue_next.is_none_or(|qn| qn <= cycle) {
            // FR-FCFS over the cached per-bank candidates (pass 1: oldest
            // ready column; pass 2: oldest ready activate; pass 3: oldest
            // ready precharge); when nothing issues, the per-class trees
            // yield the earliest cycle at which any queued request could act
            // — which becomes the queue-side prediction.
            if let Some((b, pos)) = self.pick_column(cycle) {
                result.completions |= self.issue_column(b, pos, cycle);
                result.issued = true;
                self.queue_next = None;
            } else if let Some(b) = self.pick_activate(cycle) {
                self.issue_activate(b, cycle);
                result.issued = true;
                self.queue_next = None;
            } else if let Some((b, pos)) = self.pick_precharge(cycle) {
                self.issue_precharge(b, pos, cycle);
                result.issued = true;
                self.queue_next = None;
            } else {
                self.queue_next = Some(self.compute_next_actionable());
            }
        }
        result
    }

    /// The earliest cycle `>= now` at which a [`Channel::tick`] could do
    /// anything: return read data, or issue a column/activate/precharge
    /// command for some queued request. Returns `None` for a fully idle
    /// channel (empty queue, nothing in flight).
    ///
    /// The prediction is exact as long as the channel state does not change:
    /// every scheduler admission test is a monotone `cycle >= threshold`
    /// condition over frozen bank/bus state, so the minimum threshold over
    /// all queued requests and all three passes is the first cycle at which
    /// the reference per-cycle loop would have acted. The value is cached
    /// and invalidated by any state change.
    pub fn next_event_cycle(&mut self, now: u64) -> Option<u64> {
        let queue_next = match self.queue_next {
            Some(at) => at,
            None => {
                // The per-bank trees make the recompute O(groups × log B).
                let at = self.compute_next_actionable();
                self.queue_next = Some(at);
                at
            }
        };
        let earliest = queue_next.min(self.inflight_next);
        if earliest == u64::MAX {
            None
        } else {
            Some(earliest.max(now))
        }
    }

    /// Accounts `skipped` provably-idle cycles in bulk: exactly the state the
    /// reference loop would have accumulated by calling [`Channel::tick`]
    /// `skipped` times strictly before [`Channel::next_event_cycle`] (each
    /// such tick only adds the frozen queue length to the occupancy sum).
    pub fn skip_cycles(&mut self, skipped: u64) {
        self.stats.queue_occupancy_sum += self.queue_len as u64 * skipped;
    }

    /// Issues a column command; returns `true` if it produced an immediate
    /// completion (writes are posted).
    fn issue_column(&mut self, b: usize, pos: u32, cycle: u64) -> bool {
        let q = self.bank_queues[b]
            .remove(pos as usize)
            .expect("candidate position from bank cache");
        self.queue_len -= 1;
        let cfg = self.config;
        let bank = &mut self.banks[b];
        let row_result = q.row_result.unwrap_or(RowBufferResult::Hit);
        match row_result {
            RowBufferResult::Hit => self.stats.row_hits += 1,
            RowBufferResult::Miss => self.stats.row_misses += 1,
            RowBufferResult::Conflict => self.stats.row_conflicts += 1,
        }

        self.next_column_cmd = cycle + cfg.t_ccd_s.max(cfg.t_bl);
        self.last_column = Some((cycle, q.coord.bank_group));
        self.stats.data_bus_busy_cycles += cfg.t_bl;

        let completed = match q.req.kind {
            MemOpKind::Read => {
                let data_ready = cycle + cfg.t_cl + cfg.t_bl;
                bank.next_precharge = bank.next_precharge.max(cycle + cfg.t_rtp);
                bank.next_column = bank.next_column.max(cycle + cfg.t_ccd_l);
                self.stats.reads += 1;
                self.inflight_next = self.inflight_next.min(data_ready);
                self.in_flight_reads.push((
                    data_ready,
                    MemCompletion {
                        id: q.req.id,
                        addr: q.req.addr,
                        kind: MemOpKind::Read,
                        enqueued_at: q.enqueued_at,
                        completed_at: data_ready,
                        row_result,
                    },
                ));
                false
            }
            MemOpKind::Write => {
                let burst_end = cycle + cfg.t_cwl + cfg.t_bl;
                bank.next_precharge = bank.next_precharge.max(burst_end + cfg.t_wr);
                bank.next_column = bank.next_column.max(burst_end + cfg.t_wtr);
                self.stats.writes += 1;
                self.completed.push(MemCompletion {
                    id: q.req.id,
                    addr: q.req.addr,
                    kind: MemOpKind::Write,
                    enqueued_at: q.enqueued_at,
                    completed_at: cycle,
                    row_result,
                });
                true
            }
        };
        self.refresh_bank(b);
        completed
    }

    fn issue_activate(&mut self, b: usize, cycle: u64) {
        let cfg = self.config;
        let (row, bank_group) = {
            let q = self.bank_queues[b]
                .front_mut()
                // audit:allow(unwrap, pick_activate only selects banks whose act-tree leaf is finite, which requires a nonempty queue)
                .expect("activate candidate from bank cache");
            if q.row_result.is_none() {
                q.row_result = Some(RowBufferResult::Miss);
            }
            (q.coord.row, q.coord.bank_group)
        };
        let bank = &mut self.banks[b];
        bank.open_row = Some(row);
        bank.next_column = cycle + cfg.t_rcd;
        bank.next_precharge = cycle + cfg.t_ras;
        bank.next_activate = cycle + cfg.t_rc;
        self.last_activate = Some((cycle, bank_group));
        self.recent_activates.push_back(cycle);
        while self.recent_activates.len() > 8 {
            self.recent_activates.pop_front();
        }
        self.stats.activates += 1;
        self.refresh_bank(b);
    }

    fn issue_precharge(&mut self, b: usize, pos: u32, cycle: u64) {
        let cfg = self.config;
        self.bank_queues[b][pos as usize].row_result = Some(RowBufferResult::Conflict);
        let bank = &mut self.banks[b];
        bank.open_row = None;
        bank.next_activate = bank.next_activate.max(cycle + cfg.t_rp);
        self.stats.precharges += 1;
        self.refresh_bank(b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::AddressMapper;

    fn channel_and_mapper() -> (Channel, AddressMapper) {
        let cfg = DramConfig::ddr4_3200_single_channel();
        (Channel::new(cfg), AddressMapper::new(cfg))
    }

    fn run_until_complete(ch: &mut Channel, expected: usize, limit: u64) -> Vec<MemCompletion> {
        let mut done = Vec::new();
        let mut cycle = 0;
        while done.len() < expected && cycle < limit {
            ch.tick(cycle);
            done.extend(ch.drain_completed());
            cycle += 1;
        }
        done
    }

    #[test]
    fn single_read_latency_matches_act_rcd_cl() {
        let (mut ch, m) = channel_and_mapper();
        let addr = 0x10_000;
        assert!(ch.enqueue(MemRequest::read(1, addr), m.map(addr), 0));
        let done = run_until_complete(&mut ch, 1, 1000);
        assert_eq!(done.len(), 1);
        let cfg = DramConfig::ddr4_3200_single_channel();
        // ACT at cycle 0, column at tRCD, data at tRCD + tCL + tBL.
        assert_eq!(done[0].completed_at, cfg.t_rcd + cfg.t_cl + cfg.t_bl);
        assert_eq!(done[0].row_result, RowBufferResult::Miss);
    }

    #[test]
    fn second_read_same_row_is_a_hit() {
        let (mut ch, m) = channel_and_mapper();
        let a = 0x10_000;
        let b = a + 64; // single channel: next burst, same row
        assert!(ch.enqueue(MemRequest::read(1, a), m.map(a), 0));
        assert!(ch.enqueue(MemRequest::read(2, b), m.map(b), 0));
        let done = run_until_complete(&mut ch, 2, 2000);
        assert_eq!(done.len(), 2);
        let second = done.iter().find(|c| c.id.0 == 2).unwrap();
        assert_eq!(second.row_result, RowBufferResult::Hit);
        assert_eq!(ch.stats().row_hits, 1);
        assert_eq!(ch.stats().row_misses, 1);
    }

    #[test]
    fn row_conflict_requires_precharge() {
        let (mut ch, m) = channel_and_mapper();
        let cfg = DramConfig::ddr4_3200_single_channel();
        let a = 0;
        // Same bank, different row: one full row's worth of bursts away
        // times bank interleaving span.
        let b = cfg.row_bytes
            * u64::from(cfg.channels)
            * u64::from(cfg.bank_groups)
            * u64::from(cfg.banks_per_group);
        let (ca, cb) = (m.map(a), m.map(b));
        assert_eq!(ca.flat_bank(&cfg), cb.flat_bank(&cfg));
        assert_ne!(ca.row, cb.row);
        assert!(ch.enqueue(MemRequest::read(1, a), ca, 0));
        assert!(ch.enqueue(MemRequest::read(2, b), cb, 0));
        let done = run_until_complete(&mut ch, 2, 5000);
        let second = done.iter().find(|c| c.id.0 == 2).unwrap();
        assert_eq!(second.row_result, RowBufferResult::Conflict);
        assert!(second.completed_at > done[0].completed_at);
        assert!(ch.stats().precharges >= 1);
    }

    #[test]
    fn writes_complete_as_posted() {
        let (mut ch, m) = channel_and_mapper();
        let addr = 0x40_000;
        assert!(ch.enqueue(MemRequest::write(7, addr), m.map(addr), 0));
        let done = run_until_complete(&mut ch, 1, 1000);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].kind, MemOpKind::Write);
        assert_eq!(ch.stats().writes, 1);
    }

    #[test]
    fn queue_capacity_is_enforced() {
        let (mut ch, m) = channel_and_mapper();
        let cap = DramConfig::ddr4_3200_single_channel().queue_capacity;
        for i in 0..cap {
            assert!(ch.enqueue(
                MemRequest::read(i as u64, i as u64 * 64),
                m.map(i as u64 * 64),
                0
            ));
        }
        assert!(!ch.can_accept());
        assert!(!ch.enqueue(MemRequest::read(999, 0), m.map(0), 0));
        assert_eq!(ch.queue_len(), cap);
    }

    #[test]
    fn independent_banks_overlap() {
        // Requests to different banks should take far less than the sum of
        // their isolated latencies.
        let (mut ch, m) = channel_and_mapper();
        let cfg = DramConfig::ddr4_3200_single_channel();
        let bank_stride = cfg.row_bytes * u64::from(cfg.channels);
        for i in 0..8u64 {
            let addr = i * bank_stride;
            assert!(ch.enqueue(MemRequest::read(i, addr), m.map(addr), 0));
        }
        let done = run_until_complete(&mut ch, 8, 10_000);
        let last = done.iter().map(|c| c.completed_at).max().unwrap();
        let isolated = cfg.t_rcd + cfg.t_cl + cfg.t_bl;
        assert!(
            last < isolated * 8 / 2,
            "bank-level parallelism missing: {last} cycles for 8 requests"
        );
    }

    #[test]
    fn next_event_cycle_is_never_in_the_past() {
        // Mixed traffic with row hits, conflicts and reads in flight: after
        // every tick the prediction must lie at or after the next cycle, and
        // every tick strictly before the predicted cycle must do nothing.
        let (mut ch, m) = channel_and_mapper();
        let cfg = DramConfig::ddr4_3200_single_channel();
        let conflict_stride = cfg.row_bytes
            * u64::from(cfg.channels)
            * u64::from(cfg.bank_groups)
            * u64::from(cfg.banks_per_group);
        for i in 0..12u64 {
            let addr = (i % 3) * conflict_stride + i * 64;
            assert!(ch.enqueue(MemRequest::read(i, addr), m.map(addr), 0));
        }
        let mut done = 0usize;
        let mut cycle = 0u64;
        while done < 12 {
            let result = ch.tick(cycle);
            done += ch.drain_completed().len();
            if let Some(next) = ch.next_event_cycle(cycle + 1) {
                assert!(
                    next > cycle,
                    "prediction {next} lies before cycle {}",
                    cycle + 1
                );
                if result.any() {
                    // Active tick: prediction freshly recomputed; the gap
                    // until it must be provably idle.
                    for idle in (cycle + 1)..next {
                        let r = ch.tick(idle);
                        assert_eq!(
                            r,
                            ChannelTickResult::default(),
                            "tick at {idle} acted before predicted event {next}"
                        );
                    }
                    cycle = next;
                    continue;
                }
            }
            cycle += 1;
            assert!(cycle < 100_000, "did not converge");
        }
        assert_eq!(ch.outstanding(), 0);
    }

    #[test]
    fn throughput_respects_data_bus_limit() {
        // A long stream of row hits cannot exceed one burst per tBL cycles.
        let (mut ch, m) = channel_and_mapper();
        let mut issued = 0u64;
        let mut completed = 0usize;
        let mut cycle = 0u64;
        let total = 200u64;
        while completed < total as usize {
            while issued < total && ch.can_accept() {
                let addr = issued * 64;
                ch.enqueue(MemRequest::read(issued, addr), m.map(addr), cycle);
                issued += 1;
            }
            ch.tick(cycle);
            completed += ch.drain_completed().len();
            cycle += 1;
            assert!(cycle < 100_000, "stalled");
        }
        let cfg = DramConfig::ddr4_3200_single_channel();
        let min_cycles = total * cfg.t_bl;
        assert!(
            cycle >= min_cycles,
            "exceeded peak bandwidth: {cycle} < {min_cycles}"
        );
        // ...but should stay within ~2x of peak for a pure streaming pattern.
        assert!(
            cycle < min_cycles * 3,
            "streaming far below peak: {cycle} vs {min_cycles}"
        );
    }

    #[test]
    fn rejected_enqueue_then_skip_window_never_jumps_past_the_retry_cycle() {
        // Satellite regression (ISSUE 10): a full queue rejects an enqueue;
        // the caller's retry becomes possible exactly when the next column
        // command frees a slot. The next-event prediction must come due at
        // or before that cycle — a stale cached prediction would let a skip
        // window jump the clock past the retry point, delaying the retried
        // request relative to the per-cycle reference loop.
        let cfg = DramConfig {
            queue_capacity: 4,
            ..DramConfig::ddr4_3200_single_channel()
        };
        let m = AddressMapper::new(cfg);
        let mut ch = Channel::new(cfg);
        for i in 0..4u64 {
            let addr = i * 64;
            assert!(ch.enqueue(MemRequest::read(i, addr), m.map(addr), 0));
        }
        assert!(!ch.enqueue(MemRequest::read(99, 4 * 64), m.map(4 * 64), 0));

        // Drive a reference clone cycle by cycle to find the true first
        // cycle at which space frees (the first column issue).
        let mut reference = ch.clone();
        let mut free_at = None;
        for cycle in 0..10_000 {
            reference.tick(cycle);
            reference.drain_completed();
            if reference.can_accept() {
                free_at = Some(cycle);
                break;
            }
        }
        let free_at = free_at.expect("queue never freed");

        // Now drive the original exactly as the event-driven runner would:
        // jump to each predicted event, tick it, repeat. The clock must
        // visit a cycle <= free_at with capacity available — i.e. the
        // prediction chain never skips over the retry opportunity.
        let mut cycle = 0u64;
        loop {
            let next = ch
                .next_event_cycle(cycle)
                .expect("busy channel must predict an event");
            assert!(
                next >= cycle,
                "prediction {next} went backwards from {cycle}"
            );
            for idle in cycle..next {
                let r = ch.tick(idle);
                assert!(!r.any(), "tick at {idle} acted before predicted {next}");
                assert!(
                    !ch.can_accept() || idle >= free_at,
                    "capacity freed at {idle} without an observable event"
                );
            }
            ch.tick(next);
            ch.drain_completed();
            cycle = next + 1;
            if ch.can_accept() {
                assert!(
                    next <= free_at,
                    "event-driven path freed capacity at {next}, reference at {free_at}: \
                     a skip window would have jumped past the retry cycle"
                );
                break;
            }
            assert!(cycle < 10_000, "did not converge");
        }
        // The retry itself must now succeed.
        assert!(ch.enqueue(MemRequest::read(99, 4 * 64), m.map(4 * 64), cycle));
    }

    #[test]
    fn per_bank_scheduler_matches_reference_single_queue_semantics() {
        // Age ordering across banks: two activate-ready banks must issue in
        // arrival order even though the younger request sits in a different
        // bank queue.
        let (mut ch, m) = channel_and_mapper();
        let cfg = DramConfig::ddr4_3200_single_channel();
        let bank_stride = cfg.row_bytes * u64::from(cfg.channels);
        let (a, b) = (3 * bank_stride, 7 * bank_stride);
        assert!(ch.enqueue(MemRequest::read(1, a), m.map(a), 0));
        assert!(ch.enqueue(MemRequest::read(2, b), m.map(b), 0));
        let done = run_until_complete(&mut ch, 2, 5_000);
        // Same timing parameters per bank: the older request's activate
        // (and data) must come first.
        assert_eq!(done[0].id.0, 1);
        assert_eq!(done[1].id.0, 2);
    }
}
