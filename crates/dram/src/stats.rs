//! Aggregated DRAM statistics.
//!
//! These are the quantities the paper's figures are built from: bandwidth
//! utilisation (Fig. 3a, Fig. 11), row-buffer hit and bank-conflict rates
//! (Fig. 9 table), average outstanding requests (Fig. 11) and request
//! latencies.

use crate::channel::ChannelStats;
use crate::config::DramConfig;

/// System-wide DRAM statistics, aggregated over all channels.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DramStats {
    /// Total memory-clock cycles simulated.
    pub cycles: u64,
    /// Read bursts completed.
    pub reads: u64,
    /// Write bursts issued.
    pub writes: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Row misses (activate on a precharged bank).
    pub row_misses: u64,
    /// Row conflicts (had to close another row).
    pub row_conflicts: u64,
    /// Data-bus busy cycles summed over channels.
    pub data_bus_busy_cycles: u64,
    /// Sum over cycles of queued requests, summed over channels.
    pub queue_occupancy_sum: u64,
    /// Sum of read latencies in cycles.
    pub read_latency_sum: u64,
    /// Number of channels contributing to the sums.
    pub channels: u32,
}

impl DramStats {
    /// Builds the aggregate from per-channel counters.
    pub fn aggregate(cycles: u64, channels: &[ChannelStats]) -> Self {
        let mut out = DramStats {
            cycles,
            channels: channels.len() as u32,
            ..DramStats::default()
        };
        for ch in channels {
            out.reads += ch.reads;
            out.writes += ch.writes;
            out.row_hits += ch.row_hits;
            out.row_misses += ch.row_misses;
            out.row_conflicts += ch.row_conflicts;
            out.data_bus_busy_cycles += ch.data_bus_busy_cycles;
            out.queue_occupancy_sum += ch.queue_occupancy_sum;
            out.read_latency_sum += ch.read_latency_sum;
        }
        out
    }

    /// Total bursts transferred.
    pub fn total_accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Fraction of peak data-bus bandwidth actually used, in `[0, 1]`.
    pub fn bandwidth_utilization(&self) -> f64 {
        if self.cycles == 0 || self.channels == 0 {
            return 0.0;
        }
        self.data_bus_busy_cycles as f64 / (self.cycles * u64::from(self.channels)) as f64
    }

    /// Achieved bandwidth in GB/s assuming the nominal 1600 MHz clock.
    pub fn achieved_gbps(&self, config: &DramConfig) -> f64 {
        self.bandwidth_utilization() * config.peak_gbps()
    }

    /// Average number of requests waiting in controller queues.
    pub fn avg_queue_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.queue_occupancy_sum as f64 / self.cycles as f64
    }

    /// Row-buffer hit fraction among all column accesses.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses + self.row_conflicts;
        if total == 0 {
            return 0.0;
        }
        self.row_hits as f64 / total as f64
    }

    /// Bank-conflict fraction among all column accesses.
    pub fn bank_conflict_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses + self.row_conflicts;
        if total == 0 {
            return 0.0;
        }
        self.row_conflicts as f64 / total as f64
    }

    /// Average read latency in cycles.
    pub fn avg_read_latency(&self) -> f64 {
        if self.reads == 0 {
            return 0.0;
        }
        self.read_latency_sum as f64 / self.reads as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DramStats {
        let per_channel = ChannelStats {
            reads: 100,
            writes: 50,
            row_hits: 80,
            row_misses: 40,
            row_conflicts: 30,
            data_bus_busy_cycles: 600,
            queue_occupancy_sum: 5000,
            read_latency_sum: 4600,
            activates: 70,
            precharges: 30,
        };
        DramStats::aggregate(1000, &[per_channel; 4])
    }

    #[test]
    fn aggregation_sums_channels() {
        let s = sample();
        assert_eq!(s.reads, 400);
        assert_eq!(s.writes, 200);
        assert_eq!(s.total_accesses(), 600);
        assert_eq!(s.channels, 4);
    }

    #[test]
    fn derived_rates() {
        let s = sample();
        assert!((s.bandwidth_utilization() - 2400.0 / 4000.0).abs() < 1e-9);
        assert!((s.avg_queue_occupancy() - 20.0).abs() < 1e-9);
        assert!((s.row_hit_rate() - 80.0 / 150.0).abs() < 1e-9);
        assert!((s.bank_conflict_rate() - 30.0 / 150.0).abs() < 1e-9);
        assert!((s.avg_read_latency() - 46.0).abs() < 1e-9);
        let cfg = DramConfig::default();
        assert!(s.achieved_gbps(&cfg) > 0.0);
        assert!(s.achieved_gbps(&cfg) <= cfg.peak_gbps());
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = DramStats::default();
        assert_eq!(s.bandwidth_utilization(), 0.0);
        assert_eq!(s.avg_queue_occupancy(), 0.0);
        assert_eq!(s.row_hit_rate(), 0.0);
        assert_eq!(s.bank_conflict_rate(), 0.0);
        assert_eq!(s.avg_read_latency(), 0.0);
    }
}
