//! Regenerates the checked-in `profiles/` directory from the built-in
//! profiles, so the files can never drift from `to_file_string()`:
//!
//! ```text
//! cargo run -p palermo-dram --example gen_profiles
//! ```

use palermo_dram::HardwareProfile;

fn main() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("profiles");
    for profile in HardwareProfile::builtins() {
        let path = dir.join(format!("{}.profile", profile.name));
        std::fs::write(&path, profile.to_file_string())
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        println!("wrote {}", path.display());
    }
}
