//! Property tests for hardware profile files: arbitrary valid profiles
//! must round-trip serialize → parse → serialize byte-identically, junk
//! lines and duplicate keys must be rejected (never defaulted), and the
//! checked-in `profiles/` directory must be exactly the canonical
//! rendering of the built-in profiles.

use palermo_dram::{DramConfig, EnergyCoefficients, HardwareProfile, ProvisioningOverrides};
use proptest::prelude::*;

/// Builds a structurally valid random profile. Timings are derived so the
/// cross-parameter constraints (`t_faw >= 4 * t_rrd_s`, `t_rc >= t_ras +
/// t_rp`, long >= short CCD/RRD) hold by construction.
#[allow(clippy::too_many_arguments)]
fn build_profile(
    name_idx: usize,
    channels_log2: u32,
    banks_log2: u32,
    rows_log2: u32,
    row_bytes_log2: u32,
    queue_capacity: usize,
    t_base: u64,
    t_rrd_s: u64,
    faw_slack: u64,
    energy: (u64, u64, u64, u64),
    overrides: ((bool, u32), (bool, u64)),
) -> HardwareProfile {
    let names = ["part-a", "part_b", "part.c", "x2.5d-stack"];
    let dram = DramConfig {
        channels: 1 << channels_log2,
        ranks: 1,
        bank_groups: 1 << banks_log2,
        banks_per_group: 4,
        rows: 1 << rows_log2,
        row_bytes: 1 << row_bytes_log2,
        burst_bytes: 64,
        queue_capacity,
        t_cl: t_base,
        t_cwl: t_base.max(2) - 1,
        t_rcd: t_base,
        t_rp: t_base,
        t_ras: 2 * t_base,
        t_rc: 3 * t_base,
        t_ccd_s: 4,
        t_ccd_l: 8,
        t_rrd_s,
        t_rrd_l: t_rrd_s + 2,
        t_faw: 4 * t_rrd_s + faw_slack,
        t_wr: t_base,
        t_wtr: 8,
        t_rtp: 12,
        t_bl: 4,
    };
    HardwareProfile {
        name: names[name_idx % names.len()].to_string(),
        dram,
        energy: EnergyCoefficients {
            pj_per_act: energy.0 as f64,
            pj_per_rd_burst: energy.1 as f64,
            pj_per_wr_burst: energy.2 as f64,
            background_mw_per_bank: energy.3 as f64 / 10.0,
        },
        provisioning: ProvisioningOverrides {
            pe_columns: overrides.0 .0.then_some(overrides.0 .1),
            treetop_bytes: overrides.1 .0.then_some(overrides.1 .1),
            ..ProvisioningOverrides::default()
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_profiles_round_trip_byte_identically(
        name_idx in 0usize..4,
        channels_log2 in 0u32..5,
        banks_log2 in 0u32..4,
        rows_log2 in 10u32..20,
        row_bytes_log2 in 7u32..14,
        queue_capacity in 1usize..128,
        t_base in 2u64..64,
        t_rrd_s in 1u64..12,
        faw_slack in 0u64..8,
        energy in (1u64..10_000, 1u64..10_000, 1u64..10_000, 1u64..500),
        overrides in ((any::<bool>(), 1u32..64), (any::<bool>(), 1u64..(64 << 20))),
    ) {
        let profile = build_profile(
            name_idx, channels_log2, banks_log2, rows_log2, row_bytes_log2,
            queue_capacity, t_base, t_rrd_s, faw_slack, energy, overrides,
        );
        prop_assert!(profile.dram.validate().is_ok());
        let text = profile.to_file_string();
        let parsed = HardwareProfile::parse(&text);
        prop_assert_eq!(parsed.as_ref(), Ok(&profile));
        let reparsed = parsed.unwrap().to_file_string();
        prop_assert_eq!(reparsed, text);
    }

    #[test]
    fn junk_lines_are_rejected_not_defaulted(
        junk in prop::sample::select(vec![
            "junk", "zzz", "t_cl_extra", "chan_nels", "widthx", "foo_bar_baz",
        ]),
        line_no in 0usize..64,
    ) {
        let base = HardwareProfile::ddr4_3200().to_file_string();
        let mut lines: Vec<&str> = base.lines().collect();
        let at = line_no % (lines.len() + 1);
        // A bare word is a syntax error; `word = 1` is an unknown-key
        // error. Both must fail — junk is never silently defaulted.
        let with_value = format!("{junk} = 1");
        for insert in [junk, with_value.as_str()] {
            lines.insert(at, insert);
            let text = lines.join("\n");
            prop_assert!(HardwareProfile::parse(&text).is_err(), "{}", insert);
            lines.remove(at);
        }
    }

    #[test]
    fn duplicated_keys_are_rejected(key_idx in 0usize..29) {
        let base = HardwareProfile::hbm2e().to_file_string();
        let keys: Vec<&str> = base
            .lines()
            .filter(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
            .map(|l| l.split('=').next().unwrap().trim())
            .collect();
        let key = keys[key_idx % keys.len()];
        let text = format!("{base}{key} = 1\n");
        let err = HardwareProfile::parse(&text).unwrap_err();
        prop_assert!(
            format!("{err}").contains("duplicate"),
            "expected duplicate-key error for '{}', got {}", key, err
        );
    }
}

/// Path of a checked-in profile file, relative to the workspace root.
fn checked_in(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("profiles")
        .join(format!("{name}.profile"))
}

#[test]
fn checked_in_profiles_match_the_builtins_byte_for_byte() {
    for profile in HardwareProfile::builtins() {
        let path = checked_in(&profile.name);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        assert_eq!(
            text,
            profile.to_file_string(),
            "{} drifted from the builtin — regenerate with \
             `cargo run -p palermo-dram --example gen_profiles`",
            path.display()
        );
        let loaded = HardwareProfile::load(&path).expect("checked-in profile must parse");
        assert_eq!(loaded, profile);
    }
}

#[test]
fn checked_in_ddr4_profile_is_the_hardcoded_default() {
    let loaded = HardwareProfile::load(checked_in("ddr4-3200")).expect("ddr4 profile");
    assert_eq!(loaded.dram, DramConfig::ddr4_3200_quad_channel());
    assert_eq!(DramConfig::from_profile(&loaded), loaded.dram);
}
