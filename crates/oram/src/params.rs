//! ORAM protocol and hierarchy parameters.
//!
//! [`OramParams`] describes a single sub-ORAM tree (the data tree or one of
//! the recursive position-map trees). [`HierarchyParams`] derives the sizes
//! of the three-level recursion used throughout the paper (Fig. 2 /
//! Table III): the protected data space, `PosMap1`, `PosMap2`, and the
//! on-chip `PosMap3`.

use crate::error::{OramError, OramResult};

/// Parameters of one ORAM binary tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OramParams {
    /// Number of *real* block slots per bucket (RingORAM `Z`).
    pub z: u16,
    /// Number of *dummy* block slots per bucket (RingORAM `S`).
    pub s: u16,
    /// Eviction period: an `EvictPath` is scheduled every `a` accesses.
    pub a: u32,
    /// Size of one block (cache line) in bytes.
    pub block_bytes: u32,
    /// Number of logical blocks protected by this tree.
    pub num_blocks: u64,
    /// Number of leaves of the binary tree (power of two).
    pub num_leaves: u64,
    /// Number of tree levels, root and leaf level inclusive.
    pub levels: u32,
}

impl OramParams {
    /// Returns a builder initialised with the paper's default Palermo
    /// configuration `(Z, S, A) = (16, 27, 20)` and 64-byte blocks.
    pub fn builder() -> OramParamsBuilder {
        OramParamsBuilder::default()
    }

    /// Total number of nodes (buckets) in the tree.
    pub fn num_nodes(&self) -> u64 {
        2 * self.num_leaves - 1
    }

    /// Total number of slots (real + dummy) per bucket.
    pub fn slots_per_bucket(&self) -> u32 {
        u32::from(self.z) + u32::from(self.s)
    }

    /// Size of one bucket in DRAM, including its metadata block, in bytes.
    pub fn bucket_bytes(&self) -> u64 {
        u64::from(self.slots_per_bucket() + 1) * u64::from(self.block_bytes)
    }

    /// Total DRAM footprint of the tree in bytes.
    pub fn tree_bytes(&self) -> u64 {
        self.num_nodes() * self.bucket_bytes()
    }

    /// Logical capacity of the protected space in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.num_blocks * u64::from(self.block_bytes)
    }
}

/// Builder for [`OramParams`].
///
/// ```
/// use palermo_oram::params::OramParams;
/// let params = OramParams::builder()
///     .capacity_bytes(1 << 30)
///     .z(16)
///     .s(27)
///     .a(20)
///     .build()?;
/// assert_eq!(params.block_bytes, 64);
/// assert!(params.num_leaves.is_power_of_two());
/// # Ok::<(), palermo_oram::error::OramError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OramParamsBuilder {
    z: u16,
    s: u16,
    a: u32,
    block_bytes: u32,
    num_blocks: u64,
}

impl Default for OramParamsBuilder {
    fn default() -> Self {
        OramParamsBuilder {
            z: 16,
            s: 27,
            a: 20,
            block_bytes: 64,
            // 16 GiB of 64 B blocks, the paper's protected user space.
            num_blocks: (16u64 << 30) / 64,
        }
    }
}

impl OramParamsBuilder {
    /// Sets the number of real slots per bucket.
    pub fn z(&mut self, z: u16) -> &mut Self {
        self.z = z;
        self
    }

    /// Sets the number of dummy slots per bucket.
    pub fn s(&mut self, s: u16) -> &mut Self {
        self.s = s;
        self
    }

    /// Sets the eviction period.
    pub fn a(&mut self, a: u32) -> &mut Self {
        self.a = a;
        self
    }

    /// Sets the block (cache line) size in bytes. Must be a power of two.
    pub fn block_bytes(&mut self, block_bytes: u32) -> &mut Self {
        self.block_bytes = block_bytes;
        self
    }

    /// Sets the number of protected logical blocks directly.
    pub fn num_blocks(&mut self, num_blocks: u64) -> &mut Self {
        self.num_blocks = num_blocks;
        self
    }

    /// Sets the protected capacity in bytes (rounded down to whole blocks).
    pub fn capacity_bytes(&mut self, bytes: u64) -> &mut Self {
        self.num_blocks = bytes / u64::from(self.block_bytes.max(1));
        self
    }

    /// Validates the configuration and derives the tree geometry.
    ///
    /// # Errors
    ///
    /// Returns [`OramError::InvalidParams`] if any field is out of range
    /// (zero real slots, non-power-of-two block size, empty address space,
    /// or a zero eviction period).
    pub fn build(&self) -> OramResult<OramParams> {
        if self.z == 0 {
            return Err(OramError::InvalidParams {
                reason: "z (real slots per bucket) must be at least 1".into(),
            });
        }
        if self.a == 0 {
            return Err(OramError::InvalidParams {
                reason: "a (eviction period) must be at least 1".into(),
            });
        }
        if self.block_bytes == 0 || !self.block_bytes.is_power_of_two() {
            return Err(OramError::InvalidParams {
                reason: format!(
                    "block_bytes must be a non-zero power of two, got {}",
                    self.block_bytes
                ),
            });
        }
        if self.num_blocks == 0 {
            return Err(OramError::InvalidParams {
                reason: "the protected space must contain at least one block".into(),
            });
        }
        let buckets_needed = self.num_blocks.div_ceil(u64::from(self.z));
        let num_leaves = buckets_needed.next_power_of_two().max(1);
        let levels = num_leaves.trailing_zeros() + 1;
        Ok(OramParams {
            z: self.z,
            s: self.s,
            a: self.a,
            block_bytes: self.block_bytes,
            num_blocks: self.num_blocks,
            num_leaves,
            levels,
        })
    }
}

/// Parameters of the full three-level recursive ORAM hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyParams {
    /// The protected user data tree.
    pub data: OramParams,
    /// The tree protecting the data tree's position map.
    pub pos1: OramParams,
    /// The tree protecting `PosMap1`'s position map.
    pub pos2: OramParams,
    /// Bytes per position-map entry (leaf identifier).
    pub posmap_entry_bytes: u32,
    /// Number of top tree levels held in the on-chip tree-top cache
    /// (per sub-ORAM), as in the Phantom-style tree-top cache of Table III.
    pub treetop_levels: u32,
    /// Number of entries the on-chip `PosMap3` must hold (the number of
    /// `PosMap2` blocks).
    pub posmap3_entries: u64,
}

impl HierarchyParams {
    /// Derives the recursion sizes from the data-tree parameters.
    ///
    /// Every position-map entry is `posmap_entry_bytes` wide, so a 64-byte
    /// block of `PosMapN` covers `block_bytes / posmap_entry_bytes` blocks of
    /// the level below, shrinking each level by that factor (16× for the
    /// default 4-byte entries).
    ///
    /// # Errors
    ///
    /// Returns [`OramError::InvalidParams`] if the entry size does not divide
    /// the block size or if any derived level fails validation.
    pub fn derive(
        data: OramParams,
        posmap_entry_bytes: u32,
        treetop_levels: u32,
    ) -> OramResult<Self> {
        if posmap_entry_bytes == 0 || !data.block_bytes.is_multiple_of(posmap_entry_bytes) {
            return Err(OramError::InvalidParams {
                reason: format!(
                    "posmap entry size {posmap_entry_bytes} must divide the block size {}",
                    data.block_bytes
                ),
            });
        }
        let entries_per_block = u64::from(data.block_bytes / posmap_entry_bytes);
        let pos1_blocks = data.num_blocks.div_ceil(entries_per_block).max(1);
        let pos2_blocks = pos1_blocks.div_ceil(entries_per_block).max(1);
        let posmap3_entries = pos2_blocks.div_ceil(entries_per_block).max(1) * entries_per_block;

        let mut builder = OramParamsBuilder {
            z: data.z,
            s: data.s,
            a: data.a,
            block_bytes: data.block_bytes,
            num_blocks: pos1_blocks,
        };
        let pos1 = builder.build()?;
        builder.num_blocks = pos2_blocks;
        let pos2 = builder.build()?;

        Ok(HierarchyParams {
            data,
            pos1,
            pos2,
            posmap_entry_bytes,
            treetop_levels,
            posmap3_entries,
        })
    }

    /// Default hierarchy matching Table III: 16 GiB protected space,
    /// `(Z, S, A) = (16, 27, 20)`, 4-byte position-map entries, and a
    /// tree-top cache covering the top 6 levels of each sub-ORAM.
    pub fn paper_default() -> OramResult<Self> {
        let data = OramParams::builder().build()?;
        HierarchyParams::derive(data, 4, 6)
    }

    /// Number of position-map entries that fit in one block.
    pub fn entries_per_block(&self) -> u64 {
        u64::from(self.data.block_bytes / self.posmap_entry_bytes)
    }

    /// The parameters of the given sub-ORAM level.
    pub fn level(&self, sub: crate::types::SubOram) -> &OramParams {
        match sub {
            crate::types::SubOram::Data => &self.data,
            crate::types::SubOram::Pos1 => &self.pos1,
            crate::types::SubOram::Pos2 => &self.pos2,
        }
    }

    /// Total DRAM footprint of the three trees, in bytes.
    pub fn total_tree_bytes(&self) -> u64 {
        self.data.tree_bytes() + self.pos1.tree_bytes() + self.pos2.tree_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::SubOram;

    #[test]
    fn default_build_matches_paper_scale() {
        let p = OramParams::builder().build().unwrap();
        assert_eq!(p.z, 16);
        assert_eq!(p.s, 27);
        assert_eq!(p.a, 20);
        assert_eq!(p.block_bytes, 64);
        assert_eq!(p.num_blocks, (16u64 << 30) / 64);
        assert!(p.num_leaves.is_power_of_two());
        // 2^28 blocks / 16 per bucket = 2^24 leaves -> 25 levels.
        assert_eq!(p.levels, 25);
    }

    #[test]
    fn small_tree_geometry() {
        let p = OramParams::builder()
            .num_blocks(64)
            .z(4)
            .s(5)
            .a(3)
            .build()
            .unwrap();
        assert_eq!(p.num_leaves, 16);
        assert_eq!(p.levels, 5);
        assert_eq!(p.num_nodes(), 31);
        assert_eq!(p.slots_per_bucket(), 9);
        assert_eq!(p.bucket_bytes(), 10 * 64);
        assert_eq!(p.tree_bytes(), 31 * 10 * 64);
        assert_eq!(p.capacity_bytes(), 64 * 64);
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(OramParams::builder().z(0).build().is_err());
        assert!(OramParams::builder().a(0).build().is_err());
        assert!(OramParams::builder().block_bytes(48).build().is_err());
        assert!(OramParams::builder().num_blocks(0).build().is_err());
    }

    #[test]
    fn single_block_space_is_valid() {
        let p = OramParams::builder().num_blocks(1).build().unwrap();
        assert_eq!(p.num_leaves, 1);
        assert_eq!(p.levels, 1);
    }

    #[test]
    fn hierarchy_shrinks_by_entries_per_block() {
        let h = HierarchyParams::paper_default().unwrap();
        assert_eq!(h.entries_per_block(), 16);
        assert_eq!(h.pos1.num_blocks, h.data.num_blocks / 16);
        assert_eq!(h.pos2.num_blocks, h.pos1.num_blocks / 16);
        // PosMap3 must fit in the 16 MB on-chip budget of Table III:
        // pos2 blocks * 4 B per entry.
        let posmap3_bytes = h.pos2.num_blocks * u64::from(h.posmap_entry_bytes);
        assert!(posmap3_bytes <= 16 << 20, "PosMap3 = {posmap3_bytes} bytes");
        assert!(h.total_tree_bytes() > h.data.capacity_bytes());
    }

    #[test]
    fn hierarchy_level_lookup() {
        let h = HierarchyParams::paper_default().unwrap();
        assert_eq!(h.level(SubOram::Data).num_blocks, h.data.num_blocks);
        assert_eq!(h.level(SubOram::Pos1).num_blocks, h.pos1.num_blocks);
        assert_eq!(h.level(SubOram::Pos2).num_blocks, h.pos2.num_blocks);
    }

    #[test]
    fn hierarchy_rejects_bad_entry_size() {
        let data = OramParams::builder().build().unwrap();
        assert!(HierarchyParams::derive(data, 0, 6).is_err());
        assert!(HierarchyParams::derive(data, 7, 6).is_err());
    }

    #[test]
    fn capacity_bytes_round_trip() {
        let p = OramParams::builder()
            .capacity_bytes(1 << 20)
            .build()
            .unwrap();
        assert_eq!(p.num_blocks, (1 << 20) / 64);
    }
}
