//! The three-level recursive ORAM hierarchy and its access-plan lowering.
//!
//! A [`HierarchicalOram`] owns the functional engines of the three sub-ORAMs
//! (Data, PosMap1, PosMap2) plus the on-chip PosMap3, and converts every LLC
//! miss into an [`AccessPlan`]: the DAG of per-level protocol phases with
//! the *intra-request* dependencies appropriate for the configured protocol
//! flavor. The controller models in `palermo-controller` then decide how
//! plans from *different* requests may overlap.

use crate::access_plan::{AccessPlan, AccessPlanBuilder, PhaseKind, PlanNodeId};
use crate::crypto::Payload;
use crate::error::{OramError, OramResult};
use crate::level::{LevelConfig, LevelOutcome, LevelProtocol, LevelStats};
use crate::params::HierarchyParams;
use crate::path_level::{PathLevel, PathLevelOptions};
use crate::ring_level::RingLevel;
use crate::rng::OramRng;
use crate::types::{BlockId, OramOp, PhysAddr, SubOram};

/// Which protocol family drives each sub-ORAM and how plan nodes are wired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolFlavor {
    /// Classic PathORAM: whole-path reads and immediate write-back,
    /// fully serialised recursion.
    PathOram,
    /// RingORAM (Algorithm 1): metadata loads, single-slot reads, reshuffles
    /// and periodic evictions, fully serialised recursion.
    RingOram,
    /// Palermo (Algorithm 2): RingORAM semantics with the reshuffle hoisted
    /// early and only the minimal intra-request dependencies retained.
    Palermo,
}

/// Prefetch integration mode (§V-C and §III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrefetchMode {
    /// No prefetching; each LLC miss maps to one ORAM request for one line.
    None,
    /// PrORAM-style: force `length` consecutive cache lines onto the same
    /// leaf so one path access prefetches the whole group.
    SameLeaf {
        /// Number of consecutive cache lines sharing a leaf.
        length: u32,
    },
    /// Palermo-style block widening: one data-tree block spans `length`
    /// consecutive cache lines, fetched as a burst in the ReadPath phase.
    WideBlock {
        /// Number of consecutive cache lines per data-tree block.
        length: u32,
    },
}

impl PrefetchMode {
    /// Number of cache lines brought on chip per data access.
    pub fn span(self) -> u32 {
        match self {
            PrefetchMode::None => 1,
            PrefetchMode::SameLeaf { length } | PrefetchMode::WideBlock { length } => length.max(1),
        }
    }
}

/// IR-ORAM-style recursion bypass rates: the fraction of accesses whose
/// PosMap lookup hits on-chip tracking state and skips the sub-ORAM access.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PosmapBypass {
    /// Fraction of accesses that skip the PosMap1 sub-ORAM.
    pub pos1_rate: f64,
    /// Fraction of accesses that skip the PosMap2 sub-ORAM.
    pub pos2_rate: f64,
}

/// Full configuration of a hierarchical ORAM instance.
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchyConfig {
    /// Tree/recursion sizing.
    pub params: HierarchyParams,
    /// Protocol family.
    pub flavor: ProtocolFlavor,
    /// Seed for all leaf-selection randomness.
    pub seed: u64,
    /// Hardware stash capacity per sub-ORAM, in entries.
    pub stash_capacity: usize,
    /// Prefetch integration.
    pub prefetch: PrefetchMode,
    /// PathORAM-family bucket capacity (ignored by Ring/Palermo flavors).
    pub path_bucket_z: u16,
    /// LAORAM fat-tree bucket shaping (PathORAM family only).
    pub fat_tree: bool,
    /// IR-ORAM recursion bypass, if any.
    pub posmap_bypass: Option<PosmapBypass>,
    /// Stash occupancy at which a background eviction (dummy request) is
    /// injected; `None` disables background evictions.
    pub background_evict_threshold: Option<usize>,
    /// Fixed on-chip processing latency charged to each ReadPath phase
    /// (decryption and permutation bookkeeping), in controller cycles.
    pub decrypt_cycles: u32,
}

impl HierarchyConfig {
    /// A configuration with the paper's Table III defaults for the given
    /// flavor: 16 GiB protected space, `(Z, S, A) = (16, 27, 20)`,
    /// 256-entry stashes, 6 tree-top levels on chip.
    ///
    /// # Errors
    ///
    /// Propagates parameter-validation failures from [`HierarchyParams`].
    pub fn paper_default(flavor: ProtocolFlavor) -> OramResult<Self> {
        Ok(HierarchyConfig {
            params: HierarchyParams::paper_default()?,
            flavor,
            seed: 0x9A1E_0A90_5EED,
            stash_capacity: 256,
            prefetch: PrefetchMode::None,
            path_bucket_z: 4,
            fat_tree: false,
            posmap_bypass: None,
            background_evict_threshold: None,
            decrypt_cycles: 4,
        })
    }
}

/// The result of lowering one ORAM request.
#[derive(Debug, Clone)]
pub struct AccessResult {
    /// The DRAM-traffic plan for the request.
    pub plan: AccessPlan,
    /// The payload returned to the processor (reads of written blocks only).
    pub value: Option<Payload>,
    /// Whether the block had been written before this access.
    pub found: bool,
    /// Cache lines (in units of 64-byte logical blocks of the protected
    /// space) brought on chip by this access; the LLC model inserts them so
    /// subsequent accesses hit without ORAM involvement.
    pub prefetched: Vec<BlockId>,
}

/// Aggregate statistics of a hierarchy instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// Real ORAM requests served.
    pub requests: u64,
    /// Dummy (background-eviction) requests injected.
    pub dummy_requests: u64,
    /// Sub-ORAM accesses skipped by recursion bypass (IR-ORAM).
    pub bypassed_posmap_accesses: u64,
}

enum LevelEngine {
    Ring(RingLevel),
    Path(PathLevel),
}

impl LevelEngine {
    fn as_dyn(&self) -> &dyn LevelProtocol {
        match self {
            LevelEngine::Ring(l) => l,
            LevelEngine::Path(l) => l,
        }
    }

    fn as_dyn_mut(&mut self) -> &mut dyn LevelProtocol {
        match self {
            LevelEngine::Ring(l) => l,
            LevelEngine::Path(l) => l,
        }
    }
}

impl std::fmt::Debug for LevelEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LevelEngine::Ring(l) => write!(f, "Ring({})", l.sub()),
            LevelEngine::Path(l) => write!(f, "Path({})", l.sub()),
        }
    }
}

/// The full three-level recursive ORAM.
#[derive(Debug)]
pub struct HierarchicalOram {
    config: HierarchyConfig,
    levels: Vec<LevelEngine>,
    entries_per_block: u64,
    next_request_id: u64,
    bypass_rng: OramRng,
    stats: HierarchyStats,
}

impl HierarchicalOram {
    /// Builds the hierarchy described by `config`.
    ///
    /// # Errors
    ///
    /// Returns [`OramError::InvalidParams`] for inconsistent prefetch or
    /// bypass settings.
    pub fn new(config: HierarchyConfig) -> OramResult<Self> {
        if let Some(b) = &config.posmap_bypass {
            for rate in [b.pos1_rate, b.pos2_rate] {
                if !(0.0..=1.0).contains(&rate) {
                    return Err(OramError::InvalidParams {
                        reason: format!("bypass rate {rate} outside [0, 1]"),
                    });
                }
            }
        }
        if config.prefetch.span() == 0 {
            return Err(OramError::InvalidParams {
                reason: "prefetch length must be at least 1".into(),
            });
        }

        // Palermo block widening shrinks the data tree's logical block count
        // (several cache lines share one tree block) and therefore the
        // recursion; rebuild the hierarchy sizing accordingly.
        let params = match config.prefetch {
            PrefetchMode::WideBlock { length } if length > 1 => {
                let mut builder = crate::params::OramParams::builder();
                builder
                    .z(config.params.data.z)
                    .s(config.params.data.s)
                    .a(config.params.data.a)
                    .block_bytes(config.params.data.block_bytes)
                    .num_blocks(config.params.data.num_blocks.div_ceil(u64::from(length)));
                let data = builder.build()?;
                HierarchyParams::derive(
                    data,
                    config.params.posmap_entry_bytes,
                    config.params.treetop_levels,
                )?
            }
            _ => config.params,
        };

        let wide = match config.prefetch {
            PrefetchMode::WideBlock { length } => length.max(1),
            _ => 1,
        };
        let mut levels = Vec::with_capacity(SubOram::COUNT);
        let mut base = 0u64;
        for sub in SubOram::ALL {
            let level_params = *params.level(sub);
            let level_config = LevelConfig {
                sub,
                params: level_params,
                dram_base: base,
                treetop_levels: params.treetop_levels.min(level_params.levels),
                stash_capacity: config.stash_capacity,
                seed: config
                    .seed
                    // audit:allow(wrapping, SplitMix64-style per-sub-ORAM seed expansion)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    // audit:allow(wrapping, SplitMix64-style per-sub-ORAM seed expansion)
                    .wrapping_add(sub.index() as u64 + 1),
                // Only the data tree is widened; the PosMap trees keep
                // 64-byte blocks (§V-C).
                wide_factor: if sub == SubOram::Data { wide } else { 1 },
            };
            // Reserve address space for this tree (region size uses the
            // widened block size for the data tree).
            let bucket_bytes = u64::from(level_params.slots_per_bucket() + 1)
                * u64::from(level_params.block_bytes)
                * u64::from(level_config.wide_factor);
            let footprint = level_params.num_nodes() * bucket_bytes;

            let engine = match config.flavor {
                ProtocolFlavor::PathOram => LevelEngine::Path(PathLevel::new(
                    level_config,
                    PathLevelOptions {
                        bucket_z: config.path_bucket_z,
                        group_size: match config.prefetch {
                            PrefetchMode::SameLeaf { length } if sub == SubOram::Data => {
                                u64::from(length.max(1))
                            }
                            _ => 1,
                        },
                        fat_tree: config.fat_tree,
                    },
                )),
                ProtocolFlavor::RingOram => LevelEngine::Ring(RingLevel::new(level_config, false)),
                ProtocolFlavor::Palermo => LevelEngine::Ring(RingLevel::new(level_config, true)),
            };
            levels.push(engine);
            base += footprint;
            // Keep tree regions row-aligned so they never share DRAM rows.
            base = base.next_multiple_of(1 << 13);
        }

        Ok(HierarchicalOram {
            entries_per_block: params.entries_per_block(),
            levels,
            next_request_id: 0,
            bypass_rng: OramRng::new(config.seed ^ 0xB1A5),
            stats: HierarchyStats::default(),
            config: HierarchyConfig { params, ..config },
        })
    }

    /// The effective configuration (after prefetch-induced re-derivation).
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Number of cache lines each data access brings on chip.
    pub fn prefetch_span(&self) -> u32 {
        self.config.prefetch.span()
    }

    /// Aggregate hierarchy statistics.
    pub fn stats(&self) -> HierarchyStats {
        self.stats
    }

    /// Per-level protocol statistics, indexed by [`SubOram::index`].
    pub fn level_stats(&self) -> [LevelStats; SubOram::COUNT] {
        [
            self.levels[0].as_dyn().stats(),
            self.levels[1].as_dyn().stats(),
            self.levels[2].as_dyn().stats(),
        ]
    }

    /// Current data-level stash occupancy (the quantity plotted in Fig. 12).
    pub fn data_stash_len(&self) -> usize {
        self.levels[0].as_dyn().stash_len()
    }

    /// Highest stash occupancy observed on any level.
    pub fn stash_high_water(&self) -> usize {
        self.levels
            .iter()
            .map(|l| l.as_dyn().stash_high_water())
            .max()
            .unwrap_or(0)
    }

    /// Total stash-capacity overflow events across levels.
    pub fn stash_overflow_events(&self) -> u64 {
        self.levels
            .iter()
            .map(|l| l.as_dyn().stash_overflow_events())
            .sum()
    }

    /// Returns `true` if the configured background-eviction threshold has
    /// been reached and a dummy request should be injected before the next
    /// real request (PrORAM's behaviour in §III-B).
    pub fn needs_background_evict(&self) -> bool {
        match self.config.background_evict_threshold {
            Some(threshold) => self.levels[0].as_dyn().stash_len() >= threshold,
            None => false,
        }
    }

    /// Injects one background-eviction dummy request and returns its plan.
    pub fn background_evict(&mut self) -> AccessResult {
        let request_id = self.next_request_id;
        self.next_request_id += 1;
        self.stats.dummy_requests += 1;

        let outcome = self.levels[0].as_dyn_mut().dummy_access();
        let mut builder = AccessPlanBuilder::new(request_id, PhysAddr::new(0), OramOp::Read);
        builder.dummy();
        let mut outcomes: [Option<LevelOutcome>; 3] = [Some(outcome), None, None];
        self.lower(&mut builder, &mut outcomes);
        AccessResult {
            plan: builder.build(),
            value: None,
            found: false,
            prefetched: Vec::new(),
        }
    }

    /// Serves one LLC miss: runs the functional protocol on all (non-bypassed)
    /// recursion levels and lowers the result into an [`AccessPlan`].
    ///
    /// # Errors
    ///
    /// Returns [`OramError::AddressOutOfRange`] if `pa` falls outside the
    /// protected space.
    pub fn access(
        &mut self,
        pa: PhysAddr,
        op: OramOp,
        payload: Option<Payload>,
    ) -> OramResult<AccessResult> {
        let raw_block = pa.cache_line(64);
        let span = u64::from(self.config.prefetch.span());
        let protected_blocks = match self.config.prefetch {
            PrefetchMode::WideBlock { .. } => self.config.params.data.num_blocks * span,
            _ => self.config.params.data.num_blocks,
        };
        if raw_block.0 >= protected_blocks {
            return Err(OramError::AddressOutOfRange {
                block: raw_block.0,
                num_blocks: protected_blocks,
            });
        }

        let request_id = self.next_request_id;
        self.next_request_id += 1;
        self.stats.requests += 1;

        // Address translation through the recursion.
        let data_block = match self.config.prefetch {
            PrefetchMode::WideBlock { .. } => BlockId(raw_block.0 / span),
            _ => raw_block,
        };
        let pos1_block = BlockId(data_block.0 / self.entries_per_block);
        let pos2_block = BlockId(pos1_block.0 / self.entries_per_block);

        // IR-ORAM-style recursion bypass.
        let (skip_pos1, skip_pos2) = match &self.config.posmap_bypass {
            Some(b) => (
                self.bypass_rng.chance(b.pos1_rate),
                self.bypass_rng.chance(b.pos2_rate),
            ),
            None => (false, false),
        };
        if skip_pos1 {
            self.stats.bypassed_posmap_accesses += 1;
        }
        if skip_pos2 {
            self.stats.bypassed_posmap_accesses += 1;
        }

        let pos2_outcome = if skip_pos2 {
            None
        } else {
            Some(
                self.levels[2]
                    .as_dyn_mut()
                    .access(pos2_block, OramOp::Read, None),
            )
        };
        let pos1_outcome = if skip_pos1 {
            None
        } else {
            Some(
                self.levels[1]
                    .as_dyn_mut()
                    .access(pos1_block, OramOp::Read, None),
            )
        };
        let data_outcome = self.levels[0].as_dyn_mut().access(data_block, op, payload);

        let value = data_outcome.value;
        let found = data_outcome.found;
        // Report the prefetched cache-line span so the LLC can be filled.
        let prefetched: Vec<BlockId> = if span > 1 {
            let group_base = (raw_block.0 / span) * span;
            (group_base..group_base + span)
                .filter(|&b| b != raw_block.0 && b < protected_blocks)
                .map(BlockId)
                .collect()
        } else {
            Vec::new()
        };

        let mut builder = AccessPlanBuilder::new(request_id, pa, op);
        let mut outcomes: [Option<LevelOutcome>; 3] =
            [Some(data_outcome), pos1_outcome, pos2_outcome];
        self.lower(&mut builder, &mut outcomes);

        Ok(AccessResult {
            plan: builder.build(),
            value,
            found,
            prefetched,
        })
    }

    /// Lowers per-level outcomes into plan nodes with flavor-appropriate
    /// intra-request dependency edges.
    fn lower(&self, builder: &mut AccessPlanBuilder, outcomes: &mut [Option<LevelOutcome>; 3]) {
        let decrypt = self.config.decrypt_cycles;
        let palermo = self.config.flavor == ProtocolFlavor::Palermo;
        let path_family = self.config.flavor == ProtocolFlavor::PathOram;

        // Process innermost level first (Pos2 -> Pos1 -> Data), mirroring the
        // recursion: the leaf of an outer level only becomes known once the
        // inner level's ReadPath has completed.
        let mut prev_level_rp: Option<PlanNodeId> = None;
        let mut prev_level_last: Option<PlanNodeId> = None;

        for sub in SubOram::ALL.iter().rev() {
            let Some(outcome) = outcomes[sub.index()].take() else {
                continue;
            };
            let sub = *sub;

            // The dependency that makes this level wait for its position-map
            // lookup: Palermo waits only for the inner ReadPath; the serial
            // baselines wait for the inner level to finish entirely.
            let posmap_dep: Vec<PlanNodeId> = if palermo {
                prev_level_rp.into_iter().collect()
            } else {
                prev_level_last.into_iter().collect()
            };

            let last_in_level: Option<PlanNodeId>;

            if path_family {
                // PathORAM family: ReadPath (whole path) then write-back.
                let rp = builder.push(
                    sub,
                    PhaseKind::ReadPath,
                    outcome.rp_reads.clone(),
                    Vec::new(),
                    posmap_dep.clone(),
                    decrypt,
                );
                let wb = builder.push(
                    sub,
                    PhaseKind::EvictPath,
                    Vec::new(),
                    outcome.rp_writes.clone(),
                    vec![rp],
                    0,
                );
                prev_level_rp = Some(rp);
                last_in_level = Some(wb);
            } else {
                // Ring / Palermo: LM, (ER), RP, (EP) with flavor-dependent order.
                let lm = builder.push(
                    sub,
                    PhaseKind::LoadMetadata,
                    outcome.lm_reads.clone(),
                    Vec::new(),
                    posmap_dep.clone(),
                    0,
                );

                let er_reads: Vec<u64> = outcome.er.iter().flat_map(|b| b.reads.clone()).collect();
                let er_writes: Vec<u64> =
                    outcome.er.iter().flat_map(|b| b.writes.clone()).collect();
                let has_er = !outcome.er.is_empty();

                let rp_id = if palermo {
                    // Palermo: LM -> ER -> RP -> EP (reshuffle hoisted early).
                    let er = has_er.then(|| {
                        builder.push(
                            sub,
                            PhaseKind::EarlyReshuffle,
                            er_reads.clone(),
                            er_writes.clone(),
                            vec![lm],
                            0,
                        )
                    });
                    builder.push(
                        sub,
                        PhaseKind::ReadPath,
                        outcome.rp_reads.clone(),
                        Vec::new(),
                        vec![er.unwrap_or(lm)],
                        decrypt,
                    )
                } else {
                    // RingORAM: LM -> RP -> (EP) -> ER.
                    builder.push(
                        sub,
                        PhaseKind::ReadPath,
                        outcome.rp_reads.clone(),
                        Vec::new(),
                        vec![lm],
                        decrypt,
                    )
                };
                prev_level_rp = Some(rp_id);
                let mut last = rp_id;

                // EvictPath (if scheduled) is serialised after ReadPath in
                // both flavors: this is what bounds the stash (§IV-B).
                if let Some(ops) = outcome.ep.as_ref() {
                    last = builder.push(
                        sub,
                        PhaseKind::EvictPath,
                        ops.reads.clone(),
                        ops.writes.clone(),
                        vec![rp_id],
                        0,
                    );
                }

                if !palermo && has_er {
                    // RingORAM runs the reshuffle last.
                    last = builder.push(
                        sub,
                        PhaseKind::EarlyReshuffle,
                        er_reads,
                        er_writes,
                        vec![last],
                        0,
                    );
                }
                last_in_level = Some(last);
            }

            prev_level_last = last_in_level;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::OramParams;

    fn tiny_params() -> HierarchyParams {
        let data = OramParams::builder()
            .z(4)
            .s(6)
            .a(4)
            .num_blocks(4096)
            .build()
            .unwrap();
        HierarchyParams::derive(data, 4, 2).unwrap()
    }

    fn tiny_config(flavor: ProtocolFlavor) -> HierarchyConfig {
        HierarchyConfig {
            params: tiny_params(),
            flavor,
            seed: 1,
            stash_capacity: 256,
            prefetch: PrefetchMode::None,
            path_bucket_z: 4,
            fat_tree: false,
            posmap_bypass: None,
            background_evict_threshold: None,
            decrypt_cycles: 4,
        }
    }

    #[test]
    fn write_read_round_trip_all_flavors() {
        for flavor in [
            ProtocolFlavor::PathOram,
            ProtocolFlavor::RingOram,
            ProtocolFlavor::Palermo,
        ] {
            let mut oram = HierarchicalOram::new(tiny_config(flavor)).unwrap();
            let pa = PhysAddr::new(0x2040);
            oram.access(pa, OramOp::Write, Some(Payload::from_u64(77)))
                .unwrap();
            let res = oram.access(pa, OramOp::Read, None).unwrap();
            assert!(res.found, "{flavor:?}");
            assert_eq!(res.value.unwrap().as_u64(), 77, "{flavor:?}");
        }
    }

    #[test]
    fn plans_are_well_formed_and_touch_all_levels() {
        let mut oram = HierarchicalOram::new(tiny_config(ProtocolFlavor::Palermo)).unwrap();
        let res = oram.access(PhysAddr::new(0), OramOp::Read, None).unwrap();
        assert!(res.plan.is_well_formed());
        for sub in SubOram::ALL {
            assert!(
                res.plan.node(sub, PhaseKind::ReadPath).is_some(),
                "missing RP for {sub}"
            );
        }
        assert!(res.plan.total_reads() > 0);
    }

    #[test]
    fn out_of_range_address_rejected() {
        let mut oram = HierarchicalOram::new(tiny_config(ProtocolFlavor::RingOram)).unwrap();
        let too_far = PhysAddr::new(4096 * 64);
        assert!(matches!(
            oram.access(too_far, OramOp::Read, None),
            Err(OramError::AddressOutOfRange { .. })
        ));
    }

    #[test]
    fn palermo_plan_has_minimal_cross_level_deps() {
        let mut oram = HierarchicalOram::new(tiny_config(ProtocolFlavor::Palermo)).unwrap();
        let res = oram.access(PhysAddr::new(64), OramOp::Read, None).unwrap();
        let plan = &res.plan;
        // Data LM depends only on the Pos1 ReadPath, not on Pos1 EvictPath.
        let data_lm = plan.node(SubOram::Data, PhaseKind::LoadMetadata).unwrap();
        let pos1_rp = plan.node_id(SubOram::Pos1, PhaseKind::ReadPath).unwrap();
        assert_eq!(data_lm.deps, vec![pos1_rp]);
    }

    #[test]
    fn ring_plan_serialises_levels() {
        let mut oram = HierarchicalOram::new(tiny_config(ProtocolFlavor::RingOram)).unwrap();
        let res = oram.access(PhysAddr::new(64), OramOp::Read, None).unwrap();
        let plan = &res.plan;
        // The Pos1 LoadMetadata must wait for the *last* Pos2 node, i.e. a
        // node with id greater or equal to the Pos2 ReadPath.
        let pos1_lm = plan.node(SubOram::Pos1, PhaseKind::LoadMetadata).unwrap();
        let pos2_rp = plan.node_id(SubOram::Pos2, PhaseKind::ReadPath).unwrap();
        assert_eq!(pos1_lm.deps.len(), 1);
        assert!(pos1_lm.deps[0] >= pos2_rp);
    }

    #[test]
    fn ring_traffic_is_lower_than_path_traffic() {
        // RingORAM's raison d'être: fewer DRAM accesses per request than
        // PathORAM (the paper quotes 470 vs 576 at 16 GiB scale).
        let mut ring = HierarchicalOram::new(tiny_config(ProtocolFlavor::RingOram)).unwrap();
        let mut path = HierarchicalOram::new(tiny_config(ProtocolFlavor::PathOram)).unwrap();
        let mut rng = OramRng::new(3);
        let mut ring_traffic = 0usize;
        let mut path_traffic = 0usize;
        for _ in 0..300 {
            let pa = PhysAddr::new(rng.gen_range(4096) * 64);
            ring_traffic += ring
                .access(pa, OramOp::Read, None)
                .unwrap()
                .plan
                .total_traffic();
            path_traffic += path
                .access(pa, OramOp::Read, None)
                .unwrap()
                .plan
                .total_traffic();
        }
        assert!(
            ring_traffic < path_traffic,
            "ring {ring_traffic} !< path {path_traffic}"
        );
    }

    #[test]
    fn wide_block_prefetch_shrinks_recursion_and_reports_span() {
        let mut cfg = tiny_config(ProtocolFlavor::Palermo);
        cfg.prefetch = PrefetchMode::WideBlock { length: 4 };
        let oram = HierarchicalOram::new(cfg).unwrap();
        assert_eq!(oram.prefetch_span(), 4);
        assert_eq!(oram.config().params.data.num_blocks, 4096 / 4);
    }

    #[test]
    fn wide_block_prefetch_round_trips_and_prefetches_neighbours() {
        let mut cfg = tiny_config(ProtocolFlavor::Palermo);
        cfg.prefetch = PrefetchMode::WideBlock { length: 4 };
        let mut oram = HierarchicalOram::new(cfg).unwrap();
        let pa = PhysAddr::new(8 * 64);
        oram.access(pa, OramOp::Write, Some(Payload::from_u64(5)))
            .unwrap();
        let res = oram.access(pa, OramOp::Read, None).unwrap();
        assert_eq!(res.value.unwrap().as_u64(), 5);
        // Neighbouring lines 9, 10, 11 share the widened block.
        let ids: Vec<u64> = res.prefetched.iter().map(|b| b.0).collect();
        assert_eq!(ids, vec![9, 10, 11]);
    }

    #[test]
    fn same_leaf_prefetch_reports_group_members() {
        let mut cfg = tiny_config(ProtocolFlavor::PathOram);
        cfg.prefetch = PrefetchMode::SameLeaf { length: 8 };
        let mut oram = HierarchicalOram::new(cfg).unwrap();
        let res = oram.access(PhysAddr::new(0), OramOp::Read, None).unwrap();
        assert_eq!(res.prefetched.len(), 7);
    }

    #[test]
    fn background_eviction_triggers_on_threshold() {
        let mut cfg = tiny_config(ProtocolFlavor::PathOram);
        cfg.prefetch = PrefetchMode::SameLeaf { length: 16 };
        cfg.background_evict_threshold = Some(20);
        let mut oram = HierarchicalOram::new(cfg).unwrap();
        let mut dummies = 0;
        for i in 0..800u64 {
            if oram.needs_background_evict() {
                let res = oram.background_evict();
                assert!(res.plan.is_dummy);
                dummies += 1;
            }
            let pa = PhysAddr::new((i % 4096) * 64);
            oram.access(pa, OramOp::Write, Some(Payload::from_u64(i)))
                .unwrap();
        }
        assert!(
            dummies > 0,
            "grouped prefetch should trigger background evictions"
        );
        assert_eq!(oram.stats().dummy_requests, dummies);
    }

    #[test]
    fn posmap_bypass_skips_sub_orams() {
        let mut cfg = tiny_config(ProtocolFlavor::PathOram);
        cfg.posmap_bypass = Some(PosmapBypass {
            pos1_rate: 1.0,
            pos2_rate: 1.0,
        });
        let mut oram = HierarchicalOram::new(cfg).unwrap();
        let res = oram.access(PhysAddr::new(0), OramOp::Read, None).unwrap();
        assert!(res.plan.node(SubOram::Pos1, PhaseKind::ReadPath).is_none());
        assert!(res.plan.node(SubOram::Pos2, PhaseKind::ReadPath).is_none());
        assert_eq!(oram.stats().bypassed_posmap_accesses, 2);
    }

    #[test]
    fn invalid_bypass_rate_rejected() {
        let mut cfg = tiny_config(ProtocolFlavor::PathOram);
        cfg.posmap_bypass = Some(PosmapBypass {
            pos1_rate: 1.5,
            pos2_rate: 0.0,
        });
        assert!(HierarchicalOram::new(cfg).is_err());
    }

    #[test]
    fn request_ids_are_monotonic() {
        let mut oram = HierarchicalOram::new(tiny_config(ProtocolFlavor::Palermo)).unwrap();
        let a = oram.access(PhysAddr::new(0), OramOp::Read, None).unwrap();
        let b = oram.access(PhysAddr::new(64), OramOp::Read, None).unwrap();
        assert!(b.plan.request_id > a.plan.request_id);
    }

    #[test]
    fn stash_remains_bounded_for_palermo_default() {
        let mut oram = HierarchicalOram::new(tiny_config(ProtocolFlavor::Palermo)).unwrap();
        let mut rng = OramRng::new(9);
        for i in 0..2000u64 {
            let pa = PhysAddr::new(rng.gen_range(4096) * 64);
            let op = if i % 4 == 0 {
                OramOp::Write
            } else {
                OramOp::Read
            };
            let payload = (op == OramOp::Write).then(|| Payload::from_u64(i));
            oram.access(pa, op, payload).unwrap();
        }
        assert!(oram.stash_high_water() <= 256, "stash bound violated");
        assert_eq!(oram.stash_overflow_events(), 0);
    }
}
