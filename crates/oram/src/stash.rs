//! The on-chip stash.
//!
//! The stash temporarily holds blocks pulled off the ORAM tree until an
//! eviction or bucket reset pushes them back. A hardware controller must
//! keep the stash small (256 entries in the paper) and bound its occupancy;
//! the simulator tracks the high-water mark and overflow events so the
//! Fig. 4 (PrORAM dummy-request pressure) and Fig. 12 (Palermo boundedness)
//! experiments can be reproduced.

use crate::crypto::Payload;
use crate::types::{BlockId, LeafId};
use std::collections::BTreeMap;

/// One stash entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StashEntry {
    /// The leaf this block is currently mapped to.
    pub leaf: LeafId,
    /// The block payload (`None` if the program has never written it).
    pub payload: Option<Payload>,
    /// Set while an ORAM request for this block is in flight but its value
    /// has not yet been committed back to the tree (Palermo's "pending"
    /// marker in Algorithm 2, line 7).
    pub pending: bool,
}

/// A bounded stash with occupancy tracking.
///
/// Entries are kept in a `BTreeMap` so that *every* traversal of the stash
/// is in ascending [`BlockId`] order, independent of insertion history. The
/// eviction scans iterate the stash each cycle; with a hash map their order
/// would depend on `RandomState`'s per-process seed — exactly the hazard
/// class `palermo-audit` lint D01 exists to keep out of the simulator.
#[derive(Debug, Clone, Default)]
pub struct Stash {
    entries: BTreeMap<BlockId, StashEntry>,
    capacity: usize,
    high_water: usize,
    overflow_events: u64,
}

impl Stash {
    /// Creates a stash with the given hardware capacity (entry count).
    pub fn new(capacity: usize) -> Self {
        Stash {
            entries: BTreeMap::new(),
            capacity,
            high_water: 0,
            overflow_events: 0,
        }
    }

    /// Hardware capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the stash holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Largest occupancy observed since construction.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Number of times an insert pushed occupancy above capacity.
    pub fn overflow_events(&self) -> u64 {
        self.overflow_events
    }

    /// Returns `true` if occupancy is at or above `threshold`.
    pub fn is_above(&self, threshold: usize) -> bool {
        self.len() >= threshold
    }

    /// Returns a reference to the entry for `block`, if present.
    pub fn get(&self, block: BlockId) -> Option<&StashEntry> {
        self.entries.get(&block)
    }

    /// Returns a mutable reference to the entry for `block`, if present.
    pub fn get_mut(&mut self, block: BlockId) -> Option<&mut StashEntry> {
        self.entries.get_mut(&block)
    }

    /// Returns `true` if `block` is in the stash.
    pub fn contains(&self, block: BlockId) -> bool {
        self.entries.contains_key(&block)
    }

    /// Inserts or replaces the entry for `block`, updating the high-water
    /// mark and overflow counter.
    pub fn insert(&mut self, block: BlockId, entry: StashEntry) {
        self.entries.insert(block, entry);
        if self.entries.len() > self.high_water {
            self.high_water = self.entries.len();
        }
        if self.entries.len() > self.capacity {
            self.overflow_events += 1;
        }
    }

    /// Removes and returns the entry for `block`.
    pub fn remove(&mut self, block: BlockId) -> Option<StashEntry> {
        self.entries.remove(&block)
    }

    /// Iterates over `(block, entry)` pairs in ascending [`BlockId`] order.
    ///
    /// The order is part of the determinism contract: callers (e.g. the
    /// group-remap retagging in `path_level`) may fold over the stash while
    /// mutating simulation state, and identical runs must visit entries
    /// identically.
    pub fn iter(&self) -> impl Iterator<Item = (&BlockId, &StashEntry)> {
        self.entries.iter()
    }

    /// Collects the blocks that may be placed in a bucket at tree level
    /// `level` on the path to `path_leaf`: those whose own leaf path shares
    /// the bucket, and which are not pending.
    ///
    /// `common_depth(block_leaf)` must return the number of levels (from the
    /// root) shared between the block's path and the write-back path.
    pub fn eviction_candidates<F>(&self, level: u32, common_depth: F) -> Vec<BlockId>
    where
        F: Fn(LeafId) -> u32,
    {
        // BTreeMap iteration is already in ascending BlockId order, which is
        // the deterministic order that keeps simulations reproducible (the
        // explicit sort the HashMap version needed is now structural).
        self.entries
            .iter()
            .filter(|(_, e)| !e.pending && common_depth(e.leaf) > level)
            .map(|(b, _)| *b)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(leaf: u64) -> StashEntry {
        StashEntry {
            leaf: LeafId(leaf),
            payload: Some(Payload::from_u64(leaf)),
            pending: false,
        }
    }

    #[test]
    fn insert_remove_and_len() {
        let mut s = Stash::new(4);
        assert!(s.is_empty());
        s.insert(BlockId(1), entry(0));
        s.insert(BlockId(2), entry(1));
        assert_eq!(s.len(), 2);
        assert!(s.contains(BlockId(1)));
        assert_eq!(s.remove(BlockId(1)).unwrap().leaf, LeafId(0));
        assert!(!s.contains(BlockId(1)));
        assert_eq!(s.len(), 1);
        assert!(s.get(BlockId(2)).is_some());
        assert!(s.get(BlockId(3)).is_none());
    }

    #[test]
    fn high_water_and_overflow_tracking() {
        let mut s = Stash::new(2);
        s.insert(BlockId(1), entry(0));
        s.insert(BlockId(2), entry(0));
        assert_eq!(s.high_water(), 2);
        assert_eq!(s.overflow_events(), 0);
        s.insert(BlockId(3), entry(0));
        assert_eq!(s.high_water(), 3);
        assert_eq!(s.overflow_events(), 1);
        s.remove(BlockId(3));
        // High water does not shrink.
        assert_eq!(s.high_water(), 3);
    }

    #[test]
    fn replacing_entry_does_not_grow() {
        let mut s = Stash::new(4);
        s.insert(BlockId(1), entry(0));
        s.insert(BlockId(1), entry(5));
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(BlockId(1)).unwrap().leaf, LeafId(5));
    }

    #[test]
    fn eviction_candidates_respect_level_and_pending() {
        let mut s = Stash::new(16);
        s.insert(BlockId(1), entry(0)); // shares 3 levels
        s.insert(BlockId(2), entry(1)); // shares 2 levels
        let mut pending = entry(0);
        pending.pending = true;
        s.insert(BlockId(3), pending); // excluded: pending

        // Pretend common depth = 3 for leaf 0, 2 for leaf 1.
        let depth = |leaf: LeafId| if leaf.0 == 0 { 3 } else { 2 };
        let at_level2 = s.eviction_candidates(2, depth);
        assert_eq!(at_level2, vec![BlockId(1)]);
        let at_level1 = s.eviction_candidates(1, depth);
        assert_eq!(at_level1, vec![BlockId(1), BlockId(2)]);
        let at_level3 = s.eviction_candidates(3, depth);
        assert!(at_level3.is_empty());
    }

    #[test]
    fn iteration_order_is_insertion_independent() {
        // Two stashes with the same contents inserted in opposite orders
        // must traverse identically — both in `iter()` and in the eviction
        // scan. (With the former HashMap backing, each instance drew its own
        // RandomState seed, so these sequences disagreed between instances
        // and between runs.)
        let ids = [7u64, 1, 42, 3, 19, 0, 255, 8];
        let mut fwd = Stash::new(16);
        let mut rev = Stash::new(16);
        for &i in &ids {
            fwd.insert(BlockId(i), entry(i));
        }
        for &i in ids.iter().rev() {
            rev.insert(BlockId(i), entry(i));
        }
        let seq_fwd: Vec<BlockId> = fwd.iter().map(|(b, _)| *b).collect();
        let seq_rev: Vec<BlockId> = rev.iter().map(|(b, _)| *b).collect();
        assert_eq!(seq_fwd, seq_rev);
        let mut sorted = ids.map(BlockId).to_vec();
        sorted.sort_unstable();
        assert_eq!(seq_fwd, sorted, "traversal is ascending BlockId order");
        let depth = |_| 5;
        assert_eq!(
            fwd.eviction_candidates(2, depth),
            rev.eviction_candidates(2, depth)
        );
    }

    #[test]
    fn threshold_check() {
        let mut s = Stash::new(8);
        for i in 0..6 {
            s.insert(BlockId(i), entry(0));
        }
        assert!(s.is_above(6));
        assert!(s.is_above(5));
        assert!(!s.is_above(7));
    }
}
