//! Access plans: the lowering of one ORAM request into DRAM traffic.
//!
//! An [`AccessPlan`] is a small DAG of [`PlanNode`]s. Each node corresponds
//! to one protocol *phase* of one sub-ORAM (e.g. "load the path metadata of
//! the `PosMap1` tree"), carries the DRAM block addresses that phase reads
//! and writes, and lists the intra-request phases it depends on.
//!
//! The plan captures the protocol's *minimal intra-request dependencies*
//! (Fig. 5 of the paper). The ORAM controller models decide how plans from
//! different requests may overlap (Fig. 6): the serial baseline controller
//! inserts a full barrier between consecutive plans, while the Palermo PE
//! mesh only enforces the per-level write-to-read critical sections.

use crate::types::{OramOp, PhysAddr, SubOram};

/// The protocol phase a plan node models. The names follow the PE workflow
/// in §V-A of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PhaseKind {
    /// Check the position map (query the child sub-ORAM / on-chip PosMap3).
    CheckPosMap,
    /// Load per-node metadata along the path (RingORAM/Palermo only).
    LoadMetadata,
    /// Early reshuffle: reset buckets that have exhausted their dummies.
    EarlyReshuffle,
    /// Read one block per path node (Ring) or the full path (Path family).
    ReadPath,
    /// Evict path / write back: push stash contents into the tree.
    EvictPath,
    /// Retire the request (no memory traffic; synchronisation only).
    Finalize,
}

impl PhaseKind {
    /// All phases in canonical protocol order.
    pub const ALL: [PhaseKind; 6] = [
        PhaseKind::CheckPosMap,
        PhaseKind::LoadMetadata,
        PhaseKind::EarlyReshuffle,
        PhaseKind::ReadPath,
        PhaseKind::EvictPath,
        PhaseKind::Finalize,
    ];

    /// Two-letter abbreviation used in traces and figures (CP, LM, ER, RP, EP, FN).
    pub fn abbrev(self) -> &'static str {
        match self {
            PhaseKind::CheckPosMap => "CP",
            PhaseKind::LoadMetadata => "LM",
            PhaseKind::EarlyReshuffle => "ER",
            PhaseKind::ReadPath => "RP",
            PhaseKind::EvictPath => "EP",
            PhaseKind::Finalize => "FN",
        }
    }
}

/// Index of a plan node within its [`AccessPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlanNodeId(pub u32);

/// One phase of one sub-ORAM within a single ORAM request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanNode {
    /// This node's index within the plan.
    pub id: PlanNodeId,
    /// Which sub-ORAM tree the phase operates on.
    pub sub: SubOram,
    /// Which protocol phase this is.
    pub phase: PhaseKind,
    /// DRAM block addresses this phase reads. Reads must complete before the
    /// phase is considered finished.
    pub reads: Vec<u64>,
    /// DRAM block addresses this phase writes. Writes are posted: the phase
    /// finishes once they have been accepted by the memory controller.
    pub writes: Vec<u64>,
    /// Intra-request dependencies: indices of plan nodes that must complete
    /// before this node may begin issuing.
    pub deps: Vec<PlanNodeId>,
    /// Fixed on-chip processing latency charged when the node starts
    /// (decryption, permutation bookkeeping), in controller cycles.
    pub compute_cycles: u32,
}

impl PlanNode {
    /// Total number of DRAM operations (reads + writes) this node issues.
    pub fn traffic(&self) -> usize {
        self.reads.len() + self.writes.len()
    }

    /// Returns `true` if the node issues no DRAM traffic at all.
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty() && self.writes.is_empty()
    }
}

/// The DRAM-traffic plan of one ORAM request (or dummy request).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessPlan {
    /// Monotonically increasing request identifier (the `GlobalID` of
    /// Algorithm 2).
    pub request_id: u64,
    /// The protected physical address that triggered the request. Dummy
    /// requests carry the address they pretend to access.
    pub pa: PhysAddr,
    /// The requested operation.
    pub op: OramOp,
    /// Whether this plan was injected by the controller rather than by an
    /// LLC miss (background eviction / rate padding).
    pub is_dummy: bool,
    /// The phases making up the request, in issue order (dependencies only
    /// ever point backwards).
    pub nodes: Vec<PlanNode>,
}

impl AccessPlan {
    /// Total DRAM reads across all phases.
    pub fn total_reads(&self) -> usize {
        self.nodes.iter().map(|n| n.reads.len()).sum()
    }

    /// Total DRAM writes across all phases.
    pub fn total_writes(&self) -> usize {
        self.nodes.iter().map(|n| n.writes.len()).sum()
    }

    /// Total DRAM operations across all phases.
    pub fn total_traffic(&self) -> usize {
        self.total_reads() + self.total_writes()
    }

    /// Looks up the node for a given sub-ORAM and phase, if present.
    pub fn node(&self, sub: SubOram, phase: PhaseKind) -> Option<&PlanNode> {
        self.nodes.iter().find(|n| n.sub == sub && n.phase == phase)
    }

    /// Looks up a node's id for a given sub-ORAM and phase, if present.
    pub fn node_id(&self, sub: SubOram, phase: PhaseKind) -> Option<PlanNodeId> {
        self.node(sub, phase).map(|n| n.id)
    }

    /// Verifies structural well-formedness: ids match positions and all
    /// dependencies point to earlier nodes (so the DAG is acyclic by
    /// construction). Returns `false` if any check fails.
    pub fn is_well_formed(&self) -> bool {
        self.nodes
            .iter()
            .enumerate()
            .all(|(i, n)| n.id.0 as usize == i && n.deps.iter().all(|d| (d.0 as usize) < i))
    }
}

/// Incremental builder for [`AccessPlan`]s used by the hierarchy lowering.
#[derive(Debug, Clone)]
pub struct AccessPlanBuilder {
    plan: AccessPlan,
}

impl AccessPlanBuilder {
    /// Starts a plan for the given request.
    pub fn new(request_id: u64, pa: PhysAddr, op: OramOp) -> Self {
        AccessPlanBuilder {
            plan: AccessPlan {
                request_id,
                pa,
                op,
                is_dummy: false,
                nodes: Vec::new(),
            },
        }
    }

    /// Marks the plan as a controller-injected dummy request.
    pub fn dummy(&mut self) -> &mut Self {
        self.plan.is_dummy = true;
        self
    }

    /// Appends a phase node and returns its id.
    pub fn push(
        &mut self,
        sub: SubOram,
        phase: PhaseKind,
        reads: Vec<u64>,
        writes: Vec<u64>,
        deps: Vec<PlanNodeId>,
        compute_cycles: u32,
    ) -> PlanNodeId {
        let id = PlanNodeId(self.plan.nodes.len() as u32);
        debug_assert!(deps.iter().all(|d| d.0 < id.0), "deps must point backwards");
        self.plan.nodes.push(PlanNode {
            id,
            sub,
            phase,
            reads,
            writes,
            deps,
            compute_cycles,
        });
        id
    }

    /// Finishes the plan.
    ///
    /// # Panics
    ///
    /// Panics if the plan is not well formed (a builder bug).
    pub fn build(self) -> AccessPlan {
        assert!(
            self.plan.is_well_formed(),
            "builder produced malformed plan"
        );
        self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> AccessPlan {
        let mut b = AccessPlanBuilder::new(7, PhysAddr::new(0x40), OramOp::Read);
        let lm2 = b.push(
            SubOram::Pos2,
            PhaseKind::LoadMetadata,
            vec![1, 2],
            vec![],
            vec![],
            0,
        );
        let rp2 = b.push(
            SubOram::Pos2,
            PhaseKind::ReadPath,
            vec![3, 4],
            vec![],
            vec![lm2],
            2,
        );
        let _ep2 = b.push(
            SubOram::Pos2,
            PhaseKind::EvictPath,
            vec![5],
            vec![6, 7],
            vec![rp2],
            0,
        );
        let lm1 = b.push(
            SubOram::Pos1,
            PhaseKind::LoadMetadata,
            vec![10],
            vec![],
            vec![rp2],
            0,
        );
        let _rp1 = b.push(
            SubOram::Pos1,
            PhaseKind::ReadPath,
            vec![11, 12, 13],
            vec![],
            vec![lm1],
            2,
        );
        b.build()
    }

    #[test]
    fn traffic_accounting() {
        let plan = sample_plan();
        assert_eq!(plan.total_reads(), 9);
        assert_eq!(plan.total_writes(), 2);
        assert_eq!(plan.total_traffic(), 11);
        assert!(!plan.is_dummy);
        assert!(plan.is_well_formed());
    }

    #[test]
    fn node_lookup_by_sub_and_phase() {
        let plan = sample_plan();
        let n = plan.node(SubOram::Pos2, PhaseKind::ReadPath).unwrap();
        assert_eq!(n.reads, vec![3, 4]);
        assert_eq!(n.compute_cycles, 2);
        assert!(plan.node(SubOram::Data, PhaseKind::ReadPath).is_none());
        assert_eq!(
            plan.node_id(SubOram::Pos1, PhaseKind::LoadMetadata),
            Some(PlanNodeId(3))
        );
    }

    #[test]
    fn deps_point_backwards() {
        let plan = sample_plan();
        for node in &plan.nodes {
            for dep in &node.deps {
                assert!(dep.0 < node.id.0);
            }
        }
    }

    #[test]
    fn dummy_marker() {
        let mut b = AccessPlanBuilder::new(0, PhysAddr::new(0), OramOp::Read);
        b.dummy();
        b.push(
            SubOram::Data,
            PhaseKind::ReadPath,
            vec![1],
            vec![2],
            vec![],
            0,
        );
        let plan = b.build();
        assert!(plan.is_dummy);
    }

    #[test]
    fn malformed_plan_detected() {
        let plan = AccessPlan {
            request_id: 0,
            pa: PhysAddr::new(0),
            op: OramOp::Read,
            is_dummy: false,
            nodes: vec![PlanNode {
                id: PlanNodeId(0),
                sub: SubOram::Data,
                phase: PhaseKind::ReadPath,
                reads: vec![],
                writes: vec![],
                deps: vec![PlanNodeId(0)], // self-dependency
                compute_cycles: 0,
            }],
        };
        assert!(!plan.is_well_formed());
    }

    #[test]
    fn phase_abbreviations_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for p in PhaseKind::ALL {
            assert!(seen.insert(p.abbrev()));
        }
    }

    #[test]
    fn empty_node_detection() {
        let n = PlanNode {
            id: PlanNodeId(0),
            sub: SubOram::Data,
            phase: PhaseKind::Finalize,
            reads: vec![],
            writes: vec![],
            deps: vec![],
            compute_cycles: 0,
        };
        assert!(n.is_empty());
        assert_eq!(n.traffic(), 0);
    }
}
