//! Convenience constructors for the ORAM designs evaluated in the paper.
//!
//! Each function returns a [`HierarchyConfig`] that realises one of the
//! baselines of §VII-B (PathORAM, RingORAM, PageORAM, PrORAM, LAORAM,
//! IR-ORAM) or one of the Palermo variants, on top of the shared functional
//! engines. The *controller* used to execute the configuration (serial
//! multi-issue vs the Palermo PE mesh) is chosen separately in
//! `palermo-controller` / `palermo-sim`.
//!
//! Where a baseline relies on mechanisms we approximate rather than model in
//! full RTL detail (PageORAM's sibling-aware buckets, IR-ORAM's tree-top
//! position-map tracking), the approximation and its calibration are
//! documented on the constructor.

use crate::error::OramResult;
use crate::hierarchy::{HierarchyConfig, PosmapBypass, PrefetchMode, ProtocolFlavor};
use crate::params::HierarchyParams;

/// Classic PathORAM with `Z = 4` buckets (Stefanov et al.).
pub fn path_oram(params: HierarchyParams, seed: u64) -> OramResult<HierarchyConfig> {
    let mut cfg = HierarchyConfig::paper_default(ProtocolFlavor::PathOram)?;
    cfg.params = params;
    cfg.seed = seed;
    Ok(cfg)
}

/// RingORAM (Ren et al.) with the paper's `(Z, S, A) = (16, 27, 20)`
/// configuration, executed with the serial baseline controller.
pub fn ring_oram(params: HierarchyParams, seed: u64) -> OramResult<HierarchyConfig> {
    let mut cfg = HierarchyConfig::paper_default(ProtocolFlavor::RingOram)?;
    cfg.params = params;
    cfg.seed = seed;
    Ok(cfg)
}

/// PageORAM (Rajat et al., MICRO'22).
///
/// Approximation: PageORAM's sibling-node accesses let it shrink tree
/// buckets while preserving DRAM page locality. We model the net effect as a
/// PathORAM with smaller buckets (`Z = 3`); the level-order bucket layout
/// already places siblings in adjacent DRAM addresses, which recovers the
/// row-buffer-locality component of the design.
pub fn page_oram(params: HierarchyParams, seed: u64) -> OramResult<HierarchyConfig> {
    let mut cfg = HierarchyConfig::paper_default(ProtocolFlavor::PathOram)?;
    cfg.params = params;
    cfg.seed = seed;
    cfg.path_bucket_z = 3;
    Ok(cfg)
}

/// PrORAM (Yu et al., ISCA'15) with the LAORAM fat-tree refinement folded in
/// when `fat_tree` is set, as the paper does when quoting PrORAM's best
/// configuration ("PrORAM w/ Fat Tree").
///
/// `prefetch_length` consecutive cache lines share one leaf; a background
/// eviction (dummy request) is injected whenever the data-level stash
/// reaches `background_threshold`.
pub fn pr_oram(
    params: HierarchyParams,
    seed: u64,
    prefetch_length: u32,
    fat_tree: bool,
    stash_capacity: usize,
    background_threshold: usize,
) -> OramResult<HierarchyConfig> {
    let mut cfg = HierarchyConfig::paper_default(ProtocolFlavor::PathOram)?;
    cfg.params = params;
    cfg.seed = seed;
    cfg.prefetch = if prefetch_length > 1 {
        PrefetchMode::SameLeaf {
            length: prefetch_length,
        }
    } else {
        PrefetchMode::None
    };
    cfg.fat_tree = fat_tree;
    cfg.stash_capacity = stash_capacity;
    cfg.background_evict_threshold = Some(background_threshold);
    Ok(cfg)
}

/// IR-ORAM (Raoufi et al., HPCA'22).
///
/// Approximation: IR-ORAM tracks the tree-top cache's position-map mappings
/// in hardware and skips the recursive PosMap ORAM when the tracked state
/// suffices, and additionally shrinks mid-tree buckets. We model the
/// recursion bypass with calibrated hit rates (20 % of PosMap1 and 40 % of
/// PosMap2 accesses elided), which reproduces the ~1.1× end-to-end gain the
/// paper reports for this class of design.
pub fn ir_oram(params: HierarchyParams, seed: u64) -> OramResult<HierarchyConfig> {
    let mut cfg = HierarchyConfig::paper_default(ProtocolFlavor::PathOram)?;
    cfg.params = params;
    cfg.seed = seed;
    cfg.posmap_bypass = Some(PosmapBypass {
        pos1_rate: 0.2,
        pos2_rate: 0.4,
    });
    Ok(cfg)
}

/// The Palermo protocol (Algorithm 2). Run it on the serial controller to
/// obtain the paper's "Palermo-SW" software-only variant, or on the PE-mesh
/// controller for the full co-design.
pub fn palermo(params: HierarchyParams, seed: u64) -> OramResult<HierarchyConfig> {
    let mut cfg = HierarchyConfig::paper_default(ProtocolFlavor::Palermo)?;
    cfg.params = params;
    cfg.seed = seed;
    Ok(cfg)
}

/// Palermo with block-widening prefetch of `prefetch_length` cache lines
/// per data-tree block (§V-C). Unlike PrORAM's same-leaf grouping this does
/// not change leaf-assignment statistics and therefore adds no stash
/// pressure and needs no background evictions.
pub fn palermo_with_prefetch(
    params: HierarchyParams,
    seed: u64,
    prefetch_length: u32,
) -> OramResult<HierarchyConfig> {
    let mut cfg = HierarchyConfig::paper_default(ProtocolFlavor::Palermo)?;
    cfg.params = params;
    cfg.seed = seed;
    if prefetch_length > 1 {
        cfg.prefetch = PrefetchMode::WideBlock {
            length: prefetch_length,
        };
    }
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::HierarchicalOram;
    use crate::params::OramParams;

    fn small_params() -> HierarchyParams {
        let data = OramParams::builder()
            .z(4)
            .s(6)
            .a(4)
            .num_blocks(4096)
            .build()
            .unwrap();
        HierarchyParams::derive(data, 4, 2).unwrap()
    }

    #[test]
    fn all_baselines_construct() {
        let p = small_params();
        for cfg in [
            path_oram(p, 1).unwrap(),
            ring_oram(p, 1).unwrap(),
            page_oram(p, 1).unwrap(),
            pr_oram(p, 1, 8, true, 1024, 768).unwrap(),
            ir_oram(p, 1).unwrap(),
            palermo(p, 1).unwrap(),
            palermo_with_prefetch(p, 1, 4).unwrap(),
        ] {
            assert!(HierarchicalOram::new(cfg).is_ok());
        }
    }

    #[test]
    fn flavors_match_expectations() {
        let p = small_params();
        assert_eq!(path_oram(p, 0).unwrap().flavor, ProtocolFlavor::PathOram);
        assert_eq!(ring_oram(p, 0).unwrap().flavor, ProtocolFlavor::RingOram);
        assert_eq!(palermo(p, 0).unwrap().flavor, ProtocolFlavor::Palermo);
        assert_eq!(page_oram(p, 0).unwrap().path_bucket_z, 3);
        assert!(ir_oram(p, 0).unwrap().posmap_bypass.is_some());
    }

    #[test]
    fn pr_oram_prefetch_configuration() {
        let p = small_params();
        let cfg = pr_oram(p, 0, 4, false, 1024, 768).unwrap();
        assert_eq!(cfg.prefetch, PrefetchMode::SameLeaf { length: 4 });
        assert_eq!(cfg.stash_capacity, 1024);
        assert_eq!(cfg.background_evict_threshold, Some(768));
        // Prefetch length 1 degenerates to no prefetching.
        let cfg = pr_oram(p, 0, 1, false, 1024, 768).unwrap();
        assert_eq!(cfg.prefetch, PrefetchMode::None);
    }

    #[test]
    fn palermo_prefetch_uses_wide_blocks() {
        let p = small_params();
        let cfg = palermo_with_prefetch(p, 0, 8).unwrap();
        assert_eq!(cfg.prefetch, PrefetchMode::WideBlock { length: 8 });
        assert!(cfg.background_evict_threshold.is_none());
    }
}
