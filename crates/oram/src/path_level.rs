//! PathORAM-family functional engine for one sub-ORAM tree.
//!
//! This engine implements the classic PathORAM access (read the whole path,
//! pull every real block into the stash, write the path back greedily) and
//! the knobs the prefetch-based baselines add on top of it:
//!
//! * **grouped leaf mapping** (`group_size > 1`): PrORAM forces consecutive
//!   logical blocks onto the same leaf, so one path read prefetches the
//!   whole group — at the cost of stash pressure, because the grouped blocks
//!   compete for the same path's bucket slots;
//! * **fat tree** (`fat_tree`): LAORAM enlarges bucket capacity near the
//!   root to relieve exactly that pressure;
//! * **reduced bucket size** (`bucket_z`): PageORAM-style smaller buckets;
//! * a **background-eviction threshold** checked by the hierarchy, which
//!   injects dummy path accesses when the stash runs hot (the dummy-request
//!   ratio measured in Fig. 4).

use crate::bucket::{BucketState, StoredBlock};
use crate::crypto::Payload;
use crate::layout::TreeLayout;
use crate::level::{LevelConfig, LevelOutcome, LevelProtocol, LevelStats};
use crate::params::OramParams;
use crate::posmap::PositionMap;
use crate::rng::OramRng;
use crate::stash::{Stash, StashEntry};
use crate::tree::TreeGeometry;
use crate::types::{BlockId, LeafId, NodeId, OramOp, SlotIdx, SubOram};
use std::collections::HashMap;

/// Extra configuration specific to the PathORAM family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathLevelOptions {
    /// Real blocks per bucket (classic PathORAM uses 4).
    pub bucket_z: u16,
    /// Number of consecutive logical blocks forced onto one leaf
    /// (PrORAM prefetch group; 1 disables grouping).
    pub group_size: u64,
    /// LAORAM fat tree: double the bucket capacity at the root, shrinking
    /// linearly back to `bucket_z` at the leaves.
    pub fat_tree: bool,
}

impl Default for PathLevelOptions {
    fn default() -> Self {
        PathLevelOptions {
            bucket_z: 4,
            group_size: 1,
            fat_tree: false,
        }
    }
}

/// Functional PathORAM-family engine for one tree.
#[derive(Debug, Clone)]
pub struct PathLevel {
    config: LevelConfig,
    options: PathLevelOptions,
    geometry: TreeGeometry,
    layout: TreeLayout,
    // Keyed by NodeId along explicit root-to-leaf path walks; the simulation
    // never iterates the map itself, so hash order cannot leak into metrics.
    // audit:allow(map-iter, keyed access along explicit path walks; never iterated in simulation)
    buckets: HashMap<NodeId, BucketState>,
    posmap: PositionMap,
    stash: Stash,
    rng: OramRng,
    stats: LevelStats,
}

impl PathLevel {
    /// Creates a new PathORAM-family engine.
    pub fn new(config: LevelConfig, options: PathLevelOptions) -> Self {
        let geometry = TreeGeometry::new(config.params.num_leaves);
        let max_capacity = if options.fat_tree {
            u64::from(options.bucket_z) * 2
        } else {
            u64::from(options.bucket_z)
        };
        let layout = TreeLayout::new(
            config.dram_base,
            u64::from(config.params.block_bytes) * u64::from(config.wide_factor.max(1)),
            max_capacity.max(1),
        );
        PathLevel {
            geometry,
            layout,
            buckets: HashMap::new(),
            posmap: PositionMap::new(config.params.num_leaves),
            stash: Stash::new(config.stash_capacity),
            rng: OramRng::new(config.seed),
            options,
            config,
            stats: LevelStats::default(),
        }
    }

    /// The bucket capacity (real blocks) at a given tree level, accounting
    /// for the LAORAM fat-tree shape.
    pub fn capacity_at(&self, level: u32) -> usize {
        let z = u64::from(self.options.bucket_z);
        if !self.options.fat_tree {
            return z as usize;
        }
        let levels = self.geometry.levels();
        if levels <= 1 {
            return (2 * z) as usize;
        }
        // 2Z at the root, shrinking linearly to Z at the leaf level.
        let extra = z * u64::from(levels - 1 - level) / u64::from(levels - 1);
        (z + extra) as usize
    }

    /// The prefetch-group identifier of a logical block.
    pub fn group_of(&self, block: BlockId) -> BlockId {
        BlockId(block.0 / self.options.group_size.max(1))
    }

    fn is_onchip(&self, level: u32) -> bool {
        level < self.config.treetop_levels
    }

    fn push_wide(&self, out: &mut Vec<u64>, addr: u64) {
        let wide = u64::from(self.config.wide_factor.max(1));
        for i in 0..wide {
            out.push(addr + i * 64);
        }
    }

    fn bucket_mut(&mut self, node: NodeId) -> &mut BucketState {
        self.buckets.entry(node).or_default()
    }

    /// Emulates ORAM initialisation for a block touched for the first time:
    /// places it in the deepest non-full bucket along its assigned leaf's
    /// path, falling back to the stash if the path is full.
    fn materialize(&mut self, block: BlockId, leaf: LeafId) {
        let path = self.geometry.path(leaf);
        for &node in path.iter().rev() {
            let cap = self.capacity_at(self.geometry.level_of(node));
            if self.bucket_mut(node).occupancy() < cap {
                self.bucket_mut(node).push(StoredBlock {
                    block,
                    leaf,
                    payload: None,
                });
                return;
            }
        }
        self.stash.insert(
            block,
            StashEntry {
                leaf,
                payload: None,
                pending: false,
            },
        );
    }

    /// Reads the whole path into the stash, returning the per-level DRAM
    /// read addresses.
    fn read_path(&mut self, path: &[NodeId], reads: &mut Vec<u64>) {
        for &node in path {
            let level = self.geometry.level_of(node);
            let cap = self.capacity_at(level);
            let drained = self.bucket_mut(node).drain();
            for sb in drained {
                self.stash.insert(
                    sb.block,
                    StashEntry {
                        leaf: sb.leaf,
                        payload: sb.payload,
                        pending: false,
                    },
                );
            }
            if !self.is_onchip(level) {
                for slot in 0..cap {
                    let addr = self.layout.slot_addr(node, SlotIdx(slot as u16));
                    self.push_wide(reads, addr);
                }
            }
        }
    }

    /// Writes the path back, placing stash blocks as deep as possible, and
    /// returns the per-level DRAM write addresses.
    fn write_path(&mut self, leaf: LeafId, path: &[NodeId], writes: &mut Vec<u64>) {
        for &node in path.iter().rev() {
            let level = self.geometry.level_of(node);
            let cap = self.capacity_at(level);
            let candidates = self.stash.eviction_candidates(level, |block_leaf| {
                self.geometry.common_path_depth(leaf, block_leaf)
            });
            for block in candidates.into_iter() {
                if self.bucket_mut(node).occupancy() >= cap {
                    break;
                }
                if let Some(entry) = self.stash.remove(block) {
                    self.bucket_mut(node).push(StoredBlock {
                        block,
                        leaf: entry.leaf,
                        payload: entry.payload,
                    });
                }
            }
            if !self.is_onchip(level) {
                for slot in 0..cap {
                    let addr = self.layout.slot_addr(node, SlotIdx(slot as u16));
                    self.push_wide(writes, addr);
                }
            }
        }
    }

    fn serve(
        &mut self,
        block: Option<BlockId>,
        op: OramOp,
        payload: Option<Payload>,
    ) -> LevelOutcome {
        let group = block.map(|b| self.group_of(b));
        let (leaf, leaf_new) = match group {
            Some(g) => self.posmap.remap(g, &mut self.rng),
            None => {
                let l = self.rng.uniform_leaf(self.geometry.num_leaves());
                (l, l)
            }
        };
        let path = self.geometry.path(leaf);
        let mut outcome = LevelOutcome {
            leaf,
            ..LevelOutcome::default()
        };

        self.read_path(&path, &mut outcome.rp_reads);

        if let (Some(b), Some(g)) = (block, group) {
            // All blocks of the accessed group now follow the fresh leaf; any
            // of them sitting in the stash are retagged so the path invariant
            // (block on the path of its *current* leaf, or in the stash)
            // keeps holding after the remap.
            let group_size = self.options.group_size.max(1);
            let members: Vec<BlockId> = self
                .stash
                .iter()
                .map(|(blk, _)| *blk)
                .filter(|blk| blk.0 / group_size == g.0)
                .collect();
            for member in members {
                if let Some(e) = self.stash.get_mut(member) {
                    e.leaf = leaf_new;
                }
                if member != b {
                    outcome.prefetched.push(member);
                }
            }

            outcome.found = self.stash.get(b).is_some_and(|e| e.payload.is_some());
            match self.stash.get_mut(b) {
                Some(entry) => {
                    entry.leaf = leaf_new;
                    if op == OramOp::Write {
                        entry.payload = payload;
                    }
                    outcome.value = entry.payload;
                }
                None => {
                    // First-ever touch: reads of untouched blocks return zero
                    // and the block is materialised directly along its fresh
                    // leaf path (emulating ORAM initialisation lazily);
                    // writes enter through the stash like any dirty block.
                    if op == OramOp::Write {
                        outcome.value = payload;
                        self.stash.insert(
                            b,
                            StashEntry {
                                leaf: leaf_new,
                                payload,
                                pending: false,
                            },
                        );
                    } else {
                        self.materialize(b, leaf_new);
                    }
                }
            }
        }

        self.write_path(leaf, &path, &mut outcome.rp_writes);

        self.stats.dram_reads += outcome.total_reads() as u64;
        self.stats.dram_writes += outcome.total_writes() as u64;
        self.stats.path_evictions += 1;
        outcome
    }
}

impl LevelProtocol for PathLevel {
    fn access(&mut self, block: BlockId, op: OramOp, payload: Option<Payload>) -> LevelOutcome {
        self.stats.accesses += 1;
        self.serve(Some(block), op, payload)
    }

    fn dummy_access(&mut self) -> LevelOutcome {
        self.stats.dummy_accesses += 1;
        self.serve(None, OramOp::Read, None)
    }

    fn stash_len(&self) -> usize {
        self.stash.len()
    }

    fn stash_high_water(&self) -> usize {
        self.stash.high_water()
    }

    fn stash_overflow_events(&self) -> u64 {
        self.stash.overflow_events()
    }

    fn stats(&self) -> LevelStats {
        self.stats
    }

    fn params(&self) -> &OramParams {
        &self.config.params
    }

    fn sub(&self) -> SubOram {
        self.config.sub
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::OramParams;

    fn config(blocks: u64) -> LevelConfig {
        let params = OramParams::builder()
            .z(4)
            .s(0)
            .a(1)
            .num_blocks(blocks)
            .build()
            .unwrap();
        LevelConfig {
            sub: SubOram::Data,
            params,
            dram_base: 0,
            treetop_levels: 0,
            stash_capacity: 256,
            seed: 17,
            wide_factor: 1,
        }
    }

    fn path_oram(blocks: u64) -> PathLevel {
        PathLevel::new(config(blocks), PathLevelOptions::default())
    }

    #[test]
    fn write_then_read_round_trip() {
        let mut oram = path_oram(256);
        oram.access(BlockId(11), OramOp::Write, Some(Payload::from_u64(1111)));
        let out = oram.access(BlockId(11), OramOp::Read, None);
        assert!(out.found);
        assert_eq!(out.value.unwrap().as_u64(), 1111);
    }

    #[test]
    fn many_blocks_round_trip_under_evictions() {
        let mut oram = path_oram(512);
        for i in 0..300u64 {
            oram.access(BlockId(i), OramOp::Write, Some(Payload::from_u64(i + 1)));
        }
        for i in 0..300u64 {
            let out = oram.access(BlockId(i), OramOp::Read, None);
            assert_eq!(out.value.unwrap().as_u64(), i + 1, "block {i}");
        }
    }

    #[test]
    fn path_read_and_writeback_cover_full_path() {
        let mut oram = path_oram(256);
        let out = oram.access(BlockId(0), OramOp::Read, None);
        let levels = oram.params().levels as usize;
        assert_eq!(out.rp_reads.len(), levels * 4);
        assert_eq!(out.rp_writes.len(), levels * 4);
        assert!(out.lm_reads.is_empty(), "PathORAM has no metadata phase");
        assert!(out.er.is_empty());
        assert!(out.ep.is_none());
    }

    #[test]
    fn stash_stays_small_without_grouping() {
        let mut oram = path_oram(2048);
        let mut rng = OramRng::new(5);
        for i in 0..2000u64 {
            let b = BlockId(rng.gen_range(2048));
            if i % 2 == 0 {
                oram.access(b, OramOp::Write, Some(Payload::from_u64(i)));
            } else {
                oram.access(b, OramOp::Read, None);
            }
        }
        assert!(
            oram.stash_high_water() < 64,
            "ungrouped PathORAM stash should stay small, saw {}",
            oram.stash_high_water()
        );
    }

    #[test]
    fn grouped_mapping_increases_stash_pressure() {
        // The PrORAM observation (Fig. 4): forcing consecutive blocks onto
        // one leaf inflates stash occupancy relative to plain PathORAM.
        let run = |group_size: u64| {
            let mut oram = PathLevel::new(
                config(4096),
                PathLevelOptions {
                    bucket_z: 4,
                    group_size,
                    fat_tree: false,
                },
            );
            // Sequential sweep: the perfect-locality `stm` pattern.
            for i in 0..3000u64 {
                oram.access(BlockId(i % 4096), OramOp::Write, Some(Payload::from_u64(i)));
            }
            oram.stash_high_water()
        };
        let plain = run(1);
        let grouped = run(8);
        assert!(
            grouped > plain,
            "grouping should add stash pressure (plain {plain}, grouped {grouped})"
        );
    }

    #[test]
    fn fat_tree_relieves_stash_pressure() {
        let run = |fat_tree: bool| {
            let mut oram = PathLevel::new(
                config(4096),
                PathLevelOptions {
                    bucket_z: 4,
                    group_size: 8,
                    fat_tree,
                },
            );
            for i in 0..3000u64 {
                oram.access(BlockId(i % 4096), OramOp::Write, Some(Payload::from_u64(i)));
            }
            oram.stash_high_water()
        };
        let slim = run(false);
        let fat = run(true);
        assert!(
            fat <= slim,
            "fat tree should not increase stash pressure (slim {slim}, fat {fat})"
        );
    }

    #[test]
    fn grouped_access_reports_prefetched_members() {
        let mut oram = PathLevel::new(
            config(256),
            PathLevelOptions {
                bucket_z: 4,
                group_size: 4,
                fat_tree: false,
            },
        );
        for i in 0..4u64 {
            oram.access(BlockId(i), OramOp::Write, Some(Payload::from_u64(i)));
        }
        let out = oram.access(BlockId(0), OramOp::Read, None);
        // The other written members of group 0 should be reported.
        assert!(out.prefetched.iter().all(|b| b.0 < 4 && b.0 != 0));
        assert!(!out.prefetched.is_empty());
    }

    #[test]
    fn fat_tree_capacity_shape() {
        let oram = PathLevel::new(
            config(256),
            PathLevelOptions {
                bucket_z: 4,
                group_size: 1,
                fat_tree: true,
            },
        );
        let levels = oram.geometry.levels();
        assert_eq!(oram.capacity_at(0), 8, "root holds 2Z");
        assert_eq!(oram.capacity_at(levels - 1), 4, "leaf holds Z");
        for l in 1..levels {
            assert!(oram.capacity_at(l) <= oram.capacity_at(l - 1));
        }
    }

    #[test]
    fn dummy_access_reads_and_writes_a_path() {
        let mut oram = path_oram(256);
        let out = oram.dummy_access();
        assert!(!out.rp_reads.is_empty());
        assert!(!out.rp_writes.is_empty());
        assert!(out.value.is_none());
        assert_eq!(oram.stats().dummy_accesses, 1);
    }

    #[test]
    fn pageoram_style_small_buckets_reduce_traffic() {
        let big = {
            let mut oram = PathLevel::new(config(256), PathLevelOptions::default());
            oram.access(BlockId(0), OramOp::Read, None).total_traffic()
        };
        let small = {
            let mut oram = PathLevel::new(
                config(256),
                PathLevelOptions {
                    bucket_z: 3,
                    group_size: 1,
                    fat_tree: false,
                },
            );
            oram.access(BlockId(0), OramOp::Read, None).total_traffic()
        };
        assert!(small < big);
    }
}
