//! Deterministic pseudo-random number generation for leaf selection.
//!
//! The ORAM protocol's security rests on leaves being chosen "independently
//! and uniformly at random". For a *simulator* the additional requirement is
//! reproducibility: the same seed must produce the same access trace so that
//! experiments can be re-run bit-identically. We therefore ship a small,
//! well-known generator (SplitMix64 for seeding, Xoshiro256\*\* for the
//! stream) instead of depending on an external crate whose output could
//! change between versions.

use crate::types::LeafId;

// audit:allow-file(wrapping, PRNG state transitions are modular arithmetic by definition)

/// SplitMix64: used to expand a single `u64` seed into generator state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a new SplitMix64 stream from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Xoshiro256\*\*: the workhorse generator for leaf selection and synthetic
/// workload generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seeds the generator deterministically from a single `u64`.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // Avoid the all-zero state, which is a fixed point.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256 { s }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// The random source used by ORAM protocol instances.
///
/// ```
/// use palermo_oram::rng::OramRng;
/// let mut a = OramRng::new(42);
/// let mut b = OramRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OramRng {
    inner: Xoshiro256,
}

impl OramRng {
    /// Creates a new generator from a seed.
    pub fn new(seed: u64) -> Self {
        OramRng {
            inner: Xoshiro256::from_seed(seed),
        }
    }

    /// Returns the next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Returns a uniform value in `[0, bound)` using Lemire's multiply-shift
    /// reduction (no modulo bias for the bounds used here).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be non-zero");
        let x = self.next_u64();
        ((u128::from(x) * u128::from(bound)) >> 64) as u64
    }

    /// Returns a uniformly random leaf of a tree with `num_leaves` leaves.
    ///
    /// # Panics
    ///
    /// Panics if `num_leaves` is zero.
    pub fn uniform_leaf(&mut self, num_leaves: u64) -> LeafId {
        LeafId(self.gen_range(num_leaves))
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        let threshold = (p * (u64::MAX as f64)) as u64;
        self.next_u64() < threshold
    }

    /// Returns a floating-point value uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 bits of mantissa.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Reference values for seed 0 from the SplitMix64 reference code.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = OramRng::new(7);
        let mut b = OramRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = OramRng::new(1);
        let mut b = OramRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "independent streams should rarely collide");
    }

    #[test]
    fn gen_range_respects_bound() {
        let mut rng = OramRng::new(3);
        for bound in [1u64, 2, 3, 7, 1024, 1_000_000] {
            for _ in 0..200 {
                assert!(rng.gen_range(bound) < bound);
            }
        }
    }

    #[test]
    #[should_panic(expected = "bound must be non-zero")]
    fn gen_range_zero_panics() {
        OramRng::new(0).gen_range(0);
    }

    #[test]
    fn uniform_leaf_covers_range() {
        let mut rng = OramRng::new(11);
        let leaves = 16u64;
        let mut seen = vec![false; leaves as usize];
        for _ in 0..2000 {
            seen[rng.uniform_leaf(leaves).0 as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all leaves should be reachable");
    }

    #[test]
    fn uniform_leaf_is_roughly_uniform() {
        let mut rng = OramRng::new(5);
        let leaves = 8u64;
        let n = 80_000;
        let mut counts = vec![0u64; leaves as usize];
        for _ in 0..n {
            counts[rng.uniform_leaf(leaves).0 as usize] += 1;
        }
        let expected = n as f64 / leaves as f64;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        // 7 degrees of freedom; 99.9th percentile is ~24.3.
        assert!(chi2 < 24.3, "chi-square too large: {chi2}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = OramRng::new(9);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((1_900..3_200).contains(&hits), "p=0.25 hits: {hits}");
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = OramRng::new(13);
        for _ in 0..1000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
