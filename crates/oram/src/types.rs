//! Core newtypes shared across the Palermo ORAM stack.
//!
//! Every quantity that could plausibly be confused with another integer
//! (physical addresses, logical block indices, leaf identifiers, tree node
//! identifiers, bucket slot indices) gets its own newtype so the protocol
//! code cannot accidentally mix address spaces.

use std::fmt;

/// A byte address in the *protected* (secure, logical) memory space.
///
/// This is the address the processor misses on in the LLC; it never appears
/// on the untrusted memory bus. The ORAM protocol translates it into a
/// sequence of DRAM block addresses.
///
/// ```
/// use palermo_oram::types::PhysAddr;
/// let pa = PhysAddr::new(0x1040);
/// assert_eq!(pa.cache_line(64).0, 0x41);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct PhysAddr(pub u64);

impl PhysAddr {
    /// Creates a new physical address from a raw byte offset.
    pub fn new(addr: u64) -> Self {
        PhysAddr(addr)
    }

    /// Returns the logical cache-line / block index containing this address.
    ///
    /// # Panics
    ///
    /// Panics if `block_bytes` is zero.
    pub fn cache_line(self, block_bytes: u32) -> BlockId {
        assert!(block_bytes > 0, "block size must be non-zero");
        BlockId(self.0 / u64::from(block_bytes))
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PA:{:#x}", self.0)
    }
}

impl From<u64> for PhysAddr {
    fn from(v: u64) -> Self {
        PhysAddr(v)
    }
}

/// Index of a logical data block (cache line) within one sub-ORAM's address
/// space. Block 0 is the first 64-byte line of that space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct BlockId(pub u64);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// Identifier of a leaf of the ORAM binary tree, in `[0, num_leaves)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct LeafId(pub u64);

impl fmt::Display for LeafId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Identifier of a node (bucket) in the ORAM binary tree.
///
/// Nodes are numbered in level order: the root is node 0, the nodes of tree
/// level `l` occupy the range `[2^l - 1, 2^(l+1) - 1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct NodeId(pub u64);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

/// Index of a slot within a bucket (spanning both real and dummy slots).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SlotIdx(pub u16);

impl fmt::Display for SlotIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// The operation the processor requested on an LLC miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OramOp {
    /// Read the block; the decrypted payload is returned to the processor.
    Read,
    /// Overwrite the block with new data supplied by the processor.
    Write,
}

impl fmt::Display for OramOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OramOp::Read => write!(f, "R"),
            OramOp::Write => write!(f, "W"),
        }
    }
}

/// Which sub-ORAM (hierarchy level) a structure or memory operation belongs to.
///
/// The paper's hierarchical design (Fig. 2) uses three levels: the protected
/// data space, `PosMap1` protecting its position map, and `PosMap2`
/// protecting `PosMap1`'s position map. `PosMap3` is small enough to live
/// on chip and therefore is not a sub-ORAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SubOram {
    /// The protected user data space.
    Data,
    /// The ORAM protecting the data space's position map.
    Pos1,
    /// The ORAM protecting `PosMap1`'s position map.
    Pos2,
}

impl SubOram {
    /// All sub-ORAMs in outermost-to-innermost order (`Data`, `Pos1`, `Pos2`).
    pub const ALL: [SubOram; 3] = [SubOram::Data, SubOram::Pos1, SubOram::Pos2];

    /// Number of hierarchy levels modelled (fixed at 3, matching the paper).
    pub const COUNT: usize = 3;

    /// Returns the row index used by the PE mesh (0 = Data, 1 = Pos1, 2 = Pos2).
    pub fn index(self) -> usize {
        match self {
            SubOram::Data => 0,
            SubOram::Pos1 => 1,
            SubOram::Pos2 => 2,
        }
    }

    /// Returns the sub-ORAM with the given row index, if it exists.
    pub fn from_index(idx: usize) -> Option<SubOram> {
        match idx {
            0 => Some(SubOram::Data),
            1 => Some(SubOram::Pos1),
            2 => Some(SubOram::Pos2),
            _ => None,
        }
    }

    /// The sub-ORAM holding this level's position map, or `None` when the
    /// position map is small enough to be stored on chip (`PosMap3`).
    pub fn posmap_holder(self) -> Option<SubOram> {
        match self {
            SubOram::Data => Some(SubOram::Pos1),
            SubOram::Pos1 => Some(SubOram::Pos2),
            SubOram::Pos2 => None,
        }
    }

    /// Short human-readable name used in reports (`data`, `pos1`, `pos2`).
    pub fn name(self) -> &'static str {
        match self {
            SubOram::Data => "data",
            SubOram::Pos1 => "pos1",
            SubOram::Pos2 => "pos2",
        }
    }
}

impl fmt::Display for SubOram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phys_addr_to_block() {
        assert_eq!(PhysAddr::new(0).cache_line(64), BlockId(0));
        assert_eq!(PhysAddr::new(63).cache_line(64), BlockId(0));
        assert_eq!(PhysAddr::new(64).cache_line(64), BlockId(1));
        assert_eq!(PhysAddr::new(0x1040).cache_line(64), BlockId(0x41));
    }

    #[test]
    #[should_panic(expected = "block size must be non-zero")]
    fn phys_addr_zero_block_size_panics() {
        let _ = PhysAddr::new(0).cache_line(0);
    }

    #[test]
    fn sub_oram_round_trip() {
        for sub in SubOram::ALL {
            assert_eq!(SubOram::from_index(sub.index()), Some(sub));
        }
        assert_eq!(SubOram::from_index(3), None);
    }

    #[test]
    fn sub_oram_posmap_chain() {
        assert_eq!(SubOram::Data.posmap_holder(), Some(SubOram::Pos1));
        assert_eq!(SubOram::Pos1.posmap_holder(), Some(SubOram::Pos2));
        assert_eq!(SubOram::Pos2.posmap_holder(), None);
    }

    #[test]
    fn display_impls_are_nonempty() {
        assert_eq!(format!("{}", PhysAddr::new(0x40)), "PA:0x40");
        assert_eq!(format!("{}", BlockId(3)), "B3");
        assert_eq!(format!("{}", LeafId(7)), "L7");
        assert_eq!(format!("{}", NodeId(1)), "N1");
        assert_eq!(format!("{}", SlotIdx(2)), "S2");
        assert_eq!(format!("{}", OramOp::Read), "R");
        assert_eq!(format!("{}", OramOp::Write), "W");
        assert_eq!(format!("{}", SubOram::Pos1), "pos1");
    }
}
