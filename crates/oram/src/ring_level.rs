//! RingORAM / Palermo functional engine for one sub-ORAM tree.
//!
//! Implements Algorithm 1 (RingORAM) and the functional portions of
//! Algorithm 2 (Palermo). The two differ in *when* bucket resets happen:
//! RingORAM runs `EarlyReshuffle` after `ReadPath`, while Palermo hoists an
//! `EarlyReshufflePreCheck` before it so the write-to-read critical section
//! between consecutive requests resolves as early as possible (§IV-B).
//! Timing — i.e. how much of this traffic overlaps — is decided later by the
//! controller models; this engine is responsible for functional correctness
//! (read-your-writes, the path invariant, stash boundedness) and for
//! emitting the per-phase DRAM address lists.

use crate::bucket::{BucketState, StoredBlock};
use crate::crypto::Payload;
use crate::layout::TreeLayout;
use crate::level::{BucketOps, LevelConfig, LevelOutcome, LevelProtocol, LevelStats};
use crate::params::OramParams;
use crate::posmap::PositionMap;
use crate::rng::OramRng;
use crate::stash::{Stash, StashEntry};
use crate::tree::TreeGeometry;
use crate::types::{BlockId, NodeId, OramOp, SlotIdx, SubOram};
use std::collections::HashMap;

/// Functional RingORAM / Palermo engine for one tree.
#[derive(Debug, Clone)]
pub struct RingLevel {
    config: LevelConfig,
    geometry: TreeGeometry,
    layout: TreeLayout,
    // Keyed by NodeId along explicit path/bucket walks; simulation code
    // never iterates the map (the boundedness test that does is order-free).
    // audit:allow(map-iter, keyed access along explicit path walks; never iterated in simulation)
    buckets: HashMap<NodeId, BucketState>,
    posmap: PositionMap,
    stash: Stash,
    rng: OramRng,
    /// Accesses since construction; every `a`-th access schedules an EvictPath.
    round: u64,
    /// RingORAM's deterministic eviction-leaf counter `G`.
    evict_counter: u64,
    /// Palermo hoists the reshuffle pre-check before the path read.
    hoist_early_reshuffle: bool,
    stats: LevelStats,
}

impl RingLevel {
    /// Creates a new engine.
    ///
    /// `hoist_early_reshuffle` selects between the RingORAM ordering
    /// (`false`) and the Palermo pre-check ordering (`true`).
    pub fn new(config: LevelConfig, hoist_early_reshuffle: bool) -> Self {
        let geometry = TreeGeometry::new(config.params.num_leaves);
        let layout = TreeLayout::new(
            config.dram_base,
            u64::from(config.params.block_bytes) * u64::from(config.wide_factor.max(1)),
            u64::from(config.params.slots_per_bucket()),
        );
        RingLevel {
            geometry,
            layout,
            buckets: HashMap::new(),
            posmap: PositionMap::new(config.params.num_leaves),
            stash: Stash::new(config.stash_capacity),
            rng: OramRng::new(config.seed),
            round: 0,
            evict_counter: 0,
            hoist_early_reshuffle,
            config,
            stats: LevelStats::default(),
        }
    }

    /// Tree geometry of this level.
    pub fn geometry(&self) -> &TreeGeometry {
        &self.geometry
    }

    /// The DRAM layout of this level's tree.
    pub fn layout(&self) -> &TreeLayout {
        &self.layout
    }

    fn is_onchip(&self, level: u32) -> bool {
        level < self.config.treetop_levels
    }

    /// Expands a tree-block address into `wide_factor` consecutive DRAM
    /// burst addresses.
    fn push_wide(&self, out: &mut Vec<u64>, addr: u64) {
        let wide = u64::from(self.config.wide_factor.max(1));
        for i in 0..wide {
            out.push(addr + i * 64);
        }
    }

    fn bucket_mut(&mut self, node: NodeId) -> &mut BucketState {
        self.buckets.entry(node).or_default()
    }

    /// Emulates ORAM initialisation for a block touched for the first time:
    /// places it in the deepest non-full bucket along its assigned leaf's
    /// path (falling back to the stash if the whole path is full), which is
    /// where an explicit initialisation pass would have put it.
    fn materialize(&mut self, block: BlockId, leaf: crate::types::LeafId) {
        let z = usize::from(self.config.params.z);
        let path = self.geometry.path(leaf);
        for &node in path.iter().rev() {
            if self.bucket_mut(node).has_space(z) {
                self.bucket_mut(node).push(StoredBlock {
                    block,
                    leaf,
                    payload: None,
                });
                return;
            }
        }
        self.stash.insert(
            block,
            StashEntry {
                leaf,
                payload: None,
                pending: false,
            },
        );
    }

    /// Blocks in the stash that may legally be placed in `node` (their leaf
    /// path passes through it), in deterministic order.
    fn fitting_stash_blocks(&self, node: NodeId) -> Vec<BlockId> {
        let mut out: Vec<BlockId> = self
            .stash
            .iter()
            .filter(|(_, e)| !e.pending && self.geometry.is_on_path(node, e.leaf))
            .map(|(b, _)| *b)
            .collect();
        out.sort_unstable();
        out
    }

    /// Executes the `ResetBucket` routine of Algorithm 1 on `node`:
    /// pulls the remaining valid blocks into the stash, pushes back as many
    /// fitting stash blocks as capacity allows, and rewrites the bucket.
    fn reset_bucket(&mut self, node: NodeId) -> BucketOps {
        let z = usize::from(self.config.params.z);
        let slots = u64::from(self.config.params.slots_per_bucket());
        let level = self.geometry.level_of(node);
        let onchip = self.is_onchip(level);

        // Pull the remaining valid real blocks into the stash.
        let drained = self.bucket_mut(node).drain();
        for sb in drained {
            self.stash.insert(
                sb.block,
                StashEntry {
                    leaf: sb.leaf,
                    payload: sb.payload,
                    pending: false,
                },
            );
        }

        // Push back as many fitting stash blocks as fit under capacity Z.
        let candidates = self.fitting_stash_blocks(node);
        for block in candidates.into_iter().take(z) {
            if let Some(entry) = self.stash.remove(block) {
                self.bucket_mut(node).push(StoredBlock {
                    block,
                    leaf: entry.leaf,
                    payload: entry.payload,
                });
            }
        }
        self.bucket_mut(node).meta.reset();
        self.stats.bucket_resets += 1;

        // DRAM traffic: the fetch offsets are padded to Z reads and the whole
        // bucket (all Z + S slots) is re-encrypted and rewritten.
        let mut ops = BucketOps {
            node,
            ..BucketOps::default()
        };
        if !onchip {
            for i in 0..z as u64 {
                let addr = self.layout.slot_addr(node, SlotIdx(i as u16));
                self.push_wide(&mut ops.reads, addr);
            }
            for i in 0..slots {
                let addr = self.layout.slot_addr(node, SlotIdx(i as u16));
                self.push_wide(&mut ops.writes, addr);
            }
            // The rewritten permutation is recorded in the metadata block.
            ops.writes.push(self.layout.metadata_addr(node));
        }
        ops
    }

    /// Executes `EvictPath` along the deterministic eviction leaf sequence.
    fn evict_path(&mut self) -> BucketOps {
        let leaf = self.geometry.eviction_leaf(self.evict_counter);
        self.evict_counter += 1;
        self.stats.path_evictions += 1;

        let path = self.geometry.path(leaf);
        let mut aggregate = BucketOps {
            node: *path.last().expect("path is never empty"),
            ..BucketOps::default()
        };
        // Reset deepest-first so blocks settle as close to the leaves as
        // possible, which is what keeps the stash bounded.
        for node in path.into_iter().rev() {
            let ops = self.reset_bucket(node);
            aggregate.reads.extend(ops.reads);
            aggregate.writes.extend(ops.writes);
        }
        aggregate
    }

    /// Runs the early-reshuffle scan along `path`, resetting buckets that
    /// have exhausted (or, with the Palermo pre-check, are about to exhaust)
    /// their dummy budget.
    fn early_reshuffle(&mut self, path: &[NodeId], precheck: bool) -> Vec<BucketOps> {
        let s = self.config.params.s;
        let mut resets = Vec::new();
        for &node in path {
            let needs = {
                let meta = &self.bucket_mut(node).meta;
                if precheck {
                    meta.needs_reset_precheck(s)
                } else {
                    meta.needs_reset(s)
                }
            };
            if needs {
                resets.push(self.reset_bucket(node));
            }
        }
        resets
    }

    fn record_traffic(&mut self, outcome: &LevelOutcome) {
        self.stats.dram_reads += outcome.total_reads() as u64;
        self.stats.dram_writes += outcome.total_writes() as u64;
    }

    fn serve(
        &mut self,
        block: Option<BlockId>,
        op: OramOp,
        payload: Option<Payload>,
    ) -> LevelOutcome {
        let (leaf, leaf_new) = match block {
            Some(b) => self.posmap.remap(b, &mut self.rng),
            None => {
                // Dummy access: a uniformly random path, no remap.
                let l = self.rng.uniform_leaf(self.geometry.num_leaves());
                (l, l)
            }
        };
        let path = self.geometry.path(leaf);
        let mut outcome = LevelOutcome {
            leaf,
            ..LevelOutcome::default()
        };

        // LoadMetadata: one metadata block per off-chip path node.
        for &node in &path {
            if !self.is_onchip(self.geometry.level_of(node)) {
                outcome.lm_reads.push(self.layout.metadata_addr(node));
            }
        }

        // Palermo hoists the reshuffle pre-check before the path read.
        if self.hoist_early_reshuffle {
            outcome.er = self.early_reshuffle(&path, true);
        }

        // ReadPath: touch one slot in every path node; the node holding the
        // requested block contributes the real block, all others a dummy.
        for &node in &path {
            let level = self.geometry.level_of(node);
            let slots = self.config.params.slots_per_bucket() as u64;
            let (slot, taken) = {
                let bucket = self.bucket_mut(node);
                bucket.meta.touch();
                let slot = SlotIdx(((u64::from(bucket.meta.accessed) - 1) % slots) as u16);
                let taken = block.and_then(|b| bucket.take(b));
                (slot, taken)
            };
            if let Some(sb) = taken {
                self.stash.insert(
                    sb.block,
                    StashEntry {
                        leaf: leaf_new,
                        payload: sb.payload,
                        pending: false,
                    },
                );
            }
            if !self.is_onchip(level) {
                let addr = self.layout.slot_addr(node, slot);
                self.push_wide(&mut outcome.rp_reads, addr);
            }
        }

        // Commit the access to the stash: the block now lives there under its
        // freshly drawn leaf until an eviction pushes it back into the tree.
        if let Some(b) = block {
            outcome.found = self.stash.get(b).is_some_and(|e| e.payload.is_some());
            match self.stash.get_mut(b) {
                Some(entry) => {
                    entry.leaf = leaf_new;
                    if op == OramOp::Write {
                        entry.payload = payload;
                    }
                    outcome.value = entry.payload;
                }
                None => {
                    // First-ever touch of this block. A real deployment
                    // initialises the ORAM with every block already resident
                    // in the tree; the simulator materialises blocks lazily
                    // instead of allocating the full 16 GiB space. Writes go
                    // through the stash like any dirty block; reads of
                    // untouched blocks return zero and the block is placed
                    // directly along its freshly assigned path, exactly
                    // where initialisation would have left it.
                    outcome.found = false;
                    if op == OramOp::Write {
                        outcome.value = payload;
                        self.stash.insert(
                            b,
                            StashEntry {
                                leaf: leaf_new,
                                payload,
                                pending: false,
                            },
                        );
                    } else {
                        self.materialize(b, leaf_new);
                    }
                }
            }
        }

        // RingORAM ordering: reshuffle after the read path.
        if !self.hoist_early_reshuffle {
            outcome.er = self.early_reshuffle(&path, false);
        }

        // Periodic EvictPath every A accesses (real accesses only).
        if block.is_some() {
            self.round += 1;
            if self.round.is_multiple_of(u64::from(self.config.params.a)) {
                outcome.ep = Some(self.evict_path());
            }
        }

        self.record_traffic(&outcome);
        outcome
    }
}

impl LevelProtocol for RingLevel {
    fn access(&mut self, block: BlockId, op: OramOp, payload: Option<Payload>) -> LevelOutcome {
        self.stats.accesses += 1;
        self.serve(Some(block), op, payload)
    }

    fn dummy_access(&mut self) -> LevelOutcome {
        self.stats.dummy_accesses += 1;
        self.serve(None, OramOp::Read, None)
    }

    fn stash_len(&self) -> usize {
        self.stash.len()
    }

    fn stash_high_water(&self) -> usize {
        self.stash.high_water()
    }

    fn stash_overflow_events(&self) -> u64 {
        self.stash.overflow_events()
    }

    fn stats(&self) -> LevelStats {
        self.stats
    }

    fn params(&self) -> &OramParams {
        &self.config.params
    }

    fn sub(&self) -> SubOram {
        self.config.sub
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::OramParams;

    fn small_config(z: u16, s: u16, a: u32, blocks: u64) -> LevelConfig {
        let params = OramParams::builder()
            .z(z)
            .s(s)
            .a(a)
            .num_blocks(blocks)
            .build()
            .unwrap();
        LevelConfig {
            sub: SubOram::Data,
            params,
            dram_base: 0,
            treetop_levels: 0,
            stash_capacity: 256,
            seed: 42,
            wide_factor: 1,
        }
    }

    fn engine(hoist: bool) -> RingLevel {
        RingLevel::new(small_config(4, 5, 3, 256), hoist)
    }

    #[test]
    fn write_then_read_returns_value() {
        let mut oram = engine(false);
        oram.access(BlockId(5), OramOp::Write, Some(Payload::from_u64(500)));
        let out = oram.access(BlockId(5), OramOp::Read, None);
        assert!(out.found);
        assert_eq!(out.value.unwrap().as_u64(), 500);
    }

    #[test]
    fn unwritten_block_reads_as_absent() {
        let mut oram = engine(false);
        let out = oram.access(BlockId(9), OramOp::Read, None);
        assert!(!out.found);
        assert!(out.value.is_none());
    }

    #[test]
    fn overwrite_returns_latest_value() {
        let mut oram = engine(true);
        oram.access(BlockId(1), OramOp::Write, Some(Payload::from_u64(1)));
        oram.access(BlockId(1), OramOp::Write, Some(Payload::from_u64(2)));
        let out = oram.access(BlockId(1), OramOp::Read, None);
        assert_eq!(out.value.unwrap().as_u64(), 2);
    }

    #[test]
    fn many_blocks_survive_evictions() {
        let mut oram = engine(false);
        for i in 0..200u64 {
            oram.access(BlockId(i), OramOp::Write, Some(Payload::from_u64(i * 7)));
        }
        for i in 0..200u64 {
            let out = oram.access(BlockId(i), OramOp::Read, None);
            assert_eq!(out.value.unwrap().as_u64(), i * 7, "block {i}");
        }
    }

    #[test]
    fn stash_remains_bounded_under_random_traffic() {
        let mut oram = RingLevel::new(small_config(8, 12, 8, 4096), false);
        let mut rng = OramRng::new(99);
        for i in 0..3000u64 {
            let b = BlockId(rng.gen_range(4096));
            if i % 3 == 0 {
                oram.access(b, OramOp::Write, Some(Payload::from_u64(i)));
            } else {
                oram.access(b, OramOp::Read, None);
            }
        }
        assert!(
            oram.stash_high_water() < 200,
            "stash high water {} too large",
            oram.stash_high_water()
        );
        assert_eq!(oram.stash_overflow_events(), 0);
    }

    #[test]
    fn read_path_touches_every_tree_level() {
        let mut oram = engine(false);
        let out = oram.access(BlockId(0), OramOp::Read, None);
        let levels = oram.params().levels as usize;
        // One metadata read and one slot read per path node.
        assert_eq!(out.lm_reads.len(), levels);
        assert_eq!(out.rp_reads.len(), levels);
    }

    #[test]
    fn treetop_levels_suppress_dram_traffic() {
        let mut cfg = small_config(4, 5, 3, 256);
        cfg.treetop_levels = 2;
        let mut oram = RingLevel::new(cfg, false);
        let out = oram.access(BlockId(0), OramOp::Read, None);
        let levels = oram.params().levels as usize;
        assert_eq!(out.lm_reads.len(), levels - 2);
        assert_eq!(out.rp_reads.len(), levels - 2);
    }

    #[test]
    fn evict_path_fires_every_a_accesses() {
        let mut oram = engine(false);
        let mut evictions = 0;
        for i in 0..12u64 {
            let out = oram.access(BlockId(i), OramOp::Read, None);
            if out.ep.is_some() {
                evictions += 1;
            }
        }
        assert_eq!(evictions, 4, "A=3 over 12 accesses -> 4 evictions");
        assert_eq!(oram.stats().path_evictions, 4);
    }

    #[test]
    fn bucket_resets_eventually_occur() {
        let mut oram = engine(false);
        // Hammer the same small tree so nodes run out of dummies.
        for i in 0..100u64 {
            oram.access(BlockId(i % 16), OramOp::Read, None);
        }
        assert!(oram.stats().bucket_resets > 0);
    }

    #[test]
    fn hoisted_precheck_resets_before_exhaustion() {
        // With the pre-check, no bucket should ever be read with
        // accessed > S at read time.
        let mut oram = engine(true);
        for i in 0..200u64 {
            oram.access(BlockId(i % 32), OramOp::Read, None);
        }
        let s = oram.params().s;
        for bucket in oram.buckets.values() {
            assert!(
                bucket.meta.accessed <= s,
                "bucket over-accessed: {} > {}",
                bucket.meta.accessed,
                s
            );
        }
    }

    #[test]
    fn wide_factor_multiplies_data_traffic() {
        let mut cfg = small_config(4, 5, 3, 256);
        cfg.wide_factor = 4;
        let mut oram = RingLevel::new(cfg, true);
        let out = oram.access(BlockId(1), OramOp::Read, None);
        let levels = oram.params().levels as usize;
        // Metadata reads are not widened; slot reads are.
        assert_eq!(out.lm_reads.len(), levels);
        assert_eq!(out.rp_reads.len(), levels * 4);
    }

    #[test]
    fn dummy_access_generates_path_traffic_without_state_change() {
        let mut oram = engine(false);
        oram.access(BlockId(3), OramOp::Write, Some(Payload::from_u64(3)));
        let before = oram.posmap.get(BlockId(3));
        let out = oram.dummy_access();
        assert!(!out.rp_reads.is_empty());
        assert_eq!(oram.posmap.get(BlockId(3)), before);
        assert_eq!(oram.stats().dummy_accesses, 1);
    }

    #[test]
    fn path_invariant_holds_after_traffic() {
        // Every mapped block must be either in the stash or on the path of
        // its mapped leaf (the RingORAM invariant).
        let mut oram = RingLevel::new(small_config(4, 6, 4, 512), false);
        let mut rng = OramRng::new(7);
        for i in 0..1500u64 {
            let b = BlockId(rng.gen_range(512));
            if i % 2 == 0 {
                oram.access(b, OramOp::Write, Some(Payload::from_u64(i)));
            } else {
                oram.access(b, OramOp::Read, None);
            }
        }
        let geometry = oram.geometry;
        for (node_id, bucket) in &oram.buckets {
            for sb in &bucket.real {
                let mapped = oram.posmap.get(sb.block);
                // A block resident in the tree must lie on the path of the
                // leaf it was tagged with, and if the posmap has since been
                // remapped the stash copy rule guarantees it is the same
                // (blocks are always pulled into the stash when remapped).
                assert!(
                    geometry.is_on_path(*node_id, sb.leaf),
                    "block {} stored off its path",
                    sb.block
                );
                if let Some(leaf) = mapped {
                    assert_eq!(
                        leaf, sb.leaf,
                        "tree copy of {} has a stale leaf tag",
                        sb.block
                    );
                }
            }
        }
    }
}
