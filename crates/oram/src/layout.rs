//! DRAM address layout of an ORAM tree.
//!
//! Each bucket occupies a contiguous region of untrusted DRAM consisting of
//! one metadata block followed by its `Z + S` data slots. Buckets are laid
//! out in level order starting at a per-tree base address. Keeping the
//! metadata block adjacent to the bucket's slots means that a `LoadMetadata`
//! read followed by the `ReadPath` read of the same bucket frequently hits
//! the same DRAM row, which is where the row-buffer-hit rates reported in
//! the paper come from.

use crate::tree::TreeGeometry;
use crate::types::{NodeId, SlotIdx};

/// Maps tree nodes and slots to DRAM byte addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeLayout {
    base: u64,
    block_bytes: u64,
    slots_per_bucket: u64,
    bucket_stride: u64,
}

impl TreeLayout {
    /// Creates a layout for buckets with `slots_per_bucket` data slots of
    /// `block_bytes` each, plus one leading metadata block, starting at
    /// DRAM byte address `base`.
    ///
    /// # Panics
    ///
    /// Panics if `block_bytes` or `slots_per_bucket` is zero.
    pub fn new(base: u64, block_bytes: u64, slots_per_bucket: u64) -> Self {
        assert!(block_bytes > 0, "block_bytes must be non-zero");
        assert!(slots_per_bucket > 0, "slots_per_bucket must be non-zero");
        TreeLayout {
            base,
            block_bytes,
            slots_per_bucket,
            bucket_stride: (slots_per_bucket + 1) * block_bytes,
        }
    }

    /// The base DRAM address of the tree.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Size of one bucket (metadata + slots) in bytes.
    pub fn bucket_stride(&self) -> u64 {
        self.bucket_stride
    }

    /// Number of data slots per bucket.
    pub fn slots_per_bucket(&self) -> u64 {
        self.slots_per_bucket
    }

    /// Total DRAM footprint of a tree with the given geometry, in bytes.
    pub fn footprint(&self, geometry: &TreeGeometry) -> u64 {
        geometry.num_nodes() * self.bucket_stride
    }

    /// One past the last byte address used by a tree with this geometry.
    pub fn end(&self, geometry: &TreeGeometry) -> u64 {
        self.base + self.footprint(geometry)
    }

    /// The DRAM address of the bucket's metadata block.
    pub fn metadata_addr(&self, node: NodeId) -> u64 {
        self.base + node.0 * self.bucket_stride
    }

    /// The DRAM address of a data slot within a bucket.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range for this layout.
    pub fn slot_addr(&self, node: NodeId, slot: SlotIdx) -> u64 {
        assert!(
            u64::from(slot.0) < self.slots_per_bucket,
            "slot {slot} out of range for {} slots",
            self.slots_per_bucket
        );
        self.metadata_addr(node) + (1 + u64::from(slot.0)) * self.block_bytes
    }

    /// Returns `true` if `addr` falls inside this tree's region.
    pub fn contains(&self, geometry: &TreeGeometry, addr: u64) -> bool {
        addr >= self.base && addr < self.end(geometry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::LeafId;

    #[test]
    fn addresses_are_disjoint_per_bucket() {
        let layout = TreeLayout::new(0x1000, 64, 9);
        assert_eq!(layout.bucket_stride(), 640);
        assert_eq!(layout.metadata_addr(NodeId(0)), 0x1000);
        assert_eq!(layout.metadata_addr(NodeId(1)), 0x1000 + 640);
        assert_eq!(layout.slot_addr(NodeId(0), SlotIdx(0)), 0x1000 + 64);
        assert_eq!(layout.slot_addr(NodeId(0), SlotIdx(8)), 0x1000 + 9 * 64);
        // First slot of the next bucket comes after the last slot of this one.
        assert!(layout.slot_addr(NodeId(0), SlotIdx(8)) < layout.metadata_addr(NodeId(1)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slot_out_of_range_panics() {
        let layout = TreeLayout::new(0, 64, 4);
        layout.slot_addr(NodeId(0), SlotIdx(4));
    }

    #[test]
    fn footprint_and_containment() {
        let geometry = TreeGeometry::new(8);
        let layout = TreeLayout::new(4096, 64, 9);
        assert_eq!(layout.footprint(&geometry), 15 * 640);
        assert_eq!(layout.end(&geometry), 4096 + 15 * 640);
        assert!(layout.contains(&geometry, 4096));
        assert!(layout.contains(&geometry, layout.end(&geometry) - 1));
        assert!(!layout.contains(&geometry, layout.end(&geometry)));
        assert!(!layout.contains(&geometry, 0));
    }

    #[test]
    fn all_path_addresses_within_footprint() {
        let geometry = TreeGeometry::new(16);
        let layout = TreeLayout::new(1 << 20, 64, 43);
        for leaf in 0..16 {
            for node in geometry.path(LeafId(leaf)) {
                let meta = layout.metadata_addr(node);
                assert!(layout.contains(&geometry, meta));
                let last = layout.slot_addr(node, SlotIdx(42));
                assert!(layout.contains(&geometry, last));
            }
        }
    }
}
