//! The per-level (sub-ORAM) protocol interface.
//!
//! A [`LevelProtocol`] is the functional engine of one ORAM tree: it owns the
//! tree contents, the stash and the (logical) position map of that level, and
//! for every access it returns a [`LevelOutcome`] describing the DRAM traffic
//! each protocol phase generates. The hierarchy composes three level engines
//! (Data, PosMap1, PosMap2) into full [`crate::access_plan::AccessPlan`]s.

use crate::crypto::Payload;
use crate::params::OramParams;
use crate::types::{BlockId, LeafId, NodeId, OramOp, SubOram};

/// Static configuration of one level engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelConfig {
    /// Which hierarchy level this engine implements.
    pub sub: SubOram,
    /// Tree parameters.
    pub params: OramParams,
    /// Base DRAM address of this level's tree region.
    pub dram_base: u64,
    /// Number of top tree levels resident in the on-chip tree-top cache;
    /// accesses to those levels generate no DRAM traffic.
    pub treetop_levels: u32,
    /// Hardware stash capacity, in entries.
    pub stash_capacity: usize,
    /// RNG seed for leaf selection (each level gets an independent stream).
    pub seed: u64,
    /// Number of consecutive 64-byte DRAM bursts per tree block (Palermo's
    /// block-widening prefetch; 1 = no widening).
    pub wide_factor: u32,
}

/// DRAM operations belonging to one bucket-reset or path-eviction routine.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BucketOps {
    /// The bucket being reset (for path evictions, the path's leaf-level node).
    pub node: NodeId,
    /// Block addresses read by the routine.
    pub reads: Vec<u64>,
    /// Block addresses written by the routine.
    pub writes: Vec<u64>,
}

impl BucketOps {
    /// Total DRAM operations in this routine.
    pub fn traffic(&self) -> usize {
        self.reads.len() + self.writes.len()
    }
}

/// The result of serving one access at one level.
#[derive(Debug, Clone, Default)]
pub struct LevelOutcome {
    /// The leaf whose path was accessed (the *old* mapping).
    pub leaf: LeafId,
    /// Metadata reads along the path (`LoadMetadata` phase).
    pub lm_reads: Vec<u64>,
    /// Early-reshuffle bucket resets triggered by this access.
    pub er: Vec<BucketOps>,
    /// Data reads along the path (`ReadPath` phase).
    pub rp_reads: Vec<u64>,
    /// Path write-back traffic issued together with the read path
    /// (PathORAM-family write-back; empty for RingORAM).
    pub rp_writes: Vec<u64>,
    /// Scheduled path eviction (`EvictPath`), if this access triggered one.
    pub ep: Option<BucketOps>,
    /// The payload returned to the requester (for reads of blocks that have
    /// been written before).
    pub value: Option<Payload>,
    /// Whether the block existed (had been written or placed) before this access.
    pub found: bool,
    /// Extra logical blocks brought on chip by a prefetching scheme.
    pub prefetched: Vec<BlockId>,
}

impl LevelOutcome {
    /// Total DRAM reads across all phases of this outcome.
    pub fn total_reads(&self) -> usize {
        self.lm_reads.len()
            + self.rp_reads.len()
            + self.er.iter().map(|b| b.reads.len()).sum::<usize>()
            + self.ep.as_ref().map_or(0, |b| b.reads.len())
    }

    /// Total DRAM writes across all phases of this outcome.
    pub fn total_writes(&self) -> usize {
        self.rp_writes.len()
            + self.er.iter().map(|b| b.writes.len()).sum::<usize>()
            + self.ep.as_ref().map_or(0, |b| b.writes.len())
    }

    /// Total DRAM operations across all phases of this outcome.
    pub fn total_traffic(&self) -> usize {
        self.total_reads() + self.total_writes()
    }
}

/// Running counters kept by every level engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Real accesses served.
    pub accesses: u64,
    /// Dummy (controller-injected) accesses served.
    pub dummy_accesses: u64,
    /// DRAM block reads generated.
    pub dram_reads: u64,
    /// DRAM block writes generated.
    pub dram_writes: u64,
    /// Bucket reset routines executed (EarlyReshuffle + resets inside EvictPath).
    pub bucket_resets: u64,
    /// Path evictions executed.
    pub path_evictions: u64,
}

/// The functional protocol engine of one sub-ORAM.
pub trait LevelProtocol {
    /// Serves one access for `block`, returning the generated traffic and the
    /// value read. For writes, `payload` carries the new block contents.
    fn access(&mut self, block: BlockId, op: OramOp, payload: Option<Payload>) -> LevelOutcome;

    /// Serves a dummy access to a uniformly random path. Used for background
    /// evictions (PrORAM) and request-rate padding.
    fn dummy_access(&mut self) -> LevelOutcome;

    /// Current stash occupancy, in entries.
    fn stash_len(&self) -> usize;

    /// Largest stash occupancy observed so far.
    fn stash_high_water(&self) -> usize;

    /// Number of inserts that pushed the stash above its hardware capacity.
    fn stash_overflow_events(&self) -> u64;

    /// Running traffic counters.
    fn stats(&self) -> LevelStats;

    /// Tree parameters of this level.
    fn params(&self) -> &OramParams;

    /// Which hierarchy level this engine implements.
    fn sub(&self) -> SubOram;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_traffic_sums_all_phases() {
        let outcome = LevelOutcome {
            leaf: LeafId(0),
            lm_reads: vec![1, 2],
            er: vec![BucketOps {
                node: NodeId(3),
                reads: vec![10, 11],
                writes: vec![12, 13, 14],
            }],
            rp_reads: vec![20, 21, 22],
            rp_writes: vec![30],
            ep: Some(BucketOps {
                node: NodeId(0),
                reads: vec![40],
                writes: vec![41, 42],
            }),
            value: None,
            found: false,
            prefetched: vec![],
        };
        assert_eq!(outcome.total_reads(), 2 + 2 + 3 + 1);
        assert_eq!(outcome.total_writes(), 3 + 1 + 2);
        assert_eq!(outcome.total_traffic(), 14);
    }

    #[test]
    fn bucket_ops_traffic() {
        let ops = BucketOps {
            node: NodeId(1),
            reads: vec![0, 1, 2],
            writes: vec![3],
        };
        assert_eq!(ops.traffic(), 4);
    }

    #[test]
    fn default_outcome_is_empty() {
        let outcome = LevelOutcome::default();
        assert_eq!(outcome.total_traffic(), 0);
        assert!(!outcome.found);
        assert!(outcome.value.is_none());
    }
}
