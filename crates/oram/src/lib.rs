//! # palermo-oram
//!
//! Functional implementations of the ORAM protocols studied in *Palermo:
//! Improving the Performance of Oblivious Memory using Protocol-Hardware
//! Co-Design* (HPCA 2025): PathORAM, RingORAM, the Palermo protocol, and the
//! prefetch-based baselines (PrORAM, LAORAM, PageORAM, IR-ORAM) built on top
//! of them.
//!
//! The crate is organised around a clean separation between **function** and
//! **timing**:
//!
//! * the level engines ([`ring_level::RingLevel`], [`path_level::PathLevel`])
//!   and the recursive composition ([`hierarchy::HierarchicalOram`]) maintain
//!   the ORAM tree, stash and position maps and guarantee functional
//!   correctness (read-your-writes, path invariant, bounded stash);
//! * every request is lowered into an [`access_plan::AccessPlan`] — a DAG of
//!   protocol phases annotated with DRAM addresses and the *minimal
//!   intra-request dependencies* of the chosen protocol flavor.
//!
//! Controller models (in `palermo-controller`) execute those plans against a
//! cycle-level DRAM model, choosing how much inter-request overlap the
//! protocol flavor permits. This mirrors the paper's co-design split: the
//! protocol defines what must be ordered, the hardware exploits everything
//! that need not be.
//!
//! ## Quick example
//!
//! ```
//! use palermo_oram::hierarchy::{HierarchicalOram, HierarchyConfig, ProtocolFlavor};
//! use palermo_oram::params::{HierarchyParams, OramParams};
//! use palermo_oram::crypto::Payload;
//! use palermo_oram::types::{OramOp, PhysAddr};
//!
//! # fn main() -> Result<(), palermo_oram::error::OramError> {
//! // A small protected space so the example runs instantly.
//! let data = OramParams::builder().num_blocks(4096).z(8).s(12).a(8).build()?;
//! let params = HierarchyParams::derive(data, 4, 2)?;
//! let mut cfg = HierarchyConfig::paper_default(ProtocolFlavor::Palermo)?;
//! cfg.params = params;
//! let mut oram = HierarchicalOram::new(cfg)?;
//!
//! let pa = PhysAddr::new(0x80);
//! oram.access(pa, OramOp::Write, Some(Payload::from_u64(99)))?;
//! let read = oram.access(pa, OramOp::Read, None)?;
//! assert_eq!(read.value.unwrap().as_u64(), 99);
//! // The access plan lists the DRAM traffic the request generated.
//! assert!(read.plan.total_traffic() > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod access_plan;
pub mod baselines;
pub mod bucket;
pub mod crypto;
pub mod error;
pub mod hierarchy;
pub mod layout;
pub mod level;
pub mod params;
pub mod path_level;
pub mod posmap;
pub mod ring_level;
pub mod rng;
pub mod stash;
pub mod tree;
pub mod types;
pub mod validate;

pub use access_plan::{AccessPlan, PhaseKind, PlanNode, PlanNodeId};
pub use crypto::Payload;
pub use error::{OramError, OramResult};
pub use hierarchy::{
    AccessResult, HierarchicalOram, HierarchyConfig, PosmapBypass, PrefetchMode, ProtocolFlavor,
};
pub use params::{HierarchyParams, OramParams};
pub use types::{BlockId, LeafId, NodeId, OramOp, PhysAddr, SubOram};
