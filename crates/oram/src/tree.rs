//! ORAM binary-tree geometry.
//!
//! The ORAM tree is a complete binary tree whose nodes are buckets. Nodes
//! are numbered in level order (root = 0), and a leaf's path is the set of
//! nodes from the root down to that leaf. All protocol variants reason in
//! terms of these paths, so the geometry helpers here are shared by
//! PathORAM, RingORAM and Palermo.

use crate::types::{LeafId, NodeId};

/// Geometry of a complete binary ORAM tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TreeGeometry {
    num_leaves: u64,
    levels: u32,
}

impl TreeGeometry {
    /// Creates the geometry for a tree with `num_leaves` leaves.
    ///
    /// # Panics
    ///
    /// Panics if `num_leaves` is zero or not a power of two.
    pub fn new(num_leaves: u64) -> Self {
        assert!(
            num_leaves > 0 && num_leaves.is_power_of_two(),
            "num_leaves must be a non-zero power of two, got {num_leaves}"
        );
        TreeGeometry {
            num_leaves,
            levels: num_leaves.trailing_zeros() + 1,
        }
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> u64 {
        self.num_leaves
    }

    /// Number of levels (root level and leaf level inclusive).
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Total number of nodes in the tree.
    pub fn num_nodes(&self) -> u64 {
        2 * self.num_leaves - 1
    }

    /// The tree level of `node` (0 = root).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn level_of(&self, node: NodeId) -> u32 {
        assert!(node.0 < self.num_nodes(), "node {node} out of range");
        (64 - (node.0 + 1).leading_zeros()) - 1
    }

    /// The node at `level` on the path from the root to `leaf`.
    ///
    /// # Panics
    ///
    /// Panics if `leaf` or `level` is out of range.
    pub fn node_on_path(&self, leaf: LeafId, level: u32) -> NodeId {
        assert!(leaf.0 < self.num_leaves, "leaf {leaf} out of range");
        assert!(level < self.levels, "level {level} out of range");
        let idx_in_level = leaf.0 >> (self.levels - 1 - level);
        NodeId(((1u64 << level) - 1) + idx_in_level)
    }

    /// The leaf-level node corresponding to `leaf`.
    pub fn leaf_node(&self, leaf: LeafId) -> NodeId {
        self.node_on_path(leaf, self.levels - 1)
    }

    /// The nodes on the path from the root to `leaf`, root first.
    pub fn path(&self, leaf: LeafId) -> Vec<NodeId> {
        (0..self.levels)
            .map(|level| self.node_on_path(leaf, level))
            .collect()
    }

    /// The parent of `node`, or `None` for the root.
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        if node.0 == 0 {
            None
        } else {
            Some(NodeId((node.0 - 1) / 2))
        }
    }

    /// The two children of `node`, or `None` for leaf-level nodes.
    pub fn children(&self, node: NodeId) -> Option<(NodeId, NodeId)> {
        let left = 2 * node.0 + 1;
        if left >= self.num_nodes() {
            None
        } else {
            Some((NodeId(left), NodeId(left + 1)))
        }
    }

    /// Returns `true` if `node` lies on the path from the root to `leaf`.
    pub fn is_on_path(&self, node: NodeId, leaf: LeafId) -> bool {
        let level = self.level_of(node);
        self.node_on_path(leaf, level) == node
    }

    /// Number of levels (counting from the root) shared by the paths of two
    /// leaves. The result is at least 1 (the root is always shared) and at
    /// most [`TreeGeometry::levels`] (identical leaves).
    pub fn common_path_depth(&self, a: LeafId, b: LeafId) -> u32 {
        assert!(
            a.0 < self.num_leaves && b.0 < self.num_leaves,
            "leaf out of range"
        );
        if self.levels == 1 {
            return 1;
        }
        let diff = a.0 ^ b.0;
        if diff == 0 {
            return self.levels;
        }
        let highest_diff_bit = 63 - diff.leading_zeros(); // 0-based
                                                          // The leaf index has `levels - 1` significant bits; the number of
                                                          // shared most-significant bits is how deep the paths stay together.
        let shared_bits = (self.levels - 1) - (highest_diff_bit + 1);
        shared_bits + 1
    }

    /// The deepest level at which a block mapped to `block_leaf` may be
    /// placed when writing back along the path of `path_leaf`.
    pub fn deepest_shared_level(&self, path_leaf: LeafId, block_leaf: LeafId) -> u32 {
        self.common_path_depth(path_leaf, block_leaf) - 1
    }

    /// The eviction leaf for the `g`-th `EvictPath`, following RingORAM's
    /// deterministic reverse-lexicographic order (bit-reversed counter).
    /// The sequence is public and independent of program behaviour.
    pub fn eviction_leaf(&self, g: u64) -> LeafId {
        if self.num_leaves == 1 {
            return LeafId(0);
        }
        let bits = self.levels - 1;
        let masked = g & (self.num_leaves - 1);
        LeafId(masked.reverse_bits() >> (64 - bits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom(leaves: u64) -> TreeGeometry {
        TreeGeometry::new(leaves)
    }

    #[test]
    fn basic_counts() {
        let g = geom(8);
        assert_eq!(g.levels(), 4);
        assert_eq!(g.num_nodes(), 15);
        assert_eq!(g.num_leaves(), 8);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        geom(6);
    }

    #[test]
    fn single_leaf_tree() {
        let g = geom(1);
        assert_eq!(g.levels(), 1);
        assert_eq!(g.num_nodes(), 1);
        assert_eq!(g.path(LeafId(0)), vec![NodeId(0)]);
        assert_eq!(g.common_path_depth(LeafId(0), LeafId(0)), 1);
        assert_eq!(g.eviction_leaf(5), LeafId(0));
    }

    #[test]
    fn level_of_matches_level_order_numbering() {
        let g = geom(8);
        assert_eq!(g.level_of(NodeId(0)), 0);
        assert_eq!(g.level_of(NodeId(1)), 1);
        assert_eq!(g.level_of(NodeId(2)), 1);
        assert_eq!(g.level_of(NodeId(3)), 2);
        assert_eq!(g.level_of(NodeId(6)), 2);
        assert_eq!(g.level_of(NodeId(7)), 3);
        assert_eq!(g.level_of(NodeId(14)), 3);
    }

    #[test]
    fn path_walks_root_to_leaf() {
        let g = geom(8);
        assert_eq!(
            g.path(LeafId(0)),
            vec![NodeId(0), NodeId(1), NodeId(3), NodeId(7)]
        );
        assert_eq!(
            g.path(LeafId(7)),
            vec![NodeId(0), NodeId(2), NodeId(6), NodeId(14)]
        );
        assert_eq!(
            g.path(LeafId(5)),
            vec![NodeId(0), NodeId(2), NodeId(5), NodeId(12)]
        );
    }

    #[test]
    fn parent_child_consistency() {
        let g = geom(16);
        for n in 0..g.num_nodes() {
            let node = NodeId(n);
            if let Some((l, r)) = g.children(node) {
                assert_eq!(g.parent(l), Some(node));
                assert_eq!(g.parent(r), Some(node));
                assert_eq!(g.level_of(l), g.level_of(node) + 1);
            }
        }
        assert_eq!(g.parent(NodeId(0)), None);
    }

    #[test]
    fn path_membership() {
        let g = geom(8);
        for leaf in 0..8 {
            let leaf = LeafId(leaf);
            for node in g.path(leaf) {
                assert!(g.is_on_path(node, leaf));
            }
        }
        assert!(!g.is_on_path(NodeId(7), LeafId(7)));
        assert!(g.is_on_path(NodeId(0), LeafId(3)), "root on every path");
    }

    #[test]
    fn common_path_depth_examples() {
        let g = geom(8);
        assert_eq!(g.common_path_depth(LeafId(0), LeafId(0)), 4);
        assert_eq!(g.common_path_depth(LeafId(0), LeafId(1)), 3);
        assert_eq!(g.common_path_depth(LeafId(0), LeafId(2)), 2);
        assert_eq!(g.common_path_depth(LeafId(0), LeafId(7)), 1);
        assert_eq!(g.common_path_depth(LeafId(6), LeafId(7)), 3);
    }

    #[test]
    fn common_path_depth_is_symmetric_and_matches_paths() {
        let g = geom(16);
        for a in 0..16 {
            for b in 0..16 {
                let (a, b) = (LeafId(a), LeafId(b));
                let d = g.common_path_depth(a, b);
                assert_eq!(d, g.common_path_depth(b, a));
                let pa = g.path(a);
                let pb = g.path(b);
                let shared = pa.iter().zip(&pb).take_while(|(x, y)| x == y).count();
                assert_eq!(d as usize, shared);
            }
        }
    }

    #[test]
    fn eviction_leaf_cycles_through_all_leaves() {
        let g = geom(16);
        let mut seen = [false; 16];
        for i in 0..16 {
            seen[g.eviction_leaf(i).0 as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "eviction order must cover all leaves"
        );
        // Reverse-lexicographic: consecutive counters map to far-apart leaves.
        assert_eq!(g.eviction_leaf(0), LeafId(0));
        assert_eq!(g.eviction_leaf(1), LeafId(8));
        assert_eq!(g.eviction_leaf(2), LeafId(4));
    }

    #[test]
    fn deepest_shared_level_for_writeback() {
        let g = geom(8);
        assert_eq!(g.deepest_shared_level(LeafId(0), LeafId(0)), 3);
        assert_eq!(g.deepest_shared_level(LeafId(0), LeafId(7)), 0);
        assert_eq!(g.deepest_shared_level(LeafId(2), LeafId(3)), 2);
    }
}
