//! Protocol-level validation helpers used by tests and the security analysis.
//!
//! These functions check the statistical and structural properties the
//! security argument rests on: leaves must be selected uniformly at random,
//! access plans must be well formed, and the DRAM addresses a plan touches
//! must stay inside the tree regions.

use crate::access_plan::AccessPlan;
use crate::types::LeafId;

/// Result of a chi-square uniformity test over observed leaf selections.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformityReport {
    /// Number of observations.
    pub samples: u64,
    /// Number of distinct leaves (bins).
    pub bins: u64,
    /// The chi-square statistic against the uniform expectation.
    pub chi_square: f64,
    /// Degrees of freedom (`bins - 1`).
    pub degrees_of_freedom: u64,
}

impl UniformityReport {
    /// A loose acceptance test: the statistic should not exceed the 99.9th
    /// percentile of the chi-square distribution, approximated with the
    /// Wilson–Hilferty transformation. Suitable for smoke-testing that leaf
    /// selection has not been accidentally biased.
    pub fn looks_uniform(&self) -> bool {
        if self.degrees_of_freedom == 0 {
            return true;
        }
        let k = self.degrees_of_freedom as f64;
        // Wilson–Hilferty: chi2_p ~ k * (1 - 2/(9k) + z_p * sqrt(2/(9k)))^3,
        // with z_0.999 ~ 3.09.
        let z = 3.09;
        let cutoff = k * (1.0 - 2.0 / (9.0 * k) + z * (2.0 / (9.0 * k)).sqrt()).powi(3);
        self.chi_square <= cutoff
    }
}

/// Computes a chi-square uniformity report for a sequence of observed leaf
/// selections over a tree with `num_leaves` leaves.
///
/// # Panics
///
/// Panics if `num_leaves` is zero.
pub fn leaf_uniformity(observed: &[LeafId], num_leaves: u64) -> UniformityReport {
    assert!(num_leaves > 0, "num_leaves must be non-zero");
    let mut counts = vec![0u64; num_leaves as usize];
    for leaf in observed {
        counts[leaf.0 as usize] += 1;
    }
    let n = observed.len() as f64;
    let expected = n / num_leaves as f64;
    let chi_square = if expected > 0.0 {
        counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum()
    } else {
        0.0
    };
    UniformityReport {
        samples: observed.len() as u64,
        bins: num_leaves,
        chi_square,
        degrees_of_freedom: num_leaves.saturating_sub(1),
    }
}

/// Checks that every DRAM address referenced by `plan` falls inside
/// `[region_start, region_end)`.
pub fn plan_addresses_within(plan: &AccessPlan, region_start: u64, region_end: u64) -> bool {
    plan.nodes.iter().all(|node| {
        node.reads
            .iter()
            .chain(node.writes.iter())
            .all(|&addr| addr >= region_start && addr < region_end)
    })
}

/// Checks that a sequence of plans uses strictly increasing request ids —
/// the property the `CommitHead` ordering of Algorithm 2 relies on.
pub fn request_ids_monotonic(plans: &[AccessPlan]) -> bool {
    plans.windows(2).all(|w| w[0].request_id < w[1].request_id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access_plan::{AccessPlanBuilder, PhaseKind};
    use crate::rng::OramRng;
    use crate::types::{OramOp, PhysAddr, SubOram};

    #[test]
    fn uniform_leaves_pass() {
        let mut rng = OramRng::new(1);
        let leaves: Vec<LeafId> = (0..50_000).map(|_| rng.uniform_leaf(64)).collect();
        let report = leaf_uniformity(&leaves, 64);
        assert!(report.looks_uniform(), "chi2 = {}", report.chi_square);
        assert_eq!(report.samples, 50_000);
        assert_eq!(report.degrees_of_freedom, 63);
    }

    #[test]
    fn biased_leaves_fail() {
        // Half the probability mass on leaf 0.
        let mut rng = OramRng::new(2);
        let leaves: Vec<LeafId> = (0..50_000)
            .map(|_| {
                if rng.chance(0.5) {
                    LeafId(0)
                } else {
                    rng.uniform_leaf(64)
                }
            })
            .collect();
        let report = leaf_uniformity(&leaves, 64);
        assert!(!report.looks_uniform());
    }

    #[test]
    fn single_bin_always_uniform() {
        let leaves = vec![LeafId(0); 100];
        let report = leaf_uniformity(&leaves, 1);
        assert!(report.looks_uniform());
    }

    #[test]
    fn empty_observations_are_uniform() {
        let report = leaf_uniformity(&[], 16);
        assert!(report.looks_uniform());
        assert_eq!(report.samples, 0);
    }

    fn plan_with_addrs(id: u64, addrs: &[u64]) -> AccessPlan {
        let mut b = AccessPlanBuilder::new(id, PhysAddr::new(0), OramOp::Read);
        b.push(
            SubOram::Data,
            PhaseKind::ReadPath,
            addrs.to_vec(),
            vec![],
            vec![],
            0,
        );
        b.build()
    }

    #[test]
    fn address_range_check() {
        let plan = plan_with_addrs(0, &[100, 200, 300]);
        assert!(plan_addresses_within(&plan, 100, 301));
        assert!(!plan_addresses_within(&plan, 0, 300));
        assert!(!plan_addresses_within(&plan, 150, 400));
    }

    #[test]
    fn monotonic_request_ids() {
        let plans = vec![
            plan_with_addrs(0, &[1]),
            plan_with_addrs(1, &[1]),
            plan_with_addrs(5, &[1]),
        ];
        assert!(request_ids_monotonic(&plans));
        let bad = vec![plan_with_addrs(3, &[1]), plan_with_addrs(3, &[1])];
        assert!(!request_ids_monotonic(&bad));
    }
}
