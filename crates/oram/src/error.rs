//! Error types for the ORAM protocol crate.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing or operating an ORAM instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OramError {
    /// A protocol or tree parameter failed validation.
    InvalidParams {
        /// Description of the offending field and constraint.
        reason: String,
    },
    /// The on-chip stash exceeded its configured hardware capacity.
    ///
    /// This is a hard error for a hardware ORAM controller; the RingORAM
    /// analysis shows it should occur with probability below 2^-103 for a
    /// 256-entry stash, so hitting it in simulation indicates a protocol or
    /// configuration bug.
    StashOverflow {
        /// Number of entries the stash was holding when the overflow occurred.
        occupancy: usize,
        /// The configured hardware capacity.
        capacity: usize,
    },
    /// An access referenced a block outside the protected address space.
    AddressOutOfRange {
        /// The offending logical block index.
        block: u64,
        /// Number of blocks in the protected space.
        num_blocks: u64,
    },
    /// The workload produced so many consecutive LLC hits that no ORAM
    /// request could be formed (the working set fits entirely in the LLC,
    /// so the simulation cannot make progress).
    WorkloadStalled {
        /// Consecutive LLC-hit accesses scanned before giving up.
        accesses_scanned: u64,
    },
}

impl fmt::Display for OramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OramError::InvalidParams { reason } => {
                write!(f, "invalid ORAM parameters: {reason}")
            }
            OramError::StashOverflow {
                occupancy,
                capacity,
            } => write!(
                f,
                "stash overflow: {occupancy} entries exceed hardware capacity {capacity}"
            ),
            OramError::AddressOutOfRange { block, num_blocks } => write!(
                f,
                "block {block} is outside the protected space of {num_blocks} blocks"
            ),
            OramError::WorkloadStalled { accesses_scanned } => write!(
                f,
                "workload stalled: {accesses_scanned} consecutive LLC hits without a miss \
(the working set fits entirely in the LLC)"
            ),
        }
    }
}

impl Error for OramError {}

/// Convenience result alias used throughout the crate.
pub type OramResult<T> = Result<T, OramError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = OramError::InvalidParams {
            reason: "z must be non-zero".into(),
        };
        assert!(e.to_string().contains("z must be non-zero"));

        let e = OramError::StashOverflow {
            occupancy: 300,
            capacity: 256,
        };
        assert!(e.to_string().contains("300"));
        assert!(e.to_string().contains("256"));

        let e = OramError::AddressOutOfRange {
            block: 10,
            num_blocks: 4,
        };
        assert!(e.to_string().contains("outside"));

        let e = OramError::WorkloadStalled {
            accesses_scanned: 1_000_001,
        };
        assert!(e.to_string().contains("stalled"));
        assert!(e.to_string().contains("1000001"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<OramError>();
    }
}
