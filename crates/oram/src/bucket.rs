//! Bucket (tree node) functional state and per-node metadata.
//!
//! Each node of the ORAM tree is a *bucket* holding up to `Z` real blocks
//! and (for RingORAM) at least `S` dummy blocks. The simulator keeps the
//! functional contents of touched buckets in a sparse map; untouched buckets
//! behave as if they are full of dummies.

use crate::crypto::Payload;
use crate::types::{BlockId, LeafId};

/// Per-node bookkeeping equivalent to the paper's `NodeMetadata` structure
/// (Algorithm 1): how many slots have been consumed since the last reset and
/// how many reset routines this node has undergone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NodeMetadata {
    /// Number of slots invalidated (touched) since the last bucket reset.
    pub accessed: u16,
    /// Total number of reset routines this bucket has undergone.
    pub resets: u64,
}

impl NodeMetadata {
    /// Returns `true` if another read would exceed the dummy budget `s`,
    /// i.e. the bucket must be reset before (Palermo) or after (RingORAM)
    /// serving further accesses.
    pub fn needs_reset(&self, s: u16) -> bool {
        self.accessed >= s
    }

    /// Palermo's `EarlyReshufflePreCheck`: reset one access *earlier* so the
    /// bucket is guaranteed usable by the read that is about to be issued.
    pub fn needs_reset_precheck(&self, s: u16) -> bool {
        s > 0 && self.accessed >= s - 1
    }

    /// Records that a slot of this bucket was consumed by a path read.
    pub fn touch(&mut self) {
        self.accessed = self.accessed.saturating_add(1);
    }

    /// Clears the access counter after a reset routine.
    pub fn reset(&mut self) {
        self.accessed = 0;
        self.resets += 1;
    }
}

/// A real block stored in a bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredBlock {
    /// Logical block identifier within this sub-ORAM's space.
    pub block: BlockId,
    /// The leaf this block was mapped to when it was written here.
    pub leaf: LeafId,
    /// The block's payload; `None` for blocks that exist in the position map
    /// but have never been written by the program (they read back as zero).
    pub payload: Option<Payload>,
}

/// Functional state of one bucket.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BucketState {
    /// Access-tracking metadata (mirrors what RingORAM keeps in DRAM).
    pub meta: NodeMetadata,
    /// Real blocks currently resident in this bucket.
    pub real: Vec<StoredBlock>,
}

impl BucketState {
    /// Creates an empty bucket.
    pub fn new() -> Self {
        BucketState::default()
    }

    /// Number of real blocks stored.
    pub fn occupancy(&self) -> usize {
        self.real.len()
    }

    /// Returns `true` if another real block fits under capacity `z`.
    pub fn has_space(&self, z: usize) -> bool {
        self.real.len() < z
    }

    /// Returns `true` if the bucket currently holds `block`.
    pub fn contains(&self, block: BlockId) -> bool {
        self.real.iter().any(|b| b.block == block)
    }

    /// Removes and returns the stored copy of `block`, if present.
    pub fn take(&mut self, block: BlockId) -> Option<StoredBlock> {
        let idx = self.real.iter().position(|b| b.block == block)?;
        Some(self.real.swap_remove(idx))
    }

    /// Removes and returns *all* real blocks (used by bucket resets, which
    /// pull the remaining valid blocks into the stash before rewriting).
    pub fn drain(&mut self) -> Vec<StoredBlock> {
        std::mem::take(&mut self.real)
    }

    /// Inserts a real block.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the bucket already holds a copy of the
    /// block; the protocol invariant is that at most one copy of a block
    /// exists anywhere in the tree + stash.
    pub fn push(&mut self, block: StoredBlock) {
        debug_assert!(
            !self.contains(block.block),
            "bucket already holds {}",
            block.block
        );
        self.real.push(block);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sb(id: u64, leaf: u64) -> StoredBlock {
        StoredBlock {
            block: BlockId(id),
            leaf: LeafId(leaf),
            payload: Some(Payload::from_u64(id * 100)),
        }
    }

    #[test]
    fn metadata_reset_thresholds() {
        let mut m = NodeMetadata::default();
        assert!(!m.needs_reset(3));
        m.touch();
        m.touch();
        assert!(!m.needs_reset(3));
        assert!(m.needs_reset_precheck(3), "precheck fires one access early");
        m.touch();
        assert!(m.needs_reset(3));
        m.reset();
        assert_eq!(m.accessed, 0);
        assert_eq!(m.resets, 1);
    }

    #[test]
    fn precheck_with_zero_s_never_fires() {
        let m = NodeMetadata::default();
        assert!(!m.needs_reset_precheck(0));
    }

    #[test]
    fn bucket_take_and_push() {
        let mut b = BucketState::new();
        assert_eq!(b.occupancy(), 0);
        assert!(b.has_space(2));
        b.push(sb(1, 0));
        b.push(sb(2, 1));
        assert!(!b.has_space(2));
        assert!(b.contains(BlockId(1)));
        let taken = b.take(BlockId(1)).unwrap();
        assert_eq!(taken.block, BlockId(1));
        assert_eq!(taken.payload.unwrap().as_u64(), 100);
        assert!(!b.contains(BlockId(1)));
        assert!(b.take(BlockId(42)).is_none());
    }

    #[test]
    fn drain_empties_bucket() {
        let mut b = BucketState::new();
        b.push(sb(1, 0));
        b.push(sb(2, 0));
        let drained = b.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(b.occupancy(), 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "already holds")]
    fn duplicate_push_panics_in_debug() {
        let mut b = BucketState::new();
        b.push(sb(1, 0));
        b.push(sb(1, 1));
    }
}
