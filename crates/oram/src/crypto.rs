//! Block payloads and the modelled memory-path cipher.
//!
//! The real Palermo hardware re-encrypts every block with a fresh key/counter
//! before it is written back to untrusted DRAM. The *security* analysis of
//! the protocol only requires that (a) payloads on the bus are unintelligible
//! and (b) a block's ciphertext changes every time it is written. For the
//! simulator we therefore use a keyed counter-mode keystream (built on
//! SplitMix64) rather than AES: it preserves both properties, is fully
//! deterministic under a seed, and keeps the functional read-back tests
//! honest — a block that is not decrypted with the right address/version
//! will not return the stored value.

use crate::rng::SplitMix64;
use std::fmt;

/// Size of one ORAM data block / DRAM burst target, in bytes.
pub const BLOCK_BYTES: usize = 64;

/// The plaintext or ciphertext contents of one 64-byte block.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Payload(pub [u8; BLOCK_BYTES]);

impl Payload {
    /// A payload of all zero bytes (what an untouched block reads as).
    pub fn zeroed() -> Self {
        Payload([0u8; BLOCK_BYTES])
    }

    /// Builds a payload whose first eight bytes hold `value` (little endian)
    /// and whose remaining bytes are zero. Convenient for tests.
    pub fn from_u64(value: u64) -> Self {
        let mut bytes = [0u8; BLOCK_BYTES];
        bytes[..8].copy_from_slice(&value.to_le_bytes());
        Payload(bytes)
    }

    /// Reads back the `u64` stored by [`Payload::from_u64`].
    pub fn as_u64(&self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.0[..8]);
        u64::from_le_bytes(b)
    }
}

impl Default for Payload {
    fn default() -> Self {
        Payload::zeroed()
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Payload(0x{:016x}..)", self.as_u64())
    }
}

/// The keyed memory-path cipher.
///
/// Encryption is XOR with a keystream derived from `(key, block address,
/// version)`. The version counter is bumped by the caller on every
/// write-back so identical plaintexts never produce identical ciphertexts.
///
/// ```
/// use palermo_oram::crypto::{BlockCipher, Payload};
/// let cipher = BlockCipher::new(0xfeed);
/// let clear = Payload::from_u64(42);
/// let ct = cipher.encrypt(0x1000, 3, &clear);
/// assert_ne!(ct, clear);
/// assert_eq!(cipher.decrypt(0x1000, 3, &ct), clear);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockCipher {
    key: u64,
}

impl BlockCipher {
    /// Creates a cipher with the given secret key.
    pub fn new(key: u64) -> Self {
        BlockCipher { key }
    }

    fn apply(&self, addr: u64, version: u64, payload: &Payload) -> Payload {
        let mut stream = SplitMix64::new(
            self.key ^ addr.rotate_left(17) ^ version.rotate_left(41) ^ 0xA5A5_5A5A_0F0F_F0F0,
        );
        let mut out = payload.0;
        for chunk in out.chunks_mut(8) {
            let ks = stream.next_u64().to_le_bytes();
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
        }
        Payload(out)
    }

    /// Encrypts `payload` for storage at `addr` with the given write version.
    pub fn encrypt(&self, addr: u64, version: u64, payload: &Payload) -> Payload {
        self.apply(addr, version, payload)
    }

    /// Decrypts a ciphertext previously produced with the same `(addr, version)`.
    pub fn decrypt(&self, addr: u64, version: u64, payload: &Payload) -> Payload {
        self.apply(addr, version, payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let cipher = BlockCipher::new(1234);
        let clear = Payload::from_u64(0xDEAD_BEEF_0BAD_F00D);
        let ct = cipher.encrypt(77, 5, &clear);
        assert_ne!(ct, clear);
        assert_eq!(cipher.decrypt(77, 5, &ct), clear);
    }

    #[test]
    fn ciphertext_depends_on_version() {
        let cipher = BlockCipher::new(9);
        let clear = Payload::from_u64(1);
        let a = cipher.encrypt(100, 0, &clear);
        let b = cipher.encrypt(100, 1, &clear);
        assert_ne!(a, b, "re-encryption must change the ciphertext");
    }

    #[test]
    fn ciphertext_depends_on_address() {
        let cipher = BlockCipher::new(9);
        let clear = Payload::from_u64(1);
        let a = cipher.encrypt(100, 0, &clear);
        let b = cipher.encrypt(164, 0, &clear);
        assert_ne!(a, b);
    }

    #[test]
    fn wrong_key_does_not_decrypt() {
        let clear = Payload::from_u64(99);
        let ct = BlockCipher::new(1).encrypt(0, 0, &clear);
        assert_ne!(BlockCipher::new(2).decrypt(0, 0, &ct), clear);
    }

    #[test]
    fn payload_u64_round_trip() {
        for v in [0u64, 1, u64::MAX, 0x0123_4567_89AB_CDEF] {
            assert_eq!(Payload::from_u64(v).as_u64(), v);
        }
        assert_eq!(Payload::zeroed().as_u64(), 0);
        assert_eq!(Payload::default(), Payload::zeroed());
    }

    #[test]
    fn debug_is_nonempty() {
        let s = format!("{:?}", Payload::from_u64(5));
        assert!(s.contains("Payload"));
    }
}
